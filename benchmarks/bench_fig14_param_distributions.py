"""Fig. 14 benchmark: distributions of eight representative parameters."""

from repro.experiments import registry


def test_fig14_parameter_distributions(run_once, d2):
    result = run_once(lambda: registry.run("fig14", d2=d2))
    print()
    print(result.formatted())
    rows = {row[0]: row for row in result.rows}
    assert len(rows) == 8

    def simpson(symbol):
        return float(rows[symbol][1].split("=")[1])

    def richness(symbol):
        return int(rows[symbol][3].split("=")[1])

    # Paper shape (AT&T): Hs single-valued; Delta_min dominated by one
    # value; the threshold parameters rich in options.
    assert richness("Hs") == 1
    assert simpson("Delta_min") < 0.1
    assert richness("Theta_s_lower") >= 8
    assert richness("Theta_nonintra") >= 8
    assert simpson("Ps") > 0.3
