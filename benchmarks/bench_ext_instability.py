"""Extension benchmark: runtime handoff instability analysis."""

from repro.experiments import registry


def test_ext_instability(run_once, d1):
    result = run_once(lambda: registry.run("ext-instability", d1=d1))
    print()
    print(result.formatted())
    data_rows = [row for row in result.rows[1:]]
    assert data_rows
    # Ping-pong rates are rates: within [0, 1] everywhere.
    assert all(0.0 <= row[3] <= 1.0 for row in data_rows)