"""Fig. 18 benchmark: priority breakdown over frequency (AT&T)."""

from repro.experiments import registry


def test_fig18_priority_over_frequency(run_once, d2):
    result = run_once(lambda: registry.run("fig18", d2=d2))
    print()
    print(result.formatted())
    serving_rows = [row for row in result.rows[1:]
                    if row[0] == "serving" and len(row) >= 4]
    assert serving_rows
    # Paper shape: band 30 (channel 9820) gets top priority, the
    # LTE-exclusive 700 MHz bands (12/17) sit low.
    by_band = {}
    for _, channel, band, shares in serving_rows:
        dominant = max(
            (part for part in str(shares).split()),
            key=lambda part: float(part.split(":")[1].rstrip("%")),
        )
        by_band.setdefault(band, []).append(int(dominant.split(":")[0]))
    if 30 in by_band and 17 in by_band:
        assert min(by_band[30]) > max(by_band[17])
    multi = next(row for row in result.rows if row[0] == "multi-valued-cell fraction")
    # ~6.3% of cells sit on multi-valued channels in the paper.
    assert 0.0 < multi[1] < 0.3
