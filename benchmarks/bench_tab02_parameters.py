"""Table 2 benchmark: regenerate the LTE parameter catalog."""

from repro.experiments import registry


def test_tab02_parameter_catalog(run_once):
    result = run_once(lambda: registry.run("tab02"))
    print()
    print(result.formatted())
    assert len(result.rows) == 67  # header + the paper's 66 parameters
