"""D2 build benchmark: serial loop vs. work-unit process pool.

The builds are small enough to run twice in one benchmark session but
large enough that session fan-out matters; the parity assertion doubles
as a continuous check that worker count never changes the dataset.
"""

from dataclasses import replace

from repro.datasets.d2 import D2Options, build_d2

BENCH_D2 = D2Options(n_volunteers=10, include_dense=True, workers=1)


def test_build_d2_serial(run_once):
    build = run_once(lambda: build_d2(BENCH_D2))
    print(f"\nserial: {len(build.store)} samples over {build.n_sessions} sessions")
    assert len(build.store) > 0


def test_build_d2_process_pool(run_once):
    build = run_once(lambda: build_d2(replace(BENCH_D2, workers=4)))
    print(f"\nworkers=4: {len(build.store)} samples over {build.n_sessions} sessions")
    reference = build_d2(BENCH_D2)
    assert [s.to_json() for s in build.store] == [s.to_json() for s in reference.store]
