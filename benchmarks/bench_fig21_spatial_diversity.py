"""Fig. 21 benchmark: spatial diversity of Ps vs neighborhood radius."""

from repro.experiments import registry


def test_fig21_spatial_diversity(run_once, d2):
    result = run_once(lambda: registry.run("fig21", d2=d2))
    print()
    print(result.formatted())
    medians = {}
    for row in result.rows[1:]:
        carrier, radius, n, median = row[0], row[1], row[2], row[3]
        if n > 0:
            medians.setdefault(carrier, {})[radius] = median
    # Paper shape: AT&T/Verizon/Sprint fine-tune per cell (nonzero
    # spatial diversity even at 0.5 km); T-Mobile's is ~zero.
    tuned = [c for c in ("A", "V", "S") if medians.get(c, {}).get(0.5, 0.0) > 0.0]
    assert tuned, "no per-cell-tuned carrier shows spatial diversity"
    if "T" in medians and 0.5 in medians["T"]:
        assert medians["T"][0.5] <= min(
            medians[c][0.5] for c in tuned
        )
