"""Table 4 benchmark: parameter counts and cell shares per RAT."""

from repro.experiments import registry


def test_tab04_rat_breakdown(run_once, d2):
    result = run_once(lambda: registry.run("tab04", d2=d2))
    print()
    print(result.formatted())
    rows = {row[0]: row for row in result.rows[1:]}
    # Paper: LTE 66 params / 72% of cells, dominating every other RAT.
    assert rows["LTE"][1] == 66
    assert rows["UMTS"][1] == 64
    lte_share = rows["LTE"][2]
    assert lte_share > 0.5
    assert all(lte_share > rows[r][2] for r in ("UMTS", "GSM", "EVDO", "CDMA1x"))
