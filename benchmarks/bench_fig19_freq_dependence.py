"""Fig. 19 benchmark: frequency dependence of every parameter (AT&T)."""

from repro.experiments import registry


def test_fig19_frequency_dependence(run_once, d2):
    result = run_once(lambda: registry.run("fig19", d2=d2))
    print()
    print(result.formatted())
    zetas = {row[0]: row[1] for row in result.rows[1:]}
    # Paper shape: priorities are frequency-dependent; hysteresis and
    # the relative A3 comparison are not.
    assert zetas.get("cell_reselection_priority", 0.0) > 0.05
    assert zetas.get("q_hyst", 1.0) < 0.05
    if "a3_offset" in zetas and "a2_threshold" in zetas:
        assert zetas["a3_offset"] <= zetas["cell_reselection_priority"] + 0.2
