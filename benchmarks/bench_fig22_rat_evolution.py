"""Fig. 22 benchmark: diversity across the RAT evolution."""

from repro.experiments import registry


def test_fig22_rat_evolution(run_once, d2):
    result = run_once(lambda: registry.run("fig22", d2=d2))
    print()
    print(result.formatted())
    medians = {row[0]: row[2] for row in result.rows[1:]}
    # Paper shape: LTE and WCDMA rich; EVDO and GSM nearly static.
    assert medians["A-LTE"] >= medians["A-GSM"]
    assert medians["A-LTE"] >= medians["S-EVDO"]
    assert medians["A-UMTS"] >= medians["A-GSM"]
