"""Fig. 17 benchmark: diversity of eight parameters across carriers."""

from repro.experiments import registry
from repro.experiments.fig15_carrier_distributions import STUDY_CARRIERS


def test_fig17_carrier_diversity(run_once, d2):
    result = run_once(lambda: registry.run("fig17", d2=d2))
    print()
    print(result.formatted())
    header, *rows = result.rows
    sk_index = list(header).index("SK")
    a_index = list(header).index("A")
    sk_values = [row[sk_index] for row in rows if str(row[0]).startswith("D(")]
    a_values = [row[a_index] for row in rows if str(row[0]).startswith("D(")]
    # Paper shape: SK Telecom exhibits the lowest diversity (all its
    # parameters single-valued); AT&T is highly diverse.
    assert max(sk_values) < 0.05
    assert max(a_values) > 0.3
