"""Fig. 6 benchmark: RSRP changes in active handoffs."""

from repro.experiments import registry


def test_fig06_rsrp_change(run_once, d1):
    result = run_once(lambda: registry.run("fig06", d1=d1))
    print()
    print(result.formatted())
    rows = {row[0]: row for row in result.rows[1:]}
    # Paper shape: A3 and P largely ensure better radio after the
    # handoff (~87%, ~94% with margin), A5 only about half (52%).
    assert rows["A3"][2] > 75.0
    assert rows["A5"][2] < rows["A3"][2]
    # Weaker-signal A5 handoffs concentrate in the negative pairs.
    if rows["A5(-) split"][1] >= 5:
        assert rows["A5(-) split"][2] <= rows["A5(+) split"][2]
