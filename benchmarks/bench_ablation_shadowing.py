"""Ablation: shadowing decorrelation distance vs handoff churn.

DESIGN.md's radio-substrate choice: spatially correlated shadowing with
a ~200 m decorrelation distance.  This ablation shows why it matters —
rapidly decorrelating shadowing inflates the handoff rate (signal
crossings every few tens of metres), while long-decorrelation fields
calm it.  The paper's configuration effects (TTT, hysteresis, offsets)
only matter *because* real signals fluctuate at these scales.
"""

from repro.cellnet.radio import RadioModel
from repro.config.events import EventConfig, EventType
from repro.experiments.controlled import run_controlled_drive


def test_ablation_shadowing_decorrelation(benchmark, scenario):
    events = (
        EventConfig(event=EventType.A3, offset=3.0, hysteresis=1.0,
                    time_to_trigger_ms=320),
    )

    def sweep():
        metrics = {}
        for decorrelation in (60.0, 200.0, 500.0):
            model = RadioModel(seed=1, shadowing_decorrelation_m=decorrelation)
            metrics[decorrelation] = run_controlled_drive(
                events, scenario=scenario, radio_model=model
            )
        return metrics

    metrics = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== ablation: shadowing decorrelation distance ==")
    for decorrelation, m in metrics.items():
        print(f"  decorrelation={decorrelation:>5.0f} m  handoffs={m.n_handoffs:>3}  "
              f"ping-pong={m.ping_pong_rate:.2f}")
    assert metrics[60.0].n_handoffs >= metrics[500.0].n_handoffs
