"""Fig. 20 benchmark: city-level priority distributions."""

from repro.experiments import registry


def test_fig20_city_priorities(run_once, d2):
    result = run_once(lambda: registry.run("fig20", d2=d2))
    print()
    print(result.formatted())
    att = {
        row[1]: row[2] for row in result.rows[1:] if row[0] == "A" and row[2] != "(none)"
    }
    # Paper shape: Chicago (C1) differs visibly from the other cities.
    if "Chicago" in att and "Indianapolis" in att:
        assert att["Chicago"] != att["Indianapolis"]
