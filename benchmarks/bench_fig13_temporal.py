"""Fig. 13 benchmark: temporal dynamics of configurations."""

from repro.experiments import registry


def test_fig13_temporal_dynamics(run_once, d2):
    result = run_once(lambda: registry.run("fig13", d2=d2))
    print()
    print(result.formatted())
    rows = {row[0]: row for row in result.rows}
    multi = rows["multi-sample cells"][1]
    assert multi > 0.2  # enough repeated samples to study dynamics
    idle = [float(v.rstrip("%")) for v in rows["idle changed"][1:]]
    active = [float(v.rstrip("%")) for v in rows["active changed"][1:]]
    # Paper shape: updates are rare and idle-state parameters are much
    # more stable than active-state ones (0.4-1.6% vs 21-24%).
    assert max(idle) < 10.0
    assert max(active) > max(idle)
