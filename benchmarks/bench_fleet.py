"""Fleet-simulation benchmark and perf-regression gate.

Times a whole-population fleet run (the default daytime urban mix:
parked phones, pedestrians, transit riders, drivers) through
:func:`repro.simulate.fleet.run_fleet`, asserts one mover's outputs
are bit-identical to a solo :class:`DriveSimulator` run, and reports
aggregate UE-ticks per second next to the committed single-UE
tick-loop baseline (``BENCH_TICKLOOP.json``).

Usage:

    python benchmarks/bench_fleet.py                    # print timings
    python benchmarks/bench_fleet.py --ues 500 --out BENCH_FLEET.json
    python benchmarks/bench_fleet.py --ues 500 --duration 60 \
        --check BENCH_FLEET.json --threshold 2.0        # CI gate

``--check`` compares the measured aggregate throughput against the
committed baseline and exits non-zero when it has regressed by more
than ``--threshold`` (generous, to absorb machine variance; the solo
bit-parity assertion is exact either way).  CI uses a shorter
``--duration`` than the committed baseline: per-lane-tick cost is
duration-independent at equal fleet size, so the rates compare.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.simulate.fleet import (
    FleetOptions,
    FleetSimulator,
    make_traffic,
    run_fleet,
    trajectory_for,
    ue_specs,
)
from repro.simulate.runner import DriveSimulator
from repro.simulate.scenarios import ScenarioSpec

#: Single-UE vectorized tick-loop throughput on the reference machine
#: (fallback when BENCH_TICKLOOP.json is not found next to the repo
#: root; the committed file is authoritative).
SOLO_TICKS_PER_S_FALLBACK = 6418.6


def solo_baseline(path: Path) -> float:
    """The committed single-UE vectorized ticks/s, with a fallback."""
    try:
        return float(json.loads(path.read_text())["vectorized_ticks_per_s"])
    except (OSError, ValueError, KeyError):
        return SOLO_TICKS_PER_S_FALLBACK


def assert_solo_parity(options: FleetOptions, probe_index: int) -> None:
    """Fleet UE ``probe_index`` must equal its solo drive bit-for-bit."""
    probe = FleetOptions(
        scenario=options.scenario,
        fleet_seed=options.fleet_seed,
        n_ues=probe_index + 1,
        duration_s=options.duration_s,
        tick_ms=options.tick_ms,
        carriers=options.carriers,
        mix=options.mix,
        transit_lines=options.transit_lines,
        traffic=options.traffic,
        keep_samples=True,
    )
    scenario = probe.scenario.build()
    fleet_ue = FleetSimulator(scenario, probe).simulate()[probe_index]
    spec = ue_specs(probe)[probe_index]
    solo = DriveSimulator(
        scenario.env, scenario.server, spec.carrier, seed=spec.seed, config_lint=False
    ).run(trajectory_for(scenario, probe, spec), make_traffic(probe.traffic))
    if (
        solo.samples != fleet_ue.samples
        or solo.handoffs != fleet_ue.handoffs
        or solo.diag_log != fleet_ue.diag_log
        or solo.ping_rtts_ms != fleet_ue.ping_rtts_ms
    ):
        raise AssertionError(
            f"fleet UE #{probe_index} ({spec.profile}) diverged from its "
            "solo DriveSimulator run"
        )


def measure(n_ues: int, duration_s: float, workers: int, solo_rate: float) -> dict:
    """Benchmark one fleet run (scenario prebuilt, outside the clock)."""
    options = FleetOptions(n_ues=n_ues, duration_s=duration_s)
    options.scenario.build()  # process-cached; keep the build off the clock
    result = run_fleet(options, workers=workers)
    rate = result.ue_ticks_per_s
    return {
        "scenario": options.scenario.name,
        "mix": dict((name, weight) for name, weight in options.mix),
        "n_ues": n_ues,
        "duration_s": duration_s,
        "tick_ms": options.tick_ms,
        "fleet_seed": options.fleet_seed,
        "workers": workers,
        "total_ticks": result.aggregates.total_ticks,
        "total_handoffs": result.aggregates.total_handoffs,
        "elapsed_s": round(result.elapsed_s, 2),
        "ue_ticks_per_s": round(rate, 1),
        "solo_vectorized_ticks_per_s": solo_rate,
        "speedup_vs_solo": round(rate / solo_rate, 2),
        "snapshot_cache_hit_rate": round(
            result.snapshot_cache.get("hit_rate", 0.0), 4
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ues", type=int, default=500,
                        help="fleet population (default 500)")
    parser.add_argument("--duration", type=float, default=600.0,
                        help="per-UE simulated seconds (default 600)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--probe-index", type=int, default=2,
                        help="UE index for the solo bit-parity assertion "
                             "(default 2, a pedestrian)")
    parser.add_argument("--skip-parity", action="store_true",
                        help="skip the solo parity assertion (timing only)")
    parser.add_argument("--solo-baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_TICKLOOP.json",
                        help="single-UE baseline JSON to compare against")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the result JSON here (the committed baseline)")
    parser.add_argument("--check", type=Path, default=None,
                        help="compare against a committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max tolerated slowdown vs the baseline (default 2.0)")
    args = parser.parse_args(argv)

    if not args.skip_parity:
        start = time.perf_counter()
        assert_solo_parity(FleetOptions(), args.probe_index)
        print(
            f"# solo parity OK (UE #{args.probe_index}, "
            f"{time.perf_counter() - start:.1f}s)",
            file=sys.stderr,
        )
    result = measure(
        args.ues, args.duration, args.workers, solo_baseline(args.solo_baseline)
    )
    print(json.dumps(result, indent=2))

    if args.out is not None:
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline written to {args.out}", file=sys.stderr)

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        floor = baseline["ue_ticks_per_s"] / args.threshold
        measured = result["ue_ticks_per_s"]
        if measured < floor:
            print(
                f"FAIL: fleet at {measured:.0f} UE-ticks/s, below "
                f"{floor:.0f} (baseline {baseline['ue_ticks_per_s']:.0f} "
                f"/ threshold {args.threshold})",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: {measured:.0f} UE-ticks/s >= {floor:.0f} "
            f"(baseline / {args.threshold})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
