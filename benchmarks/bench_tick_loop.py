"""Tick-loop microbenchmark and perf-regression gate.

Times a ten-minute simulated drive (the paper's Type-II unit of work)
through both UE measurement paths — the scalar reference loop and the
array-resident vectorized path — asserts they produce bit-identical
drives, and reports ticks per second.

Usage:

    python benchmarks/bench_tick_loop.py                 # print timings
    python benchmarks/bench_tick_loop.py --out BENCH_TICKLOOP.json
    python benchmarks/bench_tick_loop.py --duration 120 \
        --check BENCH_TICKLOOP.json --threshold 2.0      # CI gate

``--check`` compares the measured vectorized throughput against the
committed baseline and exits non-zero when it has regressed by more
than ``--threshold`` (generous, to absorb machine variance; the
bit-parity assertion is exact either way).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.simulate.runner import DriveResult, DriveSimulator
from repro.simulate.scenarios import drive_scenario
from repro.simulate.traffic import Speedtest

#: Ticks/s of the pre-vectorization scalar tick loop on the reference
#: machine (same drive as below, measured at the commit introducing this
#: benchmark).  The acceptance bar for the vectorized path is >= 3x this.
PRE_PR_TICKS_PER_S = 1000.0


def run_drive(vectorized: bool, duration_s: float, seed: int) -> tuple[DriveResult, float]:
    """One timed Speedtest drive through the chosen measurement path."""
    scenario = drive_scenario("lafayette", seed=7, config_seed=2018)
    sim = DriveSimulator(
        scenario.env,
        scenario.server,
        "A",
        seed=seed,
        vectorized=vectorized,
        config_lint=False,
    )
    trajectory = scenario.urban_trajectory(
        np.random.default_rng(99), duration_s=duration_s
    )
    start = time.perf_counter()
    result = sim.run(trajectory, Speedtest())
    return result, time.perf_counter() - start


def measure(duration_s: float, seed: int) -> dict:
    """Benchmark both paths once and assert drive-level bit parity."""
    scalar, scalar_s = run_drive(False, duration_s, seed)
    vector, vector_s = run_drive(True, duration_s, seed)
    if scalar.samples != vector.samples or scalar.diag_log != vector.diag_log:
        raise AssertionError(
            "vectorized drive diverged from the scalar reference "
            "(samples or diag log differ)"
        )
    ticks = len(scalar.samples)
    return {
        "scenario": "lafayette",
        "carrier": "A",
        "duration_s": duration_s,
        "seed": seed,
        "ticks": ticks,
        "handoffs": len(scalar.handoffs),
        "pre_pr_ticks_per_s": PRE_PR_TICKS_PER_S,
        "scalar_ticks_per_s": round(ticks / scalar_s, 1),
        "vectorized_ticks_per_s": round(ticks / vector_s, 1),
        "speedup_vs_scalar": round(scalar_s / vector_s, 2),
        "speedup_vs_pre_pr": round(ticks / vector_s / PRE_PR_TICKS_PER_S, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=600.0,
                        help="simulated drive length in seconds (default 600)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the result JSON here (the committed baseline)")
    parser.add_argument("--check", type=Path, default=None,
                        help="compare against a committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max tolerated slowdown vs the baseline (default 2.0)")
    args = parser.parse_args(argv)

    result = measure(args.duration, args.seed)
    print(json.dumps(result, indent=2))

    if args.out is not None:
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline written to {args.out}", file=sys.stderr)

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        floor = baseline["vectorized_ticks_per_s"] / args.threshold
        measured = result["vectorized_ticks_per_s"]
        if measured < floor:
            print(
                f"FAIL: vectorized path at {measured:.0f} ticks/s, below "
                f"{floor:.0f} (baseline {baseline['vectorized_ticks_per_s']:.0f} "
                f"/ threshold {args.threshold})",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: {measured:.0f} ticks/s >= {floor:.0f} "
            f"(baseline / {args.threshold})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
