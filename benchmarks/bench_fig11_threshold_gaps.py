"""Fig. 11 benchmark: measurement vs decision threshold gaps."""

from repro.experiments import registry


def test_fig11_threshold_gaps(run_once, d2):
    result = run_once(lambda: registry.run("fig11", d2=d2))
    print()
    print(result.formatted())
    rows = {row[0]: row for row in result.rows}
    # Paper shape: Theta_intra >= Theta_nonintra holds universally, a
    # few percent of cells tie, and large premature-measurement gaps
    # dominate the population.
    assert rows["violations (intra < nonintra)"][1] == 0.0
    assert 0.0 < rows["tie fraction (intra == nonintra)"][1] < 0.15
    assert rows["premature (gap > 30 dB)"][1] > 0.5
    assert rows["late non-intra (nonintra < serving-low)"][1] > 0.0
