"""Ablation: permissive vs strict A5 policies (paper Section 4.1).

The paper contrasts two handoff-management philosophies: the permissive
serving threshold (-44 dBm, "performance driven": hand off early) and
the strict one (-118 dBm, "overhead driven": hand off only when the
serving cell is truly poor).  This ablation runs both and reports the
frontier: handoff count vs pre-handoff throughput.
"""

from repro.config.events import EventConfig, EventType
from repro.experiments.controlled import run_controlled_drive


def _a5(serving_threshold):
    return (
        EventConfig(event=EventType.A5, threshold1=serving_threshold,
                    threshold2=-108.0, hysteresis=1.0, time_to_trigger_ms=640),
    )


def test_ablation_a5_policy(benchmark, scenario):
    def sweep():
        return {
            "permissive(-44)": run_controlled_drive(_a5(-44.0), scenario=scenario),
            "middle(-95)": run_controlled_drive(_a5(-95.0), scenario=scenario),
            "strict(-118)": run_controlled_drive(_a5(-118.0), scenario=scenario),
        }

    metrics = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== ablation: A5 serving-threshold policy ==")
    for label, m in metrics.items():
        print(f"  {label:>16}  handoffs={m.n_handoffs:>3}  "
              f"min-thpt-before={m.mean_min_throughput_before_bps / 1e6:.2f} Mbps  "
              f"mean-thpt={m.mean_throughput_bps / 1e6:.2f} Mbps")
    # Paper shape: the strict policy defers handoffs (fewer of them)...
    assert metrics["strict(-118)"].n_handoffs <= metrics["permissive(-44)"].n_handoffs
    # ...and the permissive one preserves more throughput overall.
    assert (
        metrics["permissive(-44)"].mean_throughput_bps
        >= metrics["strict(-118)"].mean_throughput_bps * 0.8
    )
