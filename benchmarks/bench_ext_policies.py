"""Extension benchmark: per-carrier policy inference."""

from repro.experiments import registry


def test_ext_policy_inference(run_once, d2):
    result = run_once(lambda: registry.run("ext-policies", d2=d2))
    print()
    print(result.formatted())
    rows = {row[0]: row for row in result.rows[1:]}
    assert set(rows) >= {"A", "T", "SK"}
    # AT&T's permissive A5 pairs push it toward the performance-driven
    # end; every carrier's label shares sum to ~1.
    for carrier, row in rows.items():
        assert abs(row[2] + row[3] + row[4] - 1.0) < 1e-6
    assert rows["A"][2] > 0.1  # a visible performance-driven share
