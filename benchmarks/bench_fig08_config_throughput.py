"""Fig. 8 benchmark: throughput impact per decisive configuration."""

from repro.experiments import registry


def test_fig08_config_throughput(run_once, d1):
    result = run_once(lambda: registry.run("fig08", d1=d1))
    print()
    print(result.formatted())
    rows = [row for row in result.rows[1:] if row[2] > 0]
    assert rows, "no populated configuration groups"
    # AT&T's permissive A5 serving threshold (-44 dBm) should appear as
    # one of the dominant configurations, as in the paper.
    labels = {row[1] for row in result.rows[1:] if row[0] == "A"}
    assert any(label.startswith("A5(") for label in labels)
