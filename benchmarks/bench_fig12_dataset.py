"""Fig. 12 benchmark: cells and samples per carrier."""

from repro.experiments import registry


def test_fig12_dataset_composition(run_once, d2):
    result = run_once(lambda: registry.run("fig12", d2=d2))
    print()
    print(result.formatted())
    rows = {row[0]: row for row in result.rows[1:]}
    total = rows.pop("TOTAL")
    # Paper shape: the four US carriers dominate the cell counts, and
    # the long tail of international carriers contributes few cells.
    us = sum(rows[c][1] for c in ("A", "T", "V", "S") if c in rows)
    assert us > 0.5 * total[1]
    assert len(rows) >= 10  # many carriers observed
