"""Fig. 9 benchmark: configurations act on radio quality as configured."""

from collections import defaultdict

from repro.experiments import registry


def test_fig09_radio_impacts(run_once, d1):
    result = run_once(lambda: registry.run("fig09", d1=d1))
    print()
    print(result.formatted())
    relations = defaultdict(list)
    for row in result.rows[1:]:
        relations[row[0]].append((row[1], row[3], row[2]))  # (value, median, n)
    # Paper: "handoffs are performed as configured" — larger A3 offsets
    # yield larger RSRP gains (weighted trend over populated groups).
    a3 = [(v, m) for v, m, n in relations["a3_offset_vs_delta"] if n >= 3]
    if len(a3) >= 2:
        low = min(a3, key=lambda t: t[0])
        high = max(a3, key=lambda t: t[0])
        assert high[1] >= low[1] - 1.0
    # Stricter serving thresholds (more negative) mean weaker r_old.
    a5 = [(v, m) for v, m, n in relations["a5_serving_vs_old"]
          if n >= 3 and v <= -40.0]
    if len(a5) >= 2:
        permissive = max(a5, key=lambda t: t[0])  # e.g. -44
        strict = min(a5, key=lambda t: t[0])      # e.g. -118
        assert strict[1] <= permissive[1] + 2.0
