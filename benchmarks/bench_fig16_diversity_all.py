"""Fig. 16 benchmark: diversity of every LTE parameter (AT&T)."""

from repro.experiments import registry


def test_fig16_all_parameter_diversity(run_once, d2):
    result = run_once(lambda: registry.run("fig16", d2=d2))
    print()
    print(result.formatted())
    rows = result.rows[1:]
    simpsons = [row[2] for row in rows]
    assert simpsons == sorted(simpsons)  # the paper's x-axis ordering
    # Paper shape: a block of single/dominant-valued parameters at the
    # left, rich diversity at the right.
    assert simpsons[0] < 0.05
    assert simpsons[-1] > 0.5
    assert len(rows) >= 30  # most of the 66 parameters observed
