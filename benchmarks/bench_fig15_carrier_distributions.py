"""Fig. 15 benchmark: four parameters across the nine study carriers."""

from repro.experiments import registry


def test_fig15_carrier_distributions(run_once, d2):
    result = run_once(lambda: registry.run("fig15", d2=d2))
    print()
    print(result.formatted())
    # Paper shape: SK Telecom is single-valued for all four parameters.
    sections = {}
    current = None
    for row in result.rows:
        if str(row[0]).startswith("--"):
            current = row[0]
            sections[current] = {}
        elif current is not None:
            sections[current][row[0]] = row[1]
    for section, carriers in sections.items():
        sk = carriers.get("SK", "")
        if sk and sk != "(none)":
            assert len(sk.split()) == 1, (section, sk)
