"""Ablation: WCDMA soft-handover reporting range vs active-set churn.

The UMTS registry's event-1a/1b reporting ranges control how eagerly
cells enter and leave the active set.  Wider ranges admit more cells
(bigger sets, macro-diversity gain) at the cost of more update
signaling; this ablation sweeps the range pair on a fixed walk through
a real deployment and reports set size and update counts.
"""

import numpy as np

from repro.cellnet.rat import RAT
from repro.config.legacy import UmtsCellConfig
from repro.ue.measurement import MeasurementEngine
from repro.ue.umts_active_set import ActiveSetManager


def _walk_updates(scenario, reporting_range_db: float) -> tuple[int, float]:
    """(total updates, mean active-set size) over a fixed walk."""
    config = UmtsCellConfig(
        e1a_reporting_range=reporting_range_db,
        e1b_reporting_range=reporting_range_db + 2.0,
        e1a_time_to_trigger=320,
        e1b_time_to_trigger=320,
        e1c_time_to_trigger=320,
    )
    umts_cells = [
        c for c in scenario.plan.registry.by_carrier("A") if c.rat is RAT.UMTS
    ]
    engine = MeasurementEngine(scenario.env, np.random.default_rng(4))
    manager = ActiveSetManager(config=config)
    manager.start(umts_cells[0])
    origin = umts_cells[0].location
    target = umts_cells[min(3, len(umts_cells) - 1)].location
    n_updates = 0
    sizes = []
    for tick in range(600):
        location = origin.towards(target, tick / 600)
        measured = engine.step(location, "A", umts_cells[0])
        umts_only = {
            cid: fm for cid, fm in measured.items() if fm.cell.rat is RAT.UMTS
        }
        if umts_only:
            n_updates += len(manager.step(tick * 200, umts_only))
        sizes.append(manager.size)
    return n_updates, float(np.mean(sizes))


def test_ablation_soft_handover_range(benchmark, scenario):
    def sweep():
        return {r: _walk_updates(scenario, r) for r in (2.0, 4.0, 6.0)}

    metrics = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== ablation: soft-handover reporting range (UMTS 1a/1b) ==")
    for reporting_range, (updates, mean_size) in metrics.items():
        print(f"  range={reporting_range:g} dB  updates={updates:>3}  "
              f"mean active-set size={mean_size:.2f}")
    # Wider ranges keep more cells in the set on average.
    assert metrics[6.0][1] >= metrics[2.0][1]
