"""Fig. 7 benchmark: throughput timelines for Delta_A3 = 5 vs 12 dB."""

from repro.experiments import registry


def test_fig07_throughput_timeline(run_once):
    result = run_once(lambda: registry.run("fig07"))
    print()
    print(result.formatted())
    minima = {}
    for row in result.rows:
        if str(row[0]).startswith("Delta_A3="):
            minima[row[0]] = row[2]
    # Paper shape: the larger offset defers the handoff until data has
    # already collapsed — minimum pre-handoff throughput drops hard
    # (paper: 2.2 Mbps -> 437 kbps, an ~80% decline).
    assert minima["Delta_A3=12dB"] < minima["Delta_A3=5dB"]
