"""D1 build benchmark: serial loop vs. work-unit process pool.

Drives dominate D1 build time (each is a full UE simulation), so this
is where process fan-out pays off first.  The parity assertion doubles
as a continuous check that worker count never changes the dataset.
"""

from dataclasses import replace

from repro.datasets.d1 import D1Options, build_d1

BENCH_D1 = D1Options(
    scenario="lafayette",
    active_drives=2,
    idle_drives=1,
    drive_duration_s=300.0,
    carriers=("A", "T"),
    highway_drives=0,
    workers=1,
)


def test_build_d1_serial(run_once):
    build = run_once(lambda: build_d1(BENCH_D1))
    print(f"\nserial: {len(build.store)} instances from {len(build.drives)} drives")
    assert len(build.store) > 0


def test_build_d1_process_pool(run_once):
    build = run_once(lambda: build_d1(replace(BENCH_D1, workers=4)))
    print(f"\nworkers=4: {len(build.store)} instances from {len(build.drives)} drives")
    reference = build_d1(BENCH_D1)
    assert [i.to_json() for i in build.store] == [i.to_json() for i in reference.store]
