"""Ablation: time-to-trigger's effect on handoff stability.

TTT exists to suppress measurement-noise-driven handoffs; this ablation
sweeps it with a fixed A3 offset and reports the handoff count and
ping-pong rate.  Expected shape: zero TTT is the most trigger-happy
configuration; raising TTT reduces churn.
"""

import pytest

from repro.config.events import EventConfig, EventType
from repro.experiments.controlled import run_controlled_drive


def test_ablation_time_to_trigger(benchmark, scenario):
    def sweep():
        metrics = {}
        for ttt in (0, 320, 1280):
            events = (
                EventConfig(event=EventType.A3, offset=3.0, hysteresis=1.0,
                            time_to_trigger_ms=ttt),
            )
            metrics[ttt] = run_controlled_drive(events, scenario=scenario)
        return metrics

    metrics = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== ablation: time-to-trigger (fixed A3 offset 3 dB) ==")
    for ttt, m in metrics.items():
        print(f"  TTT={ttt:>5} ms  handoffs={m.n_handoffs:>3}  "
              f"ping-pong={m.ping_pong_rate:.2f}  "
              f"thpt={m.mean_throughput_bps / 1e6:.2f} Mbps")
    assert metrics[0].n_handoffs >= metrics[1280].n_handoffs
