"""Fig. 10 benchmark: RSRP changes in idle-state handoffs."""

from repro.experiments import registry


def test_fig10_idle_rsrp(run_once, d1):
    result = run_once(lambda: registry.run("fig10", d1=d1))
    print()
    print(result.formatted())
    rows = {row[0]: row for row in result.rows[1:]}
    # Paper shape: intra and equal-priority reselections essentially
    # always improve; only higher-priority targets may be weaker.
    if rows["intra"][1] >= 5:
        assert rows["intra"][2] >= 95.0
    if rows["non-intra(E)"][1] >= 5:
        assert rows["non-intra(E)"][2] >= 95.0
    if rows["non-intra(H)"][1] >= 5:
        assert rows["non-intra(H)"][2] < 95.0
