"""Fig. 5 benchmark: decisive reporting events per carrier."""

from repro.experiments import registry


def test_fig05_event_mix(run_once, d1):
    result = run_once(lambda: registry.run("fig05", d1=d1))
    print()
    print(result.formatted())
    header, *rows = result.rows
    shares = {row[0]: dict(zip(header[1:], row[1:])) for row in rows}
    # Paper shape: A3 is the most popular decisive event in both
    # carriers; A1/A4 are rare; B/C events never appear.
    for carrier in ("A", "T"):
        assert shares[carrier]["A3%"] == max(shares[carrier].values())
        assert shares[carrier]["A1%"] < 5.0
        assert shares[carrier]["A4%"] < 5.0
    # AT&T leans on A5 as its second policy (paper: 26.1%).
    assert shares["A"]["A5%"] > shares["A"]["P%"]
