"""Benchmark fixtures: the shared default dataset builds.

Building D1/D2 is the expensive part and is paid once per pytest
process (the builders are process-cached); each benchmark then times
the *analysis* that regenerates its table/figure, and prints the rows
so a run doubles as a report.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import default_d1, default_d2, default_scenario


@pytest.fixture(scope="session")
def d1():
    return default_d1()


@pytest.fixture(scope="session")
def d2():
    return default_d2()


@pytest.fixture(scope="session")
def scenario():
    return default_scenario()


@pytest.fixture
def run_once(benchmark):
    """Run an experiment driver exactly once under the benchmark timer."""

    def _run(func):
        return benchmark.pedantic(func, rounds=1, iterations=1)

    return _run
