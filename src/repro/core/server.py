"""MMLab's server-side orchestration (paper Fig. 4).

The measurement infrastructure has two halves: participating devices
running the MMLab app, and MMLab servers that (1) push experimentation
"patches" to devices on the fly, (2) collect the resulting logs, and
(3) feed configuration characterization and performance assessment.

``MMLabServer`` reproduces that control loop over simulated devices:

* **register** a participant (a carrier subscription in some scenario);
* **push** an :class:`ExperimentPatch` — a Type-I collection walk or a
  Type-II guided drive ("we run experiments around certain cells or
  routes with configurations of interest");
* **execute** pending patches; every run's diag log lands in the
  server's archive.  Execution goes through a
  :mod:`repro.pipeline` backend: each queued patch becomes one
  :class:`ServerPatchUnit`, so a process-pool backend runs
  participants' patches concurrently while the archive keeps the exact
  serial order;
* **harvest** the archive into configuration samples and handoff
  instances, ready for the analysis toolkit.  The ``iter_*`` harvesters
  crawl log-by-log, so consumers can stream rows into a store without
  a second full-archive materialization.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.collector import MMLabCollector
from repro.core.crawler import crawl_config_samples
from repro.core.handoffs import extract_handoff_instances
from repro.core.scanner import proactive_scan
from repro.datasets.records import ConfigSample, HandoffInstance
from repro.pipeline import ExecutionBackend, SerialBackend, WorkUnit
from repro.simulate.mobility import Trajectory
from repro.simulate.runner import DriveSimulator
from repro.simulate.scenarios import DriveScenario, ScenarioSpec
from repro.simulate.traffic import TrafficModel
from repro.ue.device import UserEquipment


@dataclass(frozen=True)
class ExperimentPatch:
    """One experiment spec the server pushes to a participant.

    Attributes:
        patch_id: Server-assigned identifier.
        kind: "type1" (configuration collection at given stops) or
            "type2" (guided drive with a data service).
        stops: Scan locations for Type-I patches.
        trajectory: Drive path for Type-II patches.
        traffic: Data service for Type-II patches.
        observed_day: Logical collection day recorded on the samples.
    """

    patch_id: int
    kind: str
    stops: tuple = ()
    trajectory: Trajectory | None = None
    traffic: TrafficModel | None = None
    observed_day: float = 0.0


@dataclass
class Participant:
    """One registered device."""

    participant_id: int
    carrier: str
    pending: deque[ExperimentPatch] = field(default_factory=deque)


@dataclass
class CollectedLog:
    """One harvested run: who ran what, and the resulting log."""

    participant_id: int
    carrier: str
    patch: ExperimentPatch
    log_bytes: bytes
    throughput_series: list = field(default_factory=list)


def execute_patch(
    scenario: DriveScenario,
    seed: int,
    participant_id: int,
    carrier: str,
    patch: ExperimentPatch,
) -> CollectedLog:
    """Run one patch on one participant's device; pure in its inputs.

    Both the in-process path and :class:`ServerPatchUnit` call this, so
    the archive content is identical no matter where a patch executes.
    """
    if patch.kind == "type1":
        ue = UserEquipment(
            scenario.env, scenario.server, carrier,
            seed=seed * 10_000 + participant_id * 100 + patch.patch_id,
            sib_obs_rng=np.random.default_rng((seed, participant_id, patch.patch_id)),
        )
        ue.days_since_epoch = patch.observed_day
        collector = MMLabCollector(mode="type1")
        ue.add_listener(collector)
        t_ms = 0
        for stop in patch.stops:
            proactive_scan(ue, stop, start_ms=t_ms)
            t_ms += 60_000
        return CollectedLog(
            participant_id=participant_id,
            carrier=carrier,
            patch=patch,
            log_bytes=collector.log_bytes(),
        )
    if patch.kind == "type2":
        sim = DriveSimulator(
            scenario.env, scenario.server, carrier,
            seed=seed * 101 + participant_id,
        )
        result = sim.run(patch.trajectory, patch.traffic, run_index=patch.patch_id)
        return CollectedLog(
            participant_id=participant_id,
            carrier=carrier,
            patch=patch,
            log_bytes=result.diag_log,
            throughput_series=result.throughput_series(bin_ms=1000),
        )
    raise ValueError(f"unknown patch kind {patch.kind!r}")


class ServerPatchUnit(WorkUnit):
    """One queued patch as a pipeline work unit.

    Spec-built scenarios (anything from :func:`drive_scenario`) cross
    process boundaries as their :class:`ScenarioSpec`; the live scenario
    object is dropped on pickling and rebuilt (process-cached) in the
    worker.  Hand-assembled scenarios without a spec still run on any
    in-process backend.
    """

    def __init__(
        self,
        unit_id: int,
        seed: int,
        participant_id: int,
        carrier: str,
        patch: ExperimentPatch,
        spec: ScenarioSpec | None = None,
        scenario: DriveScenario | None = None,
    ):
        self.unit_id = unit_id
        self.seed = seed
        self.participant_id = participant_id
        self.carrier = carrier
        self.patch = patch
        self.spec = spec
        self.scenario = scenario

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if state["spec"] is not None:
            # Workers rebuild from the spec; never ship a live world.
            state["scenario"] = None
        return state

    def run(self) -> CollectedLog:
        scenario = self.scenario
        if scenario is None:
            if self.spec is None:
                raise RuntimeError(
                    "ServerPatchUnit has neither a scenario nor a spec; "
                    "scenarios without a ScenarioSpec only run on in-process backends"
                )
            scenario = self.spec.build()
        return execute_patch(
            scenario, self.seed, self.participant_id, self.carrier, self.patch
        )


class MMLabServer:
    """Coordinates participants, patches and log harvesting.

    Args:
        scenario: The world the participants live in.
        seed: Seeds every patch execution (combined with participant
            and patch ids).
        backend: Default execution backend for ``run_pending`` /
            ``run_all_pending`` (serial when omitted).
    """

    def __init__(
        self,
        scenario: DriveScenario,
        seed: int = 0,
        backend: ExecutionBackend | None = None,
    ):
        self.scenario = scenario
        self.seed = seed
        self.backend = backend or SerialBackend()
        self._participants: dict[int, Participant] = {}
        self._next_participant = 0
        self._next_patch = 0
        self.archive: list[CollectedLog] = []

    # -- enrolment and scheduling ----------------------------------------

    def register(self, carrier: str) -> int:
        """Enrol a new participant; returns its id."""
        participant_id = self._next_participant
        self._next_participant += 1
        self._participants[participant_id] = Participant(
            participant_id=participant_id, carrier=carrier
        )
        return participant_id

    def push_type1(self, participant_id: int, stops, observed_day: float = 0.0) -> int:
        """Queue a Type-I collection patch (scan at each stop)."""
        patch = ExperimentPatch(
            patch_id=self._next_patch, kind="type1", stops=tuple(stops),
            observed_day=observed_day,
        )
        self._next_patch += 1
        self._participants[participant_id].pending.append(patch)
        return patch.patch_id

    def push_type2(
        self, participant_id: int, trajectory: Trajectory, traffic: TrafficModel,
        observed_day: float = 0.0,
    ) -> int:
        """Queue a Type-II guided drive."""
        patch = ExperimentPatch(
            patch_id=self._next_patch, kind="type2", trajectory=trajectory,
            traffic=traffic, observed_day=observed_day,
        )
        self._next_patch += 1
        self._participants[participant_id].pending.append(patch)
        return patch.patch_id

    def pending_count(self, participant_id: int) -> int:
        return len(self._participants[participant_id].pending)

    # -- execution -----------------------------------------------------------

    def _drain_units(self, participant_ids: list[int]) -> list[ServerPatchUnit]:
        """Dequeue every pending patch as work units, in FIFO order."""
        units: list[ServerPatchUnit] = []
        for participant_id in participant_ids:
            participant = self._participants[participant_id]
            while participant.pending:
                patch = participant.pending.popleft()
                units.append(
                    ServerPatchUnit(
                        unit_id=len(units),
                        seed=self.seed,
                        participant_id=participant.participant_id,
                        carrier=participant.carrier,
                        patch=patch,
                        spec=self.scenario.spec,
                        scenario=self.scenario,
                    )
                )
        return units

    def _execute(self, units: list[ServerPatchUnit], backend: ExecutionBackend | None) -> int:
        runner = backend or self.backend
        for log in runner.run(units):
            self.archive.append(log)
        return len(units)

    def run_pending(
        self, participant_id: int, backend: ExecutionBackend | None = None
    ) -> int:
        """Execute the participant's queued patches; returns run count."""
        return self._execute(self._drain_units([participant_id]), backend)

    def run_all_pending(self, backend: ExecutionBackend | None = None) -> int:
        """Execute every participant's queue (one batch over the backend)."""
        return self._execute(self._drain_units(sorted(self._participants)), backend)

    # -- harvesting ------------------------------------------------------------

    def iter_config_samples(self) -> Iterator[ConfigSample]:
        """Stream configuration samples, crawling the archive log-by-log."""
        for log in self.archive:
            yield from crawl_config_samples(
                log.log_bytes,
                observed_day=log.patch.observed_day,
                round_index=log.patch.patch_id,
            )

    def iter_handoff_instances(self) -> Iterator[HandoffInstance]:
        """Stream handoff instances from Type-II runs, log-by-log."""
        for log in self.archive:
            if log.patch.kind != "type2":
                continue
            yield from extract_handoff_instances(
                log.log_bytes,
                log.carrier,
                throughput_series=log.throughput_series,
            )

    def harvest_config_samples(self) -> list[ConfigSample]:
        """All configuration samples crawled from the archive."""
        return list(self.iter_config_samples())

    def harvest_handoff_instances(self) -> list[HandoffInstance]:
        """All handoff instances extracted from Type-II runs."""
        return list(self.iter_handoff_instances())
