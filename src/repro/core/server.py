"""MMLab's server-side orchestration (paper Fig. 4).

The measurement infrastructure has two halves: participating devices
running the MMLab app, and MMLab servers that (1) push experimentation
"patches" to devices on the fly, (2) collect the resulting logs, and
(3) feed configuration characterization and performance assessment.

``MMLabServer`` reproduces that control loop over simulated devices:

* **register** a participant (a carrier subscription in some scenario);
* **push** an :class:`ExperimentPatch` — a Type-I collection walk or a
  Type-II guided drive ("we run experiments around certain cells or
  routes with configurations of interest");
* **execute** pending patches; every run's diag log lands in the
  server's archive;
* **harvest** the archive into configuration samples and handoff
  instances, ready for the analysis toolkit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.collector import MMLabCollector
from repro.core.crawler import crawl_config_samples
from repro.core.handoffs import extract_handoff_instances
from repro.core.scanner import proactive_scan
from repro.datasets.records import ConfigSample, HandoffInstance
from repro.simulate.mobility import Trajectory
from repro.simulate.runner import DriveSimulator
from repro.simulate.scenarios import DriveScenario
from repro.simulate.traffic import TrafficModel
from repro.ue.device import UserEquipment


@dataclass(frozen=True)
class ExperimentPatch:
    """One experiment spec the server pushes to a participant.

    Attributes:
        patch_id: Server-assigned identifier.
        kind: "type1" (configuration collection at given stops) or
            "type2" (guided drive with a data service).
        stops: Scan locations for Type-I patches.
        trajectory: Drive path for Type-II patches.
        traffic: Data service for Type-II patches.
        observed_day: Logical collection day recorded on the samples.
    """

    patch_id: int
    kind: str
    stops: tuple = ()
    trajectory: Trajectory | None = None
    traffic: TrafficModel | None = None
    observed_day: float = 0.0


@dataclass
class Participant:
    """One registered device."""

    participant_id: int
    carrier: str
    pending: list[ExperimentPatch] = field(default_factory=list)


@dataclass
class CollectedLog:
    """One harvested run: who ran what, and the resulting log."""

    participant_id: int
    carrier: str
    patch: ExperimentPatch
    log_bytes: bytes
    throughput_series: list = field(default_factory=list)


class MMLabServer:
    """Coordinates participants, patches and log harvesting."""

    def __init__(self, scenario: DriveScenario, seed: int = 0):
        self.scenario = scenario
        self.seed = seed
        self._participants: dict[int, Participant] = {}
        self._next_participant = 0
        self._next_patch = 0
        self.archive: list[CollectedLog] = []

    # -- enrolment and scheduling ----------------------------------------

    def register(self, carrier: str) -> int:
        """Enrol a new participant; returns its id."""
        participant_id = self._next_participant
        self._next_participant += 1
        self._participants[participant_id] = Participant(
            participant_id=participant_id, carrier=carrier
        )
        return participant_id

    def push_type1(self, participant_id: int, stops, observed_day: float = 0.0) -> int:
        """Queue a Type-I collection patch (scan at each stop)."""
        patch = ExperimentPatch(
            patch_id=self._next_patch, kind="type1", stops=tuple(stops),
            observed_day=observed_day,
        )
        self._next_patch += 1
        self._participants[participant_id].pending.append(patch)
        return patch.patch_id

    def push_type2(
        self, participant_id: int, trajectory: Trajectory, traffic: TrafficModel,
        observed_day: float = 0.0,
    ) -> int:
        """Queue a Type-II guided drive."""
        patch = ExperimentPatch(
            patch_id=self._next_patch, kind="type2", trajectory=trajectory,
            traffic=traffic, observed_day=observed_day,
        )
        self._next_patch += 1
        self._participants[participant_id].pending.append(patch)
        return patch.patch_id

    def pending_count(self, participant_id: int) -> int:
        return len(self._participants[participant_id].pending)

    # -- execution -----------------------------------------------------------

    def run_pending(self, participant_id: int) -> int:
        """Execute the participant's queued patches; returns run count."""
        participant = self._participants[participant_id]
        executed = 0
        while participant.pending:
            patch = participant.pending.pop(0)
            self.archive.append(self._run_patch(participant, patch))
            executed += 1
        return executed

    def run_all_pending(self) -> int:
        """Execute every participant's queue."""
        return sum(
            self.run_pending(pid) for pid in sorted(self._participants)
        )

    def _run_patch(self, participant: Participant, patch: ExperimentPatch) -> CollectedLog:
        if patch.kind == "type1":
            ue = UserEquipment(
                self.scenario.env, self.scenario.server, participant.carrier,
                seed=self.seed * 10_000 + participant.participant_id * 100 + patch.patch_id,
                sib_obs_rng=np.random.default_rng(
                    (self.seed, participant.participant_id, patch.patch_id)
                ),
            )
            ue.days_since_epoch = patch.observed_day
            collector = MMLabCollector(mode="type1")
            ue.add_listener(collector)
            t_ms = 0
            for stop in patch.stops:
                proactive_scan(ue, stop, start_ms=t_ms)
                t_ms += 60_000
            return CollectedLog(
                participant_id=participant.participant_id,
                carrier=participant.carrier,
                patch=patch,
                log_bytes=collector.log_bytes(),
            )
        if patch.kind == "type2":
            sim = DriveSimulator(
                self.scenario.env, self.scenario.server, participant.carrier,
                seed=self.seed * 101 + participant.participant_id,
            )
            result = sim.run(patch.trajectory, patch.traffic, run_index=patch.patch_id)
            return CollectedLog(
                participant_id=participant.participant_id,
                carrier=participant.carrier,
                patch=patch,
                log_bytes=result.diag_log,
                throughput_series=result.throughput_series(bin_ms=1000),
            )
        raise ValueError(f"unknown patch kind {patch.kind!r}")

    # -- harvesting ------------------------------------------------------------

    def harvest_config_samples(self) -> list[ConfigSample]:
        """All configuration samples crawled from the archive."""
        samples: list[ConfigSample] = []
        for log in self.archive:
            samples.extend(
                crawl_config_samples(
                    log.log_bytes,
                    observed_day=log.patch.observed_day,
                    round_index=log.patch.patch_id,
                )
            )
        return samples

    def harvest_handoff_instances(self) -> list[HandoffInstance]:
        """All handoff instances extracted from Type-II runs."""
        instances: list[HandoffInstance] = []
        for log in self.archive:
            if log.patch.kind != "type2":
                continue
            instances.extend(
                extract_handoff_instances(
                    log.log_bytes,
                    log.carrier,
                    throughput_series=log.throughput_series,
                )
            )
        return instances
