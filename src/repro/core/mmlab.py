"""The MMLab facade.

Ties the pieces of the paper's Fig. 4 together for library users: attach
a collector to a device, run drives, then crawl configurations and
extract handoff instances from the collected logs.

    mmlab = MMLab()
    collector = mmlab.attach(ue, mode="type2")
    ... simulate ...
    snapshots = mmlab.crawl(collector.log_bytes())
    instances = mmlab.extract_handoffs(collector.log_bytes(), "A")
"""

from __future__ import annotations

from repro.core.collector import MMLabCollector
from repro.core.crawler import CellConfigSnapshot, ConfigCrawler, crawl_config_samples
from repro.core.handoffs import extract_handoff_instances
from repro.datasets.records import ConfigSample, HandoffInstance


class MMLab:
    """Facade over collection, crawling and instance extraction."""

    def attach(self, ue, mode: str = "type2") -> MMLabCollector:
        """Attach a fresh collector to a UE; returns the collector."""
        collector = MMLabCollector(mode=mode)
        ue.add_listener(collector)
        return collector

    def crawl(self, log_bytes: bytes) -> list[CellConfigSnapshot]:
        """Parse a diag log into per-cell configuration snapshots."""
        return ConfigCrawler.crawl(log_bytes)

    def crawl_samples(
        self, log_bytes: bytes, observed_day: float = 0.0, round_index: int = 0
    ) -> list[ConfigSample]:
        """Parse a diag log into flat configuration samples (D2 units)."""
        return crawl_config_samples(
            log_bytes, observed_day=observed_day, round_index=round_index
        )

    def extract_handoffs(
        self,
        log_bytes: bytes,
        carrier: str,
        throughput_series: list[tuple[int, float]] | None = None,
        lte_only: bool = True,
    ) -> list[HandoffInstance]:
        """Extract handoff instances (D1 units) from a Type-II log."""
        return extract_handoff_instances(
            log_bytes,
            carrier,
            throughput_series=throughput_series,
            lte_only=lte_only,
        )
