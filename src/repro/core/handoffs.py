"""Handoff-instance extraction from device traces (dataset D1's unit).

The extraction mirrors how the paper identifies instances in
MobileInsight logs:

* an **active-state handoff** is a MeasurementReport followed by an RRC
  reconfiguration carrying mobilityControlInfo; the report's event is
  the *decisive event* ("all the handoffs happen immediately (within
  80-230 ms) once the last measurement report is sent"), and the gap
  between the two messages is the report-to-handover latency;
* an **idle-state handoff** is a serving-cell change (new SIB1) with no
  handover command in between;
* serving radio quality before/after comes from the PHY measurement
  records around the switch;
* the decisive event's *configuration* (offset, thresholds, hysteresis)
  comes from the last measConfig received on the source cell — i.e.
  entirely from crawled messages.

Optionally, a throughput series (the tcpdump side of the paper's
methodology) is aligned with each active instance to compute the
minimum 1-second throughput before the handoff (Fig. 7/8's metric).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.events import EventType
from repro.config.lte import LteCellConfig, MeasurementConfig
from repro.datasets.records import HandoffInstance
from repro.rrc.diag import DiagReader
from repro.rrc.messages import (
    LegacySystemInfo,
    MeasurementReport,
    PhyServingMeas,
    RrcConnectionReconfiguration,
    Sib1,
)
from repro.ue.device import lte_config_from_sibs
from repro.rrc.messages import Sib3, Sib4, Sib5, Sib6, Sib7, Sib8

#: How far before a handoff the minimum-throughput window extends.
THROUGHPUT_WINDOW_MS = 10_000

#: A mobility command this long after a report is considered decisive
#: (the paper observes 80-230 ms; we allow slack for logging order).
REPORT_HANDOVER_WINDOW_MS = 1_000


@dataclass
class _ServingState:
    carrier: str = ""
    gci: int = -1
    channel: int = -1
    rat: str = "LTE"
    sibs: list = None
    lte_config: LteCellConfig | None = None
    meas_config: MeasurementConfig | None = None
    last_phy: PhyServingMeas | None = None


def _decisive_config(meas_config: MeasurementConfig | None, event: str, metric: str) -> dict:
    """The decisive event's main parameters, from the crawled measConfig."""
    if meas_config is None:
        return {}
    if event == EventType.PERIODIC.value:
        if meas_config.periodic is None:
            return {}
        return {"report_interval_ms": meas_config.periodic.report_interval_ms}
    for config in meas_config.events:
        if config.event.value == event and config.metric == metric:
            out: dict = {
                "hysteresis": config.hysteresis,
                "time_to_trigger_ms": config.time_to_trigger_ms,
            }
            if config.event is EventType.A3:
                out["offset"] = config.offset
            if config.threshold1 is not None:
                out["threshold1"] = config.threshold1
            if config.threshold2 is not None:
                out["threshold2"] = config.threshold2
            return out
    return {}


def _priority_class(
    old_config: LteCellConfig | None, old_channel: int, new_rat: str, new_channel: int
) -> str | None:
    """Idle handoff priority class, derived from the old cell's SIBs."""
    if old_config is None:
        return None
    from repro.cellnet.rat import RAT

    serving_priority = old_config.serving.cell_reselection_priority
    target_priority = old_config.priority_of_layer(RAT(new_rat), new_channel, old_channel)
    if target_priority is None:
        return None
    if target_priority > serving_priority:
        return "higher"
    if target_priority == serving_priority:
        return "equal"
    return "lower"


def _min_throughput_before(
    throughput_series: list[tuple[int, float]] | None,
    t_ms: int,
    window_start_ms: int = 0,
) -> float | None:
    """Minimum binned throughput in the window before ``t_ms``.

    ``window_start_ms`` clips the window at the previous handoff (plus
    settling time), so one instance's pre-handoff collapse is not
    polluted by the interruption of the handoff before it.
    """
    if not throughput_series:
        return None
    start_bound = max(t_ms - THROUGHPUT_WINDOW_MS, window_start_ms)
    window = [
        bps for start, bps in throughput_series if start_bound <= start < t_ms
    ]
    if not window:
        return None
    return min(window)


def extract_handoff_instances(
    log_bytes: bytes,
    carrier: str,
    throughput_series: list[tuple[int, float]] | None = None,
    lte_only: bool = True,
) -> list[HandoffInstance]:
    """Extract all handoff instances from one diag log.

    Args:
        log_bytes: The binary diag log (Type-II collection).
        carrier: Carrier acronym recorded on the instances.
        throughput_series: Optional (bin start ms, bps) series from the
            traffic log, for the minimum-throughput-before metric.
        lte_only: Keep only 4G -> 4G instances, as the paper's D1 does.
    """
    instances: list[HandoffInstance] = []
    state = _ServingState(sibs=[])
    pending_report: tuple[int, MeasurementReport] | None = None
    pending_command: tuple[int, RrcConnectionReconfiguration, int] | None = None
    first_phy_wanted: list = []  # instances awaiting the new cell's PHY record
    last_handoff_ms = 0  # clips the throughput window (settling time below)

    def close_episode_config() -> None:
        if state.sibs and any(isinstance(s, Sib3) for s in state.sibs):
            state.lte_config = lte_config_from_sibs(state.sibs)

    for record in DiagReader(log_bytes):
        t = record.timestamp_ms
        message = record.message
        if isinstance(message, PhyServingMeas):
            if message.gci == state.gci and message.carrier == state.carrier:
                state.last_phy = message
                for instance_args in list(first_phy_wanted):
                    if instance_args["target_gci"] == message.gci:
                        instance_args["rsrp_after"] = message.rsrp_dbm
                        instance_args["rsrq_after"] = message.rsrq_db
                        instances.append(HandoffInstance(**{
                            k: v for k, v in instance_args.items() if k != "target_rat"
                        }))
                        first_phy_wanted.remove(instance_args)
            continue
        if isinstance(message, MeasurementReport):
            pending_report = (t, message)
            continue
        if isinstance(message, RrcConnectionReconfiguration):
            if message.meas_config is not None:
                state.meas_config = message.meas_config
            if message.mobility is not None:
                pending_command = (t, message, state.gci)
            continue
        if isinstance(message, (Sib1, LegacySystemInfo)):
            new_carrier = message.carrier
            new_gci = message.gci
            new_channel = message.channel
            new_rat = message.rat
            if state.gci >= 0 and new_gci != state.gci:
                close_episode_config()
                old_phy = state.last_phy
                base = {
                    "carrier": carrier,
                    "time_ms": t,
                    "source_gci": state.gci,
                    "target_gci": new_gci,
                    "source_channel": state.channel,
                    "target_channel": new_channel,
                    "intra_freq": (state.rat == new_rat and state.channel == new_channel),
                    "rsrp_before": old_phy.rsrp_dbm if old_phy else None,
                    "rsrq_before": old_phy.rsrq_db if old_phy else None,
                    "rsrp_after": None,
                    "rsrq_after": None,
                    "target_rat": new_rat,
                }
                is_active = (
                    pending_command is not None
                    and pending_command[1].mobility.target_gci == new_gci
                )
                keep = not lte_only or (state.rat == "LTE" and new_rat == "LTE")
                if is_active:
                    command_t, command, source_gci = pending_command
                    decisive_event = None
                    decisive_metric = None
                    latency = None
                    if (
                        pending_report is not None
                        and command_t - pending_report[0] <= REPORT_HANDOVER_WINDOW_MS
                    ):
                        decisive_event = pending_report[1].event
                        decisive_metric = pending_report[1].metric
                        latency = command_t - pending_report[0]
                        if base["rsrp_before"] is None:
                            base["rsrp_before"] = pending_report[1].serving.rsrp_dbm
                            base["rsrq_before"] = pending_report[1].serving.rsrq_db
                    if keep:
                        args = dict(
                            base,
                            kind="active",
                            decisive_event=decisive_event,
                            decisive_metric=decisive_metric,
                            decisive_config=_decisive_config(
                                state.meas_config, decisive_event or "", decisive_metric or "rsrp"
                            ),
                            min_throughput_before_bps=_min_throughput_before(
                                throughput_series, t,
                                window_start_ms=last_handoff_ms + 2_000,
                            ),
                            report_to_handover_ms=latency,
                        )
                        first_phy_wanted.append(args)
                else:
                    if keep:
                        args = dict(
                            base,
                            kind="idle",
                            priority_class=_priority_class(
                                state.lte_config, state.channel, new_rat, new_channel
                            ),
                        )
                        first_phy_wanted.append(args)
                pending_command = None
                pending_report = None
                last_handoff_ms = t
            if new_gci != state.gci:
                state = _ServingState(
                    carrier=new_carrier,
                    gci=new_gci,
                    channel=new_channel,
                    rat=new_rat,
                    sibs=[],
                )
            if isinstance(message, Sib1):
                state.sibs.append(message)
            continue
        if isinstance(message, (Sib3, Sib4, Sib5, Sib6, Sib7, Sib8)):
            state.sibs.append(message)
            continue
    # Instances whose post-handoff PHY record never arrived are kept
    # with rsrp_after unset (trace ended right after the switch).
    for args in first_phy_wanted:
        instances.append(HandoffInstance(**{k: v for k, v in args.items() if k != "target_rat"}))
    instances.sort(key=lambda i: i.time_ms)
    return instances
