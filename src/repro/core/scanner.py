"""Proactive cell scanning (paper Section 3.1).

"To make our data collection more efficient, we enable proactive cell
switching for the serving cell.  MMLab changes its preferred network
type (e.g., LTE only, UMTS/CDMA only, and GSM) and even its frequency
band to automate the switching of the serving cell.  MMLab is thus able
to collect handoff configurations from multiple cells at a given
location."

``proactive_scan`` drives a UE through exactly that: for each RAT the
carrier operates, and for each audible cell of that RAT (strongest
first), the device camps and reads the broadcast — every configuration
reaches the attached listeners as parsed-from-messages data.  The
paper notes this intervenes with the default handoff procedure, so it
is a Type-I-only operation.
"""

from __future__ import annotations

from repro.cellnet.cell import Cell
from repro.cellnet.rat import RAT
from repro.ue.device import UserEquipment

#: Preferred-network-type cycle MMLab walks through.
SCAN_RAT_ORDER = (RAT.LTE, RAT.UMTS, RAT.EVDO, RAT.GSM, RAT.CDMA1X)


def proactive_scan(
    ue: UserEquipment,
    location,
    start_ms: int = 0,
    max_cells_per_rat: int = 8,
    detection_floor_dbm: float = -126.0,
    camp_duration_ms: int = 400,
) -> list[Cell]:
    """Camp on every audible cell near ``location``, strongest first.

    Returns the cells visited, in visit order.  Each camp reads the
    cell's SIBs through the normal path, so an attached collector logs
    them; the UE is left camped on the strongest LTE cell, restoring
    the default behaviour the scan suspended.
    """
    snap = ue.meas.snapshot(location, ue.carrier)
    rsrp, _, _ = snap.metric_arrays()
    by_rat: dict[RAT, list[tuple[float, Cell]]] = {}
    for i, cell in enumerate(snap.cells):
        if rsrp[i] < detection_floor_dbm:
            continue
        by_rat.setdefault(cell.rat, []).append((float(rsrp[i]), cell))
    visited: list[Cell] = []
    now_ms = start_ms
    for rat in SCAN_RAT_ORDER:
        candidates = sorted(
            by_rat.get(rat, []), key=lambda pair: (-pair[0], pair[1].cell_id)
        )
        for _, cell in candidates[:max_cells_per_rat]:
            ue.camp_on(cell, now_ms)
            now_ms += camp_duration_ms
            visited.append(cell)
    # Restore default camping: strongest LTE cell.
    if visited:
        ue.initial_camp(location, now_ms)
    return visited
