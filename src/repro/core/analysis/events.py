"""Decisive reporting-event analysis (paper Fig. 5, Section 4.1).

From the active handoff instances of D1, compute per carrier: which
events are decisive and with what shares, and the observed range of
each decisive event's main parameters (Delta_A3, H_A3, the A5 threshold
pairs per metric).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.datasets.store import HandoffInstanceStore

#: Display order of the paper's Fig. 5 x-axis.
EVENT_ORDER = ("A1", "A2", "A3", "A4", "A5", "P")


@dataclass
class EventMixReport:
    """Decisive-event mix and parameter ranges for one carrier."""

    carrier: str
    n_instances: int
    #: event -> share of instances (sums to 1 over observed events).
    shares: dict = field(default_factory=dict)
    #: Observed [min, max] of Delta_A3 and H_A3.
    a3_offset_range: tuple[float, float] | None = None
    a3_hysteresis_range: tuple[float, float] | None = None
    #: Per metric ("rsrp"/"rsrq"): ([min,max] serving, [min,max] candidate).
    a5_threshold_ranges: dict = field(default_factory=dict)

    def share(self, event: str) -> float:
        """Share of one event (0.0 when never decisive)."""
        return self.shares.get(event, 0.0)


def event_mix(store: HandoffInstanceStore, carrier: str) -> EventMixReport:
    """Build the Fig. 5 report for one carrier."""
    instances = [
        i
        for i in store.active().for_carrier(carrier)
        if i.decisive_event is not None
    ]
    counts = Counter(i.decisive_event for i in instances)
    total = sum(counts.values())
    report = EventMixReport(carrier=carrier, n_instances=total)
    if total == 0:
        return report
    report.shares = {event: counts.get(event, 0) / total for event in EVENT_ORDER}
    a3_offsets = [
        i.decisive_config["offset"]
        for i in instances
        if i.decisive_event == "A3" and "offset" in i.decisive_config
    ]
    a3_hyst = [
        i.decisive_config["hysteresis"]
        for i in instances
        if i.decisive_event == "A3" and "hysteresis" in i.decisive_config
    ]
    if a3_offsets:
        report.a3_offset_range = (min(a3_offsets), max(a3_offsets))
    if a3_hyst:
        report.a3_hysteresis_range = (min(a3_hyst), max(a3_hyst))
    a5: dict = defaultdict(lambda: ([], []))
    for i in instances:
        if i.decisive_event != "A5":
            continue
        t1 = i.decisive_config.get("threshold1")
        t2 = i.decisive_config.get("threshold2")
        if t1 is None or t2 is None:
            continue
        serving_list, candidate_list = a5[i.decisive_metric or "rsrp"]
        serving_list.append(t1)
        candidate_list.append(t2)
    for metric, (serving_list, candidate_list) in a5.items():
        report.a5_threshold_ranges[metric] = (
            (min(serving_list), max(serving_list)),
            (min(candidate_list), max(candidate_list)),
        )
    return report


def dominant_events(report: EventMixReport, top: int = 2) -> list[str]:
    """The carrier's most common decisive events, most frequent first."""
    ranked = sorted(report.shares.items(), key=lambda kv: -kv[1])
    return [event for event, share in ranked[:top] if share > 0]
