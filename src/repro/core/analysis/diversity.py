"""Configuration diversity metrics (paper Eq. 4 and Eq. 5).

Three complementary measures quantify a parameter's diversity:

* **richness** — the naive count of unique values;
* **Simpson index of diversity** — ``D = 1 - sum(n_i^2) / N^2``,
  sensitive to the relative abundance of each value (0 = single-valued,
  approaching 1 = many equally common values);
* **coefficient of variation** — ``Cv = std / |mean|``, quantifying
  dispersion over the value *range* rather than the value histogram.

The dependence measure (Eq. 5) compares a parameter's diversity with
the expectation of its conditional diversity given a factor::

    zeta_{M, theta | F} = E[ |M(theta | F = f) - M(theta)| ]

A large zeta for F = frequency says the parameter is configured
per-channel (Fig. 19); for F = location it quantifies spatial
dependence (Fig. 21).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.datasets.records import ConfigSample
from repro.datasets.store import ConfigSampleStore


def _as_counts(values: Iterable[object]) -> Counter:
    return Counter(values)


def simpson_index(values: Iterable[object]) -> float:
    """Simpson index of diversity, ``1 - sum(n_i^2)/N^2``.

    Returns 0.0 for empty input (no diversity observable).
    """
    counts = _as_counts(values)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return 1.0 - sum(n * n for n in counts.values()) / (total * total)


def coefficient_of_variation(values: Iterable[object]) -> float:
    """Coefficient of variation ``std / |mean|`` over numeric values.

    Non-numeric values (lists, strings) are ignored; if the mean is
    zero (or no numeric values exist) the Cv is defined as 0.0, which
    matches how the paper plots parameters with degenerate ranges.
    """
    numeric = [
        float(v) for v in values
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    ]
    if len(numeric) < 2:
        return 0.0
    mean = sum(numeric) / len(numeric)
    if mean == 0.0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in numeric) / len(numeric)
    return math.sqrt(variance) / abs(mean)


def richness(values: Iterable[object]) -> int:
    """Number of distinct values."""
    return len(set(values))


@dataclass(frozen=True)
class DiversityMeasures:
    """The triple of diversity measures for one parameter."""

    parameter: str
    simpson: float
    cv: float
    richness: int
    n_samples: int


def diversity_of_values(parameter: str, values: list[object]) -> DiversityMeasures:
    """All three measures over a value list."""
    return DiversityMeasures(
        parameter=parameter,
        simpson=simpson_index(values),
        cv=coefficient_of_variation(values),
        richness=richness(values),
        n_samples=len(values),
    )


def parameter_diversity(
    store: ConfigSampleStore, parameter: str, deduplicate_cells: bool = True
) -> DiversityMeasures:
    """Diversity measures of one parameter over a sample store.

    With ``deduplicate_cells`` each (cell, value) pair counts once,
    matching the paper's unique-sample convention (Section 5.1).
    """
    values = store.unique_values(parameter, deduplicate_cells=deduplicate_cells)
    return diversity_of_values(parameter, values)


def all_parameter_diversity(
    store: ConfigSampleStore, deduplicate_cells: bool = True
) -> list[DiversityMeasures]:
    """Diversity of every parameter present, sorted by Simpson index.

    This ordering is the x-axis of the paper's Fig. 16.
    """
    measures = [
        parameter_diversity(store, p, deduplicate_cells=deduplicate_cells)
        for p in store.parameters()
    ]
    measures.sort(key=lambda m: (m.simpson, m.parameter))
    return measures


def value_distribution(
    store: ConfigSampleStore, parameter: str, deduplicate_cells: bool = True
) -> list[tuple[object, float]]:
    """(value, share) pairs sorted by value — the Fig. 14/15 bars."""
    values = store.unique_values(parameter, deduplicate_cells=deduplicate_cells)
    counts = Counter(values)
    total = sum(counts.values())
    if total == 0:
        return []
    items = sorted(counts.items(), key=lambda kv: (str(type(kv[0])), str(kv[0])))

    def sort_key(kv):
        value = kv[0]
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return (0, float(value), "")
        return (1, 0.0, str(value))

    items.sort(key=sort_key)
    return [(value, count / total) for value, count in items]


def dependence(
    store: ConfigSampleStore,
    parameter: str,
    factor: Callable[[ConfigSample], object],
    measure: str = "simpson",
    deduplicate_cells: bool = True,
) -> float:
    """The paper's Eq. 5 dependence measure zeta_{M, theta | F}.

    Args:
        store: Sample population.
        parameter: Parameter under study.
        factor: Maps a sample to its factor value (e.g. channel, city).
        measure: "simpson" or "cv".
        deduplicate_cells: Unique-sample convention.
    """
    metric = simpson_index if measure == "simpson" else coefficient_of_variation
    overall = metric(store.unique_values(parameter, deduplicate_cells=deduplicate_cells))
    groups = store.for_parameter(parameter).group_by(factor)
    if not groups:
        return 0.0
    deviations = []
    for sub in groups.values():
        conditional = metric(
            sub.unique_values(parameter, deduplicate_cells=deduplicate_cells)
        )
        deviations.append(abs(conditional - overall))
    return sum(deviations) / len(deviations)
