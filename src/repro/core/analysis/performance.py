"""Radio-quality and data-performance impacts of handoffs (Figs. 6-10).

All inputs are D1 handoff instances; the functions return the exact
series the paper plots:

* :func:`rsrp_change_by_event` — Fig. 6a/6b: before/after RSRP points
  and the delta-RSRP CDF per decisive event.
* :func:`a5_signed_split` — Fig. 6c: delta-RSRP for A5 split by the
  sign of the threshold relation (permissive vs strict pairs).
* :func:`throughput_by_config` — Fig. 8: minimum pre-handoff 1 s
  throughput grouped by the decisive configuration.
* :func:`radio_impact_pairs` — Fig. 9: the three pairwise relations
  (Delta_A3 vs delta-RSRP; Theta_A5,S vs r_old; Theta_A5,C vs r_new).
* :func:`idle_rsrp_change` — Fig. 10: delta-RSRP per idle handoff
  class (intra vs non-intra x priority class).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.analysis.common import BoxStats, cdf_points, fraction_above
from repro.datasets.records import HandoffInstance
from repro.datasets.store import HandoffInstanceStore


@dataclass
class RsrpChangeReport:
    """Fig. 6a/6b data for one carrier."""

    carrier: str
    #: event -> [(rsrp_before, rsrp_after)] scatter points.
    scatter: dict = field(default_factory=dict)
    #: event -> delta-RSRP CDF points.
    delta_cdf: dict = field(default_factory=dict)
    #: event -> fraction of handoffs with delta > 0 (improved).
    improved: dict = field(default_factory=dict)
    #: event -> fraction improved allowing 3 dB measurement dynamics.
    improved_with_margin: dict = field(default_factory=dict)


def _deltas(instances: list[HandoffInstance]) -> list[float]:
    return [i.delta_rsrp for i in instances if i.delta_rsrp is not None]


def rsrp_change_by_event(
    store: HandoffInstanceStore, carrier: str, events: tuple[str, ...] = ("A3", "A5", "P")
) -> RsrpChangeReport:
    """Fig. 6a/6b: RSRP before/after active handoffs per decisive event."""
    report = RsrpChangeReport(carrier=carrier)
    active = store.active().for_carrier(carrier)
    for event in events:
        instances = list(active.for_event(event))
        pairs = [
            (i.rsrp_before, i.rsrp_after)
            for i in instances
            if i.rsrp_before is not None and i.rsrp_after is not None
        ]
        deltas = _deltas(instances)
        report.scatter[event] = pairs
        report.delta_cdf[event] = cdf_points(deltas)
        report.improved[event] = fraction_above(deltas, 0.0)
        report.improved_with_margin[event] = fraction_above(deltas, -3.0)
    return report


def a5_signed_split(
    store: HandoffInstanceStore, carrier: str
) -> dict[str, list[float]]:
    """Fig. 6c: A5 delta-RSRP split by threshold-pair sign.

    "Positive" pairs require the candidate threshold to sit above the
    serving one (Theta_A5,C > Theta_A5,S would guarantee improvement);
    the paper shows the weaker-signal handoffs come from the negative
    pairs.  The serving threshold -44 dBm ("no requirement") counts as
    negative, as the paper's AT&T RSRP case illustrates.
    """
    out: dict[str, list[float]] = {"A5": [], "A5(+)": [], "A5(-)": []}
    for i in store.active().for_carrier(carrier).for_event("A5"):
        if i.delta_rsrp is None:
            continue
        t1 = i.decisive_config.get("threshold1")
        t2 = i.decisive_config.get("threshold2")
        out["A5"].append(i.delta_rsrp)
        if t1 is None or t2 is None:
            continue
        if t2 > t1:
            out["A5(+)"].append(i.delta_rsrp)
        else:
            out["A5(-)"].append(i.delta_rsrp)
    return out


@dataclass(frozen=True)
class ConfigGroup:
    """One bar of Fig. 8: a decisive configuration and its label."""

    label: str
    event: str
    metric: str | None = None
    #: Which decisive_config key defines the group and its value.
    key: str | None = None
    value: float | None = None


def throughput_by_config(
    store: HandoffInstanceStore, carrier: str, groups: list[ConfigGroup]
) -> dict[str, BoxStats]:
    """Fig. 8: min pre-handoff throughput per decisive configuration."""
    out: dict[str, BoxStats] = {}
    active = store.active().for_carrier(carrier)
    for group in groups:
        values = []
        for i in active.for_event(group.event):
            if i.min_throughput_before_bps is None:
                continue
            if group.metric is not None and i.decisive_metric != group.metric:
                continue
            if group.key is not None:
                observed = i.decisive_config.get(group.key)
                if observed is None or abs(observed - group.value) > 1e-9:
                    continue
            values.append(i.min_throughput_before_bps)
        out[group.label] = BoxStats.from_values(values)
    return out


def dominant_config_groups(
    store: HandoffInstanceStore, carrier: str, top: int = 2
) -> list[ConfigGroup]:
    """The most common Fig. 8 grouping keys observed for a carrier.

    A3 groups split by offset; A5 groups split by serving threshold
    (per metric), mirroring the paper's choice of bars.
    """
    active = store.active().for_carrier(carrier)
    a3_counts: dict[float, int] = defaultdict(int)
    a5_counts: dict[tuple[str, float], int] = defaultdict(int)
    for i in active:
        if i.decisive_event == "A3" and "offset" in i.decisive_config:
            a3_counts[i.decisive_config["offset"]] += 1
        elif i.decisive_event == "A5" and "threshold1" in i.decisive_config:
            a5_counts[(i.decisive_metric or "rsrp", i.decisive_config["threshold1"])] += 1
    groups: list[ConfigGroup] = []
    for offset, _ in sorted(a3_counts.items(), key=lambda kv: -kv[1])[:top]:
        groups.append(
            ConfigGroup(
                label=f"A3({offset:g}dB)", event="A3", key="offset", value=offset
            )
        )
    for (metric, threshold), _ in sorted(a5_counts.items(), key=lambda kv: -kv[1])[:top]:
        groups.append(
            ConfigGroup(
                label=f"A5({metric},{threshold:g})",
                event="A5",
                metric=metric,
                key="threshold1",
                value=threshold,
            )
        )
    groups.append(ConfigGroup(label="P", event="P"))
    return groups


def radio_impact_pairs(
    store: HandoffInstanceStore, carrier: str
) -> dict[str, dict[float, BoxStats]]:
    """Fig. 9: the three pairwise configuration-vs-radio relations.

    Returns, per relation name, a mapping from the configured value to
    box stats of the radio quantity:

    * "a3_offset_vs_delta": Delta_A3 -> delta-RSRP boxes;
    * "a5_serving_vs_old": Theta_A5,S -> r_old boxes;
    * "a5_candidate_vs_new": Theta_A5,C -> r_new boxes.
    """
    active = store.active().for_carrier(carrier)
    a3: dict[float, list[float]] = defaultdict(list)
    a5_old: dict[float, list[float]] = defaultdict(list)
    a5_new: dict[float, list[float]] = defaultdict(list)
    for i in active:
        if i.decisive_event == "A3" and i.delta_rsrp is not None:
            offset = i.decisive_config.get("offset")
            if offset is not None:
                a3[offset].append(i.delta_rsrp)
        elif i.decisive_event == "A5":
            t1 = i.decisive_config.get("threshold1")
            t2 = i.decisive_config.get("threshold2")
            if t1 is not None and i.rsrp_before is not None:
                a5_old[t1].append(i.rsrp_before)
            if t2 is not None and i.rsrp_after is not None:
                a5_new[t2].append(i.rsrp_after)
    return {
        "a3_offset_vs_delta": {k: BoxStats.from_values(v) for k, v in sorted(a3.items())},
        "a5_serving_vs_old": {k: BoxStats.from_values(v) for k, v in sorted(a5_old.items())},
        "a5_candidate_vs_new": {k: BoxStats.from_values(v) for k, v in sorted(a5_new.items())},
    }


#: Fig. 10's series: intra-freq plus the non-intra priority classes.
IDLE_CLASSES = ("intra", "non-intra(L)", "non-intra(E)", "non-intra(H)")


def _idle_class(instance: HandoffInstance) -> str | None:
    if instance.intra_freq:
        return "intra"
    if instance.priority_class == "lower":
        return "non-intra(L)"
    if instance.priority_class == "equal":
        return "non-intra(E)"
    if instance.priority_class == "higher":
        return "non-intra(H)"
    return None


def idle_rsrp_change(
    store: HandoffInstanceStore, carrier: str | None = None
) -> dict[str, dict]:
    """Fig. 10: RSRP change of idle handoffs per class.

    Returns per class: scatter points, delta CDF and improved fraction.
    The paper aggregates all four US carriers ("results are consistent
    across different carriers"), so carrier=None pools everything.
    """
    idle = store.idle()
    if carrier is not None:
        idle = idle.for_carrier(carrier)
    by_class: dict[str, list[HandoffInstance]] = defaultdict(list)
    for instance in idle:
        cls = _idle_class(instance)
        if cls is not None:
            by_class[cls].append(instance)
    out: dict[str, dict] = {}
    for cls in IDLE_CLASSES:
        instances = by_class.get(cls, [])
        deltas = _deltas(instances)
        out[cls] = {
            "scatter": [
                (i.rsrp_before, i.rsrp_after)
                for i in instances
                if i.rsrp_before is not None and i.rsrp_after is not None
            ],
            "delta_cdf": cdf_points(deltas),
            "improved": fraction_above(deltas, 0.0),
            "n": len(instances),
        }
    return out
