"""Cross-RAT analyses (paper Table 4 and Fig. 22, Section 5.5).

Table 4 reports, per RAT, the standardized parameter count and the
share of D2 cells; Fig. 22 boxplots the Simpson diversity of every
parameter per (carrier, RAT), showing diversity growing along the RAT
evolution (GSM/CDMA nearly static, LTE/WCDMA rich).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellnet.rat import RAT
from repro.config.parameters import parameter_count
from repro.core.analysis.common import BoxStats
from repro.core.analysis.diversity import all_parameter_diversity
from repro.datasets.store import ConfigSampleStore

#: Table 4 column order.
RAT_ORDER = (RAT.LTE, RAT.UMTS, RAT.GSM, RAT.EVDO, RAT.CDMA1X)


@dataclass
class RatBreakdownReport:
    """Table 4 data."""

    #: RAT name -> standardized parameter count (from the registry).
    parameter_counts: dict = field(default_factory=dict)
    #: RAT name -> share of unique cells in D2.
    cell_shares: dict = field(default_factory=dict)
    total_cells: int = 0


def rat_breakdown(store: ConfigSampleStore) -> RatBreakdownReport:
    """Reproduce Table 4 from a D2 build."""
    report = RatBreakdownReport()
    cells_per_rat: dict[str, set] = {}
    for sample in store:
        cells_per_rat.setdefault(sample.rat, set()).add((sample.carrier, sample.gci))
    total = sum(len(cells) for cells in cells_per_rat.values())
    report.total_cells = total
    for rat in RAT_ORDER:
        report.parameter_counts[rat.value] = parameter_count(rat)
        n = len(cells_per_rat.get(rat.value, ()))
        report.cell_shares[rat.value] = n / total if total else 0.0
    return report


def rat_diversity_boxes(
    store: ConfigSampleStore, pairs: tuple[tuple[str, str], ...] = (
        ("A", "LTE"), ("A", "UMTS"), ("S", "EVDO"), ("A", "GSM"),
    )
) -> dict[str, BoxStats]:
    """Fig. 22: Simpson-index boxplots over all parameters per pair.

    The default pairs are the paper's: ATT-LTE, ATT-WCDMA, Sprint-EVDO,
    ATT-GSM.
    """
    out: dict[str, BoxStats] = {}
    for carrier, rat in pairs:
        sub = store.for_carrier(carrier).for_rat(rat)
        measures = all_parameter_diversity(sub)
        out[f"{carrier}-{rat}"] = BoxStats.from_values([m.simpson for m in measures])
    return out
