"""MMLab's analysis toolkit.

One module per analysis family, mirroring the paper's evaluation:

* :mod:`diversity` — Simpson index, coefficient of variation, richness
  and the dependence measure zeta (Eq. 4/5; Figs. 14-17).
* :mod:`events` — decisive reporting-event mix and parameter ranges
  (Fig. 5).
* :mod:`performance` — radio and throughput impacts around handoffs
  (Figs. 6-10).
* :mod:`thresholds` — measurement-vs-decision threshold gaps (Fig. 11).
* :mod:`temporal` — configuration churn over time (Fig. 13).
* :mod:`spatial` — city-level and proximity diversity (Figs. 20/21).
* :mod:`frequency` — frequency dependence of parameters (Figs. 18/19).
* :mod:`rats` — cross-RAT comparisons (Table 4, Fig. 22).
* :mod:`prediction` — device-side handoff prediction (Section 6).
* :mod:`verification` — automated configuration verification
  (Sections 4.2, 5.4.1, 6).
"""

from repro.core.analysis.diversity import (
    DiversityMeasures,
    simpson_index,
    coefficient_of_variation,
    richness,
    diversity_of_values,
    parameter_diversity,
    dependence,
)

__all__ = [
    "DiversityMeasures",
    "simpson_index",
    "coefficient_of_variation",
    "richness",
    "diversity_of_values",
    "parameter_diversity",
    "dependence",
]
