"""Location dependence of configurations (paper Figs. 20/21, §5.4.2).

Two granularities:

* **City level** — normalized per-city distributions of a parameter
  (Fig. 20 uses the serving priority over the five US cities).
* **Proximity** — the Eq. 5 dependence measure instantiated with
  radius-R neighborhoods: for each cell, cluster the cells within R km
  and compare the cluster's diversity against the city-wide diversity.
  Per-cell values form the boxplots of Fig. 21.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.cellnet.cell import Cell
from repro.cellnet.world import RadioEnvironment
from repro.core.analysis.common import BoxStats
from repro.core.analysis.diversity import simpson_index
from repro.datasets.store import ConfigSampleStore


def city_distributions(
    store: ConfigSampleStore,
    parameter: str,
    carriers: tuple[str, ...],
    cities: tuple[str, ...],
) -> dict[str, dict[str, dict[object, float]]]:
    """Fig. 20: per carrier, per city, the parameter's value shares."""
    out: dict[str, dict[str, dict[object, float]]] = {}
    for carrier in carriers:
        out[carrier] = {}
        carrier_store = store.for_carrier(carrier).for_parameter(parameter)
        for city in cities:
            values = carrier_store.for_city(city).unique_values(parameter)
            counts: dict[object, int] = defaultdict(int)
            for value in values:
                counts[value] += 1
            total = sum(counts.values())
            out[carrier][city] = (
                {v: c / total for v, c in sorted(counts.items(), key=lambda kv: str(kv[0]))}
                if total
                else {}
            )
    return out


@dataclass(frozen=True)
class SpatialDiversityReport:
    """Fig. 21 data for one carrier: per-radius boxplots."""

    carrier: str
    parameter: str
    city: str
    #: radius km -> BoxStats over per-cell zeta values.
    boxes: dict

    def median(self, radius_km: float) -> float:
        return self.boxes[radius_km].median


def spatial_diversity(
    store: ConfigSampleStore,
    env: RadioEnvironment,
    carrier: str,
    city: str,
    parameter: str = "cell_reselection_priority",
    radii_km: tuple[float, ...] = (0.5, 1.0, 2.0),
) -> SpatialDiversityReport:
    """Fig. 21: proximity diversity of one parameter in one city.

    For each observed cell c and radius R, take the values of
    ``parameter`` at observed cells within R km of c and compute
    |D(cluster) - D(city)| — the per-cell spatial instance of Eq. 5.
    """
    sub = store.for_carrier(carrier).for_city(city).for_parameter(parameter)
    per_cell_value: dict[int, object] = {}
    for sample in sub:
        per_cell_value.setdefault(sample.gci, sample.value_key)
    if not per_cell_value:
        return SpatialDiversityReport(
            carrier=carrier, parameter=parameter, city=city,
            boxes={r: BoxStats.from_values([]) for r in radii_km},
        )
    city_diversity = simpson_index(per_cell_value.values())
    locations: dict[int, Cell] = {}
    for cell in env.registry.by_carrier(carrier):
        if cell.cell_id.gci in per_cell_value:
            locations[cell.cell_id.gci] = cell
    boxes = {}
    observed = sorted(locations)
    for radius_km in radii_km:
        radius_m = radius_km * 1000.0
        zetas = []
        for gci in observed:
            center = locations[gci]
            cluster_values = [
                per_cell_value[other]
                for other in observed
                if locations[other].location.distance_to(center.location) <= radius_m
            ]
            if len(cluster_values) < 2:
                continue
            zetas.append(abs(simpson_index(cluster_values) - city_diversity))
        boxes[radius_km] = BoxStats.from_values(zetas)
    return SpatialDiversityReport(
        carrier=carrier, parameter=parameter, city=city, boxes=boxes
    )
