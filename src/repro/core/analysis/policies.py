"""Handoff-policy inference from crawled configurations (Section 6).

The paper closes by asking how to "learn the handoff policies" behind
the observed configurations, and sketches the axis its Section 4.1
discussion sets up: *performance-driven* policies hand off early (the
permissive A5 serving threshold, small A3 offsets), while
*overhead-driven* ones defer handoffs to save signaling (strict A5
thresholds, large offsets, long time-to-trigger).

``classify_policy`` scores one measConfig along that axis and labels
it; ``carrier_policy_profile`` aggregates labels per carrier, which is
the kind of per-operator fingerprint the paper envisions inferring.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.config.events import EventConfig, EventType
from repro.config.lte import MeasurementConfig

#: Label boundaries on the eagerness score.
_EAGER_BOUND = 0.25
_RELUCTANT_BOUND = -0.25


@dataclass(frozen=True)
class PolicyLabel:
    """The inferred policy of one cell's active-state configuration.

    Attributes:
        label: "performance-driven", "balanced" or "overhead-driven".
        eagerness: Score in [-1, 1]; positive = hands off early.
        trigger: The policy-defining event type ("A3", "A5", "P", or
            "none" when only serving-only events are armed).
    """

    label: str
    eagerness: float
    trigger: str


def _a3_eagerness(event: EventConfig) -> float:
    """Small offsets and short TTT hand off early."""
    offset_term = (4.0 - event.offset) / 8.0           # 0 dB -> +0.5, 12 dB -> -1
    ttt_term = (640.0 - event.time_to_trigger_ms) / 2560.0
    return max(min(offset_term + ttt_term, 1.0), -1.0)


def _a5_eagerness(event: EventConfig) -> float:
    """A permissive serving threshold hands off early (paper 4.1)."""
    if event.metric == "rsrp":
        threshold = event.threshold1 if event.threshold1 is not None else -110.0
        # -44 (no requirement) -> +1; -120 (strict) -> -1.
        serving_term = (threshold + 82.0) / 38.0
    else:
        threshold = event.threshold1 if event.threshold1 is not None else -14.0
        serving_term = (threshold + 14.0) / 4.0
    return max(min(serving_term, 1.0), -1.0)


def classify_policy(meas_config: MeasurementConfig) -> PolicyLabel:
    """Label one measConfig on the performance/overhead axis."""
    trigger = "none"
    eagerness = 0.0
    for event in meas_config.events:
        if event.event is EventType.A3:
            trigger = "A3"
            eagerness = _a3_eagerness(event)
            break
        if event.event is EventType.A5:
            trigger = "A5"
            eagerness = _a5_eagerness(event)
            break
    else:
        if meas_config.periodic is not None:
            trigger = "P"
            # Short periodic intervals surface candidates sooner.
            eagerness = (5120.0 - meas_config.periodic.report_interval_ms) / 10240.0
    if eagerness > _EAGER_BOUND:
        label = "performance-driven"
    elif eagerness < _RELUCTANT_BOUND:
        label = "overhead-driven"
    else:
        label = "balanced"
    return PolicyLabel(label=label, eagerness=eagerness, trigger=trigger)


def carrier_policy_profile(snapshots) -> dict[str, dict]:
    """Aggregate policy labels per carrier over crawled snapshots.

    Returns, per carrier: label shares, mean eagerness and the trigger
    mix — an operator-level policy fingerprint.
    """
    per_carrier: dict[str, list[PolicyLabel]] = {}
    for snapshot in snapshots:
        if snapshot.meas_config is None:
            continue
        per_carrier.setdefault(snapshot.carrier, []).append(
            classify_policy(snapshot.meas_config)
        )
    out: dict[str, dict] = {}
    for carrier, labels in sorted(per_carrier.items()):
        counts = Counter(l.label for l in labels)
        triggers = Counter(l.trigger for l in labels)
        total = len(labels)
        out[carrier] = {
            "n": total,
            "labels": {k: v / total for k, v in counts.items()},
            "triggers": {k: v / total for k, v in triggers.items()},
            "mean_eagerness": sum(l.eagerness for l in labels) / total,
        }
    return out
