"""Frequency dependence of configurations (paper Figs. 18/19, §5.4.1).

Fig. 18 breaks down the serving and candidate priorities per frequency
channel — the analysis that explains AT&T's band strategy (LTE-exclusive
bands 12/17 priority-low, freshly acquired band 30 priority-top) and the
multi-valued channels that cause priority conflicts.  Fig. 19 computes
the Eq. 5 dependence measure with F = channel across every parameter.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.analysis.diversity import dependence
from repro.datasets.store import ConfigSampleStore


@dataclass
class PriorityBreakdownReport:
    """Fig. 18 data: per-channel priority shares."""

    carrier: str
    #: channel -> {priority: share} for the serving priority (SIB3).
    serving: dict = field(default_factory=dict)
    #: channel -> {priority: share} for candidate priorities (SIB5).
    candidate: dict = field(default_factory=dict)

    def multi_valued_channels(self, side: str = "serving") -> list[int]:
        """Channels carrying more than one priority value."""
        table = self.serving if side == "serving" else self.candidate
        return sorted(ch for ch, shares in table.items() if len(shares) > 1)

    def dominant_priority(self, channel: int, side: str = "serving") -> int | None:
        table = self.serving if side == "serving" else self.candidate
        shares = table.get(channel)
        if not shares:
            return None
        return max(shares, key=shares.get)


def priority_breakdown(store: ConfigSampleStore, carrier: str) -> PriorityBreakdownReport:
    """Fig. 18: serving/candidate priority shares per channel."""
    report = PriorityBreakdownReport(carrier=carrier)
    sub = store.for_carrier(carrier).for_rat("LTE")
    serving_values: dict[int, dict] = defaultdict(lambda: defaultdict(dict))
    candidate_values: dict[int, dict] = defaultdict(lambda: defaultdict(dict))
    # Candidate priorities ride SIB5 entries whose channel is the layer
    # channel, not the broadcasting cell's channel — pair the adjacent
    # dl_carrier_freq / priority samples per cell round.
    by_round: dict[tuple, list] = defaultdict(list)
    for sample in sub:
        if sample.parameter == "cell_reselection_priority":
            serving_values[sample.channel][sample.value][sample.gci] = True
        elif sample.parameter in ("dl_carrier_freq", "cell_reselection_priority_inter"):
            by_round[(sample.carrier, sample.gci, sample.observed_day, sample.round_index)].append(sample)
    for samples in by_round.values():
        current_freq = None
        for sample in samples:
            if sample.parameter == "dl_carrier_freq":
                current_freq = int(sample.value)
            elif current_freq is not None:
                candidate_values[current_freq][sample.value][sample.gci] = True

    def shares(values: dict) -> dict:
        counts = {priority: len(cells) for priority, cells in values.items()}
        total = sum(counts.values())
        return {p: c / total for p, c in sorted(counts.items())}

    report.serving = {ch: shares(v) for ch, v in sorted(serving_values.items())}
    report.candidate = {ch: shares(v) for ch, v in sorted(candidate_values.items())}
    return report


def multi_valued_cell_fraction(store: ConfigSampleStore, carrier: str) -> float:
    """Fraction of cells carrying a non-dominant priority for their channel.

    The paper observes multiple-value priority settings "at 6.3% of
    AT&T cells" — the cells whose priority disagrees with their
    channel's dominant value, the precondition for priority loops
    (Section 5.4.1).
    """
    per_channel: dict[int, dict[int, set]] = defaultdict(lambda: defaultdict(set))
    for sample in store.for_carrier(carrier).for_rat("LTE"):
        if sample.parameter == "cell_reselection_priority":
            per_channel[sample.channel][sample.value].add(sample.gci)
    total = 0
    minority = 0
    for values in per_channel.values():
        counts = {priority: len(cells) for priority, cells in values.items()}
        channel_total = sum(counts.values())
        dominant = max(counts.values())
        total += channel_total
        minority += channel_total - dominant
    if total == 0:
        return 0.0
    return minority / total


def frequency_dependence(
    store: ConfigSampleStore, carrier: str, measure: str = "simpson"
) -> dict[str, float]:
    """Fig. 19: zeta_{M, theta | freq} for every LTE parameter."""
    sub = store.for_carrier(carrier).for_rat("LTE")
    out: dict[str, float] = {}
    for parameter in sub.parameters():
        out[parameter] = dependence(
            sub, parameter, factor=lambda s: s.channel, measure=measure
        )
    return out
