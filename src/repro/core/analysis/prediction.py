"""Device-side handoff prediction (paper Section 6).

"Given the observable configurations, it is feasible to predict
handoffs at runtime at the mobile device": the device already knows the
armed events (crawled from the measConfig) and measures the same radio
quantities the network acts on, so evaluating the event entry
conditions locally forecasts whether and whither a handoff is coming.

:class:`HandoffPredictor` does exactly that, including time-to-trigger
accounting, and :func:`evaluate_predictor` replays a drive to score the
prediction lead time, precision and recall against the handoffs that
actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellnet.cell import CellId
from repro.config.events import EventType, evaluate_entry
from repro.config.lte import MeasurementConfig
from repro.ue.measurement import FilteredMeasurement


@dataclass(frozen=True)
class PredictedHandoff:
    """One prediction: a handoff toward ``target`` is imminent."""

    event: EventType
    target: CellId
    #: Milliseconds of time-to-trigger still outstanding (0 = the
    #: report could fire now).
    eta_ms: int
    #: The target's measured value of the trigger metric.
    target_value: float


class HandoffPredictor:
    """Evaluates the crawled measConfig against local measurements."""

    def __init__(self, meas_config: MeasurementConfig):
        self.meas_config = meas_config
        self._entry_since: dict = {}

    def reset(self) -> None:
        self._entry_since.clear()

    def step(
        self,
        now_ms: int,
        serving: FilteredMeasurement,
        intra_rat_neighbors: list[FilteredMeasurement],
        inter_rat_neighbors: list[FilteredMeasurement],
    ) -> list[PredictedHandoff]:
        """One prediction round; returns imminent handoffs, best first."""
        if serving.rsrp_dbm > self.meas_config.s_measure:
            # Neighbor measurement gated off: the network cannot receive
            # neighbor reports, so no handoff can be triggered.
            self._entry_since.clear()
            return []
        predictions: list[PredictedHandoff] = []
        for config in self.meas_config.events:
            if not config.event.needs_neighbor:
                continue
            neighbors = (
                inter_rat_neighbors if config.event.is_inter_rat else intra_rat_neighbors
            )
            for neighbor in neighbors:
                key = (config.event, config.metric, neighbor.cell.cell_id)
                serving_value = serving.metric(config.metric)
                neighbor_value = neighbor.metric(config.metric)
                if evaluate_entry(config, serving_value, neighbor_value):
                    started = self._entry_since.setdefault(key, now_ms)
                    eta = max(config.time_to_trigger_ms - (now_ms - started), 0)
                    predictions.append(
                        PredictedHandoff(
                            event=config.event,
                            target=neighbor.cell.cell_id,
                            eta_ms=eta,
                            target_value=neighbor_value,
                        )
                    )
                else:
                    self._entry_since.pop(key, None)
        if self.meas_config.periodic is not None and intra_rat_neighbors:
            best = intra_rat_neighbors[0]
            if best.rsrp_dbm > serving.rsrp_dbm + 5.0:
                predictions.append(
                    PredictedHandoff(
                        event=EventType.PERIODIC,
                        target=best.cell.cell_id,
                        eta_ms=self.meas_config.periodic.report_interval_ms,
                        target_value=best.rsrp_dbm,
                    )
                )
        predictions.sort(key=lambda p: (p.eta_ms, -p.target_value))
        return predictions


@dataclass
class PredictionScore:
    """Accuracy of the predictor over one drive."""

    n_handoffs: int = 0
    n_predicted: int = 0
    n_correct_target: int = 0
    lead_times_ms: list = field(default_factory=list)
    #: Ticks where a prediction was live but no handoff followed within
    #: the horizon (false-positive episodes).
    false_episodes: int = 0

    @property
    def recall(self) -> float:
        return self.n_predicted / self.n_handoffs if self.n_handoffs else 0.0

    @property
    def target_accuracy(self) -> float:
        return self.n_correct_target / self.n_predicted if self.n_predicted else 0.0

    @property
    def mean_lead_time_ms(self) -> float:
        if not self.lead_times_ms:
            return 0.0
        return sum(self.lead_times_ms) / len(self.lead_times_ms)


def evaluate_predictor(
    env,
    server,
    carrier: str,
    trajectory,
    seed: int = 0,
    horizon_ms: int = 4000,
    tick_ms: int = 200,
) -> PredictionScore:
    """Replay a drive with a shadow predictor and score it.

    The predictor sees exactly what the device sees (crawled measConfig
    plus local filtered measurements) and never the network's decision
    logic.  A handoff counts as *predicted* when a prediction naming
    any target was live within ``horizon_ms`` before it; *correct
    target* additionally requires the predicted target to match.
    """
    from repro.ue.device import RrcState, UserEquipment

    ue = UserEquipment(env, server, carrier, seed=seed)
    score = PredictionScore()
    predictor: HandoffPredictor | None = None
    live_predictions: list[tuple[int, PredictedHandoff]] = []
    now_ms = 0
    ue.initial_camp(trajectory.position(0), now_ms)
    ue.connect(now_ms)
    predictor = HandoffPredictor(ue.monitor.meas_config)
    while now_ms <= trajectory.duration_ms:
        location = trajectory.position(now_ms)
        handoffs = ue.tick(now_ms, location)
        for handoff in handoffs:
            score.n_handoffs += 1
            recent = [
                (t, p)
                for t, p in live_predictions
                if handoff.time_ms - t <= horizon_ms
            ]
            if recent:
                score.n_predicted += 1
                first_t = min(t for t, _ in recent)
                score.lead_times_ms.append(handoff.time_ms - first_t)
                if any(p.target == handoff.target for _, p in recent):
                    score.n_correct_target += 1
            live_predictions.clear()
            if ue.monitor is not None:
                predictor = HandoffPredictor(ue.monitor.meas_config)
        if (
            ue.state is RrcState.CONNECTED
            and predictor is not None
            and ue.last_measurements is not None
            and ue.serving is not None
        ):
            serving_meas = ue.last_measurements.get(ue.serving.cell_id)
            if serving_meas is not None:
                intra, inter = ue.meas.split_neighbors(
                    ue.last_measurements, ue.serving
                )
                predictions = predictor.step(now_ms, serving_meas, intra, inter)
                if predictions:
                    live_predictions.append((now_ms, predictions[0]))
                    live_predictions = live_predictions[-64:]
        now_ms += tick_ms
    return score
