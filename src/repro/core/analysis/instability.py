"""Runtime handoff-instability analysis.

The paper's prior work ([22] "Instability in Distributed Mobility
Management", [24], [27]) proves that conflicting configurations cause
*persistent handoff loops*; Section 5.4.1 finds the preconditions (multi-
valued priorities) are "not as rare as we anticipated".  This module
closes the loop at runtime: given a trace's handoff instances, find the
oscillations, and relate them to the static findings of
:mod:`repro.core.analysis.verification`.

Two runtime patterns are detected:

* **ping-pong** — A -> B -> A within a short window: normal radio
  dynamics (damped by hysteresis/TTT) or an equal-priority conflict;
* **loop** — a cycle over >= 2 cells traversed at least twice in
  succession (A -> B -> A -> B, or A -> B -> C -> A -> B -> C): the
  signature of conflicting priority configurations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.datasets.records import HandoffInstance

#: Returning to the previous cell within this window is a ping-pong.
PING_PONG_WINDOW_MS = 10_000


@dataclass(frozen=True)
class HandoffLoop:
    """One detected oscillation."""

    cells: tuple[int, ...]
    start_ms: int
    end_ms: int
    traversals: int

    @property
    def period_ms(self) -> float:
        """Mean time for one traversal of the cycle."""
        return (self.end_ms - self.start_ms) / max(self.traversals, 1)


@dataclass
class InstabilityReport:
    """Trace-level instability summary."""

    n_handoffs: int = 0
    n_ping_pongs: int = 0
    loops: list[HandoffLoop] = field(default_factory=list)
    #: (source, target) pair -> traversal count, for hot-pair spotting.
    pair_counts: Counter = field(default_factory=Counter)

    @property
    def ping_pong_rate(self) -> float:
        if self.n_handoffs <= 1:
            return 0.0
        return self.n_ping_pongs / (self.n_handoffs - 1)

    @property
    def looping_cells(self) -> set[int]:
        cells: set[int] = set()
        for loop in self.loops:
            cells.update(loop.cells)
        return cells


def detect_instability(
    instances: list[HandoffInstance],
    max_cycle_length: int = 3,
    min_traversals: int = 2,
) -> InstabilityReport:
    """Analyze one trace's handoff sequence for oscillations.

    Instances must come from a single device trace (they are ordered by
    time).  A cycle of length L is reported when the same L-cell
    sequence repeats ``min_traversals`` times back-to-back.
    """
    ordered = sorted(instances, key=lambda i: i.time_ms)
    report = InstabilityReport(n_handoffs=len(ordered))
    for previous, current in zip(ordered, ordered[1:]):
        report.pair_counts[(previous.source_gci, previous.target_gci)] += 1
        if (
            current.target_gci == previous.source_gci
            and current.source_gci == previous.target_gci
            and current.time_ms - previous.time_ms <= PING_PONG_WINDOW_MS
        ):
            report.n_ping_pongs += 1
    if ordered:
        last = ordered[-1]
        report.pair_counts[(last.source_gci, last.target_gci)] += 1
    # Cycle detection over the serving-cell sequence.
    sequence = [ordered[0].source_gci] + [i.target_gci for i in ordered] if ordered else []
    times = [ordered[0].time_ms] + [i.time_ms for i in ordered] if ordered else []
    for length in range(2, max_cycle_length + 1):
        i = 0
        while i + length * (min_traversals + 1) <= len(sequence):
            window = sequence[i : i + length]
            traversals = 0
            j = i + length
            while (
                j + length <= len(sequence)
                and sequence[j : j + length] == window
            ):
                traversals += 1
                j += length
            if traversals >= min_traversals and len(set(window)) == length:
                report.loops.append(
                    HandoffLoop(
                        cells=tuple(window),
                        start_ms=times[i],
                        end_ms=times[min(j, len(times) - 1)],
                        traversals=traversals + 1,
                    )
                )
                i = j
            else:
                i += 1
    return report


def correlate_with_conflicts(
    report: InstabilityReport, conflicted_channels_cells: set[int]
) -> float:
    """Fraction of looping cells that sit on conflicted channels.

    ``conflicted_channels_cells`` comes from the static verification
    side (cells on channels with multiple priority values); a high
    overlap is the paper's argued causal link between configuration
    conflicts and runtime instability.
    """
    looping = report.looping_cells
    if not looping:
        return 0.0
    return len(looping & conflicted_channels_cells) / len(looping)
