"""Shared helpers for the analysis modules."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def cdf_points(values: list[float], n_points: int = 101) -> list[tuple[float, float]]:
    """(value, cumulative fraction) points of an empirical CDF.

    Evaluated at evenly spaced percentiles so series of different sizes
    plot on a common grid.
    """
    if not values:
        return []
    data = np.sort(np.asarray(values, dtype=float))
    fractions = np.linspace(0.0, 1.0, n_points)
    points = np.quantile(data, fractions)
    return [(float(v), float(f)) for v, f in zip(points, fractions)]


def fraction_above(values: list[float], threshold: float = 0.0) -> float:
    """Fraction of values strictly greater than ``threshold``."""
    if not values:
        return 0.0
    return sum(1 for v in values if v > threshold) / len(values)


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary for boxplot-style figures."""

    n: int
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float

    @classmethod
    def from_values(cls, values: list[float]) -> "BoxStats":
        if not values:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(values, dtype=float)
        return cls(
            n=len(values),
            minimum=float(arr.min()),
            p25=float(np.percentile(arr, 25)),
            median=float(np.percentile(arr, 50)),
            p75=float(np.percentile(arr, 75)),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
        )
