"""Temporal dynamics of configurations (paper Fig. 13, Section 5.1).

Two questions: do we have enough repeated samples to observe change at
all (Fig. 13a: samples per cell), and how often do configurations
actually change as a function of the time gap between observations
(Fig. 13b, split into idle-state and active-state parameter classes)?

The paper's headline: changes are rare; idle-state parameters change
far less (0.4-1.6% of cells) than active-state ones (21-24%), so
one-time collection suffices and distribution analyses should use
unique samples.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cellnet.rat import RAT
from repro.config.parameters import active_state_parameters
from repro.datasets.store import ConfigSampleStore

#: Time-gap buckets of Fig. 13b, in days (1/24 day = 1 hour).
DEFAULT_GAP_BUCKETS_DAYS = (1.0 / 24.0, 1.0, 7.0, 30.0, 180.0, 10_000.0)

_ACTIVE_PARAMS = {spec.name for spec in active_state_parameters(RAT.LTE)}


def samples_per_cell_histogram(
    store: ConfigSampleStore, parameter: str = "cell_reselection_priority"
) -> dict[int, float]:
    """Fig. 13a: share of cells with k samples of one SIB3 parameter.

    Counts capped at 20+ as in the paper's x-axis.
    """
    counts = store.samples_per_cell(parameter)
    if not counts:
        return {}
    histogram: dict[int, int] = defaultdict(int)
    for n in counts.values():
        histogram[min(n, 20)] += 1
    total = sum(histogram.values())
    return {k: v / total for k, v in sorted(histogram.items())}


def multi_sample_cell_fraction(
    store: ConfigSampleStore, parameter: str = "cell_reselection_priority"
) -> float:
    """Fraction of cells observed more than once (the paper's 48.1%)."""
    counts = store.samples_per_cell(parameter)
    if not counts:
        return 0.0
    return sum(1 for n in counts.values() if n > 1) / len(counts)


@dataclass
class TemporalDynamicsReport:
    """Fig. 13b data: % of cells with changed configs per time gap."""

    #: bucket upper bound (days) -> fraction of comparable cells whose
    #: idle-state configuration changed within that gap.
    idle_changed: dict = field(default_factory=dict)
    #: Same for active-state (measConfig) parameters.
    active_changed: dict = field(default_factory=dict)
    #: Cells with multiple same-round samples land in the t=0 bucket.
    same_round_changed_idle: float = 0.0
    same_round_changed_active: float = 0.0


def _pairwise_changes(
    observations: dict[tuple[str, int], list[tuple[float, dict]]],
    buckets: tuple[float, ...],
) -> dict[float, float]:
    """Fraction of cells changed per gap bucket.

    ``observations`` maps cell -> [(day, {param: value})] sorted by day;
    a cell counts as changed in bucket b when any two observations with
    gap <= b differ on a shared parameter, following the paper's
    "percentage of cells with distinct samples observed over time".
    """
    changed: dict[float, int] = {b: 0 for b in buckets}
    comparable: dict[float, int] = {b: 0 for b in buckets}
    for rounds in observations.values():
        if len(rounds) < 2:
            continue
        for i in range(len(rounds)):
            for j in range(i + 1, len(rounds)):
                gap = abs(rounds[j][0] - rounds[i][0])
                shared = set(rounds[i][1]) & set(rounds[j][1])
                if not shared:
                    continue
                differs = any(rounds[i][1][p] != rounds[j][1][p] for p in shared)
                for bucket in buckets:
                    if gap <= bucket:
                        comparable[bucket] += 1
                        if differs:
                            changed[bucket] += 1
                        break
    return {
        bucket: (changed[bucket] / comparable[bucket] if comparable[bucket] else 0.0)
        for bucket in buckets
    }


def temporal_dynamics(
    store: ConfigSampleStore,
    buckets: tuple[float, ...] = DEFAULT_GAP_BUCKETS_DAYS,
) -> TemporalDynamicsReport:
    """Fig. 13b: configuration change rates over observation gaps."""
    idle_obs: dict[tuple[str, int], dict[tuple[float, int], dict]] = defaultdict(dict)
    active_obs: dict[tuple[str, int], dict[tuple[float, int], dict]] = defaultdict(dict)
    for sample in store:
        if sample.rat != "LTE":
            continue
        if isinstance(sample.value, (list, tuple)):
            value = tuple(sample.value)
        else:
            value = sample.value
        target = active_obs if sample.parameter in _ACTIVE_PARAMS else idle_obs
        key = (sample.carrier, sample.gci)
        round_key = (sample.observed_day, sample.round_index)
        target[key].setdefault(round_key, {})[sample.parameter] = value
    report = TemporalDynamicsReport()

    def flatten(obs) -> dict:
        return {
            cell: sorted(
                ((day, params) for (day, _), params in rounds.items()),
                key=lambda t: t[0],
            )
            for cell, rounds in obs.items()
        }

    report.idle_changed = _pairwise_changes(flatten(idle_obs), buckets)
    report.active_changed = _pairwise_changes(flatten(active_obs), buckets)
    return report
