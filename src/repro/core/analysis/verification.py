"""Automated configuration verification (paper Sections 4.2, 5.4.1, 6).

This module is now a thin compatibility facade over :mod:`repro.lint`,
the rule-engine static analyzer that superseded it.  The public API is
unchanged — :func:`audit_snapshot`, :func:`audit_snapshots`,
:func:`detect_priority_conflicts`, :func:`detect_priority_loops` and
:func:`summarize` still return lists of :class:`Finding` — but findings
now carry stable ``HCnnn`` codes (the historical slug lives on as
``Finding.name``) and the full rule set runs, not just the original
audits.  New code should import from :mod:`repro.lint` directly.
"""

from __future__ import annotations

from repro.core.crawler import CellConfigSnapshot
from repro.lint.cell_rules import PREMATURE_GAP_DB
from repro.lint.engine import lint_snapshots
from repro.lint.findings import Finding, summarize
from repro.lint.rules import all_rules

__all__ = [
    "Finding",
    "PREMATURE_GAP_DB",
    "audit_snapshot",
    "audit_snapshots",
    "detect_priority_conflicts",
    "detect_priority_loops",
    "summarize",
]


def _codes(scope: str | None = None) -> list[str]:
    return [r.code for r in all_rules() if scope is None or r.scope == scope]


def audit_snapshot(snapshot: CellConfigSnapshot) -> list[Finding]:
    """Audit one cell's crawled configuration (cell-scope rules only)."""
    return lint_snapshots([snapshot], codes=_codes("cell")).findings


def audit_snapshots(snapshots: list[CellConfigSnapshot]) -> list[Finding]:
    """Audit many snapshots; cell-level findings plus network-level ones."""
    return lint_snapshots(snapshots).findings


def detect_priority_conflicts(snapshots: list[CellConfigSnapshot]) -> list[Finding]:
    """Channels observed with multiple serving-priority values (HC101)."""
    return lint_snapshots(snapshots, codes=["HC101"]).findings


def detect_priority_loops(snapshots: list[CellConfigSnapshot]) -> list[Finding]:
    """Preference cycles between channels (HC103, the paper's loops)."""
    return lint_snapshots(snapshots, codes=["HC103"]).findings
