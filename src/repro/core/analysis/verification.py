"""Automated configuration verification (paper Sections 4.2, 5.4.1, 6).

The paper's suggestions for operators become executable checks here:

* **Event audits** — negative A3 offsets (defer/prevent handoffs) and
  A5 pairs with no serving-cell requirement or inverted thresholds
  (weaker-target handoffs);
* **Measurement-efficiency audits** — premature intra-freq measurement
  (Theta_intra far above the decision threshold: battery drain) and
  late non-intra measurement (Theta_nonintra below it);
* **Priority audits** — channels carrying multiple priority values and
  *preference loops* between channels, the mechanism behind the
  paper's handoff-instability case studies [22].

Findings are plain data so they can be printed, counted or asserted on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import networkx as nx

from repro.config.events import EventType
from repro.core.crawler import CellConfigSnapshot


@dataclass(frozen=True)
class Finding:
    """One verification finding.

    Attributes:
        code: Stable machine-readable finding code.
        severity: "info", "warning" or "problem".
        carrier / gci: The cell the finding is about (gci -1 = network
            level).
        message: Human-readable explanation.
    """

    code: str
    severity: str
    carrier: str
    gci: int
    message: str


#: The A5 "no requirement" serving threshold (best RSRP = -44 dBm).
_A5_NO_SERVING_REQUIREMENT = -44.0

#: Gap above which intra-freq measurement is considered premature.
PREMATURE_GAP_DB = 30.0


def audit_snapshot(snapshot: CellConfigSnapshot) -> list[Finding]:
    """Audit one cell's crawled configuration."""
    findings: list[Finding] = []
    carrier, gci = snapshot.carrier, snapshot.gci

    def add(code: str, severity: str, message: str) -> None:
        findings.append(Finding(code, severity, carrier, gci, message))

    meas = snapshot.meas_config
    if meas is not None:
        for event in meas.events:
            if event.event is EventType.A3 and event.offset < 0:
                add(
                    "a3-negative-offset",
                    "warning",
                    f"A3 offset {event.offset:g} dB is negative: handoffs may "
                    "trigger toward weaker cells or be deferred",
                )
            if event.event is EventType.A5:
                if event.metric == "rsrp" and event.threshold1 == _A5_NO_SERVING_REQUIREMENT:
                    add(
                        "a5-no-serving-requirement",
                        "info",
                        "A5 serving threshold -44 dBm places no requirement on "
                        "the serving cell: early handoffs possible, weaker "
                        "targets not excluded",
                    )
                if (
                    event.threshold1 is not None
                    and event.threshold2 is not None
                    and event.threshold2 < event.threshold1
                ):
                    add(
                        "a5-inverted-thresholds",
                        "warning",
                        f"A5 candidate threshold ({event.threshold2:g}) below "
                        f"serving threshold ({event.threshold1:g}): handoffs "
                        "to weaker cells are permitted",
                    )
    config = snapshot.lte_config
    if config is not None:
        serving = config.serving
        if serving.s_non_intra_search_p > serving.s_intra_search_p:
            add(
                "nonintra-above-intra",
                "problem",
                "Theta_nonintra exceeds Theta_intra: non-intra-frequency "
                "measurement would start before intra-frequency",
            )
        gap = serving.s_intra_search_p - serving.thresh_serving_low_p
        if gap > PREMATURE_GAP_DB:
            add(
                "premature-intra-measurement",
                "warning",
                f"Theta_intra sits {gap:g} dB above the decision threshold: "
                "intra-freq measurements run while no handoff can trigger "
                "(battery drain)",
            )
        if serving.s_non_intra_search_p < serving.thresh_serving_low_p:
            add(
                "late-nonintra-measurement",
                "warning",
                "Theta_nonintra below the decision threshold: non-intra "
                "measurements may start too late to assist the handoff",
            )
    return findings


def audit_snapshots(snapshots: list[CellConfigSnapshot]) -> list[Finding]:
    """Audit many snapshots; cell-level findings plus network-level ones."""
    findings: list[Finding] = []
    for snapshot in snapshots:
        findings.extend(audit_snapshot(snapshot))
    findings.extend(detect_priority_conflicts(snapshots))
    findings.extend(detect_priority_loops(snapshots))
    return findings


def detect_priority_conflicts(snapshots: list[CellConfigSnapshot]) -> list[Finding]:
    """Channels observed with multiple serving-priority values.

    Inconsistent per-channel priorities are the precondition for the
    handoff loops of Section 5.4.1.
    """
    per_channel: dict[tuple[str, int], set] = defaultdict(set)
    for snapshot in snapshots:
        if snapshot.lte_config is None:
            continue
        per_channel[(snapshot.carrier, snapshot.channel)].add(
            snapshot.lte_config.serving.cell_reselection_priority
        )
    findings = []
    for (carrier, channel), priorities in sorted(per_channel.items()):
        if len(priorities) > 1:
            findings.append(
                Finding(
                    "priority-conflict",
                    "warning",
                    carrier,
                    -1,
                    f"channel {channel} carries multiple priorities "
                    f"{sorted(priorities)}: prone to inconsistent handoffs",
                )
            )
    return findings


def detect_priority_loops(snapshots: list[CellConfigSnapshot]) -> list[Finding]:
    """Preference cycles between channels (paper's handoff loops).

    Build a directed graph per carrier with an edge ch_a -> ch_b when
    some cell on ch_a assigns ch_b a strictly higher priority than its
    own; a cycle means two (or more) channels each defer to the other —
    a device can bounce between them indefinitely.
    """
    graphs: dict[str, nx.DiGraph] = defaultdict(nx.DiGraph)
    for snapshot in snapshots:
        config = snapshot.lte_config
        if config is None:
            continue
        own = config.serving.cell_reselection_priority
        for layer in config.inter_freq_layers:
            if layer.cell_reselection_priority > own:
                graphs[snapshot.carrier].add_edge(snapshot.channel, layer.dl_carrier_freq)
    findings = []
    for carrier, graph in sorted(graphs.items()):
        for cycle in nx.simple_cycles(graph):
            if len(cycle) < 2:
                continue
            findings.append(
                Finding(
                    "priority-loop",
                    "problem",
                    carrier,
                    -1,
                    "priority preference loop between channels "
                    f"{' -> '.join(str(c) for c in cycle)} -> {cycle[0]}: "
                    "devices may handoff in circles",
                )
            )
    return findings


def summarize(findings: list[Finding]) -> dict[str, int]:
    """Finding counts per code, for report tables."""
    counts: dict[str, int] = defaultdict(int)
    for finding in findings:
        counts[finding.code] += 1
    return dict(sorted(counts.items()))
