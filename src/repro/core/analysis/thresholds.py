"""Measurement-vs-decision threshold gaps (paper Fig. 11, Section 4.2).

From crawled idle-state configurations, compute the three gap CDFs the
paper uses to audit measurement efficiency:

* ``Theta_intra - Theta_nonintra`` — should be >= 0 (intra-freq
  measurement preferred; ~5% exact ties observed);
* ``Theta_intra - Theta(s)_low`` — large gaps (> 30 dB in ~95% of
  cells) mean intra-freq measurements run long before any handoff
  could trigger: premature measurement, wasted battery;
* ``Theta_nonintra - Theta(s)_low`` — negative values mean non-intra
  measurements may start too late to assist the handoff decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis.common import cdf_points, fraction_above
from repro.datasets.store import ConfigSampleStore


@dataclass
class ThresholdGapReport:
    """Fig. 11 data: the three per-cell threshold gaps."""

    #: (Theta_intra, Theta_nonintra) pairs per cell.
    pairs: list = field(default_factory=list)
    intra_minus_nonintra: list = field(default_factory=list)
    intra_minus_serving_low: list = field(default_factory=list)
    nonintra_minus_serving_low: list = field(default_factory=list)

    def cdfs(self) -> dict[str, list[tuple[float, float]]]:
        return {
            "intra_minus_nonintra": cdf_points(self.intra_minus_nonintra),
            "intra_minus_serving_low": cdf_points(self.intra_minus_serving_low),
            "nonintra_minus_serving_low": cdf_points(self.nonintra_minus_serving_low),
        }

    @property
    def tie_fraction(self) -> float:
        """Fraction of cells with Theta_intra == Theta_nonintra."""
        if not self.intra_minus_nonintra:
            return 0.0
        ties = sum(1 for g in self.intra_minus_nonintra if abs(g) < 1e-9)
        return ties / len(self.intra_minus_nonintra)

    @property
    def violation_fraction(self) -> float:
        """Fraction with Theta_intra < Theta_nonintra (counterexamples)."""
        if not self.intra_minus_nonintra:
            return 0.0
        bad = sum(1 for g in self.intra_minus_nonintra if g < -1e-9)
        return bad / len(self.intra_minus_nonintra)

    def premature_fraction(self, gap_db: float = 30.0) -> float:
        """Fraction of cells whose intra-vs-decision gap exceeds ``gap_db``."""
        return fraction_above(self.intra_minus_serving_low, gap_db)

    @property
    def late_nonintra_fraction(self) -> float:
        """Fraction with Theta_nonintra < Theta(s)_low (late measurement)."""
        if not self.nonintra_minus_serving_low:
            return 0.0
        late = sum(1 for g in self.nonintra_minus_serving_low if g < -1e-9)
        return late / len(self.nonintra_minus_serving_low)


def threshold_gaps(store: ConfigSampleStore, carriers: tuple[str, ...] | None = None) -> ThresholdGapReport:
    """Compute the Fig. 11 gaps from a D2 sample store.

    One gap triple per cell observation round, using each cell's
    first-seen values (the paper shows temporal churn is negligible for
    these parameters).
    """
    report = ThresholdGapReport()
    per_cell: dict[tuple[str, int], dict[str, float]] = {}
    for sample in store:
        if carriers is not None and sample.carrier not in carriers:
            continue
        if sample.rat != "LTE":
            continue
        if sample.parameter not in (
            "s_intra_search_p", "s_non_intra_search_p", "thresh_serving_low_p"
        ):
            continue
        entry = per_cell.setdefault((sample.carrier, sample.gci), {})
        entry.setdefault(sample.parameter, float(sample.value))
    for values in per_cell.values():
        intra = values.get("s_intra_search_p")
        nonintra = values.get("s_non_intra_search_p")
        serving_low = values.get("thresh_serving_low_p")
        if intra is None or nonintra is None or serving_low is None:
            continue
        report.pairs.append((intra, nonintra))
        report.intra_minus_nonintra.append(intra - nonintra)
        report.intra_minus_serving_low.append(intra - serving_low)
        report.nonintra_minus_serving_low.append(nonintra - serving_low)
    return report
