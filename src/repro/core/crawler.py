"""MMLab's configuration crawler.

Parses a diag log back into per-cell configuration snapshots — the step
the paper describes as "extract[ing] all configuration parameters from
the signaling messages received at the mobile device".  The crawler
never sees simulator state: its only input is the binary log, exactly
like MobileInsight parsing a rooted phone's diag stream.

A snapshot is assembled per camping episode: a SIB1 (or legacy system
information) opens the episode for the cell it identifies, subsequent
SIB3-8 fill in the idle-state configuration, and a measConfig-bearing
RRC reconfiguration adds the active-state configuration.  A new SIB1
closes the previous episode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellnet.rat import RAT
from repro.config.legacy import LegacyCellConfig
from repro.config.lte import LteCellConfig, MeasurementConfig
from repro.datasets.records import ConfigSample
from repro.rrc.diag import DiagReader, DiagRecord
from repro.rrc.messages import (
    LegacySystemInfo,
    RrcConnectionReconfiguration,
    Sib1,
    Sib3,
    Sib4,
    Sib5,
    Sib6,
    Sib7,
    Sib8,
)
from repro.ue.device import lte_config_from_sibs


@dataclass
class CellConfigSnapshot:
    """One observed configuration of one cell.

    Attributes:
        carrier / gci / rat / channel / city: Cell identity as learned
            from the log (SIB1 or legacy system information).
        first_seen_ms: Timestamp of the opening message.
        lte_config: Rebuilt LTE configuration (None for legacy cells or
            when the episode ended before SIB3 arrived).
        legacy_config: Rebuilt legacy configuration (legacy cells).
        meas_config: Active-state measConfig, when one was received
            during the episode.
    """

    carrier: str
    gci: int
    rat: str
    channel: int
    city: str
    first_seen_ms: int
    lte_config: LteCellConfig | None = None
    legacy_config: LegacyCellConfig | None = None
    meas_config: MeasurementConfig | None = None
    _sibs: list = field(default_factory=list, repr=False)

    def parameter_samples(self) -> list[tuple[str, object]]:
        """All flat (parameter, value) samples of this snapshot."""
        samples: list[tuple[str, object]] = []
        if self.lte_config is not None:
            samples.extend(self.lte_config.idle_parameter_samples())
        if self.meas_config is not None:
            samples.extend(self.meas_config.parameter_samples())
        if self.legacy_config is not None:
            samples.extend(self.legacy_config.parameter_samples())
        return samples

    def to_config_samples(
        self, observed_day: float = 0.0, round_index: int = 0
    ) -> list[ConfigSample]:
        """Flatten into dataset-D2 records."""
        return [
            ConfigSample(
                carrier=self.carrier,
                gci=self.gci,
                rat=self.rat,
                channel=self.channel,
                city=self.city,
                parameter=name,
                value=list(value) if isinstance(value, tuple) else value,
                observed_day=observed_day,
                round_index=round_index,
            )
            for name, value in self.parameter_samples()
        ]


class ConfigCrawler:
    """Streams diag records into configuration snapshots."""

    def __init__(self):
        self._open: CellConfigSnapshot | None = None
        self._closed: list[CellConfigSnapshot] = []

    def feed(self, record: DiagRecord) -> None:
        """Consume one diag record."""
        message = record.message
        if isinstance(message, Sib1):
            self._finish_open()
            self._open = CellConfigSnapshot(
                carrier=message.carrier,
                gci=message.gci,
                rat=message.rat,
                channel=message.channel,
                city=message.city,
                first_seen_ms=record.timestamp_ms,
            )
            self._open._sibs.append(message)
        elif isinstance(message, LegacySystemInfo):
            self._finish_open()
            self._open = CellConfigSnapshot(
                carrier=message.carrier,
                gci=message.gci,
                rat=message.rat,
                channel=message.channel,
                city=message.city,
                first_seen_ms=record.timestamp_ms,
                legacy_config=message.to_config(),
            )
        elif isinstance(message, (Sib3, Sib4, Sib5, Sib6, Sib7, Sib8)):
            if self._open is not None:
                self._open._sibs.append(message)
        elif isinstance(message, RrcConnectionReconfiguration):
            if self._open is not None and message.meas_config is not None:
                self._open.meas_config = message.meas_config

    def _finish_open(self) -> None:
        snapshot = self._open
        self._open = None
        if snapshot is None:
            return
        if snapshot.rat == RAT.LTE.value and any(
            isinstance(s, Sib3) for s in snapshot._sibs
        ):
            lte = lte_config_from_sibs(snapshot._sibs)
            if snapshot.meas_config is not None:
                lte = LteCellConfig(
                    serving=lte.serving,
                    intra_neighbors=lte.intra_neighbors,
                    inter_freq_layers=lte.inter_freq_layers,
                    utra_layers=lte.utra_layers,
                    geran_layers=lte.geran_layers,
                    cdma_layers=lte.cdma_layers,
                    measurement=snapshot.meas_config,
                )
            snapshot.lte_config = lte
        self._closed.append(snapshot)

    def finish(self) -> list[CellConfigSnapshot]:
        """Close the trailing episode and return all snapshots."""
        self._finish_open()
        closed = self._closed
        self._closed = []
        return closed

    @classmethod
    def crawl(cls, log_bytes: bytes) -> list[CellConfigSnapshot]:
        """Parse a whole diag log into snapshots."""
        crawler = cls()
        for record in DiagReader(log_bytes):
            crawler.feed(record)
        return crawler.finish()


def crawl_config_samples(
    log_bytes: bytes, observed_day: float = 0.0, round_index: int = 0
) -> list[ConfigSample]:
    """Convenience: diag log straight to flat D2 samples."""
    samples: list[ConfigSample] = []
    for snapshot in ConfigCrawler.crawl(log_bytes):
        samples.extend(
            snapshot.to_config_samples(observed_day=observed_day, round_index=round_index)
        )
    return samples
