"""MMLab: the paper's device-centric measurement system.

MMLab crawls handoff configurations from the signaling messages a phone
already receives, assesses handoff performance from the device side, and
analyzes the result — all without operator assistance.  This package is
the reproduction of that system:

* :mod:`repro.core.collector` — the on-device trace collector
  (MobileInsight's role): listens to the UE's message stream and writes
  the binary diag log.
* :mod:`repro.core.crawler` — parses diag logs back into per-cell
  configuration snapshots and flat configuration samples (dataset D2's
  unit).
* :mod:`repro.core.handoffs` — extracts handoff instances (dataset D1's
  unit) from the same logs, including each instance's decisive event
  and before/after radio quality.
* :mod:`repro.core.mmlab` — the facade tying collection, crawling and
  analysis together.
* :mod:`repro.core.analysis` — the study's analysis toolkit (diversity
  metrics, temporal/spatial/frequency dependence, performance impacts,
  verification, prediction).
"""

from repro.core.collector import MMLabCollector
from repro.core.crawler import ConfigCrawler, CellConfigSnapshot
from repro.core.handoffs import extract_handoff_instances
from repro.core.mmlab import MMLab
from repro.core.scanner import proactive_scan
from repro.core.server import MMLabServer, ExperimentPatch

__all__ = [
    "MMLabCollector",
    "ConfigCrawler",
    "CellConfigSnapshot",
    "extract_handoff_instances",
    "MMLab",
    "proactive_scan",
    "MMLabServer",
    "ExperimentPatch",
]
