"""MMLab's on-device trace collector.

Plays MobileInsight's role in the paper's architecture (Fig. 4): it sits
on the device, sees every signaling message the modem exchanges, and
appends them to a binary diag log.  Two collection modes mirror the
paper's measurement types:

* **Type-I** (configuration collection only): logs system information
  and RRC configuration messages — cheap, what volunteers run.
* **Type-II** (performance assessment): logs everything, including
  measurement reports and PHY measurement records, so handoff instances
  can be extracted and aligned with traffic logs.
"""

from __future__ import annotations

import io

from repro.rrc.diag import DiagWriter
from repro.rrc.messages import (
    LegacySystemInfo,
    MeasurementReport,
    Message,
    PhyServingMeas,
    RrcConnectionReconfiguration,
    Sib1,
    Sib3,
    Sib4,
    Sib5,
    Sib6,
    Sib7,
    Sib8,
)

#: Messages a Type-I collector keeps: configuration carriers only.
_TYPE1_MESSAGES = (
    Sib1, Sib3, Sib4, Sib5, Sib6, Sib7, Sib8,
    LegacySystemInfo, RrcConnectionReconfiguration,
)


class MMLabCollector:
    """Collects a device's signaling into a diag log.

    Use as a UE listener::

        collector = MMLabCollector(mode="type2")
        ue.add_listener(collector)
        ...
        log_bytes = collector.log_bytes()

    Args:
        mode: "type1" (configuration only) or "type2" (everything).
    """

    def __init__(self, mode: str = "type2"):
        if mode not in ("type1", "type2"):
            raise ValueError(f"unknown collection mode {mode!r}")
        self.mode = mode
        self._writer = DiagWriter(io.BytesIO())
        self.messages_seen = 0
        self.messages_logged = 0

    def __call__(self, now_ms: int, message: Message, direction: str) -> None:
        """Listener entry point: maybe log one message."""
        self.messages_seen += 1
        if self.mode == "type1" and not isinstance(message, _TYPE1_MESSAGES):
            return
        if self.mode == "type1" and isinstance(message, RrcConnectionReconfiguration):
            # Type-I keeps the measConfig (it is configuration) but the
            # handover command adds nothing configuration-wise.
            if message.meas_config is None:
                return
        self._writer.write(now_ms, message)
        self.messages_logged += 1

    def log_bytes(self) -> bytes:
        """The diag log collected so far."""
        return self._writer.getvalue()

    def save(self, path) -> None:
        """Write the diag log to a file."""
        with open(path, "wb") as f:
            f.write(self.log_bytes())
