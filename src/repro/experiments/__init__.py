"""Experiment drivers: one per table/figure of the paper's evaluation.

Every driver module exposes ``run(...)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows are the
series the paper plots.  The benchmarks call these drivers; so can you::

    from repro.experiments import registry
    result = registry.run("fig06")
    result.print()
"""

from repro.experiments.common import (
    ExperimentResult,
    default_d1,
    default_d2,
    default_scenario,
)
from repro.experiments import registry

__all__ = [
    "ExperimentResult",
    "default_d1",
    "default_d2",
    "default_scenario",
    "registry",
]
