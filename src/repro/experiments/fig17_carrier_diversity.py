"""Fig. 17: diversity of eight parameters across the study carriers."""

from __future__ import annotations

from repro.core.analysis.diversity import parameter_diversity
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2
from repro.experiments.fig14_param_distributions import REPRESENTATIVE_PARAMETERS
from repro.experiments.fig15_carrier_distributions import STUDY_CARRIERS


def run(d2: D2Build | None = None) -> ExperimentResult:
    """Regenerate Fig. 17: D and Cv per (parameter, carrier)."""
    d2 = d2 or default_d2()
    result = ExperimentResult(
        exp_id="fig17",
        title="Diversity measures of eight representative parameters across carriers",
    )
    result.add("parameter", *STUDY_CARRIERS)
    stores = {
        carrier: d2.store.for_carrier(carrier).for_rat("LTE")
        for carrier in STUDY_CARRIERS
    }
    for symbol, parameter in REPRESENTATIVE_PARAMETERS:
        simpsons = [
            parameter_diversity(stores[c], parameter).simpson for c in STUDY_CARRIERS
        ]
        cvs = [parameter_diversity(stores[c], parameter).cv for c in STUDY_CARRIERS]
        result.add(f"D({symbol})", *[round(v, 3) for v in simpsons])
        result.add(f"Cv({symbol})", *[round(v, 3) for v in cvs])
    result.note("paper: SK lowest diversity on almost all parameters; MobileOne "
                "low; other carriers highly diverse — configurations are "
                "carrier-specific")
    return result
