"""Fig. 19: frequency dependence of every LTE parameter."""

from __future__ import annotations

from repro.core.analysis.frequency import frequency_dependence
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2


def run(d2: D2Build | None = None, carrier: str = "A") -> ExperimentResult:
    """Regenerate Fig. 19: zeta_{D|freq} and zeta_{Cv|freq} per parameter."""
    d2 = d2 or default_d2()
    zeta_d = frequency_dependence(d2.store, carrier, measure="simpson")
    zeta_cv = frequency_dependence(d2.store, carrier, measure="cv")
    result = ExperimentResult(
        exp_id="fig19",
        title=f"Frequency dependence of handoff parameters ({carrier})",
    )
    result.add("parameter", "zeta_D|freq", "zeta_Cv|freq")
    for parameter in sorted(zeta_d, key=lambda p: zeta_d[p]):
        result.add(parameter, zeta_d[parameter], zeta_cv.get(parameter, 0.0))
    freq_dep = {p for p, z in zeta_d.items() if z > 0.1}
    result.note(f"{len(freq_dep)} parameters strongly frequency-dependent "
                f"(zeta_D > 0.1): {', '.join(sorted(freq_dep)) or '(none)'}")
    result.note("paper: priorities and A2/A5 thresholds frequency-dependent; "
                "A1/A3 and TTT/hysteresis not")
    return result
