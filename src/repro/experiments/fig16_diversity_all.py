"""Fig. 16: diversity measures of all LTE parameters in one carrier."""

from __future__ import annotations

from repro.core.analysis.diversity import all_parameter_diversity
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2


def run(d2: D2Build | None = None, carrier: str = "A") -> ExperimentResult:
    """Regenerate Fig. 16: Simpson, Cv, richness for every parameter.

    Parameters are sorted by increasing Simpson index — the paper's
    x-axis (index 0..N).
    """
    d2 = d2 or default_d2()
    store = d2.store.for_carrier(carrier).for_rat("LTE")
    measures = all_parameter_diversity(store)
    result = ExperimentResult(
        exp_id="fig16",
        title=f"Diversity measures of LTE handoff parameters ({carrier})",
    )
    result.add("index", "parameter", "simpson", "cv", "richness")
    for index, m in enumerate(measures):
        result.add(index, m.parameter, m.simpson, m.cv, m.richness)
    single_valued = sum(1 for m in measures if m.richness <= 1)
    result.note(f"{single_valued} single-valued parameters; "
                f"{len(measures)} parameters observed")
    result.note("paper: the first ~8 parameters are single-valued, the next ~8 "
                "dominated by one value; diversity is multi-faceted beyond")
    return result
