"""Fig. 15: distributions of four parameters across nine carriers."""

from __future__ import annotations

from repro.core.analysis.diversity import value_distribution
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2

#: The paper's four illustrative parameters with different diversity
#: profiles: (symbol, registry name, diversity remark).
FOUR_PARAMETERS = (
    ("Ps", "cell_reselection_priority", "high D + low Cv"),
    ("Delta_min", "q_rx_lev_min", "low D + low Cv"),
    ("Theta_s_low", "thresh_serving_low_p", "high D + high Cv"),
    ("Delta_A3", "a3_offset", "medium D + medium Cv"),
)

#: The paper's nine study carriers.
STUDY_CARRIERS = ("A", "T", "S", "V", "CM", "SK", "MO", "CH", "CW")


def run(d2: D2Build | None = None, max_values: int = 8) -> ExperimentResult:
    """Regenerate Fig. 15 over the nine study carriers."""
    d2 = d2 or default_d2()
    result = ExperimentResult(
        exp_id="fig15",
        title="Distributions of four parameters across carriers",
    )
    for symbol, parameter, remark in FOUR_PARAMETERS:
        result.add(f"-- {symbol} ({remark})")
        for carrier in STUDY_CARRIERS:
            store = d2.store.for_carrier(carrier).for_rat("LTE")
            distribution = value_distribution(store, parameter)
            top = sorted(distribution, key=lambda kv: -kv[1])[:max_values]
            result.add(
                carrier, " ".join(f"{v}:{100 * s:.0f}%" for v, s in top) or "(none)"
            )
    result.note("paper: SK Telecom single-valued on all four; the US and "
                "Chinese carriers highly diverse")
    return result
