"""Fig. 21: spatial diversity of the serving priority vs radius."""

from __future__ import annotations

from repro.core.analysis.spatial import spatial_diversity
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2


def run(
    d2: D2Build | None = None,
    city: str = "Indianapolis",
    carriers: tuple[str, ...] = ("A", "V", "S", "T"),
    radii_km: tuple[float, ...] = (0.5, 1.0, 2.0),
) -> ExperimentResult:
    """Regenerate Fig. 21 (paper: C3 = Indianapolis; AT&T/Verizon/Sprint
    shown, T-Mobile included here to exhibit its ~zero diversity)."""
    d2 = d2 or default_d2()
    result = ExperimentResult(
        exp_id="fig21", title=f"Spatial diversity for Ps under various radii ({city})"
    )
    result.add("carrier", "radius(km)", "n", "median zeta", "p25", "p75")
    for carrier in carriers:
        report = spatial_diversity(
            d2.store, d2.env, carrier, city, radii_km=radii_km
        )
        for radius, box in report.boxes.items():
            result.add(carrier, radius, box.n, box.median, box.p25, box.p75)
    result.note("paper: AT&T/Verizon/Sprint fine-tune within <= 0.5 km "
                "(nonzero zeta); T-Mobile's proximity diversity is almost zero")
    return result
