"""Fig. 12: number of cells and samples per carrier in D2."""

from __future__ import annotations

from collections import defaultdict

from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2


def run(d2: D2Build | None = None) -> ExperimentResult:
    """Regenerate Fig. 12 from a D2 build."""
    d2 = d2 or default_d2()
    cells: dict[str, set] = defaultdict(set)
    samples: dict[str, int] = defaultdict(int)
    for sample in d2.store:
        cells[sample.carrier].add(sample.gci)
        samples[sample.carrier] += 1
    result = ExperimentResult(
        exp_id="fig12", title="Number of cells and samples per carrier"
    )
    result.add("carrier", "cells", "samples")
    for carrier in sorted(cells, key=lambda c: -len(cells[c])):
        result.add(carrier, len(cells[carrier]), samples[carrier])
    result.add("TOTAL", sum(len(v) for v in cells.values()), sum(samples.values()))
    result.note("paper: 32,033 cells / 7,996,149 samples over 30 carriers; "
                "US carriers dominate, <100 cells in the smallest countries")
    return result
