"""Fig. 8: performance impact of reporting-event configurations."""

from __future__ import annotations

from repro.core.analysis.performance import dominant_config_groups, throughput_by_config
from repro.datasets.d1 import D1Build
from repro.experiments.common import ExperimentResult, default_d1


def run(d1: D1Build | None = None, carriers: tuple[str, ...] = ("A", "T")) -> ExperimentResult:
    """Regenerate Fig. 8: min pre-handoff throughput per configuration."""
    d1 = d1 or default_d1()
    result = ExperimentResult(
        exp_id="fig08",
        title="Impacts of reporting event configurations on throughput",
    )
    result.add("carrier", "config", "n", "median(Mbps)", "p25", "p75")
    for carrier in carriers:
        groups = dominant_config_groups(d1.store, carrier, top=2)
        boxes = throughput_by_config(d1.store, carrier, groups)
        for label, box in boxes.items():
            result.add(
                carrier, label, box.n,
                box.median / 1e6, box.p25 / 1e6, box.p75 / 1e6,
            )
    result.note("paper: permissive A5 serving threshold (-44 dBm) outperforms "
                "strict (-118/-121 dBm); large A3 offsets depress pre-handoff "
                "throughput")
    return result
