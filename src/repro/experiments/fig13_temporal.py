"""Fig. 13: temporal dynamics of configurations."""

from __future__ import annotations

from repro.core.analysis.temporal import (
    multi_sample_cell_fraction,
    samples_per_cell_histogram,
    temporal_dynamics,
)
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2


def run(d2: D2Build | None = None) -> ExperimentResult:
    """Regenerate Fig. 13a (samples per cell) and 13b (change rates)."""
    d2 = d2 or default_d2()
    result = ExperimentResult(exp_id="fig13", title="Temporal dynamics in configurations")
    histogram = samples_per_cell_histogram(d2.store)
    result.add("samples-per-cell", *[f"{k}:{100 * v:.1f}%" for k, v in histogram.items()])
    result.add(
        "multi-sample cells", multi_sample_cell_fraction(d2.store)
    )
    dynamics = temporal_dynamics(d2.store)
    result.add("gap bucket (days)", *[f"{b:g}" for b in dynamics.idle_changed])
    result.add("idle changed", *[f"{100 * v:.2f}%" for v in dynamics.idle_changed.values()])
    result.add("active changed", *[f"{100 * v:.2f}%" for v in dynamics.active_changed.values()])
    result.note("paper: ~48.1% of cells have multiple samples; idle-state "
                "updates 0.4-1.6% of cells, active-state 21-24%")
    return result
