"""Fig. 6: RSRP before/after active handoffs, per decisive event."""

from __future__ import annotations

from repro.core.analysis.common import fraction_above
from repro.core.analysis.performance import a5_signed_split, rsrp_change_by_event
from repro.datasets.d1 import D1Build
from repro.experiments.common import ExperimentResult, default_d1


def run(d1: D1Build | None = None, carrier: str = "A") -> ExperimentResult:
    """Regenerate Fig. 6 (paper: AT&T; consistent for other carriers)."""
    d1 = d1 or default_d1()
    report = rsrp_change_by_event(d1.store, carrier)
    result = ExperimentResult(
        exp_id="fig06", title=f"RSRP changes in active handoffs ({carrier})"
    )
    result.add("event", "n", "improved%", "improved(+3dB margin)%")
    for event in ("A3", "A5", "P"):
        n = len(report.scatter[event])
        result.add(
            event,
            n,
            100.0 * report.improved[event],
            100.0 * report.improved_with_margin[event],
        )
    split = a5_signed_split(d1.store, carrier)
    for label in ("A5", "A5(+)", "A5(-)"):
        deltas = split[label]
        result.add(
            label + " split", len(deltas), 100.0 * fraction_above(deltas, 0.0)
        )
    result.note("paper: A5 only ~52% improved; A3/P ~87% (94% with 3 dB margin); "
                "weaker-signal handoffs concentrate in A5(-)")
    return result
