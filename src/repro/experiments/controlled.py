"""Controlled (Type-II style) experiment helpers.

The paper validates configuration effects by running guided tests with
configurations of interest (Section 3.2).  These helpers pin the whole
network to one measurement configuration and expose the drive metrics
the ablation benchmarks compare: handoff count, ping-pong rate, mean
throughput and minimum pre-handoff throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.events import EventConfig
from repro.config.lte import MeasurementConfig
from repro.experiments.common import default_scenario
from repro.rrc.broadcast import ConfigServer
from repro.rrc.messages import RrcConnectionReconfiguration
from repro.simulate.runner import DriveResult, DriveSimulator
from repro.simulate.traffic import Speedtest


class FixedEventConfigServer(ConfigServer):
    """A config server that pins every cell's measConfig."""

    def __init__(self, env, events: tuple[EventConfig, ...], seed: int = 2018,
                 s_measure: float = -44.0):
        super().__init__(env, seed=seed)
        self._fixed = MeasurementConfig(events=events, periodic=None,
                                        s_measure=s_measure)

    def connection_reconfiguration(self, cell, obs_rng=None):
        return RrcConnectionReconfiguration(meas_config=self._fixed)


@dataclass(frozen=True)
class DriveMetrics:
    """Comparable outcomes of one controlled drive."""

    n_handoffs: int
    ping_pong_rate: float
    mean_throughput_bps: float
    mean_min_throughput_before_bps: float

    @classmethod
    def from_result(cls, result: DriveResult) -> "DriveMetrics":
        handoffs = [h for h in result.handoffs if h.kind == "active"]
        ping_pongs = sum(
            1
            for a, b in zip(handoffs, handoffs[1:])
            if b.target == a.source and b.time_ms - a.time_ms < 10_000
        )
        series = result.throughput_series(bin_ms=1000)
        minima = []
        last_t = 0
        for handoff in handoffs:
            window = [
                bps for start, bps in series
                if max(handoff.time_ms - 10_000, last_t + 2_000) <= start < handoff.time_ms
            ]
            if window:
                minima.append(min(window))
            last_t = handoff.time_ms
        throughputs = [sample.delivered_bps for sample in result.samples]
        return cls(
            n_handoffs=len(handoffs),
            ping_pong_rate=(ping_pongs / max(len(handoffs) - 1, 1)),
            mean_throughput_bps=float(np.mean(throughputs)) if throughputs else 0.0,
            mean_min_throughput_before_bps=float(np.mean(minima)) if minima else 0.0,
        )


def run_controlled_drive(
    events: tuple[EventConfig, ...],
    carrier: str = "A",
    seed: int = 7,
    duration_s: float = 480.0,
    scenario=None,
    radio_model=None,
) -> DriveMetrics:
    """One drive with a pinned measConfig; returns its metrics."""
    scenario = scenario or default_scenario()
    env = scenario.env
    if radio_model is not None:
        from repro.cellnet.world import RadioEnvironment

        env = RadioEnvironment(scenario.plan, radio=radio_model)
    server = FixedEventConfigServer(env, events, seed=2018)
    sim = DriveSimulator(env, server, carrier, seed=seed)
    trajectory = scenario.urban_trajectory(
        np.random.default_rng((seed, 0xAB)), duration_s=duration_s, speed_kmh=42.0
    )
    result = sim.run(trajectory, Speedtest(), run_index=seed)
    return DriveMetrics.from_result(result)
