"""Fig. 20: city-level priority distributions (five US cities)."""

from __future__ import annotations

from repro.core.analysis.spatial import city_distributions
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2

#: The paper's C1..C5 with their city names.
US_STUDY_CITIES = ("Chicago", "LA", "Indianapolis", "Columbus", "Lafayette")


def run(d2: D2Build | None = None, carriers: tuple[str, ...] = ("A", "T", "V", "S")) -> ExperimentResult:
    """Regenerate Fig. 20: per-carrier per-city priority shares."""
    d2 = d2 or default_d2()
    table = city_distributions(
        d2.store, "cell_reselection_priority", carriers, US_STUDY_CITIES
    )
    result = ExperimentResult(
        exp_id="fig20", title="City-level priority distributions"
    )
    result.add("carrier", "city", "priority shares")
    for carrier, cities in table.items():
        for city, shares in cities.items():
            result.add(
                carrier,
                city,
                " ".join(f"{p}:{100 * s:.0f}%" for p, s in shares.items()) or "(none)",
            )
    result.note("paper: C1 (Chicago) visibly differs from the other cities — "
                "operators configure market areas differently")
    return result
