"""Fig. 5: decisive reporting events and their configurations."""

from __future__ import annotations

from repro.core.analysis.events import EVENT_ORDER, event_mix
from repro.datasets.d1 import D1Build
from repro.experiments.common import ExperimentResult, default_d1


def run(d1: D1Build | None = None, carriers: tuple[str, ...] = ("A", "T")) -> ExperimentResult:
    """Regenerate Fig. 5 for the given carriers (paper: AT&T, T-Mobile)."""
    d1 = d1 or default_d1()
    result = ExperimentResult(
        exp_id="fig05",
        title="Reporting event configurations observed in active-state handoffs",
    )
    result.add("carrier", *[f"{e}%" for e in EVENT_ORDER])
    for carrier in carriers:
        report = event_mix(d1.store, carrier)
        result.add(carrier, *[100.0 * report.share(e) for e in EVENT_ORDER])
        if report.a3_offset_range:
            result.note(
                f"{carrier}: Delta_A3 in [{report.a3_offset_range[0]:g}, "
                f"{report.a3_offset_range[1]:g}] dB; H_A3 in "
                f"[{report.a3_hysteresis_range[0]:g}, {report.a3_hysteresis_range[1]:g}] dB"
            )
        for metric, (serving, candidate) in report.a5_threshold_ranges.items():
            result.note(
                f"{carrier}: A5({metric}) Theta_S in [{serving[0]:g}, {serving[1]:g}], "
                f"Theta_C in [{candidate[0]:g}, {candidate[1]:g}]"
            )
        result.note(f"{carrier}: n = {report.n_instances}")
    result.note("paper: AT&T A3 67.4% / A5 26.1% / P 4.4% / A2 1.7%; "
                "T-Mobile A3 67.7% / P 20.2% / A5 10.0%")
    return result
