"""Fig. 18: serving/candidate priority breakdown over frequency."""

from __future__ import annotations

from repro.cellnet.bands import earfcn_to_band
from repro.core.analysis.frequency import multi_valued_cell_fraction, priority_breakdown
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2


def run(d2: D2Build | None = None, carrier: str = "A") -> ExperimentResult:
    """Regenerate Fig. 18 for one carrier (paper: AT&T)."""
    d2 = d2 or default_d2()
    report = priority_breakdown(d2.store, carrier)
    result = ExperimentResult(
        exp_id="fig18",
        title=f"Serving and candidate cell priorities over frequency ({carrier})",
    )
    result.add("side", "channel", "band", "priority shares")
    for side, table in (("serving", report.serving), ("candidate", report.candidate)):
        for channel, shares in table.items():
            try:
                band = earfcn_to_band(channel).number
            except ValueError:
                band = "?"
            result.add(
                side,
                channel,
                band,
                " ".join(f"{p}:{100 * s:.0f}%" for p, s in shares.items()),
            )
    result.add(
        "multi-valued-cell fraction", multi_valued_cell_fraction(d2.store, carrier)
    )
    result.note("paper (AT&T): channels mostly single-priority; LTE-exclusive "
                "bands 12/17 low priority; band 30 (channel 9820) top priority; "
                "~6.3% of cells on multi-valued channels")
    return result
