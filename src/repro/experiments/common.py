"""Shared experiment infrastructure.

The paper's figures draw from two datasets; building them is the
expensive part, so the default builds are process-cached and shared by
every driver and benchmark.  Scale knobs:

* ``default_d1()`` — a laptop-scale D1 (hundreds of instances); the
  figures' shapes are stable at this size.
* ``default_d2()`` — a mid-scale D2 (thousands of cells, ~1M samples).
* ``paper_scale_d2_options()`` — options approaching the paper's
  32k-cell scale for users with minutes to spare.

Both default builds run on the work-unit pipeline; pass ``workers=N``
(or set ``REPRO_WORKERS``) to fan sessions/drives out over a process
pool.  Worker count never changes the datasets, only the build time.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field, replace

from repro.datasets.d1 import D1Build, D1Options, build_d1
from repro.datasets.d2 import D2Build, D2Options, build_d2
from repro.simulate.scenarios import DriveScenario, drive_scenario


@dataclass
class ExperimentResult:
    """Printable result of one experiment driver.

    Attributes:
        exp_id: Experiment id ("fig06", "tab04", ...).
        title: Human-readable title matching the paper's artifact.
        rows: Printable rows — tuples of (label, *values).
        notes: Free-form remarks (sample sizes, caveats).
    """

    exp_id: str
    title: str
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row) -> None:
        self.rows.append(tuple(row))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def formatted(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} =="]
        for row in self.rows:
            cells = []
            for value in row:
                if isinstance(value, float):
                    cells.append(f"{value:.3f}")
                else:
                    cells.append(str(value))
            lines.append("  " + "  ".join(cells))
        for note in self.notes:
            lines.append(f"  # {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.formatted())


#: Default D1 scale: all four carriers, a few drives each.
DEFAULT_D1_OPTIONS = D1Options(
    seed=7,
    config_seed=2018,
    scenario="indianapolis",
    active_drives=4,
    idle_drives=3,
    drive_duration_s=600.0,
    carriers=("A", "T", "V", "S"),
)

#: Default D2 scale: full volunteer population plus the dense sweeps
#: over the default world (~10k deployed cells).
DEFAULT_D2_OPTIONS = D2Options(
    seed=7,
    config_seed=2018,
    n_volunteers=35,
    extra_rings=0,
    include_dense=True,
)


def paper_scale_d2_options() -> D2Options:
    """D2 options approaching the paper's 32k-cell scale."""
    return D2Options(
        seed=7,
        config_seed=2018,
        n_volunteers=35,
        extra_rings=3,
        include_dense=True,
    )


def default_workers() -> int:
    """Default build parallelism: the ``REPRO_WORKERS`` env var, or 1."""
    try:
        return max(int(os.environ.get("REPRO_WORKERS", "1")), 1)
    except ValueError:
        return 1


def default_d1(scale: float = 1.0, workers: int | None = None) -> D1Build:
    """The shared default D1 build (cached per process).

    ``workers`` only changes build time, never the dataset (parallel
    builds are bit-identical to serial ones).
    """
    return _default_d1_cached(scale, workers if workers is not None else default_workers())


@functools.lru_cache(maxsize=2)
def _default_d1_cached(scale: float, workers: int) -> D1Build:
    options = replace(DEFAULT_D1_OPTIONS, scale=scale, workers=workers)
    return build_d1(options)


def default_d2(workers: int | None = None) -> D2Build:
    """The shared default D2 build (cached per process)."""
    return _default_d2_cached(workers if workers is not None else default_workers())


@functools.lru_cache(maxsize=1)
def _default_d2_cached(workers: int) -> D2Build:
    return build_d2(replace(DEFAULT_D2_OPTIONS, workers=workers))


@functools.lru_cache(maxsize=1)
def default_scenario() -> DriveScenario:
    """The shared Type-II scenario for controlled experiments."""
    return drive_scenario("indianapolis", seed=7, config_seed=2018)
