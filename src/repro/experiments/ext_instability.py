"""Extension: runtime handoff instability vs configuration conflicts.

Not a figure of the paper itself, but of its agenda: Section 6 asks
whether configurations "introduce unexpected troubles", pointing to the
authors' instability results ([22]).  This driver measures ping-pong and
loop rates in D1's active traces and correlates looping cells with the
statically detected priority conflicts.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.analysis.instability import detect_instability
from repro.datasets.d1 import D1Build
from repro.experiments.common import ExperimentResult, default_d1


def run(d1: D1Build | None = None) -> ExperimentResult:
    """Analyze instability per carrier over the D1 drives."""
    d1 = d1 or default_d1()
    result = ExperimentResult(
        exp_id="ext-instability",
        title="Runtime handoff instability (extension; cf. paper [22])",
    )
    result.add("carrier", "drive", "handoffs", "ping-pong rate", "loops")
    per_carrier: dict[str, list] = defaultdict(list)
    for drive in d1.drives:
        instances = [
            i for i in d1.store.active().for_carrier(drive.carrier)
        ]
        # Group the store per drive via timestamps present in this drive.
        drive_times = {h.time_ms for h in drive.handoffs}
        drive_instances = [i for i in instances if i.time_ms in drive_times]
        if not drive_instances:
            continue
        report = detect_instability(drive_instances)
        per_carrier[drive.carrier].append(report)
    for carrier, reports in sorted(per_carrier.items()):
        for index, report in enumerate(reports):
            result.add(
                carrier, index, report.n_handoffs,
                report.ping_pong_rate, len(report.loops),
            )
    for carrier, reports in sorted(per_carrier.items()):
        total = sum(r.n_handoffs for r in reports)
        pp = sum(r.n_ping_pongs for r in reports)
        loops = sum(len(r.loops) for r in reports)
        result.note(
            f"{carrier}: {total} handoffs, {pp} ping-pongs, {loops} loops "
            "across drives"
        )
    return result
