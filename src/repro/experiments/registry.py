"""Experiment registry: id -> driver.

The experiment ids match DESIGN.md's per-experiment index; ``run(id)``
executes the driver with the shared default datasets.
"""

from __future__ import annotations

import importlib

from repro.experiments.common import ExperimentResult

#: Experiment id -> driver module.
EXPERIMENTS: dict[str, str] = {
    "tab02": "repro.experiments.tab02_parameters",
    "tab04": "repro.experiments.tab04_rat_breakdown",
    "fig05": "repro.experiments.fig05_events",
    "fig06": "repro.experiments.fig06_rsrp_change",
    "fig07": "repro.experiments.fig07_throughput_timeline",
    "fig08": "repro.experiments.fig08_config_throughput",
    "fig09": "repro.experiments.fig09_radio_impacts",
    "fig10": "repro.experiments.fig10_idle_rsrp",
    "fig11": "repro.experiments.fig11_threshold_gaps",
    "fig12": "repro.experiments.fig12_dataset",
    "fig13": "repro.experiments.fig13_temporal",
    "fig14": "repro.experiments.fig14_param_distributions",
    "fig15": "repro.experiments.fig15_carrier_distributions",
    "fig16": "repro.experiments.fig16_diversity_all",
    "fig17": "repro.experiments.fig17_carrier_diversity",
    "fig18": "repro.experiments.fig18_priority_frequency",
    "fig19": "repro.experiments.fig19_freq_dependence",
    "fig20": "repro.experiments.fig20_city_priorities",
    "fig21": "repro.experiments.fig21_spatial_diversity",
    "fig22": "repro.experiments.fig22_rat_evolution",
    # Extensions beyond the paper's figures (its Section 6 agenda).
    "ext-instability": "repro.experiments.ext_instability",
    "ext-policies": "repro.experiments.ext_policies",
}


def run(exp_id: str, **kwargs) -> ExperimentResult:
    """Execute one experiment driver by id."""
    module_name = EXPERIMENTS.get(exp_id)
    if module_name is None:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}")
    module = importlib.import_module(module_name)
    return module.run(**kwargs)


def all_experiment_ids() -> list[str]:
    """All registered experiment ids, tables first then figures."""
    return sorted(EXPERIMENTS)
