"""Extension: per-carrier handoff-policy inference (paper Section 6).

"What are the goals for operators to achieve in their policy-based
handoffs?" — this driver crawls each study carrier's configurations and
labels them on the performance-driven vs overhead-driven axis.
"""

from __future__ import annotations

from repro.cellnet.rat import RAT
from repro.core.analysis.policies import carrier_policy_profile
from repro.core.crawler import ConfigCrawler
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2
from repro.rrc.diag import DiagWriter


def run(d2: D2Build | None = None, cells_per_carrier: int = 150) -> ExperimentResult:
    """Infer policy fingerprints for the nine study carriers."""
    d2 = d2 or default_d2()
    result = ExperimentResult(
        exp_id="ext-policies",
        title="Inferred handoff policies per carrier (extension)",
    )
    result.add("carrier", "n", "performance-driven", "balanced",
               "overhead-driven", "mean eagerness")
    snapshots = []
    for carrier in ("A", "T", "S", "V", "CM", "SK", "MO", "CH", "CW"):
        cells = [
            c for c in d2.plan.registry.by_carrier(carrier) if c.rat is RAT.LTE
        ][:cells_per_carrier]
        writer = DiagWriter.in_memory()
        for cell in cells:
            for message in d2.server.sib_messages(cell):
                writer.write(0, message)
            writer.write(0, d2.server.connection_reconfiguration(cell))
        snapshots.extend(ConfigCrawler.crawl(writer.getvalue()))
    profile = carrier_policy_profile(snapshots)
    for carrier, data in profile.items():
        result.add(
            carrier,
            data["n"],
            data["labels"].get("performance-driven", 0.0),
            data["labels"].get("balanced", 0.0),
            data["labels"].get("overhead-driven", 0.0),
            data["mean_eagerness"],
        )
    result.note("positive eagerness = hands off early (performance-driven); "
                "negative = defers handoffs (overhead-driven)")
    return result
