"""Fig. 9: radio-signal impacts of the A3/A5 configuration values."""

from __future__ import annotations

from repro.core.analysis.performance import radio_impact_pairs
from repro.datasets.d1 import D1Build
from repro.experiments.common import ExperimentResult, default_d1


def run(d1: D1Build | None = None, carrier: str = "A") -> ExperimentResult:
    """Regenerate Fig. 9's three pairwise boxplot relations."""
    d1 = d1 or default_d1()
    pairs = radio_impact_pairs(d1.store, carrier)
    result = ExperimentResult(
        exp_id="fig09", title=f"Radio signal impacts of A3/A5 configurations ({carrier})"
    )
    result.add("relation", "config value", "n", "median", "p25", "p75")
    for relation, boxes in pairs.items():
        for value, box in boxes.items():
            if box.n == 0:
                continue
            result.add(relation, value, box.n, box.median, box.p25, box.p75)
    result.note("expected monotonicity: larger Delta_A3 -> larger delta-RSRP; "
                "stricter Theta_A5,S -> weaker r_old; larger Theta_A5,C -> "
                "stronger r_new ('handoffs are performed as configured')")
    return result
