"""Fig. 14: distributions of eight representative parameters (AT&T)."""

from __future__ import annotations

from repro.core.analysis.diversity import parameter_diversity, value_distribution
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2

#: The paper's eight representative parameters: paper symbol -> registry
#: name.  (Left to right in Fig. 14.)
REPRESENTATIVE_PARAMETERS = (
    ("Ps", "cell_reselection_priority"),
    ("Hs", "q_hyst"),
    ("Delta_min", "q_rx_lev_min"),
    ("Theta_s_lower", "thresh_serving_low_p"),
    ("Theta_nonintra", "s_non_intra_search_p"),
    ("Delta_A3", "a3_offset"),
    ("Theta_A5_S", "a5_threshold1"),
    ("T_reportTrigger", "a3_time_to_trigger"),
)


def run(d2: D2Build | None = None, carrier: str = "A", max_values: int = 12) -> ExperimentResult:
    """Regenerate Fig. 14 for one carrier (paper: AT&T)."""
    d2 = d2 or default_d2()
    store = d2.store.for_carrier(carrier).for_rat("LTE")
    result = ExperimentResult(
        exp_id="fig14",
        title=f"Distribution of eight representative parameters ({carrier})",
    )
    for symbol, parameter in REPRESENTATIVE_PARAMETERS:
        measures = parameter_diversity(store, parameter)
        distribution = value_distribution(store, parameter)
        top = sorted(distribution, key=lambda kv: -kv[1])[:max_values]
        result.add(
            symbol,
            f"D={measures.simpson:.2f}",
            f"Cv={measures.cv:.2f}",
            f"richness={measures.richness}",
            " ".join(f"{v}:{100 * share:.0f}%" for v, share in top),
        )
    result.note("paper (AT&T): Hs single-valued (4 dB); Delta_min dominated by "
                "-122 dBm; Theta_s_lower / Theta_nonintra / Theta_A5_S ~20+ "
                "options; priorities spread over 2-6")
    return result
