"""Table 2: the standardized LTE handoff parameter catalog."""

from __future__ import annotations

from repro.cellnet.rat import RAT
from repro.config.parameters import parameters_for
from repro.experiments.common import ExperimentResult


def run() -> ExperimentResult:
    """Regenerate Table 2 from the parameter registry."""
    result = ExperimentResult(
        exp_id="tab02",
        title="Main configuration parameters standardized for handoff at 4G LTE cells",
    )
    result.add("parameter", "category", "used_for", "message", "symbol")
    for spec in parameters_for(RAT.LTE):
        result.add(
            spec.name,
            spec.category,
            "+".join(spec.used_for),
            spec.message,
            spec.paper_symbol or "-",
        )
    result.note(f"{len(parameters_for(RAT.LTE))} parameters (paper: 66)")
    return result
