"""Fig. 7: throughput timelines of two handoffs with Delta_A3 = 5 vs 12 dB.

A controlled Type-II experiment: the same drive is run twice against a
configuration server that pins every cell's measConfig to a single A3
event with the requested offset, and the throughput around the first
handoff is binned at 1 s and 100 ms as in the paper.  The larger offset
defers the handoff until the serving link has already collapsed, so the
minimum pre-handoff throughput drops by a large factor (the paper
measures 2.2 Mbps vs 437 kbps, an ~80% decline).
"""

from __future__ import annotations

import numpy as np

from repro.config.events import EventConfig, EventType
from repro.config.lte import MeasurementConfig
from repro.experiments.common import ExperimentResult, default_scenario
from repro.rrc.broadcast import ConfigServer
from repro.rrc.messages import RrcConnectionReconfiguration
from repro.simulate.runner import DriveResult, DriveSimulator
from repro.simulate.traffic import Speedtest


class FixedA3ConfigServer(ConfigServer):
    """A config server that pins every measConfig to one A3 offset."""

    def __init__(self, env, offset_db: float, seed: int = 2018,
                 time_to_trigger_ms: int = 320):
        super().__init__(env, seed=seed)
        self.offset_db = offset_db
        self.time_to_trigger_ms = time_to_trigger_ms

    def connection_reconfiguration(self, cell, obs_rng=None):
        meas = MeasurementConfig(
            events=(
                EventConfig(
                    event=EventType.A3,
                    metric="rsrp",
                    offset=self.offset_db,
                    hysteresis=1.0,
                    time_to_trigger_ms=self.time_to_trigger_ms,
                ),
            ),
            periodic=None,
            s_measure=-44.0,  # gate disabled: always measure neighbors
        )
        return RrcConnectionReconfiguration(meas_config=meas)


def _drive_with_offset(offset_db: float, carrier: str = "T", seed: int = 7) -> DriveResult:
    scenario = default_scenario()
    server = FixedA3ConfigServer(scenario.env, offset_db, seed=2018)
    sim = DriveSimulator(scenario.env, server, carrier, seed=seed)
    trajectory = scenario.urban_trajectory(
        np.random.default_rng((seed, 0xF7)), duration_s=420.0, speed_kmh=45.0
    )
    return sim.run(trajectory, Speedtest(), run_index=int(offset_db))


def timeline_around_first_handoff(
    result: DriveResult, window_s: float = 20.0, bin_ms: int = 1000
) -> list[tuple[float, float]]:
    """(seconds relative to handoff, Mbps) series around the first handoff."""
    active = [h for h in result.handoffs if h.kind == "active"]
    if not active:
        return []
    t0 = active[len(active) // 2].time_ms  # a mid-drive handoff
    series = []
    for start, bps in result.throughput_series(bin_ms=bin_ms):
        offset_s = (start - t0) / 1000.0
        if -window_s <= offset_s <= window_s:
            series.append((offset_s, bps / 1e6))
    return series


def min_throughput_before(result: DriveResult, window_ms: int = 10_000) -> float:
    """Mean over handoffs of the minimum 1 s throughput before each."""
    series = result.throughput_series(bin_ms=1000)
    minima = []
    for handoff in result.handoffs:
        if handoff.kind != "active":
            continue
        window = [
            bps for start, bps in series
            if handoff.time_ms - window_ms <= start < handoff.time_ms
        ]
        if window:
            minima.append(min(window))
    return float(np.mean(minima)) if minima else 0.0


def run(offsets: tuple[float, float] = (5.0, 12.0)) -> ExperimentResult:
    """Regenerate Fig. 7: the small- vs large-offset handoff timelines."""
    result = ExperimentResult(
        exp_id="fig07",
        title="Throughput of handoffs using distinct A3 offsets",
    )
    minima = {}
    for offset in offsets:
        drive = _drive_with_offset(offset)
        minimum = min_throughput_before(drive)
        minima[offset] = minimum
        result.add(f"Delta_A3={offset:g}dB", "min-thpt-before(Mbps)", minimum / 1e6)
        for offset_s, mbps in timeline_around_first_handoff(drive)[:41]:
            result.add(f"  t{offset_s:+.0f}s", mbps)
    small, large = offsets
    if minima[small] > 0:
        decline = 1.0 - minima[large] / minima[small]
        result.note(
            f"min pre-handoff throughput declines {100 * decline:.0f}% from "
            f"{small:g} dB to {large:g} dB offset (paper: ~80%, 5x gap)"
        )
    return result
