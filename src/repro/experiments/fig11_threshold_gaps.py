"""Fig. 11: measurement vs decision threshold gaps."""

from __future__ import annotations

from repro.core.analysis.thresholds import threshold_gaps
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2


def run(d2: D2Build | None = None, carriers: tuple[str, ...] = ("A", "T", "V", "S")) -> ExperimentResult:
    """Regenerate Fig. 11's three gap CDFs (US carriers)."""
    d2 = d2 or default_d2()
    report = threshold_gaps(d2.store, carriers=carriers)
    result = ExperimentResult(
        exp_id="fig11",
        title="Radio signal thresholds for measurement vs idle-state decision",
    )
    result.add("gap", "p5", "p25", "median", "p75", "p95")
    for name, cdf in report.cdfs().items():
        if not cdf:
            continue
        quantiles = {round(f, 2): v for v, f in cdf}
        result.add(
            name,
            quantiles.get(0.05, cdf[0][0]),
            quantiles.get(0.25, 0.0),
            quantiles.get(0.5, 0.0),
            quantiles.get(0.75, 0.0),
            quantiles.get(0.95, cdf[-1][0]),
        )
    result.add("cells", len(report.intra_minus_nonintra))
    result.add("tie fraction (intra == nonintra)", report.tie_fraction)
    result.add("violations (intra < nonintra)", report.violation_fraction)
    result.add("premature (gap > 30 dB)", report.premature_fraction(30.0))
    result.add("late non-intra (nonintra < serving-low)", report.late_nonintra_fraction)
    result.note("paper: gap >= 0 everywhere with ~5% ties; intra-vs-decision gap "
                "> 30 dB in ~95% of cells; Theta_nonintra < Theta(s)_low occurs")
    return result
