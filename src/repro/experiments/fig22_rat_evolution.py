"""Fig. 22: configuration diversity across the RAT evolution."""

from __future__ import annotations

from repro.core.analysis.rats import rat_diversity_boxes
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2


def run(d2: D2Build | None = None) -> ExperimentResult:
    """Regenerate Fig. 22: per-(carrier, RAT) Simpson-index boxplots."""
    d2 = d2 or default_d2()
    boxes = rat_diversity_boxes(d2.store)
    result = ExperimentResult(
        exp_id="fig22", title="Diversity metrics of all parameters per RAT"
    )
    result.add("carrier-RAT", "n params", "median D", "p25", "p75", "max")
    for label, box in boxes.items():
        result.add(label, box.n, box.median, box.p25, box.p75, box.maximum)
    result.note("paper: diversity grows along the RAT evolution — LTE and "
                "WCDMA rich, EVDO/GSM nearly static (single dominant values)")
    return result
