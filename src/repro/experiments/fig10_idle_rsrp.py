"""Fig. 10: RSRP changes in idle-state handoffs per priority class."""

from __future__ import annotations

from repro.core.analysis.performance import IDLE_CLASSES, idle_rsrp_change
from repro.datasets.d1 import D1Build
from repro.experiments.common import ExperimentResult, default_d1


def run(d1: D1Build | None = None) -> ExperimentResult:
    """Regenerate Fig. 10, pooled over the four US carriers."""
    d1 = d1 or default_d1()
    classes = idle_rsrp_change(d1.store)
    result = ExperimentResult(
        exp_id="fig10", title="RSRP changes in idle-state handoffs"
    )
    result.add("class", "n", "improved%")
    for cls in IDLE_CLASSES:
        data = classes[cls]
        result.add(cls, data["n"], 100.0 * data["improved"])
    result.note("paper: almost all idle handoffs go to stronger cells except "
                "higher-priority targets (~20% weaker)")
    return result
