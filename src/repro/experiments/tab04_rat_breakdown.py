"""Table 4: parameter counts and cell share per RAT."""

from __future__ import annotations

from repro.core.analysis.rats import rat_breakdown
from repro.datasets.d2 import D2Build
from repro.experiments.common import ExperimentResult, default_d2


def run(d2: D2Build | None = None) -> ExperimentResult:
    """Regenerate Table 4 from a D2 build."""
    d2 = d2 or default_d2()
    report = rat_breakdown(d2.store)
    result = ExperimentResult(exp_id="tab04", title="Breakdown per RAT")
    result.add("rat", "n_parameters", "cell_share")
    for rat, count in report.parameter_counts.items():
        result.add(rat, count, report.cell_shares[rat])
    result.note(f"total unique cells: {report.total_cells}")
    result.note("paper: LTE 66/72%, UMTS 64/14%, GSM 9/5%, EVDO 14/5%, CDMA1x 4/4%")
    return result
