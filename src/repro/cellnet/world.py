"""The radio environment: deployment + propagation, queryable by UEs.

``RadioEnvironment`` is what a simulated device "sees": given a location
and a carrier subscription, it answers which cells are audible, how
strong each is, and which co-channel cells interfere.  A uniform-grid
spatial index keeps neighbor queries fast enough for the long drive
simulations behind datasets D1/D2.
"""

from __future__ import annotations

import math
from collections import OrderedDict

from repro.cellnet.cell import Cell, CellId, CellRegistry
from repro.cellnet.deployment import DeploymentPlan
from repro.cellnet.geo import Point
import numpy as np

from repro.cellnet.radio import (
    Measurement,
    PreparedCells,
    RadioModel,
    RadioSnapshot,
)
from repro.cellnet.rat import RAT


class _SpatialIndex:
    """Uniform-grid bucket index over cell locations."""

    def __init__(self, cells: list[Cell], cell_size_m: float = 2000.0):
        self._size = cell_size_m
        self._buckets: dict[tuple[int, int], list[Cell]] = {}
        for cell in cells:
            self._buckets.setdefault(self._key(cell.location), []).append(cell)

    def _key(self, p: Point) -> tuple[int, int]:
        return (math.floor(p.x / self._size), math.floor(p.y / self._size))

    def near(self, location: Point, radius_m: float) -> list[Cell]:
        """All indexed cells within ``radius_m`` of ``location``."""
        kx, ky = self._key(location)
        span = math.ceil(radius_m / self._size)
        found: list[Cell] = []
        for bx in range(kx - span, kx + span + 1):
            for by in range(ky - span, ky + span + 1):
                for cell in self._buckets.get((bx, by), ()):
                    if cell.location.distance_to(location) <= radius_m:
                        found.append(cell)
        return found


class RadioEnvironment:
    """Queryable world model combining deployment and propagation.

    Args:
        plan: The deployment to expose.
        radio: Propagation model; a default seeded model is built when
            omitted.
        audible_radius_m: Cells farther than this are never returned —
            beyond a few kilometres RSRP falls below the -140 dBm floor
            anyway, so this is purely a performance cutoff.
    """

    def __init__(
        self,
        plan: DeploymentPlan,
        radio: RadioModel | None = None,
        audible_radius_m: float = 6000.0,
    ):
        self.plan = plan
        self.radio = radio or RadioModel(seed=1)
        self.audible_radius_m = audible_radius_m
        self._index = _SpatialIndex(list(plan.registry))
        #: Prepared-neighborhood LRU: hits move to the back, inserts past
        #: ``snapshot_cache_size`` evict the least recently used entry, so
        #: long multi-city sweeps keep their working set warm instead of
        #: periodically re-preparing every neighborhood.
        self.snapshot_cache_size = 4096
        self._snapshot_cache: OrderedDict = OrderedDict()
        #: Prepared-cache hit/miss counters; surfaced in ``REPRO_PROFILE=1``
        #: stage timings and by fleet aggregates.
        self.snapshot_cache_hits = 0
        self.snapshot_cache_misses = 0

    @property
    def registry(self) -> CellRegistry:
        """The cell registry backing this environment."""
        return self.plan.registry

    def cells_near(
        self,
        location: Point,
        carrier: str | None = None,
        rat: RAT | None = None,
        radius_m: float | None = None,
    ) -> list[Cell]:
        """Audible cells around ``location``, optionally filtered.

        Results are sorted by (carrier, gci) for determinism.
        """
        radius = radius_m if radius_m is not None else self.audible_radius_m
        cells = self._index.near(location, radius)
        if carrier is not None:
            cells = [c for c in cells if c.carrier == carrier]
        if rat is not None:
            cells = [c for c in cells if c.rat is rat]
        return sorted(cells, key=lambda c: c.cell_id)

    def co_channel_interferers(self, cell: Cell, location: Point) -> list[Cell]:
        """Other same-channel cells audible at ``location``.

        Served from the spatial index (which already bounds candidates by
        the audible radius) rather than scanning the deployment's full
        per-(RAT, channel) cell list; sorted by cell id for determinism.
        """
        interferers = [
            c
            for c in self._index.near(location, self.audible_radius_m)
            if c.rat is cell.rat
            and c.channel == cell.channel
            and c.cell_id != cell.cell_id
        ]
        interferers.sort(key=lambda c: c.cell_id)
        return interferers

    def measure(self, cell: Cell, location: Point) -> Measurement:
        """Measure one cell at a location, with co-channel interference."""
        return self.radio.measure(
            cell, location, co_channel=self.co_channel_interferers(cell, location)
        )

    def measure_all(
        self,
        location: Point,
        carrier: str,
        rat: RAT | None = None,
        radius_m: float | None = None,
    ) -> list[Measurement]:
        """Measurements of all audible cells of one carrier.

        Sorted strongest-first by RSRP, which is the order a modem's
        cell-search reports candidates.
        """
        measurements = [
            self.measure(cell, location)
            for cell in self.cells_near(location, carrier=carrier, rat=rat, radius_m=radius_m)
        ]
        measurements.sort(key=lambda m: (-m.rsrp_dbm, m.cell.cell_id))
        return measurements

    def strongest_cell(
        self, location: Point, carrier: str, rat: RAT | None = None
    ) -> Cell | None:
        """The strongest audible cell of ``carrier`` at ``location``."""
        measurements = self.measure_all(location, carrier, rat=rat)
        return measurements[0].cell if measurements else None

    def snapshot(
        self,
        location: Point,
        carrier: str,
        radius_m: float = 3000.0,
    ) -> RadioSnapshot:
        """Vectorized per-tick measurement of one carrier's nearby cells.

        This is the hot path of the drive simulation: RSRP for every
        audible cell is computed in one numpy pass, and the snapshot
        serves RSRQ/SINR lazily from the same co-channel power sums.
        """
        prepared = self.prepared_for(location, carrier, radius_m)
        rsrp = self.radio.rsrp_prepared(prepared, location)
        return RadioSnapshot(self.radio, prepared, rsrp, location)

    def prepared_for(
        self, location: Point, carrier: str, radius_m: float = 3000.0
    ) -> PreparedCells:
        """The prepared audible-cell set covering ``location`` (LRU).

        Cached on a 200 m location grid: a moving UE re-queries nearly
        identical neighborhoods tick after tick.  The extra 200 m guard
        band keeps the cached list a superset of the exact query
        anywhere inside the grid square.
        """
        key = (round(location.x / 200.0), round(location.y / 200.0), carrier, radius_m)
        cache = self._snapshot_cache
        prepared = cache.get(key)
        if prepared is None:
            self.snapshot_cache_misses += 1
            cells = self.cells_near(location, carrier=carrier, radius_m=radius_m + 200.0)
            prepared = self.radio.prepare(cells)
            while len(cache) >= self.snapshot_cache_size:
                cache.popitem(last=False)
            cache[key] = prepared
        else:
            self.snapshot_cache_hits += 1
            cache.move_to_end(key)
        return prepared

    def snapshot_batch(
        self, spots: list[tuple[Point, str]], radius_m: float = 3000.0
    ) -> list[RadioSnapshot]:
        """Snapshots of many (location, carrier) spots, batched physics.

        Spots sharing a prepared neighborhood run the RSRP chain as one
        broadcast pass (:meth:`RadioModel.rsrp_prepared_batch`).  Entry
        ``j`` is bit-identical to ``snapshot(spots[j][0], spots[j][1])``
        — RSRQ/SINR stay lazy, exactly as the single-spot path leaves
        them (their per-snapshot accumulation is sequential by
        construction, so batching them saves nothing).
        """
        groups: dict[int, tuple[PreparedCells, list[int]]] = {}
        for j, (location, carrier) in enumerate(spots):
            prepared = self.prepared_for(location, carrier, radius_m)
            entry = groups.get(id(prepared))
            if entry is None:
                groups[id(prepared)] = (prepared, [j])
            else:
                entry[1].append(j)
        out: list[RadioSnapshot | None] = [None] * len(spots)
        for prepared, idxs in groups.values():
            if len(idxs) == 1 or not prepared.cells:
                # Lone spots keep the scratch-buffered single-location
                # chain (the broadcast pass only pays off shared).
                for j in idxs:
                    rsrp = self.radio.rsrp_prepared(prepared, spots[j][0])
                    out[j] = RadioSnapshot(self.radio, prepared, rsrp, spots[j][0])
                continue
            count = len(idxs)
            xs = np.fromiter((spots[j][0].x for j in idxs), float, count=count)
            ys = np.fromiter((spots[j][0].y for j in idxs), float, count=count)
            rsrp = self.radio.rsrp_prepared_batch(prepared, xs, ys)
            for k, j in enumerate(idxs):
                out[j] = RadioSnapshot(self.radio, prepared, rsrp[k], spots[j][0])
        return out

    def reserve_snapshot_capacity(self, occupied_keys: int) -> None:
        """Grow the prepared-cache capacity to fit a fleet's working set.

        A fleet occupying ``occupied_keys`` distinct (grid cell, carrier)
        keys per tick would thrash an LRU smaller than that count; the
        capacity is raised (never shrunk) to twice the occupancy plus
        slack, so every occupied neighborhood stays resident between
        ticks.
        """
        needed = 2 * occupied_keys + 64
        if needed > self.snapshot_cache_size:
            self.snapshot_cache_size = needed

    def snapshot_cache_stats(self) -> dict:
        """Hit/miss counters and sizing of the prepared-neighborhood LRU."""
        hits, misses = self.snapshot_cache_hits, self.snapshot_cache_misses
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
            "entries": len(self._snapshot_cache),
            "capacity": self.snapshot_cache_size,
        }

    def get_cell(self, cell_id: CellId) -> Cell:
        """Resolve a cell identity to its :class:`Cell`."""
        return self.plan.registry.get(cell_id)
