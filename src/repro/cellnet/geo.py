"""Planar geometry for cell deployments and drive trajectories.

The study's spatial analyses (Fig. 20, Fig. 21) operate at city scale
(kilometres), so we use a local tangent-plane approximation: positions
are (x, y) metres relative to a per-region origin.  This keeps distance
computation exact and cheap, and the deployment generator assigns each
city its own plane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Point:
    """A position on a city's local tangent plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def offset(self, dx: float, dy: float) -> "Point":
        """A new point translated by (dx, dy) metres."""
        return Point(self.x + dx, self.y + dy)

    def towards(self, other: "Point", fraction: float) -> "Point":
        """Linear interpolation from self towards ``other``.

        ``fraction`` = 0 returns self, 1 returns ``other``; values outside
        [0, 1] extrapolate along the segment.
        """
        return Point(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )


def distance_m(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return a.distance_to(b)


def points_within(center: Point, radius_m: float, points: Iterable[Point]) -> list[Point]:
    """All points at most ``radius_m`` metres from ``center``."""
    return [p for p in points if center.distance_to(p) <= radius_m]


def walk_segment(start: Point, end: Point, step_m: float) -> Iterator[Point]:
    """Yield points along the segment from ``start`` to ``end``.

    Successive points are ``step_m`` metres apart; the final point is
    always ``end`` exactly, so a caller can chain segments without gaps.
    """
    if step_m <= 0:
        raise ValueError("step_m must be positive")
    total = start.distance_to(end)
    if total == 0:
        yield end
        return
    # Evenly spaced so no gap exceeds step_m, including the last one.
    steps = max(math.ceil(total / step_m), 1)
    for i in range(steps):
        yield start.towards(end, i / steps)
    yield end


def hex_grid(center: Point, spacing_m: float, rings: int) -> list[Point]:
    """Centres of a hexagonal grid around ``center``.

    Classic cellular layout: one centre site plus ``rings`` concentric
    hexagonal rings with inter-site distance ``spacing_m``.  Ring k holds
    6*k sites, so the total is 1 + 3*rings*(rings+1).
    """
    if rings < 0:
        raise ValueError("rings must be non-negative")
    points = [center]
    # Axial hex coordinates; the classic ring walk starts one radius out
    # along direction 4 and turns through the six axial directions.
    directions = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)]
    for k in range(1, rings + 1):
        q, r = -k, k
        for dq, dr in directions:
            for _ in range(k):
                x = spacing_m * (q + r / 2.0)
                y = spacing_m * (r * math.sqrt(3) / 2.0)
                points.append(center.offset(x, y))
                q += dq
                r += dr
    return points


def bounding_box(points: Iterable[Point]) -> tuple[Point, Point]:
    """(min-corner, max-corner) of the axis-aligned box around ``points``."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box of empty point set")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Point(min(xs), min(ys)), Point(max(xs), max(ys))
