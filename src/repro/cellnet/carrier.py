"""Carriers (mobile operators) covered by the study.

Table 3 of the paper lists the main carriers and their acronyms; dataset
D2 spans 30 carriers over 15 countries and regions.  The paper names 17
carriers explicitly and groups 13 more as "others" (Orange, Deutsche
Telekom, Vodafone, MoviStar, ...).  We encode all of them here, together
with each carrier's RAT support and LTE band holdings, which drive the
deployment generator and the per-carrier configuration profiles.

Band holdings for the four US carriers follow the paper's observations
(e.g. AT&T channels 850, 1975, 2000, 5110/5145, 5780, 9820 in Fig. 18;
EVDO/CDMA1x only in Verizon, Sprint and China Telecom).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellnet.rat import RAT


@dataclass(frozen=True)
class Carrier:
    """One mobile operator.

    Attributes:
        acronym: Short name used throughout the paper's plots ("A" for
            AT&T, "T" for T-Mobile, ...).
        name: Full operator name.
        country: ISO-like country/region code as used in Table 3.
        rats: RATs the operator deploys.
        lte_channels: Downlink EARFCNs the operator holds, most-used
            first.  Empty for non-LTE operators (none in this study).
        umts_channels: UARFCNs for the 3G layer (3GPP family).
        gsm_channels: ARFCNs for the 2G layer (3GPP family).
        cdma_channels: Channel numbers for the 3GPP2 family (EVDO/1x).
        scale: Relative deployment size weight used by the dataset
            builder to apportion the 32k cells of D2 across carriers
            (Fig. 12 shows very uneven per-carrier cell counts).
    """

    acronym: str
    name: str
    country: str
    rats: tuple[RAT, ...]
    lte_channels: tuple[int, ...] = ()
    umts_channels: tuple[int, ...] = ()
    gsm_channels: tuple[int, ...] = ()
    cdma_channels: tuple[int, ...] = ()
    scale: float = 1.0

    def channels_for(self, rat: RAT) -> tuple[int, ...]:
        """Channel holdings for one RAT."""
        if rat is RAT.LTE:
            return self.lte_channels
        if rat is RAT.UMTS:
            return self.umts_channels
        if rat is RAT.GSM:
            return self.gsm_channels
        return self.cdma_channels

    @property
    def is_us(self) -> bool:
        """Whether the carrier operates in the United States."""
        return self.country == "US"


_GSM_FAMILY = (RAT.LTE, RAT.UMTS, RAT.GSM)
_CDMA_FAMILY = (RAT.LTE, RAT.EVDO, RAT.CDMA1X)

#: All carriers in dataset D2, keyed by acronym.  The four US carriers
#: and the named Asian/European carriers follow Table 3; the remaining
#: "others" are modelled with small scale weights, matching the paper's
#: note that some countries contribute fewer than 100 cells.
CARRIERS: dict[str, Carrier] = {
    c.acronym: c
    for c in [
        # --- United States (4) ---
        Carrier(
            "A", "AT&T", "US", _GSM_FAMILY,
            lte_channels=(850, 1975, 2000, 2175, 2200, 2225, 5110, 5145,
                          5780, 5815, 9820, 675, 700, 725, 750, 775, 800,
                          825, 2425, 2430, 2535, 2538, 2600, 9720),
            umts_channels=(4385, 1637, 9800),
            gsm_channels=(128, 190, 512, 661),
            scale=7.0,
        ),
        Carrier(
            "T", "T-Mobile", "US", _GSM_FAMILY,
            lte_channels=(5035, 5110, 66486, 66661, 1950, 675, 2000, 9820),
            umts_channels=(1537, 1662, 9687),
            gsm_channels=(512, 579, 661),
            scale=5.5,
        ),
        Carrier(
            "V", "Verizon", "US", _CDMA_FAMILY,
            lte_channels=(5230, 5257, 2050, 1100, 66961, 66486, 800),
            cdma_channels=(384, 466, 891),
            scale=5.0,
        ),
        Carrier(
            "S", "Sprint", "US", _CDMA_FAMILY,
            lte_channels=(8665, 40072, 39874, 41176, 40978),
            cdma_channels=(476, 875, 1025),
            scale=3.5,
        ),
        # --- China (3) ---
        Carrier(
            "CM", "China Mobile", "CN", (RAT.LTE, RAT.GSM),
            lte_channels=(37900, 38098, 38400, 38950, 39148, 40936),
            gsm_channels=(1, 50, 94),
            scale=4.5,
        ),
        Carrier(
            "CU", "China Unicom", "CN", _GSM_FAMILY,
            lte_channels=(1650, 3590, 38544, 40340),
            umts_channels=(10562, 10587),
            gsm_channels=(96, 110),
            scale=2.0,
        ),
        Carrier(
            "CT", "China Telecom", "CN", _CDMA_FAMILY,
            lte_channels=(1825, 2452, 38400, 40540),
            cdma_channels=(201, 283),
            scale=1.8,
        ),
        # --- Korea (2) ---
        Carrier(
            "KT", "Korea Telecom", "KR", _GSM_FAMILY,
            lte_channels=(1350, 2500, 3743),
            umts_channels=(10737,),
            scale=0.9,
        ),
        Carrier(
            "SK", "SK Telecom", "KR", _GSM_FAMILY,
            lte_channels=(1550, 2600, 3610),
            umts_channels=(10713,),
            scale=1.0,
        ),
        # --- Singapore (3) ---
        Carrier(
            "ST", "Starhub", "SG", _GSM_FAMILY,
            lte_channels=(1300, 3668),
            umts_channels=(10688,),
            scale=0.7,
        ),
        Carrier(
            "SI", "SingTel", "SG", _GSM_FAMILY,
            lte_channels=(1400, 3725),
            umts_channels=(10663,),
            scale=0.8,
        ),
        Carrier(
            "MO", "MobileOne", "SG", _GSM_FAMILY,
            lte_channels=(1500, 3778),
            umts_channels=(10638,),
            scale=0.8,
        ),
        # --- Hong Kong (2) ---
        Carrier(
            "TH", "Three HK", "HK", _GSM_FAMILY,
            lte_channels=(1275, 3615),
            umts_channels=(10613,),
            scale=0.6,
        ),
        Carrier(
            "CH", "China Mobile Hong Kong", "HK", _GSM_FAMILY,
            lte_channels=(1825, 3660, 38400),
            umts_channels=(10588,),
            scale=0.9,
        ),
        # --- Taiwan (2) ---
        Carrier(
            "CW", "Chunghwa Telecom", "TW", _GSM_FAMILY,
            lte_channels=(1725, 3650, 6400),
            umts_channels=(10563,),
            scale=1.0,
        ),
        Carrier(
            "TC", "Taiwan Cellular", "TW", _GSM_FAMILY,
            lte_channels=(1775, 3690, 6300),
            umts_channels=(10564,),
            scale=0.8,
        ),
        # --- Norway (1) ---
        Carrier(
            "NC", "NetCom", "NO", _GSM_FAMILY,
            lte_channels=(1850, 6352),
            umts_channels=(10735,),
            scale=0.5,
        ),
        # --- Others (13), each contributing < 100 cells (paper Sec. 5) ---
        Carrier("OR", "Orange", "FR", _GSM_FAMILY, lte_channels=(6200, 1501), umts_channels=(10788,), scale=0.05),
        Carrier("DT", "Deutsche Telekom", "DE", _GSM_FAMILY, lte_channels=(6300, 1444), umts_channels=(10736,), scale=0.05),
        Carrier("VO", "Vodafone", "ES", _GSM_FAMILY, lte_channels=(6250, 1525), umts_channels=(10687,), scale=0.04),
        Carrier("MV", "MoviStar", "MX", _GSM_FAMILY, lte_channels=(2125, 9310), umts_channels=(4380,), scale=0.04),
        Carrier("SF", "SFR", "FR", _GSM_FAMILY, lte_channels=(6225, 1560), umts_channels=(10762,), scale=0.03),
        Carrier("O2", "O2", "DE", _GSM_FAMILY, lte_channels=(6350, 1300), umts_channels=(10712,), scale=0.03),
        Carrier("TI", "Telecom Italia", "IT", _GSM_FAMILY, lte_channels=(6275, 1350), umts_channels=(10638,), scale=0.03),
        Carrier("EE", "EE", "GB", _GSM_FAMILY, lte_channels=(1617, 6402), umts_channels=(10586,), scale=0.04),
        Carrier("RO", "Rogers", "CA", _GSM_FAMILY, lte_channels=(2300, 5180), umts_channels=(4400,), scale=0.04),
        Carrier("BE", "Bell", "CA", _GSM_FAMILY, lte_channels=(2325, 5205), umts_channels=(4405,), scale=0.03),
        Carrier("NT", "NTT Docomo", "JP", _GSM_FAMILY, lte_channels=(100, 1849, 6000), umts_channels=(10563,), scale=0.05),
        Carrier("SB", "SoftBank", "JP", _GSM_FAMILY, lte_channels=(1825, 3750, 8245), umts_channels=(10713,), scale=0.04),
        Carrier("VM", "Virgin Media", "GB", _GSM_FAMILY, lte_channels=(1300, 3775, 6325), umts_channels=(10663,), scale=0.05),
    ]
}

if len(CARRIERS) != 30:
    raise AssertionError(f"expected 30 carriers per the paper, got {len(CARRIERS)}")


def carrier_by_acronym(acronym: str) -> Carrier:
    """Look up a carrier by its Table 3 acronym.

    Raises:
        KeyError: If the acronym is unknown.
    """
    return CARRIERS[acronym]


def us_carriers() -> list[Carrier]:
    """The four top US carriers, in the paper's plotting order."""
    return [CARRIERS[a] for a in ("A", "T", "V", "S")]


def study_carriers() -> list[Carrier]:
    """The nine carriers used in the cross-carrier analyses (Fig. 15/17).

    The paper compares the four US carriers plus one representative
    carrier each from China, Korea, Singapore, Hong Kong and Taiwan.
    """
    return [CARRIERS[a] for a in ("A", "T", "S", "V", "CM", "SK", "MO", "CH", "CW")]
