"""Cell sites.

A *cell* in the paper's terminology is one sector of a base station on
one frequency channel of one RAT ("each cell further operates over a
given frequency channel", Section 2).  Cells are the unit at which
handoff configurations live: dataset D2 counts 32,033 unique cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellnet.bands import earfcn_to_band, earfcn_to_frequency_mhz
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT


@dataclass(frozen=True, order=True)
class CellId:
    """Globally unique cell identity.

    Mirrors the (PLMN, cell identity) pair a phone observes: we key by
    carrier acronym plus a global cell identity integer.  Frozen and
    ordered so it can be used as a dict key and sorted deterministically.
    """

    carrier: str
    gci: int

    def __post_init__(self) -> None:
        # Cell identities key nearly every hot dict in the simulator
        # (prepared-cell indexes, measurement memos, load shares,
        # occupancy counters); the generated dataclass __hash__ would
        # rebuild and hash a field tuple per lookup.  The cached value
        # is exactly the generated one, so set/dict behavior (including
        # iteration order) is unchanged.
        object.__setattr__(self, "_hash", hash((self.carrier, self.gci)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.carrier}/{self.gci}"


@dataclass(frozen=True)
class Cell:
    """One deployed cell: identity, radio parameters and location.

    Attributes:
        cell_id: Unique identity (carrier + global cell id).
        rat: Radio access technology.
        channel: Channel number (EARFCN for LTE, UARFCN/ARFCN otherwise).
        pci: Physical-layer identity (PCI for LTE, PSC for UMTS, BSIC for
            GSM); only unique locally, as in real networks.
        location: Site position on the city plane.
        tx_power_dbm: Reference-signal transmit power (EPRE for LTE).
        city: Name of the city/region the cell belongs to.
        bandwidth_mhz: Carrier bandwidth, used by the throughput model.
    """

    cell_id: CellId
    rat: RAT
    channel: int
    pci: int
    location: Point
    tx_power_dbm: float = 30.0
    city: str = ""
    bandwidth_mhz: float = 10.0

    @property
    def carrier(self) -> str:
        """Acronym of the operating carrier."""
        return self.cell_id.carrier

    @property
    def frequency_mhz(self) -> float:
        """Downlink carrier frequency from the band catalog."""
        return earfcn_to_frequency_mhz(self.channel, self.rat)

    @property
    def band_number(self) -> int:
        """Operating band number from the band catalog."""
        return earfcn_to_band(self.channel, self.rat).number

    def is_intra_frequency(self, other: "Cell") -> bool:
        """Whether a handoff between self and ``other`` is intra-freq.

        Intra-freq means same RAT and same channel (paper Section 2);
        same RAT but different channel is inter-freq, different RAT is
        inter-RAT.  Both legs of the comparison are symmetric.
        """
        return self.rat is other.rat and self.channel == other.channel

    def is_inter_rat(self, other: "Cell") -> bool:
        """Whether a handoff between self and ``other`` crosses RATs."""
        return self.rat is not other.rat


@dataclass
class CellRegistry:
    """Index of cells by identity, carrier, channel and city.

    The registry is the simulator-side stand-in for "the network": the
    deployment generator fills it, the radio environment queries it, and
    the crawler's output is compared against it in tests.
    """

    _by_id: dict[CellId, Cell] = field(default_factory=dict)

    def add(self, cell: Cell) -> None:
        """Register a cell; identities must be unique."""
        if cell.cell_id in self._by_id:
            raise ValueError(f"duplicate cell id {cell.cell_id}")
        self._by_id[cell.cell_id] = cell

    def get(self, cell_id: CellId) -> Cell:
        """Look up a cell by identity (KeyError if absent)."""
        return self._by_id[cell_id]

    def __contains__(self, cell_id: CellId) -> bool:
        return cell_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id.values())

    def all_cells(self) -> list[Cell]:
        """All registered cells in deterministic (identity) order."""
        return [self._by_id[k] for k in sorted(self._by_id)]

    def by_carrier(self, carrier: str) -> list[Cell]:
        """All cells operated by ``carrier``, in identity order."""
        return [c for c in self.all_cells() if c.carrier == carrier]

    def by_city(self, city: str) -> list[Cell]:
        """All cells located in ``city``, in identity order."""
        return [c for c in self.all_cells() if c.city == city]

    def by_rat(self, rat: RAT) -> list[Cell]:
        """All cells of technology ``rat``, in identity order."""
        return [c for c in self.all_cells() if c.rat is rat]

    def neighbors_of(self, cell: Cell, radius_m: float) -> list[Cell]:
        """Cells of the same carrier within ``radius_m`` of ``cell``.

        The serving cell itself is excluded.  This is the candidate set
        the deployment generator uses to build neighbor lists.
        """
        return [
            c
            for c in self.all_cells()
            if c.carrier == cell.carrier
            and c.cell_id != cell.cell_id
            and c.location.distance_to(cell.location) <= radius_m
        ]
