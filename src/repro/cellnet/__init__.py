"""Cellular network substrate.

This subpackage models everything "below" the handoff logic: radio access
technologies, frequency bands and channel numbers, cell sites, carriers
(operators), geographic deployments and the radio propagation model that
produces the RSRP/RSRQ/SINR values the handoff state machines act on.

The substrate replaces the real carrier networks the paper measured.  The
handoff *logic* (``repro.ue``) and the configuration *space*
(``repro.config``) are implemented per the 3GPP semantics described in the
paper; this package only needs to provide realistic signal dynamics for
that logic to act on.
"""

from repro.cellnet.rat import RAT
from repro.cellnet.bands import Band, BAND_CATALOG, earfcn_to_band, earfcn_to_frequency_mhz
from repro.cellnet.geo import Point, distance_m
from repro.cellnet.cell import Cell, CellId
from repro.cellnet.carrier import Carrier, CARRIERS, carrier_by_acronym
from repro.cellnet.radio import RadioModel, Measurement
from repro.cellnet.deployment import City, DeploymentPlan, deploy_city, deploy_highway
from repro.cellnet.world import RadioEnvironment

__all__ = [
    "RAT",
    "Band",
    "BAND_CATALOG",
    "earfcn_to_band",
    "earfcn_to_frequency_mhz",
    "Point",
    "distance_m",
    "Cell",
    "CellId",
    "Carrier",
    "CARRIERS",
    "carrier_by_acronym",
    "RadioModel",
    "Measurement",
    "City",
    "DeploymentPlan",
    "deploy_city",
    "deploy_highway",
    "RadioEnvironment",
]
