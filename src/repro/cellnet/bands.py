"""Frequency band and channel-number catalog.

LTE channels are identified by EARFCN (E-UTRA Absolute Radio Frequency
Channel Number); the mapping between EARFCN and carrier frequency is
regulated by 3GPP TS 36.101 Section 5.7.3:

    F_downlink(MHz) = F_DL_low + 0.1 * (EARFCN - N_offset_DL)

The paper observes 24 distinct channels in AT&T, with serving cells
primarily on channels 850, 1975, 2000, 5110, 5780 and 9820 (Fig. 18), and
highlights band 30 (channel 9820, 2300 MHz WCS) as the recently acquired,
high-priority band behind a real-world outage for non-band-30 phones.

We implement the TS 36.101 downlink tables for the bands the paper's
carriers actually use, plus UMTS UARFCNs and GSM ARFCNs sufficient for
inter-RAT configurations (SIB6/7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cellnet.rat import RAT


@dataclass(frozen=True)
class Band:
    """One operating band of some RAT.

    Attributes:
        number: The 3GPP band number (e.g. 12, 17, 30 for LTE).
        rat: Radio access technology the band belongs to.
        name: Human-readable band name (e.g. "700 MHz Lower SMH").
        dl_low_mhz: Lowest downlink carrier frequency of the band.
        n_offset_dl: First channel number of the band (N_Offs-DL).
        n_last_dl: Last channel number of the band (inclusive).
    """

    number: int
    rat: RAT
    name: str
    dl_low_mhz: float
    n_offset_dl: int
    n_last_dl: int

    def contains_channel(self, channel: int) -> bool:
        """Whether ``channel`` falls inside this band's DL channel range."""
        return self.n_offset_dl <= channel <= self.n_last_dl

    def channel_to_frequency_mhz(self, channel: int) -> float:
        """Downlink carrier frequency of ``channel`` per TS 36.101 5.7.3."""
        if not self.contains_channel(channel):
            raise ValueError(f"channel {channel} outside band {self.number}")
        return self.dl_low_mhz + 0.1 * (channel - self.n_offset_dl)


# LTE downlink EARFCN table (subset; TS 36.101 Table 5.7.3-1).  Covers all
# channels referenced by the paper (Fig. 18) and the carrier profiles.
_LTE_BANDS = [
    Band(1, RAT.LTE, "2100 MHz IMT", 2110.0, 0, 599),
    Band(2, RAT.LTE, "1900 MHz PCS", 1930.0, 600, 1199),
    Band(3, RAT.LTE, "1800 MHz DCS", 1805.0, 1200, 1949),
    Band(4, RAT.LTE, "1700/2100 MHz AWS-1", 2110.0, 1950, 2399),
    Band(5, RAT.LTE, "850 MHz CLR", 869.0, 2400, 2649),
    Band(7, RAT.LTE, "2600 MHz IMT-E", 2620.0, 2750, 3449),
    Band(8, RAT.LTE, "900 MHz E-GSM", 925.0, 3450, 3799),
    Band(12, RAT.LTE, "700 MHz Lower SMH", 729.0, 5010, 5179),
    Band(13, RAT.LTE, "700 MHz Upper SMH", 746.0, 5180, 5279),
    Band(17, RAT.LTE, "700 MHz Lower SMH B/C", 734.0, 5730, 5849),
    Band(20, RAT.LTE, "800 MHz EU Digital Dividend", 791.0, 6150, 6449),
    Band(25, RAT.LTE, "1900 MHz Extended PCS", 1930.0, 8040, 8689),
    Band(26, RAT.LTE, "850 MHz Extended CLR", 859.0, 8690, 9039),
    Band(19, RAT.LTE, "850 MHz Japan Upper", 875.0, 6000, 6149),
    Band(28, RAT.LTE, "700 MHz APT", 758.0, 9210, 9659),
    Band(29, RAT.LTE, "700 MHz Lower SMH D/E (SDL)", 717.0, 9660, 9769),
    Band(30, RAT.LTE, "2300 MHz WCS", 2350.0, 9770, 9869),
    Band(38, RAT.LTE, "2600 MHz TDD", 2570.0, 37750, 38249),
    Band(39, RAT.LTE, "1900 MHz TDD", 1880.0, 38250, 38649),
    Band(40, RAT.LTE, "2300 MHz TDD", 2300.0, 38650, 39649),
    Band(41, RAT.LTE, "2500 MHz TDD BRS", 2496.0, 39650, 41589),
    Band(66, RAT.LTE, "1700/2100 MHz AWS-3", 2110.0, 66436, 67335),
]

# UMTS UARFCN table (subset; TS 25.101).  UARFCN_DL = 5 * F_DL(MHz) for
# the general case, so dl_low encodes the band edge and channels map with
# 0.2 MHz raster.  We model the two most common FDD bands plus band V.
_UMTS_BANDS = [
    Band(1, RAT.UMTS, "2100 MHz IMT", 2112.4, 10562, 10838),
    Band(2, RAT.UMTS, "1900 MHz PCS", 1932.4, 9662, 9938),
    Band(4, RAT.UMTS, "1700/2100 MHz AWS-1", 2112.4, 1537, 1738),
    Band(5, RAT.UMTS, "850 MHz CLR", 871.4, 4357, 4458),
    Band(8, RAT.UMTS, "900 MHz E-GSM", 927.4, 2937, 3088),
]

# GSM ARFCN table (subset; TS 45.005).
_GSM_BANDS = [
    Band(2, RAT.GSM, "GSM 1900 PCS", 1930.2, 512, 810),
    Band(3, RAT.GSM, "GSM 1800 DCS", 1805.2, 811, 885),
    Band(5, RAT.GSM, "GSM 850", 869.2, 128, 251),
    Band(8, RAT.GSM, "GSM 900", 935.2, 1, 124),
]

# CDMA family band classes (3GPP2 C.S0057).
_CDMA_BANDS = [
    Band(0, RAT.CDMA1X, "800 MHz Cellular (BC0)", 869.04, 1, 799),
    Band(1, RAT.CDMA1X, "1900 MHz PCS (BC1)", 1930.05, 800, 1199),
    Band(0, RAT.EVDO, "800 MHz Cellular (BC0)", 869.04, 1, 799),
    Band(1, RAT.EVDO, "1900 MHz PCS (BC1)", 800, 800, 1199),
]

#: All bands known to the catalog, grouped by RAT.
BAND_CATALOG: dict[RAT, tuple[Band, ...]] = {
    RAT.LTE: tuple(_LTE_BANDS),
    RAT.UMTS: tuple(_UMTS_BANDS),
    RAT.GSM: tuple(_GSM_BANDS),
    RAT.CDMA1X: tuple(b for b in _CDMA_BANDS if b.rat is RAT.CDMA1X),
    RAT.EVDO: tuple(b for b in _CDMA_BANDS if b.rat is RAT.EVDO),
}


def earfcn_to_band(channel: int, rat: RAT = RAT.LTE) -> Band:
    """Resolve a channel number to its operating :class:`Band`.

    Raises:
        ValueError: If no catalogued band of ``rat`` contains ``channel``.
    """
    for band in BAND_CATALOG[rat]:
        if band.contains_channel(channel):
            return band
    raise ValueError(f"no {rat.value} band contains channel {channel}")


def earfcn_to_frequency_mhz(channel: int, rat: RAT = RAT.LTE) -> float:
    """Downlink carrier frequency in MHz of a channel number."""
    return earfcn_to_band(channel, rat).channel_to_frequency_mhz(channel)


def channels_in_band(band_number: int, rat: RAT = RAT.LTE) -> range:
    """The full channel-number range of a band, as a :class:`range`."""
    for band in BAND_CATALOG[rat]:
        if band.number == band_number:
            return range(band.n_offset_dl, band.n_last_dl + 1)
    raise ValueError(f"unknown {rat.value} band {band_number}")
