"""Radio access technologies (RATs) covered by the study.

The paper's dataset D2 covers five RATs (Table 4): 4G LTE, 3G UMTS
(WCDMA), 2G GSM, 3G EVDO and 2G CDMA1x.  LTE dominates (72% of cells).
UMTS/GSM form one family standard; EVDO/CDMA1x form the other and were
only observed in Verizon, Sprint and China Telecom.
"""

from __future__ import annotations

import enum


class RAT(enum.Enum):
    """A cellular radio access technology.

    Members are ordered oldest-to-newest within each generation so that
    :meth:`generation` and comparisons used by inter-RAT handoff logic are
    straightforward.
    """

    GSM = "GSM"
    CDMA1X = "CDMA1x"
    UMTS = "UMTS"
    EVDO = "EVDO"
    LTE = "LTE"

    @property
    def generation(self) -> int:
        """The marketing generation (2, 3 or 4) of this RAT."""
        return _GENERATION[self]

    @property
    def family(self) -> str:
        """Standard family: ``"3GPP"`` (GSM/UMTS/LTE) or ``"3GPP2"``."""
        return "3GPP2" if self in (RAT.CDMA1X, RAT.EVDO) else "3GPP"

    @property
    def measurement_metrics(self) -> tuple[str, ...]:
        """Radio-signal metrics a device reports on this RAT.

        LTE uses RSRP (dBm) and RSRQ (dB); UMTS uses RSCP and Ec/No; GSM
        uses RSSI; the CDMA family uses pilot strength.
        """
        return _METRICS[self]

    def __lt__(self, other: "RAT") -> bool:
        if not isinstance(other, RAT):
            return NotImplemented
        return self.generation < other.generation


_GENERATION = {
    RAT.GSM: 2,
    RAT.CDMA1X: 2,
    RAT.UMTS: 3,
    RAT.EVDO: 3,
    RAT.LTE: 4,
}

_METRICS = {
    RAT.LTE: ("rsrp", "rsrq"),
    RAT.UMTS: ("rscp", "ecno"),
    RAT.GSM: ("rssi",),
    RAT.EVDO: ("pilot_strength",),
    RAT.CDMA1X: ("pilot_strength",),
}

#: Valid RSRP range in dBm for LTE per TS 36.133 (paper Section 2.2).
RSRP_RANGE_DBM = (-140.0, -44.0)

#: Valid RSRQ range in dB for LTE per TS 36.133 (paper Section 2.2).
RSRQ_RANGE_DB = (-19.5, -3.0)


def clamp_rsrp(value_dbm: float) -> float:
    """Clamp a power value into the reportable LTE RSRP range."""
    low, high = RSRP_RANGE_DBM
    return min(max(value_dbm, low), high)


def clamp_rsrq(value_db: float) -> float:
    """Clamp a quality value into the reportable LTE RSRQ range."""
    low, high = RSRQ_RANGE_DB
    return min(max(value_db, low), high)
