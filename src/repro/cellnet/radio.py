"""Radio propagation and signal-quality model.

Produces the RSRP/RSRQ/SINR values the handoff state machines act on:

* **Path loss** — log-distance with a frequency term (COST-231-Hata
  shaped): ``PL = PL0 + 10*n*log10(d/d0) + 21*log10(f/f0)``.  Lower
  bands propagate further, which is why operators' priority choices
  between 700 MHz and 2300 MHz layers (paper Fig. 18) have performance
  consequences.
* **Shadowing** — spatially correlated log-normal shadowing realised as
  a deterministic per-cell sum of sinusoids (a standard correlated-
  field construction).  The same (cell, location) always sees the same
  shadowing value, so repeated drives are reproducible, while
  decorrelation over tens of metres provides the signal dynamics that
  trigger measurement events.  The construction is vectorizable across
  cells, which keeps long drive simulations fast.
* **RSRQ / SINR** — computed from the co-channel interference of all
  other audible cells on the same channel plus thermal noise.

Fast fading / measurement noise is *not* added here; the UE measurement
layer (``repro.ue.measurement``) adds per-sample noise and applies L3
filtering, mirroring where that happens in a real modem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.cellnet.cell import Cell
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT, clamp_rsrp, clamp_rsrq
from repro.util import stable_hash

#: Thermal noise over one LTE PRB (dBm): -174 dBm/Hz + 10*log10(180 kHz).
NOISE_PER_PRB_DBM = -121.4

#: Reference distance (m) and frequency (MHz) of the path-loss model.
_REF_DISTANCE_M = 10.0
_REF_FREQUENCY_MHZ = 700.0


def _dbm_to_mw(dbm):
    return 10.0 ** (np.asarray(dbm) / 10.0)


def _mw_to_dbm(mw: float) -> float:
    if mw <= 0:
        return -math.inf
    return 10.0 * math.log10(mw)


@dataclass(frozen=True)
class Measurement:
    """One instantaneous radio measurement of a cell at a location.

    ``rsrp_dbm``/``rsrq_db`` are the LTE names; for legacy RATs the same
    fields carry RSCP/EcNo (UMTS), RSSI (GSM) or pilot strength (CDMA),
    which keeps the event-evaluation code RAT-agnostic the same way the
    3GPP measurement model does.
    """

    cell: Cell
    rsrp_dbm: float
    rsrq_db: float
    sinr_db: float

    def metric(self, name: str) -> float:
        """Access a metric by configuration name ("rsrp" or "rsrq")."""
        if name == "rsrp":
            return self.rsrp_dbm
        if name == "rsrq":
            return self.rsrq_db
        raise ValueError(f"unknown metric {name!r}")


class ShadowingField:
    """Deterministic, spatially correlated log-normal shadowing.

    Each cell gets its own field built from ``n_components`` plane-wave
    sinusoids whose directions, wavelengths and phases come from an RNG
    seeded by (field seed, cell identity).  The resulting field has
    (approximately) unit variance before scaling by ``sigma_db`` and
    decorrelates over roughly ``decorrelation_m`` metres.
    """

    def __init__(
        self,
        seed: int,
        sigma_db: float = 6.0,
        decorrelation_m: float = 60.0,
        n_components: int = 8,
    ):
        if sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if decorrelation_m <= 0:
            raise ValueError("decorrelation_m must be positive")
        self._seed = seed
        self.sigma_db = sigma_db
        self.decorrelation_m = decorrelation_m
        self.n_components = n_components
        # (kx, ky, phase) arrays per cell, built lazily.
        self._coefficients: dict = {}

    def _coeffs(self, cell: Cell) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        key = cell.cell_id
        cached = self._coefficients.get(key)
        if cached is not None:
            return cached
        rng = np.random.default_rng(
            (self._seed, stable_hash(key.carrier) & 0xFFFF, key.gci)
        )
        angles = rng.uniform(0.0, 2.0 * math.pi, self.n_components)
        # Mix of spatial frequencies around the decorrelation scale.
        wavelengths = self.decorrelation_m * rng.uniform(0.7, 2.5, self.n_components)
        magnitude = 2.0 * math.pi / wavelengths
        kx = magnitude * np.cos(angles)
        ky = magnitude * np.sin(angles)
        phase = rng.uniform(0.0, 2.0 * math.pi, self.n_components)
        self._coefficients[key] = (kx, ky, phase)
        return self._coefficients[key]

    def sample_db(self, cell: Cell, location: Point) -> float:
        """Shadowing in dB for ``cell`` as seen at ``location``."""
        if self.sigma_db == 0:
            return 0.0
        kx, ky, phase = self._coeffs(cell)
        value = np.cos(kx * location.x + ky * location.y + phase).sum()
        return float(value * self.sigma_db * math.sqrt(2.0 / self.n_components))

    def stacked_coeffs(self, cells: list[Cell]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(kx, ky, phase) arrays stacked over ``cells`` (shape N x K)."""
        if not cells:
            empty = np.zeros((0, self.n_components))
            return empty, empty, empty
        kx = np.stack([self._coeffs(c)[0] for c in cells])
        ky = np.stack([self._coeffs(c)[1] for c in cells])
        phase = np.stack([self._coeffs(c)[2] for c in cells])
        return kx, ky, phase

    def sample_many(self, cells: list[Cell], location: Point) -> np.ndarray:
        """Vectorized shadowing for many cells at one location."""
        if self.sigma_db == 0:
            return np.zeros(len(cells))
        if not cells:
            return np.zeros(0)
        kx, ky, phase = self.stacked_coeffs(cells)
        values = np.cos(kx * location.x + ky * location.y + phase).sum(axis=1)
        return values * self.sigma_db * math.sqrt(2.0 / self.n_components)


class RadioModel:
    """Computes received signal metrics for cells at locations."""

    def __init__(
        self,
        seed: int = 0,
        path_loss_exponent: float = 3.5,
        reference_loss_db: float = 62.0,
        shadowing_sigma_db: float = 4.5,
        shadowing_decorrelation_m: float = 200.0,
    ):
        self.path_loss_exponent = path_loss_exponent
        self.reference_loss_db = reference_loss_db
        self.shadowing = ShadowingField(
            seed, sigma_db=shadowing_sigma_db, decorrelation_m=shadowing_decorrelation_m
        )

    def path_loss_db(self, cell: Cell, location: Point) -> float:
        """Distance- and frequency-dependent path loss in dB."""
        distance = max(cell.location.distance_to(location), _REF_DISTANCE_M)
        return (
            self.reference_loss_db
            + 10.0 * self.path_loss_exponent * math.log10(distance / _REF_DISTANCE_M)
            + 21.0 * math.log10(cell.frequency_mhz / _REF_FREQUENCY_MHZ)
        )

    def rsrp_dbm(self, cell: Cell, location: Point) -> float:
        """Reference-signal received power at ``location`` (shadowed)."""
        raw = (
            cell.tx_power_dbm
            - self.path_loss_db(cell, location)
            + self.shadowing.sample_db(cell, location)
        )
        return clamp_rsrp(raw)

    def prepare(self, cells: list[Cell]) -> "PreparedCells":
        """Precompute the static per-cell arrays used by ``rsrp_prepared``.

        The drive simulation snapshots the same neighborhood thousands of
        times; preparing once amortizes the array construction.
        """
        xs = np.array([c.location.x for c in cells])
        ys = np.array([c.location.y for c in cells])
        tx = np.array([c.tx_power_dbm for c in cells])
        freq_term = 21.0 * np.log10(
            np.array([c.frequency_mhz for c in cells]) / _REF_FREQUENCY_MHZ
        ) if cells else np.zeros(0)
        kx, ky, phase = self.shadowing.stacked_coeffs(cells)
        return PreparedCells(cells=cells, xs=xs, ys=ys, tx=tx, freq_term=freq_term,
                             kx=kx, ky=ky, phase=phase)

    def rsrp_prepared(self, prepared: "PreparedCells", location: Point) -> np.ndarray:
        """Vectorized RSRP over a prepared cell set at one location.

        Every operation mirrors the original expression op for op (same
        ufuncs, same order), only routed through per-prepared scratch
        buffers so the per-tick hot path stops paying one allocation per
        intermediate.  Only the returned array is freshly allocated —
        snapshots outlive the call and must not alias the scratch.
        """
        if not prepared.cells:
            return np.zeros(0)
        n = len(prepared.cells)
        scratch = prepared._scratch
        if not scratch:
            scratch["pl"] = np.empty(n)
            scratch["wave"] = np.empty_like(prepared.kx)
            scratch["wave2"] = np.empty_like(prepared.kx)
            scratch["shadow"] = np.empty(n)
        pl, shadow = scratch["pl"], scratch["shadow"]
        wave, wave2 = scratch["wave"], scratch["wave2"]
        out = np.empty(n)
        # distance = maximum(hypot(xs - x, ys - y), d0); PL = PL0
        # + 10*n*log10(distance/d0) + freq_term, exactly as before.
        np.subtract(prepared.xs, location.x, out=out)
        np.subtract(prepared.ys, location.y, out=pl)
        np.hypot(out, pl, out=pl)
        np.maximum(pl, _REF_DISTANCE_M, out=pl)
        np.divide(pl, _REF_DISTANCE_M, out=pl)
        np.log10(pl, out=pl)
        np.multiply(pl, 10.0 * self.path_loss_exponent, out=pl)
        np.add(pl, self.reference_loss_db, out=pl)
        np.add(pl, prepared.freq_term, out=pl)
        # shadow = cos(kx*x + ky*y + phase).sum(axis=1) * sigma * sqrt(2/K).
        np.multiply(prepared.kx, location.x, out=wave)
        np.multiply(prepared.ky, location.y, out=wave2)
        np.add(wave, wave2, out=wave)
        np.add(wave, prepared.phase, out=wave)
        np.cos(wave, out=wave)
        np.sum(wave, axis=1, out=shadow)
        np.multiply(shadow, self.shadowing.sigma_db, out=shadow)
        np.multiply(shadow, math.sqrt(2.0 / self.shadowing.n_components), out=shadow)
        np.subtract(prepared.tx, pl, out=out)
        np.add(out, shadow, out=out)
        return np.clip(out, -140.0, -44.0, out=out)

    def rsrp_prepared_batch(
        self, prepared: "PreparedCells", xs: np.ndarray, ys: np.ndarray
    ) -> np.ndarray:
        """RSRP rows for many locations over one prepared cell set.

        Row ``s`` is bit-identical to
        ``rsrp_prepared(prepared, Point(xs[s], ys[s]))``: the identical
        ufunc chain in the identical order, broadcast over a leading
        location axis.  Even the shadow-fading reduction keeps its
        summation order — each (location, cell) component row stays
        contiguous, so the pairwise sum matches the single-location
        call element for element.
        """
        if not prepared.cells:
            return np.zeros((len(xs), 0))
        xcol = xs[:, None]
        ycol = ys[:, None]
        out = np.subtract(prepared.xs, xcol)
        pl = np.subtract(prepared.ys, ycol)
        np.hypot(out, pl, out=pl)
        np.maximum(pl, _REF_DISTANCE_M, out=pl)
        np.divide(pl, _REF_DISTANCE_M, out=pl)
        np.log10(pl, out=pl)
        np.multiply(pl, 10.0 * self.path_loss_exponent, out=pl)
        np.add(pl, self.reference_loss_db, out=pl)
        np.add(pl, prepared.freq_term, out=pl)
        wave = np.multiply(prepared.kx, xs[:, None, None])
        wave2 = np.multiply(prepared.ky, ys[:, None, None])
        np.add(wave, wave2, out=wave)
        np.add(wave, prepared.phase, out=wave)
        np.cos(wave, out=wave)
        shadow = np.sum(wave, axis=2)
        np.multiply(shadow, self.shadowing.sigma_db, out=shadow)
        np.multiply(shadow, math.sqrt(2.0 / self.shadowing.n_components), out=shadow)
        np.subtract(prepared.tx, pl, out=out)
        np.add(out, shadow, out=out)
        return np.clip(out, -140.0, -44.0, out=out)

    def rsrp_many(self, cells: list[Cell], location: Point) -> np.ndarray:
        """Vectorized RSRP of many cells at one location."""
        if not cells:
            return np.zeros(0)
        return self.rsrp_prepared(self.prepare(cells), location)

    def measure(
        self, cell: Cell, location: Point, co_channel: list[Cell] | None = None
    ) -> Measurement:
        """Full measurement (RSRP, RSRQ, SINR) of ``cell`` at ``location``.

        ``co_channel`` lists the *other* cells transmitting on the same
        channel; their received power forms the interference term of
        RSRQ and SINR.  Passing None treats the cell as
        interference-free, which is adequate for sparse rural layouts.
        """
        rsrp = self.rsrp_dbm(cell, location)
        others = [c for c in (co_channel or []) if c.cell_id != cell.cell_id]
        interference_mw = float(_dbm_to_mw(self.rsrp_many(others, location)).sum()) if others else 0.0
        return self._finish_measurement(cell, rsrp, interference_mw)

    def _finish_measurement(self, cell: Cell, rsrp: float, interference_mw: float) -> Measurement:
        signal_mw = float(_dbm_to_mw(rsrp))
        noise_mw = float(_dbm_to_mw(NOISE_PER_PRB_DBM))
        sinr_db = _mw_to_dbm(signal_mw) - _mw_to_dbm(interference_mw + noise_mw)
        # RSRQ = N * RSRP / RSSI.  With uniform loading, RSSI over N PRBs
        # is N * 12 * (S + I + noise) per resource element, so the N
        # cancels and the 12-subcarrier aggregation leaves an ~-10.8 dB
        # ceiling in the interference-free case, as in real networks.
        rsrq = rsrp - _mw_to_dbm(12.0 * (signal_mw + interference_mw + noise_mw))
        return Measurement(
            cell=cell, rsrp_dbm=rsrp, rsrq_db=clamp_rsrq(rsrq), sinr_db=sinr_db
        )


@dataclass
class PreparedCells:
    """Static per-cell arrays for repeated vectorized RSRP queries.

    Beyond the propagation inputs, a prepared set carries the derived
    structures every per-tick consumer needs — the cell-id index, the
    (RAT, channel) interference groups, and RAT/intra-frequency masks.
    All are built lazily and cached: one snapshot-cache entry serves
    thousands of ticks, so the cost amortizes to zero while cheap
    one-shot users (``rsrp_many``) never pay it.
    """

    cells: list[Cell]
    xs: np.ndarray
    ys: np.ndarray
    tx: np.ndarray
    freq_term: np.ndarray
    kx: np.ndarray
    ky: np.ndarray
    phase: np.ndarray
    _rat_masks: dict = field(default_factory=dict, repr=False)
    _intra_masks: dict = field(default_factory=dict, repr=False)
    #: Reusable intermediates of ``rsrp_prepared`` (one set per prepared
    #: neighborhood; the simulation is single-threaded).
    _scratch: dict = field(default_factory=dict, repr=False)

    @cached_property
    def cell_ids(self) -> list:
        """Cell identities aligned with ``cells``."""
        return [c.cell_id for c in self.cells]

    @cached_property
    def index(self) -> dict:
        """cell_id -> position map over ``cells``."""
        return {cid: i for i, cid in enumerate(self.cell_ids)}

    @cached_property
    def gci(self) -> np.ndarray:
        """Global cell identities aligned with ``cells`` (sort tiebreak)."""
        return np.array([c.cell_id.gci for c in self.cells], dtype=np.int64)

    @cached_property
    def channel_groups(self) -> tuple[np.ndarray, int]:
        """(group index per cell, group count) over (RAT, channel)."""
        groups: dict = {}
        group_index = np.empty(len(self.cells), dtype=int)
        for i, cell in enumerate(self.cells):
            key = (cell.rat, cell.channel)
            group_index[i] = groups.setdefault(key, len(groups))
        return group_index, len(groups)

    def rat_mask(self, rat: RAT) -> np.ndarray:
        """Boolean mask of cells whose RAT is ``rat``."""
        mask = self._rat_masks.get(rat)
        if mask is None:
            mask = np.array([c.rat is rat for c in self.cells], dtype=bool)
            self._rat_masks[rat] = mask
        return mask

    def intra_mask(self, rat: RAT, channel: int) -> np.ndarray:
        """Boolean mask of cells co-channel with a (rat, channel) serving."""
        key = (rat, channel)
        mask = self._intra_masks.get(key)
        if mask is None:
            mask = np.array(
                [c.rat is rat and c.channel == channel for c in self.cells],
                dtype=bool,
            )
            self._intra_masks[key] = mask
        return mask


class RadioSnapshot:
    """All of one carrier's audible cells measured at one (time, place).

    Built once per simulation tick by
    :meth:`repro.cellnet.world.RadioEnvironment.snapshot`; RSRP is
    computed vectorized up front, RSRQ/SINR lazily per cell from the
    same co-channel power sums.
    """

    def __init__(self, model: RadioModel, prepared: PreparedCells, rsrp: np.ndarray,
                 location: Point):
        self._model = model
        self.prepared = prepared
        self.location = location
        self._rsrp = rsrp
        #: Lazily computed (rsrq, sinr, power_mw, own_totals_mw) bundle.
        self._metrics: tuple | None = None
        #: Per-cell :class:`Measurement` memo — parked/co-located UEs ask
        #: the same snapshot for the same serving cell tick after tick.
        self._measure_memo: dict = {}

    @property
    def cells(self) -> list[Cell]:
        """The snapshot's audible cells (shared with the prepared set)."""
        return self.prepared.cells

    def __contains__(self, cell: Cell) -> bool:
        return cell.cell_id in self.prepared.index

    def rsrp(self, cell: Cell) -> float:
        """RSRP of one snapshot cell (KeyError if not audible)."""
        return float(self._rsrp[self.prepared.index[cell.cell_id]])

    @property
    def rsrp_array(self) -> np.ndarray:
        """RSRP of every snapshot cell, aligned with ``cells``."""
        return self._rsrp

    def _compute_metrics(self) -> tuple:
        if self._metrics is None:
            power_mw = _dbm_to_mw(self._rsrp)
            group_index, n_groups = self.prepared.channel_groups
            totals = np.zeros(n_groups)
            np.add.at(totals, group_index, power_mw)
            noise_mw = float(_dbm_to_mw(NOISE_PER_PRB_DBM))
            own_totals = totals[group_index]
            interference = np.maximum(own_totals - power_mw, 0.0)
            sinr = self._rsrp - 10.0 * np.log10(interference + noise_mw)
            rsrq = self._rsrp - 10.0 * np.log10(12.0 * (own_totals + noise_mw))
            rsrq = np.clip(rsrq, -19.5, -3.0)
            self._metrics = (rsrq, sinr, power_mw, own_totals)
        return self._metrics

    def metric_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rsrp, rsrq, sinr) arrays over all snapshot cells, vectorized.

        Interference for cell i is the co-channel power sum of the other
        snapshot cells on i's (RAT, channel) minus i's own power.  The
        arrays are computed once per snapshot and cached.
        """
        if not self.cells:
            empty = np.zeros(0)
            return empty, empty, empty
        rsrq, sinr, _, _ = self._compute_metrics()
        return self._rsrp, rsrq, sinr

    def prime_metrics(
        self,
        rsrq: np.ndarray,
        sinr: np.ndarray,
        power_mw: np.ndarray,
        own_totals: np.ndarray,
    ) -> None:
        """Install externally computed metric arrays (fleet batching).

        The arrays must be exactly what :meth:`_compute_metrics` would
        have produced for this snapshot's RSRP — the fleet simulator
        computes them for many snapshots in one batched pass
        (:func:`compute_metrics_batch`) and hands each snapshot its row.
        """
        if self._metrics is None:
            self._metrics = (rsrq, sinr, power_mw, own_totals)

    def measure(self, cell: Cell) -> Measurement:
        """Full measurement of one snapshot cell (memoized per cell)."""
        memo = self._measure_memo
        measurement = memo.get(cell.cell_id)
        if measurement is None:
            i = self.prepared.index[cell.cell_id]
            rsrp = float(self._rsrp[i])
            _, _, power_mw, own_totals = self._compute_metrics()
            interference_mw = max(float(own_totals[i]) - float(power_mw[i]), 0.0)
            measurement = self._model._finish_measurement(cell, rsrp, interference_mw)
            memo[cell.cell_id] = measurement
        return measurement

    def strongest(self, rat: RAT | None = None) -> Cell | None:
        """Strongest cell in the snapshot, optionally of one RAT."""
        if not self.cells:
            return None
        if rat is None:
            return self.cells[int(np.argmax(self._rsrp))]
        candidates = np.flatnonzero(self.prepared.rat_mask(rat))
        if not candidates.size:
            return None
        return self.cells[int(candidates[np.argmax(self._rsrp[candidates])])]


def compute_metrics_batch(
    prepared: PreparedCells, rsrp_mat: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(rsrq, sinr, power_mw, own_totals) for many snapshots at once.

    ``rsrp_mat`` stacks the RSRP rows of several snapshots over the same
    prepared cell list (UE x cell).  Row ``g`` of every returned array is
    bit-identical to what :meth:`RadioSnapshot._compute_metrics` computes
    from ``rsrp_mat[g]`` alone: every operation is elementwise, and the
    batched ``np.add.at`` iterates its indices in row-major order, which
    preserves each row's per-group accumulation order.
    """
    power_mw = _dbm_to_mw(rsrp_mat)
    group_index, n_groups = prepared.channel_groups
    n_rows = rsrp_mat.shape[0]
    rows = np.arange(n_rows)[:, None]
    totals = np.zeros((n_rows, n_groups))
    np.add.at(totals, (rows, group_index[None, :]), power_mw)
    noise_mw = float(_dbm_to_mw(NOISE_PER_PRB_DBM))
    own_totals = totals[rows, group_index[None, :]]
    interference = np.maximum(own_totals - power_mw, 0.0)
    sinr = rsrp_mat - 10.0 * np.log10(interference + noise_mw)
    rsrq = rsrp_mat - 10.0 * np.log10(12.0 * (own_totals + noise_mw))
    rsrq = np.clip(rsrq, -19.5, -3.0)
    return rsrq, sinr, power_mw, own_totals
