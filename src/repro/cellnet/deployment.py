"""Deterministic network deployment generator.

Builds the cell layouts that stand in for the carriers' real networks:
hexagonal site grids per city with multi-layer (multi-channel, multi-RAT)
cells at each site, plus linear highway corridors between cities, which
is where the paper's Type-II driving experiments happen.

The generator is fully seeded: the same (city, carrier, seed) always
yields the same cells with the same identities, so dataset builds and
benchmarks are reproducible run-to-run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.cellnet.carrier import CARRIERS, Carrier
from repro.cellnet.cell import Cell, CellId, CellRegistry
from repro.cellnet.geo import Point, hex_grid, walk_segment
from repro.cellnet.rat import RAT
from repro.util import stable_hash


@dataclass(frozen=True)
class City:
    """A deployment region.

    Attributes:
        name: City name (the paper's C1..C5 are US cities).
        country: Country code matching ``Carrier.country``.
        rings: Number of hexagonal rings of sites (site count grows
            quadratically: 1 + 3*rings*(rings+1)).
        site_spacing_m: Inter-site distance.
        origin: Origin of the city's local plane; cities are placed far
            apart so their planes never overlap.
    """

    name: str
    country: str
    rings: int = 4
    site_spacing_m: float = 1000.0
    origin: Point = field(default=Point(0.0, 0.0))


#: The five US cities of the paper's city-level analysis (Fig. 20), with
#: relative sizes mirroring their cell counts (Chicago 4671 ... Lafayette
#: 745), plus the international cities contributing to D2.
US_CITIES = [
    City("Chicago", "US", rings=7, site_spacing_m=900.0, origin=Point(0.0, 0.0)),
    City("LA", "US", rings=6, site_spacing_m=1000.0, origin=Point(400_000.0, 0.0)),
    City("Indianapolis", "US", rings=5, site_spacing_m=1000.0, origin=Point(800_000.0, 0.0)),
    City("Columbus", "US", rings=4, site_spacing_m=1100.0, origin=Point(1_200_000.0, 0.0)),
    City("Lafayette", "US", rings=3, site_spacing_m=1200.0, origin=Point(1_600_000.0, 0.0)),
]

WORLD_CITIES = US_CITIES + [
    City("Beijing", "CN", rings=6, site_spacing_m=800.0, origin=Point(0.0, 400_000.0)),
    City("Shanghai", "CN", rings=5, site_spacing_m=800.0, origin=Point(400_000.0, 400_000.0)),
    City("Seoul", "KR", rings=4, site_spacing_m=700.0, origin=Point(800_000.0, 400_000.0)),
    City("Singapore", "SG", rings=4, site_spacing_m=700.0, origin=Point(1_200_000.0, 400_000.0)),
    City("HongKong", "HK", rings=3, site_spacing_m=650.0, origin=Point(1_600_000.0, 400_000.0)),
    City("Taipei", "TW", rings=4, site_spacing_m=750.0, origin=Point(0.0, 800_000.0)),
    City("Oslo", "NO", rings=3, site_spacing_m=1100.0, origin=Point(400_000.0, 800_000.0)),
    City("Paris", "FR", rings=2, site_spacing_m=900.0, origin=Point(800_000.0, 800_000.0)),
    City("Berlin", "DE", rings=2, site_spacing_m=950.0, origin=Point(1_200_000.0, 800_000.0)),
    City("Madrid", "ES", rings=2, site_spacing_m=950.0, origin=Point(1_600_000.0, 800_000.0)),
    City("MexicoCity", "MX", rings=2, site_spacing_m=1000.0, origin=Point(0.0, 1_200_000.0)),
    City("Rome", "IT", rings=1, site_spacing_m=900.0, origin=Point(400_000.0, 1_200_000.0)),
    City("London", "GB", rings=2, site_spacing_m=850.0, origin=Point(800_000.0, 1_200_000.0)),
    City("Toronto", "CA", rings=2, site_spacing_m=950.0, origin=Point(1_200_000.0, 1_200_000.0)),
    City("Tokyo", "JP", rings=2, site_spacing_m=700.0, origin=Point(1_600_000.0, 1_200_000.0)),
]


def city_by_name(name: str) -> City:
    """Look up a catalogued city by name."""
    for city in WORLD_CITIES:
        if city.name == name:
            return city
    raise KeyError(f"unknown city {name!r}")


@dataclass
class DeploymentPlan:
    """A complete deployment: the registry plus per-city site lists."""

    registry: CellRegistry = field(default_factory=CellRegistry)
    cities: list[City] = field(default_factory=list)
    _gci_counters: dict[str, itertools.count] = field(default_factory=dict)

    def next_gci(self, carrier: str) -> int:
        """Next global cell identity for ``carrier`` (deterministic)."""
        if carrier not in self._gci_counters:
            self._gci_counters[carrier] = itertools.count(1)
        return next(self._gci_counters[carrier])


def _carrier_layers(carrier: Carrier, rng: np.random.Generator) -> list[tuple[RAT, int]]:
    """The (RAT, channel) layers a carrier deploys at a full site.

    LTE layers dominate (72% of D2 cells are LTE, Table 4); each site
    carries 2-3 LTE channels drawn from the carrier's holdings, plus one
    3G and (for 3GPP-family carriers) occasionally one 2G layer.
    """
    layers: list[tuple[RAT, int]] = []
    lte = list(carrier.lte_channels)
    n_lte = min(len(lte), int(rng.integers(2, 4)))
    head = lte[:2]
    tail = lte[2:]
    chosen = head[:n_lte]
    if len(chosen) < n_lte and tail:
        extra = rng.choice(len(tail), size=min(n_lte - len(chosen), len(tail)), replace=False)
        chosen += [tail[i] for i in sorted(extra)]
    layers.extend((RAT.LTE, ch) for ch in chosen)
    if RAT.UMTS in carrier.rats and carrier.umts_channels and rng.random() < 0.75:
        layers.append((RAT.UMTS, carrier.umts_channels[int(rng.integers(len(carrier.umts_channels)))]))
    if RAT.EVDO in carrier.rats and carrier.cdma_channels:
        if rng.random() < 0.55:
            layers.append((RAT.EVDO, carrier.cdma_channels[int(rng.integers(len(carrier.cdma_channels)))]))
        if rng.random() < 0.4:
            layers.append((RAT.CDMA1X, carrier.cdma_channels[0]))
    if RAT.GSM in carrier.rats and carrier.gsm_channels and rng.random() < 0.3:
        layers.append((RAT.GSM, carrier.gsm_channels[int(rng.integers(len(carrier.gsm_channels)))]))
    return layers


def _site_jitter(rng: np.random.Generator, spacing_m: float) -> tuple[float, float]:
    """Small random site displacement (real grids are never perfect)."""
    return (
        float(rng.uniform(-0.15, 0.15) * spacing_m),
        float(rng.uniform(-0.15, 0.15) * spacing_m),
    )


def deploy_city(
    city: City,
    plan: DeploymentPlan,
    seed: int,
    carriers: list[Carrier] | None = None,
) -> list[Cell]:
    """Deploy all (or the given) carriers in one city.

    Returns the cells created.  Carriers not operating in the city's
    country are skipped unless explicitly listed (roaming partnerships
    are out of scope, as in the paper).
    """
    if carriers is None:
        carriers = [c for c in CARRIERS.values() if c.country == city.country]
    created: list[Cell] = []
    for carrier in sorted(carriers, key=lambda c: c.acronym):
        rng = np.random.default_rng((seed, stable_hash(city.name) & 0xFFFF, stable_hash(carrier.acronym) & 0xFFFF))
        # Scale the grid by carrier footprint: small carriers skip rings.
        rings = max(1, min(city.rings, int(round(city.rings * min(1.0, 0.3 + carrier.scale / 8.0)))))
        sites = hex_grid(city.origin, city.site_spacing_m, rings)
        for site in sites:
            dx, dy = _site_jitter(rng, city.site_spacing_m)
            location = site.offset(dx, dy)
            for rat, channel in _carrier_layers(carrier, rng):
                cell = Cell(
                    cell_id=CellId(carrier.acronym, plan.next_gci(carrier.acronym)),
                    rat=rat,
                    channel=channel,
                    pci=int(rng.integers(0, 504)),
                    location=location,
                    tx_power_dbm=float(rng.uniform(27.0, 33.0)),
                    city=city.name,
                    bandwidth_mhz=float(rng.choice([5.0, 10.0, 15.0, 20.0])) if rat is RAT.LTE else 5.0,
                )
                plan.registry.add(cell)
                created.append(cell)
    if city not in plan.cities:
        plan.cities.append(city)
    return created


def deploy_highway(
    start: Point,
    end: Point,
    plan: DeploymentPlan,
    seed: int,
    carriers: list[Carrier],
    site_spacing_m: float = 2500.0,
    name: str = "highway",
) -> list[Cell]:
    """Deploy a linear corridor of sites between two points.

    Highway sites are sparser and typically carry fewer layers —
    mirroring the paper's highway drives (90-120 km/h) where inter-freq
    and weak-coverage handoffs are more common.
    """
    created: list[Cell] = []
    for carrier in sorted(carriers, key=lambda c: c.acronym):
        rng = np.random.default_rng((seed, 0xD0AD, stable_hash(carrier.acronym) & 0xFFFF))
        for site in walk_segment(start, end, site_spacing_m):
            dx, dy = _site_jitter(rng, site_spacing_m * 0.3)
            location = site.offset(dx, dy)
            layers = _carrier_layers(carrier, rng)[:2]
            for rat, channel in layers:
                cell = Cell(
                    cell_id=CellId(carrier.acronym, plan.next_gci(carrier.acronym)),
                    rat=rat,
                    channel=channel,
                    pci=int(rng.integers(0, 504)),
                    location=location,
                    tx_power_dbm=float(rng.uniform(30.0, 36.0)),
                    city=name,
                    bandwidth_mhz=10.0,
                )
                plan.registry.add(cell)
                created.append(cell)
    return created


def build_us_deployment(seed: int = 7, cities: list[City] | None = None) -> DeploymentPlan:
    """Deploy the four US carriers across the paper's five US cities."""
    plan = DeploymentPlan()
    for city in cities or US_CITIES:
        deploy_city(city, plan, seed)
    return plan


def build_world_deployment(seed: int = 7, extra_rings: int = 0) -> DeploymentPlan:
    """Deploy every carrier in every catalogued city (dataset D2 scale).

    ``extra_rings`` widens every city's hex grid; the default world is
    ~10k cells, and ``extra_rings=3`` reaches the paper's ~32k-cell
    scale.
    """
    plan = DeploymentPlan()
    for city in WORLD_CITIES:
        if extra_rings:
            city = City(
                name=city.name,
                country=city.country,
                rings=city.rings + extra_rings,
                site_spacing_m=city.site_spacing_m,
                origin=city.origin,
            )
        deploy_city(city, plan, seed)
    return plan
