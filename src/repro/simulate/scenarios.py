"""Canned measurement scenarios.

The paper's Type-II experiments cover three US cities (Chicago,
Indianapolis, Lafayette) and the highways between them.  A
:class:`DriveScenario` bundles a deployment, its radio environment and
configuration server for one of those settings, so examples, dataset
builders and benchmarks all start from the same reproducible world.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellnet.carrier import us_carriers
from repro.cellnet.deployment import (
    City,
    DeploymentPlan,
    city_by_name,
    deploy_city,
    deploy_highway,
)
from repro.cellnet.geo import Point
from repro.cellnet.world import RadioEnvironment
from repro.pipeline.context import process_cached
from repro.rrc.broadcast import ConfigServer
from repro.simulate.mobility import Trajectory, grid_drive, highway_drive

#: The Type-II cities of the paper (Section 4 experimental settings).
TYPE2_CITIES = ("Chicago", "Indianapolis", "Lafayette")


@dataclass(frozen=True)
class ScenarioSpec:
    """The picklable recipe of a :func:`drive_scenario` world.

    Work units carry the spec instead of the scenario itself: a worker
    process rebuilds (and caches) the identical world from the recipe,
    so one scenario crosses process boundaries as a few ints and a
    string.
    """

    name: str = "indianapolis"
    seed: int = 7
    config_seed: int = 2018
    with_highway: bool = False

    def build(self) -> "DriveScenario":
        """The scenario this spec describes, cached per process."""
        return process_cached(
            ("drive-scenario", self),
            lambda: drive_scenario(
                self.name,
                seed=self.seed,
                config_seed=self.config_seed,
                with_highway=self.with_highway,
            ),
        )


@dataclass
class DriveScenario:
    """One ready-to-drive world: deployment + environment + configs."""

    name: str
    cities: list[City]
    plan: DeploymentPlan
    env: RadioEnvironment
    server: ConfigServer
    highway_endpoints: tuple[Point, Point] | None = None
    #: Recipe to rebuild this scenario in another process; ``None`` for
    #: hand-assembled scenarios, which then only run on serial backends.
    spec: ScenarioSpec | None = None

    def urban_trajectory(
        self, rng: np.random.Generator, city_name: str | None = None,
        duration_s: float = 600.0, speed_kmh: float = 40.0,
    ) -> Trajectory:
        """A local drive in one of the scenario's cities."""
        city = self.cities[0]
        if city_name is not None:
            city = next(c for c in self.cities if c.name == city_name)
        return grid_drive(city, rng, duration_s=duration_s, speed_kmh=speed_kmh)

    def highway_trajectory(
        self, rng: np.random.Generator, speed_kmh: float = 105.0
    ) -> Trajectory:
        """A highway run along the scenario's corridor (if deployed)."""
        if self.highway_endpoints is None:
            raise ValueError(f"scenario {self.name!r} has no highway corridor")
        start, end = self.highway_endpoints
        return highway_drive(start, end, rng, speed_kmh=speed_kmh)


def drive_scenario(
    name: str = "indianapolis",
    seed: int = 7,
    config_seed: int = 2018,
    with_highway: bool = False,
) -> DriveScenario:
    """Build a Type-II scenario.

    Args:
        name: One of "chicago", "indianapolis", "lafayette" (single
            city) or "tri-city" (all three plus a highway corridor).
        seed: Deployment seed.
        config_seed: Configuration-profile seed.
        with_highway: Deploy a highway corridor out of the single city.
    """
    carriers = us_carriers()
    plan = DeploymentPlan()
    if name == "tri-city":
        cities = [city_by_name(c) for c in TYPE2_CITIES]
        for city in cities:
            deploy_city(city, plan, seed, carriers=carriers)
        start = cities[1].origin  # Indianapolis -> Lafayette corridor.
        end = cities[2].origin
        corridor_start = start.offset(cities[1].rings * cities[1].site_spacing_m, 0.0)
        corridor_end = corridor_start.offset(40_000.0, 0.0)
        deploy_highway(corridor_start, corridor_end, plan, seed, carriers, name="I-65")
        endpoints = (corridor_start, corridor_end)
    else:
        city = city_by_name(name.capitalize() if name != "lafayette" else "Lafayette")
        cities = [city]
        deploy_city(city, plan, seed, carriers=carriers)
        endpoints = None
        if with_highway:
            edge = city.origin.offset(city.rings * city.site_spacing_m, 0.0)
            far = edge.offset(40_000.0, 0.0)
            deploy_highway(edge, far, plan, seed, carriers, name=f"{city.name}-hwy")
            endpoints = (edge, far)
    env = RadioEnvironment(plan)
    server = ConfigServer(env, seed=config_seed)
    return DriveScenario(
        name=name,
        cities=cities,
        plan=plan,
        env=env,
        server=server,
        highway_endpoints=endpoints,
        spec=ScenarioSpec(
            name=name, seed=seed, config_seed=config_seed, with_highway=with_highway
        ),
    )
