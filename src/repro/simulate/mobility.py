"""Mobility models: the trajectories devices drive.

The paper's Type-II measurements drive locally (< 50 km/h) and on
highways (90-120 km/h) through three US cities.  We model a trajectory
as a sampled polyline: ``Trajectory.position(t_ms)`` interpolates along
precomputed waypoints, so the runner can query arbitrary tick times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cellnet.deployment import City
from repro.cellnet.geo import Point


@dataclass(frozen=True)
class Trajectory:
    """A timed path: waypoints plus the cumulative time to reach each.

    Attributes:
        waypoints: Path vertices.
        times_ms: Arrival time at each vertex (monotonic, starts at 0).
    """

    waypoints: tuple[Point, ...]
    times_ms: tuple[int, ...]

    def __post_init__(self):
        if len(self.waypoints) != len(self.times_ms):
            raise ValueError("waypoints and times must align")
        if len(self.waypoints) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        if any(b <= a for a, b in zip(self.times_ms, self.times_ms[1:])):
            raise ValueError("times must be strictly increasing")

    @property
    def duration_ms(self) -> int:
        """Total trajectory duration."""
        return self.times_ms[-1]

    def position(self, t_ms: int) -> Point:
        """Location at ``t_ms`` (clamped to the trajectory's span)."""
        if t_ms <= self.times_ms[0]:
            return self.waypoints[0]
        if t_ms >= self.times_ms[-1]:
            return self.waypoints[-1]
        # Binary search for the segment containing t.
        lo, hi = 0, len(self.times_ms) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.times_ms[mid] <= t_ms:
                lo = mid
            else:
                hi = mid
        t0, t1 = self.times_ms[lo], self.times_ms[hi]
        fraction = (t_ms - t0) / (t1 - t0)
        return self.waypoints[lo].towards(self.waypoints[hi], fraction)


def _timed(waypoints: list[Point], speed_mps: float) -> Trajectory:
    """Assign arrival times to a polyline at constant speed."""
    times = [0]
    for a, b in zip(waypoints, waypoints[1:]):
        leg_ms = max(int(a.distance_to(b) / speed_mps * 1000.0), 1)
        times.append(times[-1] + leg_ms)
    return Trajectory(waypoints=tuple(waypoints), times_ms=tuple(times))


def grid_drive(
    city: City,
    rng: np.random.Generator,
    duration_s: float = 600.0,
    speed_kmh: float = 40.0,
    block_m: float = 450.0,
) -> Trajectory:
    """An urban drive on a rectilinear road grid through ``city``.

    The driver moves between random lattice intersections (Manhattan
    legs), staying within the city's deployed extent — the local
    driving mode of the paper's experiments.
    """
    speed_mps = speed_kmh / 3.6
    # Stay well inside the deployed footprint: the hex grid's radius is
    # rings * spacing, and the square inscribed in that disc has
    # half-width radius / sqrt(2).
    extent = city.rings * city.site_spacing_m * 0.62
    n_cols = max(int(2 * extent / block_m), 2)

    def lattice_point(ix: int, iy: int) -> Point:
        return city.origin.offset(ix * block_m - extent, iy * block_m - extent)

    ix = int(rng.integers(0, n_cols))
    iy = int(rng.integers(0, n_cols))
    waypoints = [lattice_point(ix, iy)]
    total_needed = speed_mps * duration_s
    travelled = 0.0
    while travelled < total_needed:
        horizontal = rng.random() < 0.5
        step = int(rng.integers(1, 4)) * (1 if rng.random() < 0.5 else -1)
        if horizontal:
            ix = min(max(ix + step, 0), n_cols - 1)
        else:
            iy = min(max(iy + step, 0), n_cols - 1)
        nxt = lattice_point(ix, iy)
        if nxt.distance_to(waypoints[-1]) < 1.0:
            continue
        travelled += nxt.distance_to(waypoints[-1])
        waypoints.append(nxt)
    return _timed(waypoints, speed_mps)


def highway_drive(
    start: Point,
    end: Point,
    rng: np.random.Generator,
    speed_kmh: float = 105.0,
    jitter_kmh: float = 10.0,
) -> Trajectory:
    """A highway run from ``start`` to ``end`` at 90-120 km/h.

    Speed varies mildly leg to leg (traffic), giving non-uniform
    waypoint timing along the corridor.
    """
    distance = start.distance_to(end)
    n_legs = max(int(distance / 2000.0), 1)
    waypoints = [start.towards(end, i / n_legs) for i in range(n_legs + 1)]
    times = [0]
    for a, b in zip(waypoints, waypoints[1:]):
        leg_speed = max((speed_kmh + rng.uniform(-jitter_kmh, jitter_kmh)) / 3.6, 1.0)
        times.append(times[-1] + max(int(a.distance_to(b) / leg_speed * 1000.0), 1))
    return Trajectory(waypoints=tuple(waypoints), times_ms=tuple(times))


def static_position(location: Point, duration_s: float = 600.0) -> Trajectory:
    """A device sitting still (used by measurement-efficiency checks)."""
    return Trajectory(
        waypoints=(location, location.offset(0.01, 0.0)),
        times_ms=(0, max(int(duration_s * 1000), 1)),
    )


def parked_position(location: Point, duration_s: float = 600.0) -> Trajectory:
    """A truly parked device: ``position(t)`` is ``location`` exactly.

    Unlike :func:`static_position` (whose 1 cm drift makes every tick a
    distinct location), the returned trajectory clamps to its first
    waypoint for the whole duration, so per-tick snapshot memos hit and
    a parked fleet shares one physics pass per spot for its entire run.
    """
    duration_ms = max(int(duration_s * 1000), 1)
    return Trajectory(
        waypoints=(location, location),
        times_ms=(duration_ms, duration_ms + 1),
    )


def waypoint_ring(city: City, n: int = 12, radius_fraction: float = 0.6) -> list[Point]:
    """Evenly spaced points on a circle inside the city (test anchors)."""
    radius = city.rings * city.site_spacing_m * radius_fraction
    return [
        city.origin.offset(radius * math.cos(2 * math.pi * i / n),
                           radius * math.sin(2 * math.pi * i / n))
        for i in range(n)
    ]
