"""Mobility, traffic and data-performance simulation.

Stands in for the paper's Type-II driving experiments: trajectories
through the deployed cities and highways, the three data services the
authors ran (continuous speedtest, constant-rate iPerf, ping), and a
SINR-driven throughput model that exposes how handoff timing shapes
user-perceived performance.
"""

from repro.simulate.clock import SimulationClock
from repro.simulate.fleet import (
    FleetAggregates,
    FleetOptions,
    FleetResult,
    FleetSimulator,
    UEResult,
    UESpec,
    run_fleet,
)
from repro.simulate.mobility import (
    Trajectory,
    grid_drive,
    highway_drive,
    parked_position,
    static_position,
)
from repro.simulate.traffic import TrafficModel, Speedtest, ConstantRate, Ping
from repro.simulate.throughput import ThroughputModel
from repro.simulate.runner import DriveSimulator, DriveResult, TickSample
from repro.simulate.scenarios import drive_scenario, DriveScenario

__all__ = [
    "SimulationClock",
    "Trajectory",
    "grid_drive",
    "highway_drive",
    "parked_position",
    "static_position",
    "TrafficModel",
    "Speedtest",
    "ConstantRate",
    "Ping",
    "ThroughputModel",
    "DriveSimulator",
    "DriveResult",
    "TickSample",
    "drive_scenario",
    "DriveScenario",
    "FleetAggregates",
    "FleetOptions",
    "FleetResult",
    "FleetSimulator",
    "UEResult",
    "UESpec",
    "run_fleet",
]
