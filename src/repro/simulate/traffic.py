"""Traffic models: the data services the paper's experiments ran.

Type-II measurements ran one of three services per drive: continuous
speedtest, constant-rate iPerf (5 kbps and 1 Mbps) and a 5-second ping.
A traffic model turns per-tick link capacity into per-tick *delivered*
bytes (or RTT samples for ping); the dataset builder later aligns the
series with handoff instances, playing the role of tcpdump.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TrafficModel:
    """Base traffic model: converts capacity into delivered traffic."""

    name = "none"

    def delivered_bits(self, capacity_bps: float, tick_ms: int, now_ms: int) -> float:
        """Bits delivered during one tick of ``tick_ms`` at ``capacity_bps``."""
        raise NotImplementedError

    @property
    def generates_user_traffic(self) -> bool:
        """Whether the service keeps the UE in RRC connected state."""
        return True


@dataclass
class Speedtest(TrafficModel):
    """Continuous speedtest: a greedy bulk transfer using all capacity."""

    name: str = "speedtest"

    def delivered_bits(self, capacity_bps: float, tick_ms: int, now_ms: int) -> float:
        return capacity_bps * tick_ms / 1000.0


@dataclass
class ConstantRate(TrafficModel):
    """Constant-rate iPerf: delivers min(rate, capacity) with backlog.

    Undelivered data queues (up to a bounded backlog) and drains when
    capacity returns — matching UDP iPerf behaviour around handoffs.
    """

    rate_bps: float = 1_000_000.0
    name: str = "iperf"
    max_backlog_bits: float = 4_000_000.0
    _backlog_bits: float = field(default=0.0, repr=False)

    def delivered_bits(self, capacity_bps: float, tick_ms: int, now_ms: int) -> float:
        offered = self.rate_bps * tick_ms / 1000.0 + self._backlog_bits
        deliverable = capacity_bps * tick_ms / 1000.0
        delivered = min(offered, deliverable)
        self._backlog_bits = min(offered - delivered, self.max_backlog_bits)
        return delivered


@dataclass
class Ping(TrafficModel):
    """Ping every ``interval_s`` seconds (the paper pings Google at 5 s).

    Carries negligible data; RTT/loss are sampled by the runner when a
    probe is due.
    """

    interval_s: float = 5.0
    name: str = "ping"

    def delivered_bits(self, capacity_bps: float, tick_ms: int, now_ms: int) -> float:
        return 0.0

    def probe_due(self, now_ms: int, tick_ms: int) -> bool:
        """Whether a probe fires during the tick ending at ``now_ms``."""
        interval_ms = int(self.interval_s * 1000)
        return now_ms % interval_ms < tick_ms

    @property
    def generates_user_traffic(self) -> bool:
        return True


@dataclass
class NoTraffic(TrafficModel):
    """No user traffic: the idle-state measurement mode."""

    name: str = "idle"

    def delivered_bits(self, capacity_bps: float, tick_ms: int, now_ms: int) -> float:
        return 0.0

    @property
    def generates_user_traffic(self) -> bool:
        return False
