"""Logical simulation clock.

All simulation time is logical milliseconds from a per-run epoch; wall
clock never leaks in, which keeps every dataset build reproducible.
"""

from __future__ import annotations


class SimulationClock:
    """Millisecond-resolution logical clock with a fixed tick."""

    def __init__(self, tick_ms: int = 200, start_ms: int = 0):
        if tick_ms <= 0:
            raise ValueError("tick_ms must be positive")
        self.tick_ms = tick_ms
        self.now_ms = start_ms

    def advance(self) -> int:
        """Advance one tick; returns the new time."""
        self.now_ms += self.tick_ms
        return self.now_ms

    def ticks_until(self, duration_ms: int) -> int:
        """How many ticks cover ``duration_ms`` (rounded up)."""
        return -(-duration_ms // self.tick_ms)

    @property
    def now_s(self) -> float:
        """Current time in seconds."""
        return self.now_ms / 1000.0
