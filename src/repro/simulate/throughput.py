"""Data-performance model: SINR to user throughput.

The paper's performance figures (Fig. 7/8) bin throughput at 100 ms and
1 s around handoffs.  We model per-tick link capacity as truncated-
Shannon spectral efficiency over the serving cell's bandwidth, scaled by
a slowly varying cell-load share, and zero during handover interruption.
The characteristic pre-handoff throughput collapse then *emerges* from
handoff timing: a config that defers handoffs (large Delta_A3, strict
A5 serving threshold) keeps the UE on a decaying SINR longer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cellnet.cell import Cell
from repro.util import stable_hash

#: Attenuation from Shannon capacity to practical LTE link adaptation
#: (3GPP TR 36.942-style truncated Shannon).
_LINK_EFFICIENCY = 0.6

#: Spectral-efficiency cap (64-QAM, 2x2 MIMO practical ceiling).
_MAX_SPECTRAL_EFFICIENCY = 4.4

#: SINR below which the link cannot sustain data.
_MIN_SINR_DB = -6.5


class ThroughputModel:
    """Maps (serving cell, SINR, time) to achievable user throughput."""

    def __init__(self, rng: np.random.Generator, mean_load_share: float = 0.55):
        self.rng = rng
        self.mean_load_share = mean_load_share
        self._cell_load: dict = {}

    def _load_share(self, cell: Cell, now_ms: int) -> float:
        """This user's share of the cell, re-drawn every few seconds.

        Models other users' load without simulating them: a bounded
        random walk per cell, refreshed on a 4-second grid.
        """
        epoch = now_ms // 4000
        key = (cell.cell_id, epoch)
        share = self._cell_load.get(key)
        if share is None:
            base_rng = np.random.default_rng(
                (stable_hash(cell.cell_id.carrier) & 0xFFFF, cell.cell_id.gci, epoch)
            )
            share = float(
                np.clip(base_rng.normal(self.mean_load_share, 0.15), 0.15, 0.95)
            )
            if len(self._cell_load) > 8192:
                self._cell_load.clear()
            self._cell_load[key] = share
        return share

    def capacity_bps(self, cell: Cell, sinr_db: float, now_ms: int) -> float:
        """Achievable downlink throughput right now, in bits/second."""
        if sinr_db < _MIN_SINR_DB:
            return 0.0
        sinr_linear = 10.0 ** (sinr_db / 10.0)
        efficiency = min(
            _LINK_EFFICIENCY * math.log2(1.0 + sinr_linear), _MAX_SPECTRAL_EFFICIENCY
        )
        bandwidth_hz = cell.bandwidth_mhz * 1e6 * 0.9  # control overhead
        return efficiency * bandwidth_hz * self._load_share(cell, now_ms)

    def rtt_ms(self, sinr_db: float) -> float:
        """Round-trip time estimate for the ping service."""
        base = 32.0
        if sinr_db < 0.0:
            base += min(-sinr_db * 12.0, 180.0)  # HARQ retransmissions
        return base + float(self.rng.exponential(6.0))

    def ping_lost(self, sinr_db: float, interrupted: bool) -> bool:
        """Whether one ping would be dropped."""
        if interrupted:
            return True
        if sinr_db < _MIN_SINR_DB:
            return True
        return bool(self.rng.random() < 0.002)
