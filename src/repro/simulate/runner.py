"""The drive simulator: one device, one trajectory, one data service.

``DriveSimulator.run`` is the reproduction of one Type-II measurement
run: the UE ticks along the trajectory, its signaling is logged to a
diag buffer by the attached collector listener (exactly what MMLab does
on a rooted phone), and the traffic model converts the serving link's
capacity into delivered throughput (the role of tcpdump in the paper).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.cellnet.cell import CellId
from repro.cellnet.world import RadioEnvironment
from repro.rrc.broadcast import ConfigServer
from repro.rrc.diag import DiagWriter
from repro.simulate.mobility import Trajectory
from repro.simulate.throughput import ThroughputModel
from repro.simulate.traffic import NoTraffic, Ping, TrafficModel
from repro.ue.device import HandoffEvent, RrcState, UserEquipment


@dataclass(frozen=True)
class TickSample:
    """Per-tick ground truth: where the device was and what it got."""

    t_ms: int
    serving: CellId
    rsrp_dbm: float
    sinr_db: float
    capacity_bps: float
    delivered_bps: float
    interrupted: bool


@dataclass
class DriveResult:
    """Everything one simulated drive produces.

    ``diag_log`` is the device-side artifact MMLab parses; ``samples``
    and ``handoffs`` are simulator ground truth used for validation and
    for throughput alignment (the tcpdump side).
    """

    carrier: str
    tick_ms: int
    samples: list[TickSample] = field(default_factory=list)
    handoffs: list[HandoffEvent] = field(default_factory=list)
    diag_log: bytes = b""
    ping_rtts_ms: list[tuple[int, float | None]] = field(default_factory=list)
    #: Per-stage cumulative wall seconds, populated when the drive ran
    #: under ``REPRO_PROFILE=1``; None otherwise.
    profile: dict[str, float] | None = None

    def throughput_series(self, bin_ms: int = 1000) -> list[tuple[int, float]]:
        """(bin start, mean delivered bps) series at ``bin_ms`` bins.

        A single accumulation pass (running sum/count per bin) — long
        drives do not materialize a per-bin list of every sample.
        """
        if not self.samples:
            return []
        bins: dict[int, list[float]] = {}
        for sample in self.samples:
            acc = bins.get(sample.t_ms // bin_ms * bin_ms)
            if acc is None:
                bins[sample.t_ms // bin_ms * bin_ms] = [sample.delivered_bps, 1]
            else:
                acc[0] += sample.delivered_bps
                acc[1] += 1
        return [(start, total / count) for start, (total, count) in sorted(bins.items())]


class DriveSimulator:
    """Runs Type-II drives against one deployment.

    Args:
        env: Radio environment.
        server: Configuration oracle for the deployment.
        carrier: Carrier the device subscribes to.
        seed: Seeds the UE, the network controller and traffic noise.
        tick_ms: Simulation step (the paper bins throughput at 100 ms;
            200 ms keeps long sweeps fast while preserving shapes).
        config_lint: Preflight-audit the carrier's configurations before
            the first drive and surface findings as a
            :class:`~repro.lint.engine.ConfigLintWarning`.  The audit is
            cached per (server, carrier), so fleets pay for it once.
        vectorized: Run the UE's array-resident hot path (default) or
            the scalar reference loop; drives are bit-identical either
            way.  Setting ``REPRO_PROFILE=1`` additionally attaches
            per-stage cumulative timings to each :class:`DriveResult`.
    """

    def __init__(
        self,
        env: RadioEnvironment,
        server: ConfigServer,
        carrier: str,
        seed: int = 0,
        tick_ms: int = 200,
        config_lint: bool = True,
        vectorized: bool | None = None,
    ):
        self.env = env
        self.server = server
        self.carrier = carrier
        self.seed = seed
        self.tick_ms = tick_ms
        self.config_lint = config_lint
        self.vectorized = vectorized

    def run(
        self,
        trajectory: Trajectory,
        traffic: TrafficModel | None = None,
        run_index: int = 0,
    ) -> DriveResult:
        """Simulate one drive; returns the full result bundle.

        With a traffic model that generates user traffic the UE runs RRC
        connected (active-state handoffs); with ``NoTraffic`` it stays
        idle (idle-state handoffs), matching the paper's two Type-II
        modes.
        """
        if self.config_lint:
            # Imported here: repro.lint reaches repro.core, whose package
            # init imports this module back (core.server drives fleets).
            from repro.lint.engine import warn_before_run

            warn_before_run(self.env, self.server, self.carrier)
        traffic = traffic if traffic is not None else NoTraffic()
        ue = UserEquipment(
            self.env,
            self.server,
            self.carrier,
            seed=(self.seed * 1009 + run_index),
            vectorized=self.vectorized,
        )
        writer = DiagWriter.in_memory()
        ue.add_listener(lambda t, message, direction: writer.write(t, message))
        throughput = ThroughputModel(
            rng=np.random.default_rng((self.seed, run_index, 0x7A))
        )
        result = DriveResult(carrier=self.carrier, tick_ms=self.tick_ms)
        profile: dict[str, float] | None = None
        if os.environ.get("REPRO_PROFILE", "0") not in ("", "0"):
            profile = {}
            ue.profile = profile
        now_ms = 0
        start = trajectory.position(0)
        ue.initial_camp(start, now_ms)
        if traffic.generates_user_traffic:
            ue.connect(now_ms)
        while now_ms <= trajectory.duration_ms:
            location = trajectory.position(now_ms)
            t0 = perf_counter() if profile is not None else 0.0
            ue.tick(now_ms, location)
            if profile is not None:
                profile["ue_tick"] = profile.get("ue_tick", 0.0) + perf_counter() - t0
                t0 = perf_counter()
            serving = ue.serving
            assert serving is not None
            # Ground-truth sampling reuses the snapshot the UE's tick
            # just took at this location (memoized per tick) instead of
            # preparing and measuring the neighborhood a second time.
            snap = ue.meas.snapshot(location, self.carrier)
            if serving in snap:
                measurement = snap.measure(serving)
                rsrp, sinr = measurement.rsrp_dbm, measurement.sinr_db
            else:
                rsrp, sinr = -140.0, -20.0
            interrupted = ue.is_interrupted(now_ms)
            capacity = 0.0 if interrupted else throughput.capacity_bps(serving, sinr, now_ms)
            delivered_bits = traffic.delivered_bits(capacity, self.tick_ms, now_ms)
            result.samples.append(
                TickSample(
                    t_ms=now_ms,
                    serving=serving.cell_id,
                    rsrp_dbm=rsrp,
                    sinr_db=sinr,
                    capacity_bps=capacity,
                    delivered_bps=delivered_bits * 1000.0 / self.tick_ms,
                    interrupted=interrupted,
                )
            )
            if isinstance(traffic, Ping) and traffic.probe_due(now_ms, self.tick_ms):
                if throughput.ping_lost(sinr, interrupted):
                    result.ping_rtts_ms.append((now_ms, None))
                else:
                    result.ping_rtts_ms.append((now_ms, throughput.rtt_ms(sinr)))
            if profile is not None:
                profile["ground_truth"] = (
                    profile.get("ground_truth", 0.0) + perf_counter() - t0
                )
            now_ms += self.tick_ms
        result.handoffs = list(ue.handoffs)
        result.diag_log = writer.getvalue()
        result.profile = profile
        return result
