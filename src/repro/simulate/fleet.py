"""Fleet-scale multi-UE simulation: batched numpy state, shared physics.

One :class:`DriveSimulator` reproduces one Type-II drive; a *fleet*
simulates hundreds to thousands of devices living in the same deployed
world at once — the population view behind handoff-rate, ping-pong and
handoff-storm statistics.  Ticking that many UEs one by one would repeat
the same physics and measurement work per device; the fleet instead
runs all UEs in lockstep and batches the per-tick hot path:

* **Shared radio snapshots** — UEs standing at the same spot (parked
  clusters, transit riders on one line) share a single physics pass per
  tick; everyone else's neighborhoods come from the environment's
  prepared-cell LRU, whose capacity is grown to the fleet's working set
  (:meth:`~repro.cellnet.world.RadioEnvironment.reserve_snapshot_capacity`).
* **Batched measurement rounds** — the L3 filter state of every
  batched UE, whatever neighborhood it lives in, is promoted to
  persistent (UE x cell) matrices updated in place each tick
  (:class:`~repro.ue.measurement.BatchMeasurementState`); rounds are
  materialized only for lanes whose tick consumes one.
* **Batched event evaluation** — lanes are grouped by armed-event
  signature and each event's entry condition is evaluated as one
  masked (UE x cell) pass; ticks proven no-ops take
  :meth:`~repro.ue.device.UserEquipment.quiet_tick`, skipping the
  per-lane event machinery entirely.
* **Sharding** — fleets split into :class:`FleetShardUnit` work units
  over the :mod:`repro.pipeline` backends; per-UE seeds come from
  ``numpy.random.SeedSequence.spawn``, so every UE's result is
  bit-identical regardless of fleet size, shard boundaries or worker
  count.

Batching never changes a single bit of any UE's outputs: every batched
operation is the elementwise twin of the scalar/vectorized per-UE path
(same ufuncs, same order, same RNG streams), and parity tests assert
UE *k* of a fleet equals a solo :class:`DriveSimulator` run bit for
bit.  Any lane in an unusual state (idle, scalar oracle, a handover
due this tick) simply falls back to the untouched per-UE path.
"""

from __future__ import annotations

import hashlib
import os
from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.cellnet.radio import compute_metrics_batch
from repro.cellnet.rat import RAT
from repro.config.events import EventType
from repro.pipeline.backends import ExecutionBackend, resolve_backend
from repro.pipeline.unit import WorkUnit
from repro.rrc import codec as _codec
from repro.rrc import diag as _diag
from repro.rrc.diag import DiagWriter
from repro.rrc.messages import PhyServingMeas
from repro.simulate.mobility import Trajectory, grid_drive, parked_position
from repro.simulate.runner import DriveResult, TickSample
from repro.simulate.scenarios import DriveScenario, ScenarioSpec
from repro.simulate.throughput import ThroughputModel
from repro.simulate.traffic import (
    ConstantRate,
    NoTraffic,
    Ping,
    Speedtest,
    TrafficModel,
)
from repro.ue.device import HandoffEvent, RrcState, UserEquipment
from repro.ue.measurement import BatchMeasurementState, MeasurementRound

#: Default population mix: mostly parked devices, a transit-riding
#: share, some pedestrians and drivers — a plausible daytime urban mix.
DEFAULT_MIX: tuple[tuple[str, float], ...] = (
    ("parked", 0.55),
    ("transit", 0.25),
    ("pedestrian", 0.10),
    ("vehicle", 0.10),
)

_PROFILE_SPEEDS_KMH = {"pedestrian": 5.0, "vehicle": 40.0, "transit": 30.0}

#: Lattice block per profile: walkers turn at street corners, drivers
#: at arterial blocks.  Keeping blocks proportionate to speed also
#: keeps every profile's trajectory duration close to ``duration_s``
#: (a 450 m minimum leg at walking pace would last 5 minutes).
_PROFILE_BLOCK_M = {"pedestrian": 100.0, "vehicle": 450.0, "transit": 450.0}

#: Ping-pong window: an A->B->A pair within this span counts (Fig. 12).
PING_PONG_WINDOW_MS = 10_000


def _profile_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE", "0") not in ("", "0")


_TAGF = _codec._TAG_FLOAT_BYTE
_PACK_DOUBLE = _codec._PACK_DOUBLE
_HEADER_PACK = _diag._HEADER.pack


def _phy_template(cell) -> tuple:
    """Codec template parts for quiet-path PHY records serving ``cell``.

    Returns ``(head, mid, tail, base_sum, payload_len)``: the codec's
    own template bytes around the two packed doubles, the checksum
    contribution of everything except those doubles, and the total
    payload length.  Encoding one reference message through the codec
    keeps the parts definitionally identical to the slow path (the
    quiet path's ``sinr_db`` and ``rrc_connected`` are constants).
    """
    message = PhyServingMeas(
        carrier=cell.carrier,
        gci=cell.cell_id.gci,
        channel=cell.channel,
        rat=cell.rat.value,
        rsrp_dbm=0.0,
        rsrq_db=0.0,
        sinr_db=0.0,
        rrc_connected=True,
    )
    _codec.encode_message(message)
    head, mid, tail = _codec._phy_templates[
        (message.carrier, message.gci, message.channel, message.rat, 0.0, True)
    ]
    base_sum = sum(head) + sum(mid) + sum(tail) + 2 * _codec._TAG_FLOAT
    return (head, mid, tail, base_sum, len(head) + len(mid) + len(tail) + 18)


def _monitor_batch_info(meas_config) -> tuple:
    """Grouping key and parameter matrix for the batched event pass.

    Returns ``(signature, params, s_measure, periodic)`` where
    ``signature`` is the armed ``(event, metric)`` tuple — the batch
    groups lanes by it — and ``params`` is an ``(events, 4)`` float
    matrix of ``[hysteresis, threshold1, threshold2, offset]`` rows
    (absent thresholds as 0.0; their events never read them).
    """
    events = meas_config.events
    signature = tuple((c.event, c.metric) for c in events)
    params = np.array(
        [
            [
                c.hysteresis,
                0.0 if c.threshold1 is None else c.threshold1,
                0.0 if c.threshold2 is None else c.threshold2,
                c.offset,
            ]
            for c in events
        ],
        dtype=np.float64,
    ).reshape(len(events), 4)
    return signature, params, meas_config.s_measure, meas_config.periodic


def make_traffic(name: str) -> TrafficModel:
    """A fresh traffic-model instance by service name."""
    if name == "speedtest":
        return Speedtest()
    if name == "iperf":
        return ConstantRate()
    if name == "ping":
        return Ping()
    if name == "idle":
        return NoTraffic()
    raise ValueError(f"unknown traffic model {name!r}")


@dataclass(frozen=True)
class FleetOptions:
    """Recipe of one fleet simulation (picklable, shard-safe).

    Attributes:
        scenario: World recipe; shards rebuild (and process-cache) it.
        fleet_seed: Root of the per-UE ``SeedSequence.spawn`` tree and
            of every trajectory's RNG.
        n_ues: Fleet population.
        duration_s: Per-UE simulated duration.
        tick_ms: Simulation step.
        carriers: Subscriptions, assigned round-robin by UE index.
        mix: (profile, weight) population mix; expanded into a 20-slot
            repeating pattern so a UE's profile depends only on its
            index, never on the fleet size.
        transit_lines: Number of shared transit trajectories; riders of
            one line are co-located every tick and share physics.
        traffic: Data service name ("speedtest", "iperf", "ping",
            "idle").
        keep_samples: Retain per-tick samples and raw diag bytes per UE
            (memory-heavy; aggregates never need it).
        workers: Default worker processes for :func:`run_fleet`.
        shard_size: UEs per work unit (fixed, so the unit list is
            independent of the worker count).
        config_lint: Preflight-audit carrier configurations.
    """

    scenario: ScenarioSpec = ScenarioSpec()
    fleet_seed: int = 2024
    n_ues: int = 100
    duration_s: float = 600.0
    tick_ms: int = 200
    carriers: tuple[str, ...] = ("A",)
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX
    transit_lines: int = 8
    traffic: str = "speedtest"
    keep_samples: bool = False
    workers: int | None = None
    shard_size: int = 64
    config_lint: bool = False


@dataclass(frozen=True)
class UESpec:
    """One fleet member: identity, seed, behaviour profile."""

    index: int
    seed: int
    profile: str
    carrier: str


def mix_pattern(mix: tuple[tuple[str, float], ...]) -> tuple[str, ...]:
    """Expand a (profile, weight) mix into a 20-slot repeating pattern.

    Largest-remainder apportionment over 20 slots, then profiles
    interleaved round-robin; ``pattern[index % 20]`` assigns a UE its
    profile as a pure function of its index.
    """
    slots = 20
    total = sum(w for _, w in mix)
    if total <= 0:
        raise ValueError("mix weights must sum to a positive value")
    counts: dict[str, int] = {}
    remainders: list[tuple[float, str]] = []
    assigned = 0
    for name, weight in mix:
        exact = weight / total * slots
        base = int(exact)
        counts[name] = counts.get(name, 0) + base
        assigned += base
        remainders.append((exact - base, name))
    for _, name in sorted(remainders, key=lambda r: (-r[0], r[1]))[: slots - assigned]:
        counts[name] += 1
    pattern: list[str] = []
    remaining = dict(counts)
    while len(pattern) < slots:
        progressed = False
        for name, _ in mix:
            if remaining.get(name, 0) > 0:
                pattern.append(name)
                remaining[name] -= 1
                progressed = True
        if not progressed:  # pragma: no cover - all weights rounded to 0
            raise ValueError("mix produced an empty pattern")
    return tuple(pattern)


def ue_specs(options: FleetOptions, start: int = 0, count: int | None = None) -> list[UESpec]:
    """Specs of UEs ``start .. start+count`` of the fleet.

    Per-UE seeds are the spawned children of
    ``SeedSequence(fleet_seed)``; child *k* is a pure function of
    (fleet_seed, k), so UE *k* is the same device in a 10-UE fleet, a
    2000-UE fleet, or any shard split.
    """
    if count is None:
        count = options.n_ues - start
    children = np.random.SeedSequence(options.fleet_seed).spawn(start + count)
    pattern = mix_pattern(options.mix)
    specs = []
    for k in range(start, start + count):
        seed = int(children[k].generate_state(1, np.uint64)[0])
        specs.append(
            UESpec(
                index=k,
                seed=seed,
                profile=pattern[k % len(pattern)],
                carrier=options.carriers[k % len(options.carriers)],
            )
        )
    return specs


def transit_trajectory(
    scenario: DriveScenario, options: FleetOptions, line: int
) -> Trajectory:
    """The shared trajectory of one transit line (pure in its inputs)."""
    city = scenario.cities[line % len(scenario.cities)]
    rng = np.random.default_rng((options.fleet_seed, 0x7128, line))
    return grid_drive(
        city,
        rng,
        duration_s=options.duration_s,
        speed_kmh=_PROFILE_SPEEDS_KMH["transit"],
    )


def trajectory_for(
    scenario: DriveScenario, options: FleetOptions, spec: UESpec
) -> Trajectory:
    """The trajectory UE ``spec`` drives; depends only on (options, index)."""
    cities = scenario.cities
    city = cities[spec.index % len(cities)]
    if spec.profile == "parked":
        rng = np.random.default_rng((options.fleet_seed, 0xF1EE, spec.index))
        extent = city.rings * city.site_spacing_m * 0.62
        location = city.origin.offset(
            float(rng.uniform(-extent, extent)), float(rng.uniform(-extent, extent))
        )
        return parked_position(location, duration_s=options.duration_s)
    if spec.profile == "transit":
        return transit_trajectory(scenario, options, spec.index % options.transit_lines)
    speed = _PROFILE_SPEEDS_KMH[spec.profile]
    rng = np.random.default_rng((options.fleet_seed, 0xD81, spec.index))
    return grid_drive(
        city,
        rng,
        duration_s=options.duration_s,
        speed_kmh=speed,
        block_m=_PROFILE_BLOCK_M[spec.profile],
    )


@dataclass
class UEResult:
    """Per-UE outcome of a fleet run (DriveResult-compatible).

    Always carries handoffs, ping RTTs, aggregate counters and a SHA-256
    digest of the diag log (the cheap cross-worker parity witness);
    per-tick samples and raw diag bytes are retained only under
    ``keep_samples``.
    """

    index: int
    profile: str
    carrier: str
    seed: int
    tick_ms: int
    n_ticks: int
    handoffs: list[HandoffEvent]
    ping_rtts_ms: list[tuple[int, float | None]]
    diag_sha256: str
    diag_len: int
    delivered_bits: float
    interrupted_ticks: int
    occupancy: dict[str, int]
    intra_freq_rounds: int
    non_intra_freq_rounds: int
    samples: list[TickSample] | None = None
    diag_log: bytes | None = None

    def to_drive_result(self) -> DriveResult:
        """This UE's run as a :class:`DriveResult` (needs keep_samples)."""
        result = DriveResult(carrier=self.carrier, tick_ms=self.tick_ms)
        result.samples = list(self.samples or [])
        result.handoffs = list(self.handoffs)
        result.diag_log = self.diag_log if self.diag_log is not None else b""
        result.ping_rtts_ms = list(self.ping_rtts_ms)
        return result

    def summary_row(self) -> dict:
        """Deterministic per-UE summary (the CLI's JSON row)."""
        return {
            "index": self.index,
            "profile": self.profile,
            "carrier": self.carrier,
            "n_ticks": self.n_ticks,
            "handoffs": len(self.handoffs),
            "ping_pongs": count_ping_pongs(self.handoffs),
            "delivered_mbit": round(self.delivered_bits / 1e6, 6),
            "interrupted_ticks": self.interrupted_ticks,
            "diag_sha256": self.diag_sha256,
            "diag_len": self.diag_len,
        }


def count_ping_pongs(handoffs: list[HandoffEvent]) -> int:
    """A->B->A pairs within :data:`PING_PONG_WINDOW_MS` (per UE)."""
    count = 0
    for first, second in zip(handoffs, handoffs[1:]):
        if (
            second.source == first.target
            and second.target == first.source
            and second.time_ms - first.time_ms <= PING_PONG_WINDOW_MS
        ):
            count += 1
    return count


@dataclass
class FleetAggregates:
    """Fleet-level statistics over all UE results."""

    n_ues: int
    total_ticks: int
    total_handoffs: int
    handoffs_per_ue_hour: float
    ping_pong_count: int
    ping_pong_rate: float
    mean_delivered_mbps: float
    interrupted_tick_fraction: float
    occupancy: dict[str, int]
    storm_peak: int
    storm_peak_cell: str | None
    storm_peak_minute: int | None

    def to_dict(self) -> dict:
        return {
            "n_ues": self.n_ues,
            "total_ticks": self.total_ticks,
            "total_handoffs": self.total_handoffs,
            "handoffs_per_ue_hour": round(self.handoffs_per_ue_hour, 6),
            "ping_pong_count": self.ping_pong_count,
            "ping_pong_rate": round(self.ping_pong_rate, 6),
            "mean_delivered_mbps": round(self.mean_delivered_mbps, 6),
            "interrupted_tick_fraction": round(self.interrupted_tick_fraction, 6),
            "occupancy": dict(sorted(self.occupancy.items())),
            "storm_peak": self.storm_peak,
            "storm_peak_cell": self.storm_peak_cell,
            "storm_peak_minute": self.storm_peak_minute,
        }


def aggregate(results: list[UEResult], tick_ms: int) -> FleetAggregates:
    """Fleet statistics from per-UE results (deterministic)."""
    total_ticks = sum(r.n_ticks for r in results)
    total_handoffs = sum(len(r.handoffs) for r in results)
    hours = total_ticks * tick_ms / 3_600_000.0
    ping_pongs = sum(count_ping_pongs(r.handoffs) for r in results)
    occupancy: Counter = Counter()
    storms: Counter = Counter()
    delivered = 0.0
    interrupted = 0
    for r in results:
        occupancy.update(r.occupancy)
        delivered += r.delivered_bits
        interrupted += r.interrupted_ticks
        for handoff in r.handoffs:
            storms[(str(handoff.target), handoff.time_ms // 60_000)] += 1
    if storms:
        peak_key = max(storms, key=lambda k: (storms[k], k))
        storm_peak = storms[peak_key]
        storm_cell, storm_minute = peak_key
    else:
        storm_peak, storm_cell, storm_minute = 0, None, None
    seconds = total_ticks * tick_ms / 1000.0
    return FleetAggregates(
        n_ues=len(results),
        total_ticks=total_ticks,
        total_handoffs=total_handoffs,
        handoffs_per_ue_hour=(total_handoffs / hours) if hours else 0.0,
        ping_pong_count=ping_pongs,
        ping_pong_rate=(ping_pongs / total_handoffs) if total_handoffs else 0.0,
        mean_delivered_mbps=(delivered / seconds / 1e6) if seconds else 0.0,
        interrupted_tick_fraction=(interrupted / total_ticks) if total_ticks else 0.0,
        occupancy=dict(sorted((str(k), v) for k, v in occupancy.items())),
        storm_peak=storm_peak,
        storm_peak_cell=storm_cell,
        storm_peak_minute=storm_minute,
    )


class _Lane:
    """One fleet UE's live state: replicates ``DriveSimulator.run``.

    The per-tick body is the runner's, line for line — the fleet only
    front-loads work (snapshots, measurement rounds, event masks) that
    :meth:`step` would otherwise compute itself, never different work.
    """

    __slots__ = (
        "spec",
        "trajectory",
        "carrier",
        "tick_ms",
        "traffic",
        "is_ping",
        "is_speedtest",
        "static",
        "ue",
        "writer",
        "throughput",
        "samples",
        "ping_rtts",
        "occupancy",
        "delivered_bits",
        "interrupted_ticks",
        "n_ticks",
        "location",
        "row",
        "batched",
        "quiet",
        "quiet_fm",
        "_phy_cell",
        "_phy_parts",
        "_gt_snap",
        "_gt_serving",
        "_gt_rsrp",
        "_gt_sinr",
        "_cap_serving",
        "_cap_sinr",
        "_cap_epoch",
        "_cap_value",
        "_occ_cell",
        "_occ_run",
    )

    def __init__(
        self,
        spec: UESpec,
        trajectory: Trajectory,
        scenario: DriveScenario,
        tick_ms: int,
        traffic: TrafficModel,
        keep_samples: bool,
    ):
        self.spec = spec
        self.trajectory = trajectory
        self.carrier = spec.carrier
        self.tick_ms = tick_ms
        self.traffic = traffic
        self.is_ping = isinstance(traffic, Ping)
        self.is_speedtest = type(traffic) is Speedtest
        #: Parked trajectories hold one position for the whole run, so
        #: the simulate loop skips their per-tick position/spot work.
        self.static = spec.profile == "parked"
        # Exactly the runner's wiring with run_index=0: same UE seed,
        # same throughput RNG stream.
        self.ue = UserEquipment(
            scenario.env, scenario.server, spec.carrier, seed=spec.seed * 1009 + 0
        )
        self.writer = DiagWriter.in_memory()
        self.ue.add_listener(lambda t, message, direction: self.writer.write(t, message))
        self.throughput = ThroughputModel(
            rng=np.random.default_rng((spec.seed, 0, 0x7A))
        )
        self.samples: list[TickSample] | None = [] if keep_samples else None
        self.ping_rtts: list[tuple[int, float | None]] = []
        self.occupancy: Counter = Counter()
        self.delivered_bits = 0.0
        self.interrupted_ticks = 0
        self.n_ticks = 0
        self.batched = False
        self.quiet = False
        self.quiet_fm: tuple | None = None
        # Serving-cell PHY emission template: quiet-tick serving
        # measurements dominate the diag stream, and their payload is
        # fixed bytes around the two packed doubles (sinr 0.0 and
        # rrc_connected=True are constants on the quiet path).
        self._phy_cell = None
        self._phy_parts: tuple | None = None
        # Ground-truth serving measurement and capacity memos: a parked
        # UE's (snapshot, serving) pair and load-share epoch repeat for
        # many consecutive ticks, and both lookups are pure given them.
        self._gt_snap = None
        self._gt_serving = None
        self._gt_rsrp = -140.0
        self._gt_sinr = -20.0
        self._cap_serving = None
        self._cap_sinr = 0.0
        self._cap_epoch = -1
        self._cap_value = 0.0
        # Serving-cell occupancy as run lengths (flushed on change).
        self._occ_cell = None
        self._occ_run = 0
        self.location = trajectory.position(0)
        self.ue.initial_camp(self.location, 0)
        if traffic.generates_user_traffic:
            self.ue.connect(0)

    def step(self, now_ms: int) -> None:
        """One tick at the already-assigned location (runner loop body)."""
        ue = self.ue
        if self.quiet:
            # The batched event pass proved this tick a no-op; only the
            # round counters (and a due PHY emission) happen.
            self.quiet = False
            fm = self.quiet_fm
            if fm is None:
                ue.quiet_tick(now_ms)
            elif len(ue._listeners) != 1:
                ue.quiet_tick(now_ms, fm[0], fm[1])
            else:
                # Due PHY serving measurement, emitted directly: the
                # lane's writer is the device's only listener, so the
                # notify -> dataclass -> encode dispatch chain reduces
                # to splicing two packed doubles into the serving
                # cell's cached payload template.  Bytes (payload,
                # header, checksum) are identical to quiet_tick's.
                meas = ue.meas
                meas.intra_freq_rounds += 1
                meas.non_intra_freq_rounds += 1
                ue._last_phy_meas_ms = now_ms
                serving = ue.serving
                if serving is not self._phy_cell:
                    self._phy_cell = serving
                    self._phy_parts = _phy_template(serving)
                head, mid, tail, base_sum, length = self._phy_parts
                p1 = _PACK_DOUBLE(fm[0])
                p2 = _PACK_DOUBLE(fm[1])
                writer = self.writer
                stream = writer._stream
                stream.write(
                    _HEADER_PACK(
                        _diag._MAGIC,
                        length,
                        now_ms,
                        (base_sum + sum(p1) + sum(p2)) & 0xFFFF,
                    )
                )
                stream.write(b"".join((head, _TAGF, p1, mid, _TAGF, p2, tail)))
                writer.records_written += 1
        else:
            ue.tick(now_ms, self.location)
        serving = ue.serving
        # The spots pass (or initial camp, for parked lanes) left this
        # tick's snapshot in the engine memo.
        snap = ue.meas._snap
        if snap is self._gt_snap and serving is self._gt_serving:
            rsrp, sinr = self._gt_rsrp, self._gt_sinr
        else:
            if serving in snap:
                measurement = snap.measure(serving)
                rsrp, sinr = measurement.rsrp_dbm, measurement.sinr_db
            else:
                rsrp, sinr = -140.0, -20.0
            self._gt_snap, self._gt_serving = snap, serving
            self._gt_rsrp, self._gt_sinr = rsrp, sinr
        if now_ms < ue.interrupted_until_ms:
            interrupted = True
            capacity = 0.0
            self.interrupted_ticks += 1
        else:
            interrupted = False
            epoch = now_ms // 4000
            if (
                serving is self._cap_serving
                and sinr == self._cap_sinr
                and epoch == self._cap_epoch
            ):
                capacity = self._cap_value
            else:
                capacity = self.throughput.capacity_bps(serving, sinr, now_ms)
                self._cap_serving, self._cap_sinr = serving, sinr
                self._cap_epoch, self._cap_value = epoch, capacity
        if self.is_speedtest:
            delivered_bits = capacity * self.tick_ms / 1000.0
        else:
            delivered_bits = self.traffic.delivered_bits(capacity, self.tick_ms, now_ms)
        self.delivered_bits += delivered_bits
        if serving is self._occ_cell:
            self._occ_run += 1
        else:
            if self._occ_run:
                self.occupancy[self._occ_cell.cell_id] += self._occ_run
            self._occ_cell = serving
            self._occ_run = 1
        self.n_ticks += 1
        if self.samples is not None:
            self.samples.append(
                TickSample(
                    t_ms=now_ms,
                    serving=serving.cell_id,
                    rsrp_dbm=rsrp,
                    sinr_db=sinr,
                    capacity_bps=capacity,
                    delivered_bps=delivered_bits * 1000.0 / self.tick_ms,
                    interrupted=interrupted,
                )
            )
        if self.is_ping and self.traffic.probe_due(now_ms, self.tick_ms):
            if self.throughput.ping_lost(sinr, interrupted):
                self.ping_rtts.append((now_ms, None))
            else:
                self.ping_rtts.append((now_ms, self.throughput.rtt_ms(sinr)))

    def finish(self, keep_samples: bool) -> UEResult:
        if self._occ_run:
            self.occupancy[self._occ_cell.cell_id] += self._occ_run
            self._occ_run = 0
        diag = self.writer.getvalue()
        return UEResult(
            index=self.spec.index,
            profile=self.spec.profile,
            carrier=self.spec.carrier,
            seed=self.spec.seed,
            tick_ms=self.tick_ms,
            n_ticks=self.n_ticks,
            handoffs=list(self.ue.handoffs),
            ping_rtts_ms=self.ping_rtts,
            diag_sha256=hashlib.sha256(diag).hexdigest(),
            diag_len=len(diag),
            delivered_bits=self.delivered_bits,
            interrupted_ticks=self.interrupted_ticks,
            occupancy={str(k): v for k, v in sorted(self.occupancy.items())},
            intra_freq_rounds=self.ue.meas.intra_freq_rounds,
            non_intra_freq_rounds=self.ue.meas.non_intra_freq_rounds,
            samples=self.samples if keep_samples else None,
            diag_log=diag if keep_samples else None,
        )


@dataclass
class _ShardResult:
    """Picklable outcome of one :class:`FleetShardUnit`."""

    ues: list[UEResult]
    cache: dict
    profile: dict | None = None


class FleetSimulator:
    """Runs a slice of a fleet in lockstep with batched per-tick passes."""

    #: Mover physics look-ahead: one broadcast RSRP pass covers this
    #: many future ticks of a trajectory per neighborhood.
    _LOOKAHEAD_TICKS = 32

    def __init__(self, scenario: DriveScenario, options: FleetOptions):
        self.scenario = scenario
        self.options = options
        self._transit_cache: dict[int, Trajectory] = {}
        #: (trajectory id, carrier) -> (anchor tick ms, snapshot chunk).
        self._lookahead: dict[tuple, tuple[int, list]] = {}
        self.profile: dict[str, float] | None = {} if _profile_enabled() else None

    def _trajectory(self, spec: UESpec) -> Trajectory:
        if spec.profile == "transit":
            line = spec.index % self.options.transit_lines
            trajectory = self._transit_cache.get(line)
            if trajectory is None:
                trajectory = transit_trajectory(self.scenario, self.options, line)
                self._transit_cache[line] = trajectory
            return trajectory
        return trajectory_for(self.scenario, self.options, spec)

    def simulate_shard(self, start: int, count: int) -> _ShardResult:
        """Simulate UEs ``start .. start+count`` and report cache deltas."""
        env = self.scenario.env
        hits0, misses0 = env.snapshot_cache_hits, env.snapshot_cache_misses
        ues = self.simulate(start, count)
        cache = env.snapshot_cache_stats()
        cache["hits"] -= hits0
        cache["misses"] -= misses0
        total = cache["hits"] + cache["misses"]
        cache["hit_rate"] = (cache["hits"] / total) if total else 0.0
        return _ShardResult(ues=ues, cache=cache, profile=self.profile)

    def simulate(self, start: int = 0, count: int | None = None) -> list[UEResult]:
        """Lockstep-simulate UEs ``start .. start+count`` of the fleet."""
        options = self.options
        if options.config_lint:
            # Imported here: repro.lint reaches repro.core, whose package
            # init imports simulate back.
            from repro.lint.engine import warn_before_run

            for carrier in options.carriers:
                warn_before_run(self.scenario.env, self.scenario.server, carrier)
        specs = ue_specs(options, start, count)
        lanes = [
            _Lane(
                spec,
                self._trajectory(spec),
                self.scenario,
                options.tick_ms,
                make_traffic(options.traffic),
                options.keep_samples,
            )
            for spec in specs
        ]
        env = self.scenario.env
        profile = self.profile
        now_ms = 0
        tick_index = 0
        active = list(lanes)
        # Parked lanes hold one position (and one warm snapshot memo,
        # left by their initial camp) for the whole run: only movers
        # need the per-tick position/spot passes.
        movers = [lane for lane in active if not lane.static]
        n_static_spots = len(active) - len(movers)
        # Persistent (UE x cell) measurement matrices; each lane owns
        # one row for the whole lockstep run.
        batch_state = BatchMeasurementState(len(lanes))
        batch_state.profile = profile
        for row, lane in enumerate(lanes):
            lane.row = row
        while active:
            t0 = perf_counter() if profile is not None else 0.0
            # Positions: one interpolation per distinct trajectory.
            positions: dict[int, object] = {}
            for lane in movers:
                key = id(lane.trajectory)
                position = positions.get(key)
                if position is None:
                    position = lane.trajectory.position(now_ms)
                    positions[key] = position
                lane.location = position
            # Snapshot sharing: one physics pass per occupied
            # (location, carrier) spot; co-located lanes adopt it.
            spots: dict[tuple, list[_Lane]] = {}
            for lane in movers:
                location = lane.location
                spots.setdefault((location.x, location.y, lane.carrier), []).append(lane)
            if tick_index % 128 == 0:
                env.reserve_snapshot_capacity(len(spots) + n_static_spots)
            # Spots whose first lane already holds this tick's snapshot
            # reuse it; the rest draw theirs from a per-trajectory
            # look-ahead chunk of precomputed physics.
            for group in spots.values():
                first = group[0]
                meas = first.ue.meas
                location = first.location
                if (location.x, location.y, first.carrier) == meas._snap_key:
                    snap = meas._snap
                    adopters = group[1:]
                else:
                    snap = self._lookahead_snap(first, now_ms)
                    adopters = group
                for lane in adopters:
                    lane.ue.meas.adopt_snapshot(lane.location, lane.carrier, snap)
            if profile is not None:
                now = perf_counter()
                profile["fleet_physics"] = profile.get("fleet_physics", 0.0) + now - t0
                t0 = now
            # One batched measurement + event pass over all eligible
            # lanes, whatever neighborhood each lives in.  A previously
            # batched lane that drops out (handover due, idle, RLF) is
            # detached first: the batch matrices update in place, so its
            # engine must own private arrays before the batch steps on
            # without it.
            batch: list[_Lane] = []
            for lane in active:
                ue = lane.ue
                command = ue.pending_handover
                if (
                    ue.state is RrcState.CONNECTED
                    and ue.serving is not None
                    and ue.serving.rat is RAT.LTE
                    and ue.meas.vectorized
                    and not (command is not None and now_ms >= command.execute_at_ms)
                ):
                    # The spots pass above (or the initial camp, for
                    # parked lanes) set every lane's snapshot memo, so
                    # _batch_step can read meas._snap directly.
                    batch.append(lane)
                    lane.batched = True
                elif lane.batched:
                    lane.batched = False
                    batch_state.detach(ue.meas)
            if batch:
                self._batch_step(now_ms, batch, batch_state)
            if profile is not None:
                now = perf_counter()
                profile["fleet_batch"] = profile.get("fleet_batch", 0.0) + now - t0
                t0 = now
            # Per-lane tick: consumes the pending rounds and injected
            # masks; lanes outside the batch take the normal path.
            for lane in active:
                lane.step(now_ms)
            if profile is not None:
                profile["fleet_lanes"] = profile.get("fleet_lanes", 0.0) + perf_counter() - t0
            now_ms += options.tick_ms
            tick_index += 1
            if any(now_ms > lane.trajectory.duration_ms for lane in active):
                active = [
                    lane for lane in active if now_ms <= lane.trajectory.duration_ms
                ]
                movers = [lane for lane in active if not lane.static]
                n_static_spots = len(active) - len(movers)
                # Compact the batch matrices when the fleet shrinks: the
                # ufunc phase runs over every allocated row, so a long
                # mover tail after the parked lanes finish would keep
                # paying full-fleet matrix passes.  A fresh state's
                # identity checks refresh each surviving row from its
                # engine (whose old row views stay valid — the abandoned
                # buffers are never written again), so rebuilding changes
                # no UE-visible value.
                if active and len(active) < 0.7 * batch_state.n_rows:
                    batch_state = BatchMeasurementState(len(active))
                    batch_state.profile = profile
                    for row, lane in enumerate(active):
                        lane.row = row
        return [lane.finish(options.keep_samples) for lane in lanes]

    def _lookahead_snap(self, lane: _Lane, now_ms: int):
        """This tick's snapshot for a moving lane, physics precomputed.

        A trajectory's future positions are a pure function of time, so
        the RSRP chain for the next ``_LOOKAHEAD_TICKS`` ticks runs as
        one broadcast pass per prepared neighborhood
        (:meth:`RadioEnvironment.snapshot_batch`); every lane riding the
        same trajectory and carrier consumes the same chunk.  Each
        snapshot is bit-identical to what ``env.snapshot`` would build
        at that (location, tick) — only when it is computed changes.
        """
        key = (id(lane.trajectory), lane.carrier)
        tick_ms = self.options.tick_ms
        entry = self._lookahead.get(key)
        if entry is not None:
            idx = (now_ms - entry[0]) // tick_ms
            if 0 <= idx < len(entry[1]):
                return entry[1][idx]
        trajectory = lane.trajectory
        horizon = max(
            min(
                self._LOOKAHEAD_TICKS,
                (trajectory.duration_ms - now_ms) // tick_ms + 1,
            ),
            1,
        )
        spots = [
            (trajectory.position(now_ms + k * tick_ms), lane.carrier)
            for k in range(horizon)
        ]
        snaps = self.scenario.env.snapshot_batch(spots, radius_m=lane.ue.meas.radius_m)
        # Prime the chunk's RSRQ/SINR arrays in one batched pass per
        # shared prepared set (rows bit-identical to the lazy
        # per-snapshot computation), so the per-tick consumers — raw
        # measurement rows, the runner's ground truth — never pay
        # ``_compute_metrics`` snapshot by snapshot.
        groups: dict[int, list] = {}
        for snap in snaps:
            if snap._metrics is None and snap.prepared.cells:
                groups.setdefault(id(snap.prepared), []).append(snap)
        for members in groups.values():
            if len(members) < 2:
                continue
            rsrp_mat = np.stack([s.rsrp_array for s in members])
            rsrq, sinr, power_mw, own_totals = compute_metrics_batch(
                members[0].prepared, rsrp_mat
            )
            for k, s in enumerate(members):
                s.prime_metrics(rsrq[k], sinr[k], power_mw[k], own_totals[k])
        self._lookahead[key] = (now_ms, snaps)
        return snaps[0]

    def _batch_step(
        self, now_ms: int, group: list[_Lane], state: BatchMeasurementState
    ) -> None:
        """Advance every batched UE of this tick in matrix form."""
        snaps = [lane.ue.meas._snap for lane in group]
        engines = [lane.ue.meas for lane in group]
        servings = [lane.ue.serving for lane in group]
        # Matrices are indexed by each lane's persistent row, not its
        # position in this tick's batch: ``rows[gi]`` maps between them.
        rows = [lane.row for lane in group]
        profile = self.profile
        t0 = perf_counter() if profile is not None else 0.0
        filt_rsrp, filt_rsrq, eligible = state.step(rows, engines, snaps, servings)
        if profile is not None:
            now = perf_counter()
            profile["fb_state"] = profile.get("fb_state", 0.0) + now - t0
            t0 = now
        # Event pass.  Lanes are grouped by armed-event *signature* (the
        # tuple of (event, metric) pairs the monitor armed), not by
        # neighborhood: parked UEs scatter over ~50 distinct prepared
        # lists per tick, so neighborhood subgroups degenerate into
        # singletons, while a carrier arms only a handful of signatures.
        # Per-config parameters (hysteresis, thresholds, offset) become
        # per-member columns; elementwise, ``v[k, j] - hys[k] > th[k]``
        # is the identical IEEE double comparison entry_mask evaluates
        # with scalar parameters, so each lane's row stays bit-exact
        # while one masked pass covers nearly the whole batch.
        serving_memo = state._serving_memo
        rat_lte = state._rat_lte
        # Rounds are materialized lazily: only lanes whose tick actually
        # consumes one (non-quiet members, and every batched lane the
        # member loop below does not cover — their ue.tick would
        # otherwise recompute the round and re-draw RNG) get one.
        def make_round(gi: int):
            prepared = snaps[gi].prepared
            r = rows[gi]
            n = len(prepared.cells)
            round_ = MeasurementRound(
                prepared, filt_rsrp[r, :n], filt_rsrq[r, :n], eligible[r, :n]
            )
            engines[gi]._pending_round = round_
            return round_

        groups: dict[tuple, list[tuple]] = {}
        for gi, lane in enumerate(group):
            ue = lane.ue
            lane.quiet = False
            monitor = ue.monitor
            if monitor is None or ue.pending_handover is not None:
                make_round(gi)
                continue
            # state.step just refreshed the (serving, prepared, index)
            # memo for this row; reuse it instead of re-hashing the id.
            serving_i = serving_memo[rows[gi]][2]
            if serving_i is None:
                # Serving inaudible: the lane's own path handles RLF.
                make_round(gi)
                continue
            info = monitor._batch_info
            if info is None:
                info = _monitor_batch_info(monitor.meas_config)
                monitor._batch_info = info
            groups.setdefault(info[0], []).append((gi, serving_i, monitor, info))
        if profile is not None:
            now = perf_counter()
            profile["fb_group"] = profile.get("fb_group", 0.0) + now - t0
            t0 = now
        arange_cache: np.ndarray | None = None
        for signature, members in groups.items():
            m = len(members)
            mrows = np.fromiter((rows[t[0]] for t in members), dtype=np.intp, count=m)
            scols = np.fromiter((t[1] for t in members), dtype=np.intp, count=m)
            params = np.stack([t[3][1] for t in members])  # (m, events, 4)
            gates = np.fromiter((t[3][2] for t in members), dtype=np.float64, count=m)
            sv_rsrp = filt_rsrp[mrows, scols]
            sv_rsrq = filt_rsrq[mrows, scols]
            # The s-Measure gate, one comparison for the whole group
            # (exactly the scalar per-lane check).
            gate_open = sv_rsrp <= gates
            if arange_cache is None or len(arange_cache) < m:
                arange_cache = np.arange(m)
            # Neighbor candidates: eligibility minus the serving column,
            # zeroed wholesale for gate-closed members (step_round hands
            # them no candidates, so their neighbor events never fire).
            base = eligible[mrows]  # fancy indexing copies
            base[arange_cache[:m], scols] = False
            base &= gate_open[:, None]
            ratm = rat_lte[mrows]
            intra = base & ratm
            inter = base & ~ratm
            values = {"rsrp": filt_rsrp[mrows], "rsrq": filt_rsrq[mrows]}
            serving_values = {"rsrp": sv_rsrp, "rsrq": sv_rsrq}
            #: Per-member: does ANY armed event's entry condition hold?
            any_entry = np.zeros(m, dtype=bool)
            entries: list = [None] * len(signature)
            for e_i, (event, metric) in enumerate(signature):
                hys = params[:, e_i, 0]
                if event.needs_neighbor:
                    # entry_mask_batch's comparisons with the scalar
                    # parameters lifted to per-member columns.
                    v = values[metric]
                    hcol = hys[:, None]
                    if event in (EventType.A3, EventType.A6):
                        s = serving_values[metric]
                        entry = v - hcol > (s + params[:, e_i, 3])[:, None]
                    elif event in (EventType.A4, EventType.B1):
                        entry = v - hcol > params[:, e_i, 1][:, None]
                    else:  # A5 / B2
                        s = serving_values[metric]
                        serving_ok = s + hys < params[:, e_i, 1]
                        entry = serving_ok[:, None] & (v - hcol > params[:, e_i, 2][:, None])
                    entry &= inter if event.is_inter_rat else intra
                    hot = entry.any(axis=1)
                    if hot.any():
                        any_entry |= hot
                        entries[e_i] = (entry, hot)
                else:
                    # A1/A2: the scalar evaluate_entry comparison lifted
                    # over the member axis (same IEEE double ops).
                    s = serving_values[metric]
                    if event is EventType.A1:
                        any_entry |= s - hys > params[:, e_i, 1]
                    else:
                        any_entry |= s + hys < params[:, e_i, 1]
            if profile is not None:
                now = perf_counter()
                profile["fb_vector"] = profile.get("fb_vector", 0.0) + now - t0
                t0 = now
            for o_i in range(m):
                gi, serving_i, monitor, info = members[o_i]
                periodic = info[3]
                open_ = gate_open[o_i]
                # Quiet iff no entry holds, every event's TTT/report
                # state is empty, and no periodic report is due — then
                # step_round would mutate nothing, and the lane takes
                # the no-op fast path (UserEquipment.quiet_tick).
                quiet = not any_entry[o_i]
                if quiet:
                    for event_state in monitor._states:
                        if event_state.entry_since or event_state.reported:
                            quiet = False
                            break
                if quiet and periodic is not None and open_:
                    last = monitor._last_periodic_ms
                    if last is None or now_ms - last >= periodic.report_interval_ms:
                        quiet = False
                lane = group[gi]
                if quiet:
                    # No round: quiet_tick only bumps counters — plus a
                    # due PHY emission, whose serving metrics are lifted
                    # out of the batch matrices here.
                    lane.quiet = True
                    ue = lane.ue
                    last = ue._last_phy_meas_ms
                    if last is None or now_ms - last >= ue.phy_meas_interval_ms:
                        lane.quiet_fm = (float(sv_rsrp[o_i]), float(sv_rsrq[o_i]))
                    else:
                        lane.quiet_fm = None
                else:
                    round_ = make_round(gi)
                    if open_:
                        ue = lane.ue
                        n = len(snaps[gi].prepared.cells)
                        round_._masks[ue.serving.cell_id] = (
                            intra[o_i, :n],
                            inter[o_i, :n],
                        )
                        monitor._injected_entries = [
                            e[0][o_i] if e is not None and e[1][o_i] else None
                            for e in entries
                        ]
            if profile is not None:
                now = perf_counter()
                profile["fb_members"] = profile.get("fb_members", 0.0) + now - t0
                t0 = now


@dataclass(frozen=True)
class FleetShardUnit(WorkUnit):
    """One shard of a fleet: UEs ``start .. start+count``.

    Self-contained and self-seeded: the worker rebuilds the scenario
    from the options' :class:`ScenarioSpec` (process-cached) and every
    UE's seed derives from (fleet_seed, index), so results are
    bit-identical however the fleet is sharded.
    """

    unit_id: int
    options: FleetOptions
    start: int
    count: int

    def run(self) -> _ShardResult:
        scenario = self.options.scenario.build()
        simulator = FleetSimulator(scenario, self.options)
        return simulator.simulate_shard(self.start, self.count)


@dataclass
class FleetResult:
    """Everything one fleet run produces."""

    options: FleetOptions
    ues: list[UEResult]
    aggregates: FleetAggregates
    elapsed_s: float
    snapshot_cache: dict = field(default_factory=dict)
    profile: dict | None = None

    @property
    def ue_ticks_per_s(self) -> float:
        """Aggregate simulation throughput (UE-ticks per wall second)."""
        return self.aggregates.total_ticks / self.elapsed_s if self.elapsed_s else 0.0


def _env_workers() -> int:
    try:
        return max(int(os.environ.get("REPRO_WORKERS", "1")), 1)
    except ValueError:
        return 1


def run_fleet(
    options: FleetOptions,
    workers: int | None = None,
    backend: ExecutionBackend | None = None,
) -> FleetResult:
    """Simulate a whole fleet, sharded over pipeline workers.

    Worker count changes wall-clock time only: shards are merged in
    ``unit_id`` order and every UE is self-seeded, so the result stream
    is byte-identical for any ``workers``.
    """
    if workers is None:
        workers = options.workers if options.workers is not None else _env_workers()
    shard_size = max(options.shard_size, 1)
    units = [
        FleetShardUnit(
            unit_id=i,
            options=options,
            start=start,
            count=min(shard_size, options.n_ues - start),
        )
        for i, start in enumerate(range(0, options.n_ues, shard_size))
    ]
    resolved = resolve_backend(workers, backend)
    started = perf_counter()
    ues: list[UEResult] = []
    cache = {"hits": 0, "misses": 0}
    profile: dict[str, float] = {}
    for shard in resolved.run(units):
        ues.extend(shard.ues)
        cache["hits"] += shard.cache.get("hits", 0)
        cache["misses"] += shard.cache.get("misses", 0)
        if shard.profile:
            for stage, seconds in shard.profile.items():
                profile[stage] = profile.get(stage, 0.0) + seconds
    elapsed = perf_counter() - started
    total = cache["hits"] + cache["misses"]
    cache["hit_rate"] = (cache["hits"] / total) if total else 0.0
    return FleetResult(
        options=options,
        ues=ues,
        aggregates=aggregate(ues, options.tick_ms),
        elapsed_s=elapsed,
        snapshot_cache=cache,
        profile=profile or None,
    )
