"""Per-process context cache for work units.

Work units are self-contained, but many units of one build share
expensive read-only context — the world deployment behind a D2 build,
the drive scenario behind a D1 build.  Shipping that context inside
every unit would dominate the pickling cost, so units instead carry the
*recipe* (seeds/options) and rebuild the context once per process
through this cache.

The cache is deliberately a plain module-level dict rather than
``functools.lru_cache`` on the builders: the key is chosen by the
caller (only the fields that actually shape the context), and the cache
can be cleared explicitly in tests.
"""

from __future__ import annotations

from typing import Callable, Hashable, TypeVar

T = TypeVar("T")

_CACHE: dict[Hashable, object] = {}


def process_cached(key: Hashable, factory: Callable[[], T]) -> T:
    """``factory()``'s result, computed once per process per ``key``.

    ``factory`` must be deterministic in ``key``: two processes calling
    with the same key must end up with equivalent context, or parallel
    builds would diverge from serial ones.
    """
    if key not in _CACHE:
        _CACHE[key] = factory()
    return _CACHE[key]  # type: ignore[return-value]


def clear_process_cache() -> None:
    """Drop every cached context (test isolation / memory pressure)."""
    _CACHE.clear()
