"""Execution backends: where work units run.

Both backends present the same contract: ``run(units)`` yields one
result per unit, **ordered by** ``unit_id`` and **streamed** — a result
is yielded as soon as it (and everything before it) is available, so
consumers can ingest while later units are still executing.

:class:`ProcessPoolBackend` keeps the stream bit-identical to
:class:`SerialBackend` by construction: units are chunked in canonical
order, chunks are submitted to a :class:`concurrent.futures`
process pool with a bounded in-flight window (memory stays proportional
to ``workers``, not to the build size), and results are merged back in
chunk order.  Worker count therefore changes wall-clock time only,
never output.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.pipeline.unit import WorkUnit


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can execute a batch of work units."""

    def run(self, units: Sequence[WorkUnit]) -> Iterator[object]:
        """Yield each unit's result in ``unit_id`` order, streaming."""
        ...


class SerialBackend:
    """Run every unit in the calling process, one after another."""

    def run(self, units: Sequence[WorkUnit]) -> Iterator[object]:
        for unit in sorted(units, key=lambda u: u.unit_id):
            yield unit.run()


def _run_chunk(units: list[WorkUnit]) -> list[object]:
    """Worker-side entry point: execute one chunk of units in order."""
    return [unit.run() for unit in units]


class ProcessPoolBackend:
    """Fan units out over worker processes.

    Args:
        workers: Worker process count (default: ``os.cpu_count()``).
        chunk_size: Units per submitted task.  Larger chunks amortize
            pickling; smaller chunks balance better.  The default aims
            for ~4 tasks per worker.
        max_inflight_chunks: Submission window — how many chunks may be
            queued or running at once (default ``2 * workers``).  This
            bounds both scheduler memory and the reorder buffer.
    """

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        max_inflight_chunks: int | None = None,
    ):
        self.workers = max(workers if workers is not None else os.cpu_count() or 1, 1)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self.max_inflight_chunks = max_inflight_chunks or 2 * self.workers

    def _chunked(self, ordered: list[WorkUnit]) -> list[list[WorkUnit]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(ordered) // (self.workers * 4)))
        return [ordered[i : i + size] for i in range(0, len(ordered), size)]

    def run(self, units: Sequence[WorkUnit]) -> Iterator[object]:
        ordered = sorted(units, key=lambda u: u.unit_id)
        if not ordered:
            return
        if self.workers == 1 and len(ordered) <= 1:
            # Nothing to parallelize; skip the pool entirely.
            yield from SerialBackend().run(ordered)
            return
        chunks = self._chunked(ordered)
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            inflight: dict[int, Future] = {}
            next_submit = 0
            for next_yield in range(len(chunks)):
                while next_submit < len(chunks) and len(inflight) < self.max_inflight_chunks:
                    inflight[next_submit] = pool.submit(_run_chunk, chunks[next_submit])
                    next_submit += 1
                # Blocking on the next-in-order chunk *is* the ordered
                # merge: later chunks keep executing meanwhile, and their
                # finished futures wait in the window until their turn.
                for result in inflight.pop(next_yield).result():
                    yield result


def resolve_backend(
    workers: int | None = None, backend: ExecutionBackend | None = None
) -> ExecutionBackend:
    """The backend a build should use.

    An explicit ``backend`` wins; otherwise ``workers`` picks between
    the serial path (``None`` / ``<= 1``) and a process pool.
    """
    if backend is not None:
        return backend
    if workers is None or workers <= 1:
        return SerialBackend()
    return ProcessPoolBackend(workers=workers)
