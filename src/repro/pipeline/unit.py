"""The unit of pipelined work.

A work unit must be *self-contained*: everything its :meth:`~WorkUnit.run`
needs is either carried in the unit itself (options, ids, seeds) or
rebuilt deterministically inside the executing process (typically via
:func:`repro.pipeline.context.process_cached`).  Units that run on a
process backend additionally have to be picklable, which in practice
means frozen dataclasses of plain options — never live simulator
objects.

Units are *self-seeded*: any randomness is derived from data the unit
carries (build seed + unit identity), never from shared mutable RNG
state, so a unit's result does not depend on which worker runs it or
in what order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class WorkUnit(ABC):
    """One self-contained job in a dataset build or server run.

    Attributes:
        unit_id: Position of the unit in its build's canonical (serial)
            order.  Backends merge results back in ``unit_id`` order,
            which is what makes parallel output bit-identical to serial
            output.
    """

    unit_id: int

    @abstractmethod
    def run(self) -> object:
        """Execute the unit and return its (picklable) result."""
