"""Work-unit execution pipeline.

The paper's datasets are embarrassingly parallel: D2 is millions of
configuration samples from dozens of volunteers' *independent*
collection sessions, and D1 is hundreds of independent drives.  This
package turns that structure into an explicit pipeline:

* a :class:`WorkUnit` is one self-contained, self-seeded job — one D2
  session, one D1 drive, one server patch — that can run anywhere a
  ``repro`` import is possible;
* an :class:`ExecutionBackend` decides *where* units run.
  :class:`SerialBackend` runs them in-process;
  :class:`ProcessPoolBackend` fans them out over worker processes with
  chunked submission and an ordered result merge, so the output stream
  is bit-identical to the serial one regardless of worker count;
* :func:`process_cached` gives units a per-process home for expensive
  shared context (deployments, scenarios) that every unit of a build
  would otherwise rebuild.

Builders consume ``backend.run(units)`` as a *stream*: each unit's
harvest (already-crawled samples/instances, not raw log bytes) is
ingested as it completes, so no build ever materializes the full log
archive.
"""

from repro.pipeline.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.pipeline.context import clear_process_cache, process_cached
from repro.pipeline.unit import WorkUnit

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "WorkUnit",
    "clear_process_cache",
    "process_cached",
    "resolve_backend",
]
