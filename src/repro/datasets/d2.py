"""Dataset D2: large-scale configuration samples via crowdsourcing.

The paper's D2 holds 7,996,149 configuration samples from 32,033 unique
cells across 30 carriers in 15 countries, collected by the authors and
35+ volunteers running MMLab Type-I between Oct 2016 and May 2018.

The builder simulates that collection process:

* a world deployment stands in for the carriers' networks;
* each volunteer's sessions visit stops near their home-city anchors;
* at each stop, MMLab's proactive cell switching (Section 3.1) lets the
  phone camp on several nearby cells of the volunteer's carrier and
  record each one's SIB sequence; when the phone happens to have a data
  burst, the serving cell's measConfig is logged too — that is where
  D2's active-state samples come from;
* every session becomes one binary diag log, which MMLab's crawler then
  parses into :class:`~repro.datasets.records.ConfigSample` rows.

Configurations are only ever learned through the logs, and repeated
observations of the same cell across sessions/days carry the temporal
churn the Fig. 13 analysis measures.

Sessions are independent of each other (different volunteers never
share state, and a volunteer's rounds are separately seeded), so the
build fans each session out as one :class:`D2SessionUnit` on a
:mod:`repro.pipeline` backend.  Each unit collects *and crawls* its own
log, streaming back ``ConfigSample`` rows instead of raw log bytes —
the archive of binary logs is never materialized.  ``D2Options.workers``
picks the backend; the result is bit-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellnet.deployment import City, DeploymentPlan, build_world_deployment
from repro.cellnet.geo import Point
from repro.cellnet.world import RadioEnvironment
from repro.core.crawler import crawl_config_samples
from repro.datasets.records import ConfigSample
from repro.datasets.store import ConfigSampleStore
from repro.datasets.volunteers import Volunteer, volunteer_population
from repro.pipeline import ExecutionBackend, WorkUnit, process_cached, resolve_backend
from repro.rrc.broadcast import ConfigServer
from repro.rrc.diag import DiagWriter


@dataclass(frozen=True)
class D2Options:
    """Build options for dataset D2.

    The defaults give a laptop-scale build (a few thousand cells).
    ``extra_rings=3`` with ``n_volunteers=35`` approaches the paper's
    32k-cell scale at a few minutes of build time.
    """

    seed: int = 7
    config_seed: int = 2018
    volunteer_seed: int = 11
    n_volunteers: int = 35
    extra_rings: int = 0
    include_dense: bool = True
    coverage_radius_m: float = 1100.0
    cells_per_stop: int = 10
    dense_grid_m: float = 850.0
    #: Probability that an observed cell's measConfig gets logged
    #: (the phone had background traffic at that stop).
    active_observation_rate: float = 0.5
    #: Worker processes for the build (1 = serial in-process).  Any
    #: worker count produces bit-identical stores.
    workers: int = 1


@dataclass
class D2Build:
    """The result of one D2 build."""

    store: ConfigSampleStore
    plan: DeploymentPlan
    env: RadioEnvironment
    server: ConfigServer
    n_sessions: int = 0
    n_logs_bytes: int = 0


@dataclass
class D2Context:
    """Shared read-only context of one D2 build (cached per process)."""

    plan: DeploymentPlan
    env: RadioEnvironment
    server: ConfigServer
    volunteers: list[Volunteer]


@dataclass
class D2World:
    """A deployed world plus its configuration oracle."""

    plan: DeploymentPlan
    env: RadioEnvironment
    server: ConfigServer


def d2_world(seed: int = 7, config_seed: int = 2018, extra_rings: int = 0) -> D2World:
    """The deployed world behind a D2 build (cached per process).

    Shared by the dataset builder and ``repro lint``: auditing "the D2
    fleet" means auditing exactly this deployment, and the cache means a
    build followed by an audit (or preflighted simulations over the same
    scenario) constructs the world once.
    """
    key = ("d2-world", seed, config_seed, extra_rings)

    def build() -> D2World:
        plan = build_world_deployment(seed=seed, extra_rings=extra_rings)
        env = RadioEnvironment(plan)
        server = ConfigServer(env, seed=config_seed)
        return D2World(plan=plan, env=env, server=server)

    return process_cached(key, build)


def d2_context(options: D2Options) -> D2Context:
    """The world + volunteer population behind ``options``.

    Cached per process on the fields that shape the context, so the
    parent and each pool worker pay for the deployment exactly once no
    matter how many sessions they execute.
    """
    key = (
        "d2-context",
        options.seed,
        options.config_seed,
        options.volunteer_seed,
        options.n_volunteers,
        options.extra_rings,
        options.include_dense,
    )

    def build() -> D2Context:
        world = d2_world(
            seed=options.seed,
            config_seed=options.config_seed,
            extra_rings=options.extra_rings,
        )
        volunteers = volunteer_population(
            seed=options.volunteer_seed, n_volunteers=options.n_volunteers
        )
        if not options.include_dense:
            volunteers = [v for v in volunteers if not v.dense]
        return D2Context(
            plan=world.plan, env=world.env, server=world.server, volunteers=volunteers
        )

    return process_cached(key, build)


def _dense_stops(city: City, partial: bool) -> list[Point]:
    """Grid of stops for the authors' dense city sweeps (Section 5.4.2).

    Main-road grid 500 m - 1 km apart covering the whole city (or half
    the extent for the partially covered big cities).
    """
    extent = city.rings * city.site_spacing_m * (0.45 if partial else 0.8)
    stops = []
    x = -extent
    step = 850.0
    while x <= extent:
        y = -extent
        while y <= extent:
            stops.append(city.origin.offset(x, y))
            y += step
        x += step
    return stops


def _collect_session(
    env: RadioEnvironment,
    server: ConfigServer,
    volunteer: Volunteer,
    stops: list[Point],
    day: float,
    options: D2Options,
    rng: np.random.Generator,
) -> bytes:
    """One collection session -> one binary diag log."""
    writer = DiagWriter.in_memory()
    t_ms = 0
    seen: set = set()
    for stop in stops:
        cells = env.cells_near(
            stop, carrier=volunteer.carrier, radius_m=options.coverage_radius_m
        )
        cells.sort(key=lambda c: (c.location.distance_to(stop), c.cell_id))
        fresh = [c for c in cells if c.cell_id not in seen]
        for cell in fresh[: options.cells_per_stop]:
            seen.add(cell.cell_id)
            for message in server.sib_messages(cell, obs_rng=rng, days_since_first=day):
                writer.write(t_ms, message)
                t_ms += 20
            if cell.rat.value == "LTE" and rng.random() < options.active_observation_rate:
                writer.write(t_ms, server.connection_reconfiguration(cell, obs_rng=rng))
                t_ms += 20
        t_ms += 5_000
    return writer.getvalue()


@dataclass(frozen=True)
class D2SessionResult:
    """What one collection session contributes to the build."""

    unit_id: int
    n_log_bytes: int
    samples: tuple[ConfigSample, ...]


@dataclass(frozen=True)
class D2SessionUnit(WorkUnit):
    """One volunteer session: collect a diag log and crawl it.

    Self-seeded from ``(options.seed, 0xD2, volunteer_id, round_index)``
    exactly as the historical serial loop was, so the session's samples
    do not depend on which process executes it.
    """

    unit_id: int
    options: D2Options
    volunteer_index: int
    round_index: int

    def run(self) -> D2SessionResult:
        context = d2_context(self.options)
        volunteer = context.volunteers[self.volunteer_index]
        session = volunteer.sessions[self.round_index]
        options = self.options
        rng = np.random.default_rng(
            (options.seed, 0xD2, volunteer.volunteer_id, self.round_index)
        )
        if volunteer.dense:
            partial = volunteer.city.name in ("Chicago", "LA")
            stops = _dense_stops(volunteer.city, partial)
            # Each round covers a subset of the grid (real drives do
            # not retrace every road every time), which keeps the
            # per-cell sample counts near the paper's distribution.
            stops = [s for s in stops if rng.random() < 0.6]
        else:
            stops = [
                session.anchor.offset(
                    float(rng.uniform(-1500.0, 1500.0)),
                    float(rng.uniform(-1500.0, 1500.0)),
                )
                for _ in range(session.n_stops)
            ]
        log = _collect_session(
            context.env, context.server, volunteer, stops, session.day, options, rng
        )
        samples = crawl_config_samples(
            log, observed_day=session.day, round_index=self.round_index
        )
        return D2SessionResult(
            unit_id=self.unit_id, n_log_bytes=len(log), samples=tuple(samples)
        )


def d2_work_units(options: D2Options) -> list[D2SessionUnit]:
    """Every session of the build, in canonical (serial) order."""
    context = d2_context(options)
    units: list[D2SessionUnit] = []
    for volunteer_index, volunteer in enumerate(context.volunteers):
        for round_index in range(len(volunteer.sessions)):
            units.append(
                D2SessionUnit(
                    unit_id=len(units),
                    options=options,
                    volunteer_index=volunteer_index,
                    round_index=round_index,
                )
            )
    return units


def build_d2(
    options: D2Options = D2Options(), backend: ExecutionBackend | None = None
) -> D2Build:
    """Build dataset D2 end-to-end through the device-side pipeline.

    Args:
        options: Build options; ``options.workers`` picks the default
            backend (serial at 1, a process pool above).
        backend: Explicit :class:`~repro.pipeline.ExecutionBackend`,
            overriding ``options.workers``.
    """
    context = d2_context(options)
    store = ConfigSampleStore()
    build = D2Build(
        store=store, plan=context.plan, env=context.env, server=context.server
    )
    units = d2_work_units(options)
    runner = resolve_backend(options.workers, backend)
    for result in runner.run(units):
        build.n_sessions += 1
        build.n_logs_bytes += result.n_log_bytes
        store.extend(result.samples)
    return build
