"""Synthetic configuration-evolution timelines for the drift analyzer.

The paper's longitudinal observations (Section 5.3, Fig. 22) are about
networks *changing*: parameters retuned over months-long campaigns,
measurement profiles migrated in patch rollouts, and the occasional
regression that ships a handoff loop.  This module manufactures those
histories deterministically on top of the 3-cell loop-fixture world
(:mod:`repro.lint.fixtures`), producing a sequence of
:class:`~repro.lint.snapshot.ConfigSnapshot` captures that
``repro lint --diff`` can gate on and the HC3xx drift rules can test
against.

Scenarios:

``retune``
    A gradual campaign: ``thresh_x_high_p`` walks down 2 dB per capture
    (monotonic — deliberately *not* flapping).
``patch-rollout``
    The final capture swaps the armed A5 coverage event for a benign A2
    serving-only event: a measurement-profile migration that introduces
    no findings.
``loop-regression``
    The final capture ships the misconfigured loop-fixture configs —
    the priority ring plus ceiling-threshold A5 whose handoff graph
    contains a guaranteed 3-layer loop (HC201).  The drift gate must
    fail this one.
``clean``
    The final capture bumps ``q_hyst`` by 2 dB: a harmless change the
    gate must pass.
``flapping``
    ``q_hyst`` alternates between two values on every capture — the
    dueling-retunes churn HC303 exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from repro.config.events import EventConfig, EventType
from repro.config.lte import LteCellConfig, MeasurementConfig
from repro.lint.fixtures import StaticConfigServer, loop_fixture
from repro.lint.snapshot import ConfigSnapshot

#: Every generator scenario, in documentation order.
SCENARIOS = ("retune", "patch-rollout", "loop-regression", "clean", "flapping")

#: The benign serving-only event the patch rollout migrates to.
_PATCH_EVENT = EventConfig(
    event=EventType.A2,
    threshold1=-110.0,
    hysteresis=2.0,
    time_to_trigger_ms=640,
)


@dataclass(frozen=True)
class EvolveOptions:
    """Parameters of one generated timeline.

    Attributes:
        scenario: One of :data:`SCENARIOS`.
        steps: Number of captures in the timeline (>= 2).
        interval_days: Observation-day spacing between captures.
        seed: Config-server seed (affects only profile-derived cells,
            of which the fixture world has none — kept for parity with
            the other dataset builders).
    """

    scenario: str = "retune"
    steps: int = 3
    interval_days: float = 30.0
    seed: int = 2018

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r} (choose from {SCENARIOS})"
            )
        if self.steps < 2:
            raise ValueError("a timeline needs at least 2 captures")


@dataclass
class SnapshotTimeline:
    """An ordered sequence of captures of one evolving world."""

    scenario: str
    snapshots: tuple[ConfigSnapshot, ...]

    def __len__(self) -> int:
        return len(self.snapshots)

    def save(self, out_dir: str | Path) -> list[Path]:
        """Write ``snapshot-000.json`` ... into ``out_dir`` (created)."""
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for index, snapshot in enumerate(self.snapshots):
            path = directory / f"snapshot-{index:03d}.json"
            snapshot.save(path)
            paths.append(path)
        return paths


def _with_q_hyst(config: LteCellConfig, q_hyst: float) -> LteCellConfig:
    return replace(config, serving=replace(config.serving, q_hyst=q_hyst))


def _with_thresh_x_high(config: LteCellConfig, value: float) -> LteCellConfig:
    layers = tuple(
        replace(layer, thresh_x_high_p=value)
        for layer in config.inter_freq_layers
    )
    return replace(config, inter_freq_layers=layers)


def _with_patch_profile(config: LteCellConfig) -> LteCellConfig:
    measurement = MeasurementConfig(
        events=(_PATCH_EVENT,),
        periodic=config.measurement.periodic,
        s_measure=config.measurement.s_measure,
    )
    return replace(config, measurement=measurement)


def evolve_timeline(options: EvolveOptions = EvolveOptions()) -> SnapshotTimeline:
    """Generate one deterministic multi-capture timeline.

    Same options, same timeline: the fixture world is deterministic and
    every capture is a pure function of (scenario, step).
    """
    base = loop_fixture(misconfigured=False)
    broken = loop_fixture(misconfigured=True)
    snapshots = []
    for step in range(options.steps):
        final = step == options.steps - 1
        if options.scenario == "loop-regression" and final:
            configs = dict(broken.server.configs)
        else:
            configs = {}
            for cell_id, config in base.server.configs.items():
                if options.scenario == "retune":
                    config = _with_thresh_x_high(config, 12.0 - 2.0 * step)
                elif options.scenario == "patch-rollout" and final:
                    config = _with_patch_profile(config)
                elif options.scenario == "clean" and final:
                    config = _with_q_hyst(config, 6.0)
                elif options.scenario == "flapping":
                    config = _with_q_hyst(config, 4.0 if step % 2 == 0 else 6.0)
                configs[cell_id] = config
        server = StaticConfigServer(base.env, configs, seed=options.seed)
        snapshots.append(
            ConfigSnapshot.capture_world(
                base.env,
                server,
                label=f"{options.scenario}-{step:03d}",
                captured_day=step * options.interval_days,
            )
        )
    return SnapshotTimeline(scenario=options.scenario, snapshots=tuple(snapshots))
