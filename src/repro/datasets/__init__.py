"""Dataset synthesis and storage: D1 (handoff instances) and D2
(large-scale configuration samples).

The paper's datasets:

* **D1** — 18,700+ handoff instances (14,510 active + 4,263 idle, all
  4G -> 4G) from Type-II drives in three US cities, with throughput
  logs.  Built here by :mod:`repro.datasets.d1` from simulated drives,
  at a configurable scale.
* **D2** — 7,996,149 configuration samples from 32,033 cells over 30
  carriers (Type-I crowdsourced collection).  Built by
  :mod:`repro.datasets.d2` from a simulated volunteer population.

Both builders go through the *device-side* pipeline: simulated modems
write diag logs, MMLab's crawler parses them, and only the parsed
records enter the datasets.
"""

from repro.datasets.records import ConfigSample, HandoffInstance
from repro.datasets.store import ConfigSampleStore, HandoffInstanceStore
from repro.datasets.volunteers import Volunteer, volunteer_population

# The D1/D2 builders depend on repro.core, which itself imports
# repro.datasets.records — import them lazily (PEP 562) so that either
# package can be imported first.
_LAZY = {
    "D1Options": "repro.datasets.d1",
    "build_d1": "repro.datasets.d1",
    "D1Build": "repro.datasets.d1",
    "D2Options": "repro.datasets.d2",
    "build_d2": "repro.datasets.d2",
    "D2Build": "repro.datasets.d2",
    "EvolveOptions": "repro.datasets.evolve",
    "SnapshotTimeline": "repro.datasets.evolve",
    "evolve_timeline": "repro.datasets.evolve",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "ConfigSample",
    "HandoffInstance",
    "ConfigSampleStore",
    "HandoffInstanceStore",
    "Volunteer",
    "volunteer_population",
    "D1Options",
    "build_d1",
    "D2Options",
    "build_d2",
    "EvolveOptions",
    "SnapshotTimeline",
    "evolve_timeline",
]
