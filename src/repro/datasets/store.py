"""JSONL-backed dataset stores with the filters the analyses need.

The stores are deliberately simple append-and-scan containers: the
paper's analyses are all full-population statistics (distributions,
diversity indices, CDFs), so the useful operations are filtering and
grouping, not point lookup.  Two concessions to scale:

* ``ConfigSampleStore`` keeps a lazy per-parameter index so the hot
  per-parameter reads (``unique_values``, ``samples_per_cell``,
  ``parameters``) stop rescanning millions of rows on every call; the
  index is invalidated on any mutation and rebuilt on demand.
* ``ingest`` consumes an *iterator* of row batches, which is how the
  pipelined builders stream a harvest in without ever materializing
  the full archive, and ``save`` writes atomically (temp file +
  ``os.replace``) so a crashed build never leaves a torn JSONL behind.
"""

from __future__ import annotations

import os
import tempfile
from collections import defaultdict
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.datasets.records import ConfigSample, HandoffInstance


def _atomic_write_jsonl(path: str | Path, records: Iterable) -> None:
    """Write ``record.to_json()`` lines to ``path`` atomically.

    The temp file lives in the target's directory so ``os.replace`` is
    a same-filesystem rename: readers see either the old file or the
    complete new one, never a partial write.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            for record in records:
                f.write(record.to_json())
                f.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ConfigSampleStore:
    """All configuration samples of one D2 build."""

    def __init__(self, samples: Iterable[ConfigSample] = ()):
        self._samples: list[ConfigSample] = list(samples)
        self._by_parameter: dict[str, list[ConfigSample]] | None = None

    def add(self, sample: ConfigSample) -> None:
        self._samples.append(sample)
        self._by_parameter = None

    def extend(self, samples: Iterable[ConfigSample]) -> None:
        # Invalidate in a finally: ``list.extend`` keeps the elements it
        # consumed before a mid-iteration exception, so bailing out
        # before the invalidation would leave a stale index over a
        # mutated sample list.
        try:
            self._samples.extend(samples)
        finally:
            self._by_parameter = None

    def ingest(self, batches: Iterable[Iterable[ConfigSample]]) -> int:
        """Stream batches of samples in (one batch per work unit).

        Returns the number of samples added.  The batches iterator is
        consumed lazily, so a pipelined build's harvest flows straight
        into the store as units complete.
        """
        before = len(self._samples)
        try:
            for batch in batches:
                self._samples.extend(batch)
        finally:
            self._by_parameter = None
        return len(self._samples) - before

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[ConfigSample]:
        return iter(self._samples)

    def _parameter_index(self) -> dict[str, list[ConfigSample]]:
        """Samples grouped by parameter name (rebuilt after mutations)."""
        if self._by_parameter is None:
            index: dict[str, list[ConfigSample]] = defaultdict(list)
            for sample in self._samples:
                index[sample.parameter].append(sample)
            self._by_parameter = dict(index)
        return self._by_parameter

    def filter(self, predicate: Callable[[ConfigSample], bool]) -> "ConfigSampleStore":
        """A new store holding only samples matching ``predicate``."""
        return ConfigSampleStore(s for s in self._samples if predicate(s))

    def for_carrier(self, carrier: str) -> "ConfigSampleStore":
        return self.filter(lambda s: s.carrier == carrier)

    def for_rat(self, rat: str) -> "ConfigSampleStore":
        return self.filter(lambda s: s.rat == rat)

    def for_parameter(self, parameter: str) -> "ConfigSampleStore":
        return ConfigSampleStore(self._parameter_index().get(parameter, ()))

    def for_city(self, city: str) -> "ConfigSampleStore":
        return self.filter(lambda s: s.city == city)

    def unique_cells(self) -> set[tuple[str, int]]:
        """(carrier, gci) pairs present in the store."""
        return {(s.carrier, s.gci) for s in self._samples}

    def parameters(self) -> list[str]:
        """Distinct parameter names, sorted."""
        return sorted(self._parameter_index())

    def unique_values(
        self, parameter: str, deduplicate_cells: bool = True
    ) -> list[object]:
        """Observed values of one parameter.

        With ``deduplicate_cells`` (the paper's "we consider unique
        samples, so as not to tip distributions in favor of cells with
        many same samples"), each (cell, value) pair counts once.
        """
        samples = self._parameter_index().get(parameter, ())
        if deduplicate_cells:
            seen = {(s.carrier, s.gci, s.value_key): s.value_key for s in samples}
            return list(seen.values())
        return [s.value_key for s in samples]

    def group_by(
        self, key: Callable[[ConfigSample], object]
    ) -> dict[object, "ConfigSampleStore"]:
        """Partition into sub-stores by an arbitrary key function."""
        groups: dict[object, list[ConfigSample]] = defaultdict(list)
        for sample in self._samples:
            groups[key(sample)].append(sample)
        return {k: ConfigSampleStore(v) for k, v in sorted(groups.items(), key=lambda kv: str(kv[0]))}

    def samples_per_cell(self, parameter: str) -> dict[tuple[str, int], int]:
        """How many samples each cell contributed for one parameter."""
        counts: dict[tuple[str, int], int] = defaultdict(int)
        for s in self._parameter_index().get(parameter, ()):
            counts[(s.carrier, s.gci)] += 1
        return dict(counts)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the store as JSONL (atomically: temp file + rename)."""
        _atomic_write_jsonl(path, self._samples)

    @classmethod
    def load(cls, path: str | Path) -> "ConfigSampleStore":
        """Read a store from JSONL."""
        store = cls()
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    store.add(ConfigSample.from_json(line))
        return store


class HandoffInstanceStore:
    """All handoff instances of one D1 build."""

    def __init__(self, instances: Iterable[HandoffInstance] = ()):
        self._instances: list[HandoffInstance] = list(instances)

    def add(self, instance: HandoffInstance) -> None:
        self._instances.append(instance)

    def extend(self, instances: Iterable[HandoffInstance]) -> None:
        self._instances.extend(instances)

    def ingest(self, batches: Iterable[Iterable[HandoffInstance]]) -> int:
        """Stream batches of instances in (one batch per work unit)."""
        before = len(self._instances)
        for batch in batches:
            self._instances.extend(batch)
        return len(self._instances) - before

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[HandoffInstance]:
        return iter(self._instances)

    def filter(
        self, predicate: Callable[[HandoffInstance], bool]
    ) -> "HandoffInstanceStore":
        return HandoffInstanceStore(i for i in self._instances if predicate(i))

    def active(self) -> "HandoffInstanceStore":
        return self.filter(lambda i: i.kind == "active")

    def idle(self) -> "HandoffInstanceStore":
        return self.filter(lambda i: i.kind == "idle")

    def for_carrier(self, carrier: str) -> "HandoffInstanceStore":
        return self.filter(lambda i: i.carrier == carrier)

    def for_event(self, event: str) -> "HandoffInstanceStore":
        return self.filter(lambda i: i.decisive_event == event)

    def save(self, path: str | Path) -> None:
        """Write the store as JSONL (atomically: temp file + rename)."""
        _atomic_write_jsonl(path, self._instances)

    @classmethod
    def load(cls, path: str | Path) -> "HandoffInstanceStore":
        store = cls()
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    store.add(HandoffInstance.from_json(line))
        return store
