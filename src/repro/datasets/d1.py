"""Dataset D1: handoff instances from Type-II drives.

The paper's D1 holds 14,510 active and 4,263 idle 4G -> 4G handoff
instances from four weeks of driving in three US cities and the
highways between them, across all four top US carriers (speedtest and
constant-rate iPerf primarily on AT&T and T-Mobile).

This builder reproduces the *pipeline* at a configurable scale: it runs
drive simulations, lets MMLab's collector write the diag logs, extracts
instances with the crawler-side logic, and aligns them with the traffic
logs.  ``D1Options.scale`` multiplies the number of drives; the default
build is laptop-sized (hundreds of instances) and the shapes of all
derived figures are stable well below the paper's instance counts.

Drives are independent runs (each seeds its own RNGs from the build
seed and its drive index), so the build fans each drive out as one
:class:`D1DriveUnit` on a :mod:`repro.pipeline` backend.  Each unit
extracts its own handoff instances in the worker — the harvest streams
back as rows, not raw logs.  ``D1Options.workers`` picks the backend;
the result is bit-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.mmlab import MMLab
from repro.datasets.records import HandoffInstance
from repro.datasets.store import HandoffInstanceStore
from repro.pipeline import ExecutionBackend, WorkUnit, process_cached, resolve_backend
from repro.simulate.runner import DriveResult, DriveSimulator
from repro.simulate.scenarios import DriveScenario, drive_scenario
from repro.simulate.traffic import ConstantRate, NoTraffic, Ping, Speedtest, TrafficModel


@dataclass(frozen=True)
class D1Options:
    """Build options for dataset D1.

    Attributes:
        seed: Deployment seed.
        config_seed: Configuration-profile seed.
        scenario: Scenario name ("indianapolis", "lafayette", "chicago"
            or "tri-city").
        active_drives: Per-carrier number of active (with-traffic)
            drives, before scaling.
        idle_drives: Per-carrier number of idle drives, before scaling.
        drive_duration_s: Length of each drive.
        scale: Multiplies both drive counts (1 = laptop default).
        carriers: Carriers to drive; the paper's speedtest/iPerf runs
            were "primarily in AT&T and T-Mobile only".
        highway_drives: Per-carrier highway runs (90-120 km/h) along a
            corridor out of the city, as in the paper's between-city
            drives.  0 disables the corridor deployment entirely.
        workers: Worker processes for the build (1 = serial in-process).
            Any worker count produces bit-identical stores.
    """

    seed: int = 7
    config_seed: int = 2018
    scenario: str = "indianapolis"
    active_drives: int = 4
    idle_drives: int = 2
    drive_duration_s: float = 600.0
    scale: float = 1.0
    carriers: tuple[str, ...] = ("A", "T", "V", "S")
    highway_drives: int = 1
    workers: int = 1


def _traffic_for(carrier: str, drive_index: int) -> TrafficModel:
    """The paper's service mix: speedtest/iPerf on A and T, ping on all."""
    if carrier in ("A", "T"):
        cycle = drive_index % 3
        if cycle == 0:
            return Speedtest()
        if cycle == 1:
            return ConstantRate(rate_bps=1_000_000.0)
        return ConstantRate(rate_bps=5_000.0)
    return Ping()


@dataclass
class D1Build:
    """The result of one D1 build."""

    store: HandoffInstanceStore
    scenario: DriveScenario
    drives: list[DriveResult] = field(default_factory=list)


def d1_scenario(options: D1Options) -> DriveScenario:
    """The drive scenario behind ``options``, cached per process."""
    with_highway = options.highway_drives > 0 and options.scenario != "tri-city"
    key = ("d1-scenario", options.scenario, options.seed, options.config_seed, with_highway)
    return process_cached(
        key,
        lambda: drive_scenario(
            options.scenario,
            seed=options.seed,
            config_seed=options.config_seed,
            with_highway=with_highway,
        ),
    )


@dataclass(frozen=True)
class D1DriveResult:
    """What one drive contributes to the build."""

    unit_id: int
    drive: DriveResult
    instances: tuple[HandoffInstance, ...]


@dataclass(frozen=True)
class D1DriveUnit(WorkUnit):
    """One Type-II drive: simulate, log, and extract instances.

    ``kind`` selects the paper's drive modes: "active" (urban with a
    data service), "highway" (corridor run with a data service) or
    "idle" (urban, no traffic).  All RNGs derive from the build seed
    plus the drive's identity, matching the historical serial loop.
    """

    unit_id: int
    options: D1Options
    carrier: str
    kind: str
    drive_index: int

    def run(self) -> D1DriveResult:
        options = self.options
        scenario = d1_scenario(options)
        sim = DriveSimulator(
            scenario.env, scenario.server, self.carrier, seed=options.seed * 13 + 1
        )
        mmlab = MMLab()
        if self.kind == "active":
            rng = np.random.default_rng((options.seed, 0xD1, 1, self.drive_index))
            trajectory = scenario.urban_trajectory(
                rng,
                duration_s=options.drive_duration_s,
                speed_kmh=float(rng.uniform(30.0, 50.0)),
            )
            result = sim.run(
                trajectory,
                _traffic_for(self.carrier, self.drive_index),
                run_index=self.drive_index,
            )
        elif self.kind == "highway":
            rng = np.random.default_rng((options.seed, 0xD1, 3, self.drive_index))
            trajectory = scenario.highway_trajectory(
                rng, speed_kmh=float(rng.uniform(90.0, 120.0))
            )
            result = sim.run(
                trajectory,
                _traffic_for(self.carrier, self.drive_index),
                run_index=2000 + self.drive_index,
            )
        elif self.kind == "idle":
            rng = np.random.default_rng((options.seed, 0xD1, 2, self.drive_index))
            trajectory = scenario.urban_trajectory(
                rng,
                duration_s=options.drive_duration_s,
                speed_kmh=float(rng.uniform(30.0, 50.0)),
            )
            result = sim.run(trajectory, NoTraffic(), run_index=1000 + self.drive_index)
        else:
            raise ValueError(f"unknown drive kind {self.kind!r}")
        if self.kind == "idle":
            instances = mmlab.extract_handoffs(result.diag_log, self.carrier)
            kept = tuple(i for i in instances if i.kind == "idle")
        else:
            instances = mmlab.extract_handoffs(
                result.diag_log,
                self.carrier,
                throughput_series=result.throughput_series(bin_ms=1000),
            )
            kept = tuple(i for i in instances if i.kind == "active")
        return D1DriveResult(unit_id=self.unit_id, drive=result, instances=kept)


def d1_work_units(options: D1Options, scenario: DriveScenario) -> list[D1DriveUnit]:
    """Every drive of the build, in canonical (serial) order."""
    n_active = max(int(round(options.active_drives * options.scale)), 1)
    n_idle = max(int(round(options.idle_drives * options.scale)), 1)
    units: list[D1DriveUnit] = []

    def add(carrier: str, kind: str, drive_index: int) -> None:
        units.append(
            D1DriveUnit(
                unit_id=len(units),
                options=options,
                carrier=carrier,
                kind=kind,
                drive_index=drive_index,
            )
        )

    for carrier in options.carriers:
        for drive_index in range(n_active):
            add(carrier, "active", drive_index)
        if scenario.highway_endpoints is not None:
            for drive_index in range(options.highway_drives):
                add(carrier, "highway", drive_index)
        for drive_index in range(n_idle):
            add(carrier, "idle", drive_index)
    return units


def build_d1(
    options: D1Options = D1Options(), backend: ExecutionBackend | None = None
) -> D1Build:
    """Build dataset D1 end-to-end through the device-side pipeline.

    Args:
        options: Build options; ``options.workers`` picks the default
            backend (serial at 1, a process pool above).
        backend: Explicit :class:`~repro.pipeline.ExecutionBackend`,
            overriding ``options.workers``.
    """
    scenario = d1_scenario(options)
    store = HandoffInstanceStore()
    build = D1Build(store=store, scenario=scenario)
    units = d1_work_units(options, scenario)
    runner = resolve_backend(options.workers, backend)
    for result in runner.run(units):
        build.drives.append(result.drive)
        store.extend(result.instances)
    return build
