"""Dataset D1: handoff instances from Type-II drives.

The paper's D1 holds 14,510 active and 4,263 idle 4G -> 4G handoff
instances from four weeks of driving in three US cities and the
highways between them, across all four top US carriers (speedtest and
constant-rate iPerf primarily on AT&T and T-Mobile).

This builder reproduces the *pipeline* at a configurable scale: it runs
drive simulations, lets MMLab's collector write the diag logs, extracts
instances with the crawler-side logic, and aligns them with the traffic
logs.  ``D1Options.scale`` multiplies the number of drives; the default
build is laptop-sized (hundreds of instances) and the shapes of all
derived figures are stable well below the paper's instance counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.mmlab import MMLab
from repro.datasets.store import HandoffInstanceStore
from repro.simulate.runner import DriveResult, DriveSimulator
from repro.simulate.scenarios import DriveScenario, drive_scenario
from repro.simulate.traffic import ConstantRate, NoTraffic, Ping, Speedtest, TrafficModel


@dataclass(frozen=True)
class D1Options:
    """Build options for dataset D1.

    Attributes:
        seed: Deployment seed.
        config_seed: Configuration-profile seed.
        scenario: Scenario name ("indianapolis", "lafayette", "chicago"
            or "tri-city").
        active_drives: Per-carrier number of active (with-traffic)
            drives, before scaling.
        idle_drives: Per-carrier number of idle drives, before scaling.
        drive_duration_s: Length of each drive.
        scale: Multiplies both drive counts (1 = laptop default).
        carriers: Carriers to drive; the paper's speedtest/iPerf runs
            were "primarily in AT&T and T-Mobile only".
        highway_drives: Per-carrier highway runs (90-120 km/h) along a
            corridor out of the city, as in the paper's between-city
            drives.  0 disables the corridor deployment entirely.
    """

    seed: int = 7
    config_seed: int = 2018
    scenario: str = "indianapolis"
    active_drives: int = 4
    idle_drives: int = 2
    drive_duration_s: float = 600.0
    scale: float = 1.0
    carriers: tuple[str, ...] = ("A", "T", "V", "S")
    highway_drives: int = 1


def _traffic_for(carrier: str, drive_index: int) -> TrafficModel:
    """The paper's service mix: speedtest/iPerf on A and T, ping on all."""
    if carrier in ("A", "T"):
        cycle = drive_index % 3
        if cycle == 0:
            return Speedtest()
        if cycle == 1:
            return ConstantRate(rate_bps=1_000_000.0)
        return ConstantRate(rate_bps=5_000.0)
    return Ping()


@dataclass
class D1Build:
    """The result of one D1 build."""

    store: HandoffInstanceStore
    scenario: DriveScenario
    drives: list[DriveResult] = field(default_factory=list)


def build_d1(options: D1Options = D1Options()) -> D1Build:
    """Build dataset D1 end-to-end through the device-side pipeline."""
    scenario = drive_scenario(
        options.scenario,
        seed=options.seed,
        config_seed=options.config_seed,
        with_highway=(options.highway_drives > 0 and options.scenario != "tri-city"),
    )
    mmlab = MMLab()
    store = HandoffInstanceStore()
    build = D1Build(store=store, scenario=scenario)
    n_active = max(int(round(options.active_drives * options.scale)), 1)
    n_idle = max(int(round(options.idle_drives * options.scale)), 1)
    for carrier in options.carriers:
        sim = DriveSimulator(
            scenario.env, scenario.server, carrier, seed=options.seed * 13 + 1
        )
        for drive_index in range(n_active):
            rng = np.random.default_rng((options.seed, 0xD1, 1, drive_index))
            trajectory = scenario.urban_trajectory(
                rng,
                duration_s=options.drive_duration_s,
                speed_kmh=float(rng.uniform(30.0, 50.0)),
            )
            result = sim.run(
                trajectory, _traffic_for(carrier, drive_index), run_index=drive_index
            )
            build.drives.append(result)
            instances = mmlab.extract_handoffs(
                result.diag_log,
                carrier,
                throughput_series=result.throughput_series(bin_ms=1000),
            )
            store.extend(i for i in instances if i.kind == "active")
        if scenario.highway_endpoints is not None:
            for drive_index in range(options.highway_drives):
                rng = np.random.default_rng((options.seed, 0xD1, 3, drive_index))
                trajectory = scenario.highway_trajectory(
                    rng, speed_kmh=float(rng.uniform(90.0, 120.0))
                )
                result = sim.run(
                    trajectory,
                    _traffic_for(carrier, drive_index),
                    run_index=2000 + drive_index,
                )
                build.drives.append(result)
                instances = mmlab.extract_handoffs(
                    result.diag_log,
                    carrier,
                    throughput_series=result.throughput_series(bin_ms=1000),
                )
                store.extend(i for i in instances if i.kind == "active")
        for drive_index in range(n_idle):
            rng = np.random.default_rng((options.seed, 0xD1, 2, drive_index))
            trajectory = scenario.urban_trajectory(
                rng,
                duration_s=options.drive_duration_s,
                speed_kmh=float(rng.uniform(30.0, 50.0)),
            )
            result = sim.run(trajectory, NoTraffic(), run_index=1000 + drive_index)
            build.drives.append(result)
            instances = mmlab.extract_handoffs(result.diag_log, carrier)
            store.extend(i for i in instances if i.kind == "idle")
    return build
