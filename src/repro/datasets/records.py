"""Dataset record types.

``ConfigSample`` is D2's unit ("we treat each parameter observed as one
sample", Section 5): one parameter value observed at one cell at one
time.  ``HandoffInstance`` is D1's unit: one handoff with its decisive
context and the performance series around it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class ConfigSample:
    """One observed configuration parameter value at one cell.

    Attributes:
        carrier: Carrier acronym.
        gci: Global cell identity within the carrier.
        rat: RAT name ("LTE", "UMTS", ...).
        channel: The cell's channel number.
        city: City where the observation was made.
        parameter: Registry parameter name.
        value: Observed value (scalar, or list for list parameters).
        observed_day: Collection day (days since the study epoch).
        round_index: Which collection round/session produced it.
    """

    carrier: str
    gci: int
    rat: str
    channel: int
    city: str
    parameter: str
    value: object
    observed_day: float = 0.0
    round_index: int = 0

    def to_json(self) -> str:
        return json.dumps(asdict(self), separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "ConfigSample":
        data = json.loads(line)
        if isinstance(data.get("value"), list):
            data["value"] = tuple(data["value"])
        return cls(**data)

    @property
    def value_key(self) -> object:
        """Hashable form of the value (lists become tuples)."""
        if isinstance(self.value, list):
            return tuple(self.value)
        return self.value


@dataclass(frozen=True)
class HandoffInstance:
    """One handoff instance in D1, as extracted from a device trace.

    Attributes:
        kind: "active" or "idle".
        carrier: Carrier acronym.
        time_ms: Trace-relative handoff execution time.
        source_gci / target_gci: Cell identities.
        source_channel / target_channel: Channel numbers.
        intra_freq: Same-RAT same-channel handoff.
        decisive_event: Last reporting event before the handover command
            (active only): "A1".."A5", "P".
        decisive_metric: Trigger quantity of the decisive event.
        decisive_config: Main parameters of the decisive event config,
            e.g. {"offset": 3.0, "hysteresis": 1.0} for A3.
        priority_class: higher/equal/lower (idle only).
        rsrp_before / rsrp_after: Serving RSRP just before the handoff
            and just after (new serving), from PHY measurement records.
        rsrq_before / rsrq_after: Same for RSRQ.
        min_throughput_before_bps: Minimum 1 s throughput in the window
            before the handoff (active drives with traffic; None
            otherwise) — the paper's Fig. 8 metric.
        report_to_handover_ms: Latency from the decisive measurement
            report to the handover command (active only).
    """

    kind: str
    carrier: str
    time_ms: int
    source_gci: int
    target_gci: int
    source_channel: int
    target_channel: int
    intra_freq: bool
    decisive_event: str | None = None
    decisive_metric: str | None = None
    decisive_config: dict = field(default_factory=dict)
    priority_class: str | None = None
    rsrp_before: float | None = None
    rsrp_after: float | None = None
    rsrq_before: float | None = None
    rsrq_after: float | None = None
    min_throughput_before_bps: float | None = None
    report_to_handover_ms: int | None = None

    @property
    def delta_rsrp(self) -> float | None:
        """RSRP change across the handoff (Fig. 6/10's delta)."""
        if self.rsrp_before is None or self.rsrp_after is None:
            return None
        return self.rsrp_after - self.rsrp_before

    def to_json(self) -> str:
        return json.dumps(asdict(self), separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "HandoffInstance":
        return cls(**json.loads(line))
