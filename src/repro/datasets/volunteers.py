"""The crowdsourced volunteer population behind dataset D2.

The paper distributed MMLab to 35+ volunteers across the US and the
world who collected configuration traces intermittently between Nov
2017 and April 2018, plus the authors' own denser collection runs in
several US cities.  A :class:`Volunteer` models one participant: a home
city, a carrier subscription, and a set of collection sessions spread
over the study window.  Sessions visit cells near the volunteer's
movement anchors; MMLab's proactive cell switching (Section 3.1) lets
one session observe several co-located cells per stop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellnet.carrier import CARRIERS
from repro.cellnet.deployment import City, WORLD_CITIES
from repro.cellnet.geo import Point


@dataclass(frozen=True)
class CollectionSession:
    """One volunteer outing: when, where, how long."""

    day: float
    anchor: Point
    n_stops: int


@dataclass(frozen=True)
class Volunteer:
    """One participant in the Type-I crowdsourced collection."""

    volunteer_id: int
    city: City
    carrier: str
    sessions: tuple[CollectionSession, ...]
    #: Dense collectors are the authors' own controlled runs: they
    #: drive main roads 500 m - 1 km apart covering the whole city
    #: (Section 5.4.2), giving the density the proximity analysis needs.
    dense: bool = False


#: Study window in days (Oct 2016 - May 2018 for the authors' runs;
#: volunteers Nov 2017 - April 2018).
STUDY_WINDOW_DAYS = 580.0
VOLUNTEER_WINDOW = (410.0, 560.0)


def volunteer_population(
    seed: int = 11,
    n_volunteers: int = 35,
    sessions_per_volunteer: int = 6,
) -> list[Volunteer]:
    """Build the deterministic volunteer population.

    Volunteers are spread over the catalogued cities proportionally to
    city size, each subscribing to one carrier operating there.  The
    authors' own dense collection runs (covering C1..C5 US cities, fully
    for C3/C4/C5 and partially for C1/C2 — Section 5.4.2) are appended
    as dense pseudo-volunteers.
    """
    rng = np.random.default_rng((seed, 0xD2))
    volunteers: list[Volunteer] = []
    weights = np.array([1 + c.rings for c in WORLD_CITIES], dtype=float)
    weights /= weights.sum()
    for vid in range(n_volunteers):
        city = WORLD_CITIES[int(rng.choice(len(WORLD_CITIES), p=weights))]
        carriers_here = sorted(
            c.acronym for c in CARRIERS.values() if c.country == city.country
        )
        carrier = carriers_here[int(rng.integers(len(carriers_here)))]
        extent = city.rings * city.site_spacing_m * 0.6
        sessions = []
        n_sessions = int(rng.integers(2, sessions_per_volunteer + 3))
        for _ in range(n_sessions):
            day = float(rng.uniform(*VOLUNTEER_WINDOW))
            anchor = city.origin.offset(
                float(rng.uniform(-extent, extent)), float(rng.uniform(-extent, extent))
            )
            sessions.append(
                CollectionSession(day=day, anchor=anchor, n_stops=int(rng.integers(3, 10)))
            )
        volunteers.append(
            Volunteer(
                volunteer_id=vid,
                city=city,
                carrier=carrier,
                sessions=tuple(sorted(sessions, key=lambda s: s.day)),
            )
        )
    # The authors' dense city sweeps: every US carrier, multiple rounds
    # spread over the full study window (this is what makes the temporal
    # analysis possible: repeated samples of the same cells).
    dense_id = n_volunteers
    us_cities = [c for c in WORLD_CITIES if c.country == "US"]
    for city in us_cities:
        full_coverage = city.name in ("Indianapolis", "Columbus", "Lafayette")
        for carrier in ("A", "T", "V", "S"):
            sessions = []
            n_rounds = 6 if full_coverage else 4
            for round_index in range(n_rounds):
                day = float(rng.uniform(10.0, STUDY_WINDOW_DAYS - 10.0))
                sessions.append(
                    CollectionSession(day=day, anchor=city.origin, n_stops=0)
                )
            volunteers.append(
                Volunteer(
                    volunteer_id=dense_id,
                    city=city,
                    carrier=carrier,
                    sessions=tuple(sorted(sessions, key=lambda s: s.day)),
                    dense=True,
                )
            )
            dense_id += 1
    return volunteers
