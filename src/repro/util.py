"""Small shared utilities."""

from __future__ import annotations

import zlib


def stable_hash(value: str) -> int:
    """Process-stable 32-bit hash of a string.

    Python's built-in ``hash`` for strings is salted per interpreter
    process; anything feeding RNG seeds must use this instead, or
    dataset builds would differ run to run.
    """
    return zlib.crc32(value.encode("utf-8"))
