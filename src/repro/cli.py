"""Command-line interface.

Lets a user regenerate any of the paper's tables/figures without
writing code::

    python -m repro list
    python -m repro run fig06
    python -m repro run fig06 --scale 2      # bigger D1 build
    python -m repro run tab04 fig11 fig22    # several at once
    python -m repro run tab04 --workers 4    # parallel dataset build

The first ``run`` of a D1- or D2-backed experiment builds the shared
dataset (a minute or two); subsequent experiments in the same
invocation reuse it.

``build-d1`` / ``build-d2`` build a dataset standalone and write it to
a JSONL file, fanning work units over a process pool with
``--workers``::

    python -m repro build-d2 --workers 4 --out d2.jsonl
    python -m repro build-d1 --workers 4 --scale 2 --out d1.jsonl

Worker count changes wall-clock time only: the output file is
byte-identical for any ``--workers`` value.

``lint`` audits deployed cell configurations statically (no
simulation) with the :mod:`repro.lint` rule engine::

    python -m repro lint                       # world fleet, text report
    python -m repro lint --format json         # machine-readable
    python -m repro lint --city Chicago --carriers T V
    python -m repro lint --baseline lint-baseline.json --fail-on problem
    python -m repro lint --graph --workers 4   # + handoff-graph verifier
    python -m repro lint --graph --update-baseline
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import registry
from repro.experiments.common import default_d1, default_d2

#: Which backing dataset each experiment needs.
_NEEDS_D1 = {"fig05", "fig06", "fig08", "fig09", "fig10", "ext-instability"}
_NEEDS_D2 = {
    "tab04", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "ext-policies",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the IMC'18 handoff study",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiment ids")
    run_parser = subparsers.add_parser("run", help="run experiment drivers")
    run_parser.add_argument("experiments", nargs="+", metavar="EXP",
                            help="experiment ids (e.g. fig06 tab04), or 'all'")
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="D1 drive-count multiplier (default 1.0)")
    run_parser.add_argument("--workers", type=int, default=None, metavar="N",
                            help="worker processes for dataset builds "
                                 "(default: REPRO_WORKERS or 1)")
    d1_parser = subparsers.add_parser(
        "build-d1", help="build dataset D1 (handoff instances) to a JSONL file"
    )
    d1_parser.add_argument("--out", default="d1.jsonl", metavar="PATH",
                           help="output JSONL path (default d1.jsonl)")
    d1_parser.add_argument("--workers", type=int, default=None, metavar="N",
                           help="worker processes (default: REPRO_WORKERS or 1)")
    d1_parser.add_argument("--scenario", default="indianapolis",
                           help="drive scenario (default indianapolis)")
    d1_parser.add_argument("--scale", type=float, default=1.0,
                           help="drive-count multiplier (default 1.0)")
    d1_parser.add_argument("--active-drives", type=int, default=4, metavar="N",
                           help="active drives per carrier before scaling (default 4)")
    d1_parser.add_argument("--idle-drives", type=int, default=2, metavar="N",
                           help="idle drives per carrier before scaling (default 2)")
    d1_parser.add_argument("--duration", type=float, default=600.0, metavar="S",
                           help="drive duration in seconds (default 600)")
    d1_parser.add_argument("--carriers", nargs="*", default=None, metavar="C",
                           help="carriers to drive (default: A T V S)")
    d1_parser.add_argument("--highway-drives", type=int, default=1, metavar="N",
                           help="highway runs per carrier (default 1)")
    d1_parser.add_argument("--seed", type=int, default=7,
                           help="deployment seed (default 7)")
    d1_parser.add_argument("--config-seed", type=int, default=2018,
                           help="configuration-profile seed (default 2018)")
    d2_parser = subparsers.add_parser(
        "build-d2", help="build dataset D2 (config samples) to a JSONL file"
    )
    d2_parser.add_argument("--out", default="d2.jsonl", metavar="PATH",
                           help="output JSONL path (default d2.jsonl)")
    d2_parser.add_argument("--workers", type=int, default=None, metavar="N",
                           help="worker processes (default: REPRO_WORKERS or 1)")
    d2_parser.add_argument("--volunteers", type=int, default=35, metavar="N",
                           help="volunteer count (default 35)")
    d2_parser.add_argument("--extra-rings", type=int, default=0, metavar="K",
                           help="extra deployment rings (default 0; 3 nears "
                                "the paper's 32k-cell scale)")
    d2_parser.add_argument("--no-dense", action="store_true",
                           help="skip the authors' dense city sweeps")
    d2_parser.add_argument("--seed", type=int, default=7,
                           help="deployment seed (default 7)")
    d2_parser.add_argument("--config-seed", type=int, default=2018,
                           help="configuration-profile seed (default 2018)")
    lint_parser = subparsers.add_parser(
        "lint", help="statically audit cell configurations for misconfigurations"
    )
    lint_parser.add_argument("--city", default="world", metavar="NAME",
                             help="'world' (default), 'us', a city name "
                                  "(e.g. Chicago), or 'loop-fixture' (the "
                                  "synthetic 3-cell handoff-loop scenario)")
    lint_parser.add_argument("--carriers", nargs="*", default=None, metavar="C",
                             help="restrict the audit to these carriers")
    lint_parser.add_argument("--rules", nargs="*", default=None, metavar="CODE",
                             help="run only these rule codes (e.g. HC002 HC103)")
    lint_parser.add_argument("--format", choices=("text", "json", "sarif"),
                             default="text", help="report format (default text)")
    lint_parser.add_argument("--baseline", default=None, metavar="PATH",
                             help="suppress findings recorded in this baseline file")
    lint_parser.add_argument("--write-baseline", default=None, metavar="PATH",
                             help="write all current findings to a baseline file")
    lint_parser.add_argument("--update-baseline", action="store_true",
                             help="rewrite the suppression baseline in place "
                                  "(--baseline path, default lint-baseline.json) "
                                  "with all current findings")
    lint_parser.add_argument("--graph", action="store_true",
                             help="also run the handoff-graph verifier "
                                  "(HC2xx: persistent loops, dead layers, "
                                  "priority inversions)")
    lint_parser.add_argument("--workers", type=int, default=None, metavar="N",
                             help="worker processes for the graph pass "
                                  "(default serial; reports are byte-identical "
                                  "at any worker count)")
    lint_parser.add_argument("--extra-rings", type=int, default=0, metavar="K",
                             help="extra deployment rings for world audits "
                                  "(default 0, matching the D2 build)")
    lint_parser.add_argument("--max-cells", type=int, default=60, metavar="N",
                             help="audit at most N cells per carrier, 0 = all "
                                  "(default 60)")
    lint_parser.add_argument("--seed", type=int, default=7,
                             help="deployment seed (default 7)")
    lint_parser.add_argument("--config-seed", type=int, default=2018,
                             help="configuration-profile seed (default 2018)")
    lint_parser.add_argument("--fail-on",
                             choices=("never", "problem", "warning", "any"),
                             default="never",
                             help="exit non-zero at this severity; 'any' fails "
                                  "on every non-baselined finding "
                                  "(default never)")
    lint_parser.add_argument("--verbose", action="store_true",
                             help="list every finding in text reports")
    return parser


def _run_lint(args: argparse.Namespace) -> int:
    """Deploy the requested fleet and audit it with the lint engine."""
    from repro.cellnet.deployment import (
        DeploymentPlan,
        build_us_deployment,
        build_world_deployment,
        city_by_name,
        deploy_city,
    )
    from repro.cellnet.world import RadioEnvironment
    from repro.datasets.d2 import d2_world
    from repro.lint import Baseline, lint_world, render_text
    from repro.lint.report import RENDERERS
    from repro.rrc.broadcast import ConfigServer

    if args.city == "world":
        # The exact deployment the D2 dataset builder audits/collects
        # from (and a shared process-level cache with it).
        world = d2_world(
            seed=args.seed,
            config_seed=args.config_seed,
            extra_rings=args.extra_rings,
        )
        env, server = world.env, world.server
    elif args.city == "loop-fixture":
        from repro.lint.fixtures import loop_fixture

        scenario = loop_fixture(misconfigured=True)
        env, server = scenario.env, scenario.server
    else:
        if args.city == "us":
            plan = build_us_deployment(seed=args.seed)
        else:
            try:
                city = city_by_name(args.city)
            except KeyError as error:
                print(error.args[0], file=sys.stderr)
                return 2
            plan = DeploymentPlan()
            deploy_city(city, plan, args.seed)
        env = RadioEnvironment(plan)
        server = ConfigServer(env, seed=args.config_seed)
    baseline_path = args.baseline
    if args.update_baseline and baseline_path is None:
        baseline_path = "lint-baseline.json"
    baseline = None
    # Regeneration audits fresh (suppressing against the stale file
    # would only relabel findings, not change what gets written).
    if baseline_path and not args.update_baseline:
        baseline = Baseline.load(baseline_path)
    try:
        report = lint_world(
            env,
            server,
            carriers=tuple(args.carriers) if args.carriers else None,
            max_cells_per_carrier=args.max_cells,
            codes=args.rules,
            baseline=baseline,
            graph=args.graph,
            workers=args.workers,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    write_path = args.write_baseline
    if args.update_baseline:
        write_path = baseline_path
    if write_path:
        captured = Baseline.from_findings(report.findings + report.suppressed)
        captured.save(write_path)
        print(
            f"# wrote {len(captured)} suppressions to {write_path}",
            file=sys.stderr,
        )
    if args.format == "text":
        print(render_text(report, verbose=args.verbose))
    else:
        print(RENDERERS[args.format](report))
    if args.fail_on == "any" and report.findings:
        return 1
    if args.fail_on == "problem" and report.has_problems:
        return 1
    if args.fail_on == "warning" and report.has_warnings:
        return 1
    return 0


def _run_build_d1(args: argparse.Namespace) -> int:
    """Build D1 over the work-unit pipeline and save it as JSONL."""
    import time

    from repro.datasets.d1 import D1Options, build_d1
    from repro.experiments.common import default_workers

    options = D1Options(
        seed=args.seed,
        config_seed=args.config_seed,
        scenario=args.scenario,
        active_drives=args.active_drives,
        idle_drives=args.idle_drives,
        drive_duration_s=args.duration,
        scale=args.scale,
        carriers=tuple(args.carriers) if args.carriers else ("A", "T", "V", "S"),
        highway_drives=args.highway_drives,
        workers=args.workers if args.workers is not None else default_workers(),
    )
    start = time.perf_counter()
    build = build_d1(options)
    elapsed = time.perf_counter() - start
    build.store.save(args.out)
    print(
        f"# D1: {len(build.store)} instances "
        f"({len(build.store.active())} active, {len(build.store.idle())} idle) "
        f"from {len(build.drives)} drives in {elapsed:.1f}s "
        f"(workers={options.workers}) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def _run_build_d2(args: argparse.Namespace) -> int:
    """Build D2 over the work-unit pipeline and save it as JSONL."""
    import time

    from repro.datasets.d2 import D2Options, build_d2
    from repro.experiments.common import default_workers

    options = D2Options(
        seed=args.seed,
        config_seed=args.config_seed,
        n_volunteers=args.volunteers,
        extra_rings=args.extra_rings,
        include_dense=not args.no_dense,
        workers=args.workers if args.workers is not None else default_workers(),
    )
    start = time.perf_counter()
    build = build_d2(options)
    elapsed = time.perf_counter() - start
    build.store.save(args.out)
    print(
        f"# D2: {len(build.store)} samples from {len(build.store.unique_cells())} "
        f"cells over {build.n_sessions} sessions in {elapsed:.1f}s "
        f"(workers={options.workers}) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id in registry.all_experiment_ids():
            print(exp_id)
        return 0
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "build-d1":
        return _run_build_d1(args)
    if args.command == "build-d2":
        return _run_build_d2(args)
    wanted = list(args.experiments)
    if wanted == ["all"]:
        wanted = registry.all_experiment_ids()
    unknown = [e for e in wanted if e not in registry.EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(registry.all_experiment_ids())}", file=sys.stderr)
        return 2
    d1 = d2 = None
    for exp_id in wanted:
        kwargs = {}
        if exp_id in _NEEDS_D1:
            if d1 is None:
                print("# building dataset D1...", file=sys.stderr)
                d1 = default_d1(scale=args.scale, workers=args.workers)
            kwargs["d1"] = d1
        elif exp_id in _NEEDS_D2:
            if d2 is None:
                print("# building dataset D2...", file=sys.stderr)
                d2 = default_d2(workers=args.workers)
            kwargs["d2"] = d2
        result = registry.run(exp_id, **kwargs)
        result.print()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
