"""Command-line interface.

Lets a user regenerate any of the paper's tables/figures without
writing code::

    python -m repro list
    python -m repro run fig06
    python -m repro run fig06 --scale 2      # bigger D1 build
    python -m repro run tab04 fig11 fig22    # several at once
    python -m repro run tab04 --workers 4    # parallel dataset build

The first ``run`` of a D1- or D2-backed experiment builds the shared
dataset (a minute or two); subsequent experiments in the same
invocation reuse it.

``build-d1`` / ``build-d2`` build a dataset standalone and write it to
a JSONL file, fanning work units over a process pool with
``--workers``::

    python -m repro build-d2 --workers 4 --out d2.jsonl
    python -m repro build-d1 --workers 4 --scale 2 --out d1.jsonl

Worker count changes wall-clock time only: the output file is
byte-identical for any ``--workers`` value.

``lint`` audits deployed cell configurations statically (no
simulation) with the :mod:`repro.lint` rule engine::

    python -m repro lint                       # world fleet, text report
    python -m repro lint --format json         # machine-readable
    python -m repro lint --city Chicago --carriers T V
    python -m repro lint --baseline lint-baseline.json --fail-on problem
    python -m repro lint --graph --workers 4   # + handoff-graph verifier
    python -m repro lint --coverage            # + signal-space analyzer
    python -m repro lint --graph --update-baseline
    python -m repro lint --baseline lint-baseline.json --prune-baseline
    python -m repro lint --explain             # document every rule
    python -m repro lint --explain HC401 HC405 # document specific rules

``snapshot`` captures a fleet's configuration state to a versioned
file, and ``lint --diff`` gates on what changed between captures —
reporting only findings *introduced* between them, each blamed on the
configuration change that made it appear::

    python -m repro snapshot --out capture-000.json --label before
    python -m repro snapshot --out capture-001.json --label after
    python -m repro lint --diff capture-000.json capture-001.json --fail-on any

``fleet`` simulates a whole population of UEs (parked phones, walkers,
transit riders, drivers) over one city with batched physics, sharded
over ``--workers`` processes; the JSON report is byte-identical for
any worker count::

    python -m repro fleet --ues 500 --duration 600 --out fleet.json
    python -m repro fleet --ues 100 --workers 4 --traffic ping

``evolve`` generates synthetic multi-capture timelines (retuning
campaigns, patch rollouts, a deliberate loop regression) for drift-rule
fixtures and CI::

    python -m repro evolve --scenario loop-regression --steps 2 --out timeline/
    python -m repro lint --diff timeline/snapshot-000.json timeline/snapshot-001.json
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import registry
from repro.experiments.common import default_d1, default_d2

#: Which backing dataset each experiment needs.
_NEEDS_D1 = {"fig05", "fig06", "fig08", "fig09", "fig10", "ext-instability"}
_NEEDS_D2 = {
    "tab04", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "ext-policies",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the IMC'18 handoff study",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiment ids")
    run_parser = subparsers.add_parser("run", help="run experiment drivers")
    run_parser.add_argument("experiments", nargs="+", metavar="EXP",
                            help="experiment ids (e.g. fig06 tab04), or 'all'")
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="D1 drive-count multiplier (default 1.0)")
    run_parser.add_argument("--workers", type=int, default=None, metavar="N",
                            help="worker processes for dataset builds "
                                 "(default: REPRO_WORKERS or 1)")
    d1_parser = subparsers.add_parser(
        "build-d1", help="build dataset D1 (handoff instances) to a JSONL file"
    )
    d1_parser.add_argument("--out", default="d1.jsonl", metavar="PATH",
                           help="output JSONL path (default d1.jsonl)")
    d1_parser.add_argument("--workers", type=int, default=None, metavar="N",
                           help="worker processes (default: REPRO_WORKERS or 1)")
    d1_parser.add_argument("--scenario", default="indianapolis",
                           help="drive scenario (default indianapolis)")
    d1_parser.add_argument("--scale", type=float, default=1.0,
                           help="drive-count multiplier (default 1.0)")
    d1_parser.add_argument("--active-drives", type=int, default=4, metavar="N",
                           help="active drives per carrier before scaling (default 4)")
    d1_parser.add_argument("--idle-drives", type=int, default=2, metavar="N",
                           help="idle drives per carrier before scaling (default 2)")
    d1_parser.add_argument("--duration", type=float, default=600.0, metavar="S",
                           help="drive duration in seconds (default 600)")
    d1_parser.add_argument("--carriers", nargs="*", default=None, metavar="C",
                           help="carriers to drive (default: A T V S)")
    d1_parser.add_argument("--highway-drives", type=int, default=1, metavar="N",
                           help="highway runs per carrier (default 1)")
    d1_parser.add_argument("--seed", type=int, default=7,
                           help="deployment seed (default 7)")
    d1_parser.add_argument("--config-seed", type=int, default=2018,
                           help="configuration-profile seed (default 2018)")
    d2_parser = subparsers.add_parser(
        "build-d2", help="build dataset D2 (config samples) to a JSONL file"
    )
    d2_parser.add_argument("--out", default="d2.jsonl", metavar="PATH",
                           help="output JSONL path (default d2.jsonl)")
    d2_parser.add_argument("--workers", type=int, default=None, metavar="N",
                           help="worker processes (default: REPRO_WORKERS or 1)")
    d2_parser.add_argument("--volunteers", type=int, default=35, metavar="N",
                           help="volunteer count (default 35)")
    d2_parser.add_argument("--extra-rings", type=int, default=0, metavar="K",
                           help="extra deployment rings (default 0; 3 nears "
                                "the paper's 32k-cell scale)")
    d2_parser.add_argument("--no-dense", action="store_true",
                           help="skip the authors' dense city sweeps")
    d2_parser.add_argument("--seed", type=int, default=7,
                           help="deployment seed (default 7)")
    d2_parser.add_argument("--config-seed", type=int, default=2018,
                           help="configuration-profile seed (default 2018)")
    lint_parser = subparsers.add_parser(
        "lint", help="statically audit cell configurations for misconfigurations"
    )
    lint_parser.add_argument("--city", default="world", metavar="NAME",
                             help="'world' (default), 'us', a city name "
                                  "(e.g. Chicago), 'loop-fixture' (the "
                                  "synthetic 3-cell handoff-loop scenario), or "
                                  "'dead-zone-fixture' (the 2-cell coverage "
                                  "dead-zone scenario)")
    lint_parser.add_argument("--carriers", nargs="*", default=None, metavar="C",
                             help="restrict the audit to these carriers")
    lint_parser.add_argument("--rules", nargs="*", default=None, metavar="CODE",
                             help="run only these rule codes (e.g. HC002 HC103)")
    lint_parser.add_argument("--format", choices=("text", "json", "sarif"),
                             default="text", help="report format (default text)")
    lint_parser.add_argument("--diff", nargs="+", default=None, metavar="SNAP",
                             help="differential mode: 2+ snapshot files "
                                  "(oldest first); audits the last two and "
                                  "reports only findings introduced between "
                                  "them, blamed on the responsible change; "
                                  "earlier files feed the timeline rules "
                                  "(HC303)")
    lint_parser.add_argument("--baseline", default=None, metavar="PATH",
                             help="suppress findings recorded in this baseline file")
    lint_parser.add_argument("--write-baseline", default=None, metavar="PATH",
                             help="write all current findings to a baseline file")
    lint_parser.add_argument("--update-baseline", action="store_true",
                             help="rewrite the suppression baseline in place "
                                  "(--baseline path, default lint-baseline.json) "
                                  "with all current findings")
    lint_parser.add_argument("--prune-baseline", action="store_true",
                             help="drop suppressions that no current finding "
                                  "matches from the --baseline file and save "
                                  "it back")
    lint_parser.add_argument("--graph", action="store_true",
                             help="also run the handoff-graph verifier "
                                  "(HC2xx: persistent loops, dead layers, "
                                  "priority inversions)")
    lint_parser.add_argument("--coverage", action="store_true",
                             help="also run the signal-space coverage "
                                  "analyzer (HC4xx: dead zones, shadowed "
                                  "events, TTT contradictions; every finding "
                                  "carries a replayable witness)")
    lint_parser.add_argument("--explain", nargs="*", default=None,
                             metavar="CODE",
                             help="print rule documentation (description, "
                                  "severity, scope, minimal triggering "
                                  "config) for the given codes — or every "
                                  "registered rule with no codes — and exit")
    lint_parser.add_argument("--workers", type=int, default=None, metavar="N",
                             help="worker processes for the graph/coverage "
                                  "passes (default serial; reports are "
                                  "byte-identical at any worker count)")
    lint_parser.add_argument("--extra-rings", type=int, default=0, metavar="K",
                             help="extra deployment rings for world audits "
                                  "(default 0, matching the D2 build)")
    lint_parser.add_argument("--max-cells", type=int, default=60, metavar="N",
                             help="audit at most N cells per carrier, 0 = all "
                                  "(default 60)")
    lint_parser.add_argument("--seed", type=int, default=7,
                             help="deployment seed (default 7)")
    lint_parser.add_argument("--config-seed", type=int, default=2018,
                             help="configuration-profile seed (default 2018)")
    lint_parser.add_argument("--fail-on",
                             choices=("never", "any", "info", "warning",
                                      "problem"),
                             default="never",
                             help="exit non-zero at this severity; 'any' fails "
                                  "on every non-baselined finding "
                                  "(default never)")
    lint_parser.add_argument("--verbose", action="store_true",
                             help="list every finding in text reports")
    snap_parser = subparsers.add_parser(
        "snapshot", help="capture a fleet's configuration state to a file"
    )
    snap_parser.add_argument("--out", default="snapshot.json", metavar="PATH",
                             help="output snapshot path (default snapshot.json)")
    snap_parser.add_argument("--label", default="", metavar="NAME",
                             help="capture label (default: the output filename)")
    snap_parser.add_argument("--captured-day", type=float, default=0.0,
                             metavar="D",
                             help="observation day of the capture (default 0)")
    snap_parser.add_argument("--city", default="world", metavar="NAME",
                             help="'world' (default), 'us', a city name, or "
                                  "'loop-fixture'")
    snap_parser.add_argument("--carriers", nargs="*", default=None, metavar="C",
                             help="restrict the capture to these carriers")
    snap_parser.add_argument("--extra-rings", type=int, default=0, metavar="K",
                             help="extra deployment rings for world captures")
    snap_parser.add_argument("--max-cells", type=int, default=60, metavar="N",
                             help="capture at most N cells per carrier, 0 = all "
                                  "(default 60)")
    snap_parser.add_argument("--seed", type=int, default=7,
                             help="deployment seed (default 7)")
    snap_parser.add_argument("--config-seed", type=int, default=2018,
                             help="configuration-profile seed (default 2018)")
    evolve_parser = subparsers.add_parser(
        "evolve", help="generate a synthetic configuration-evolution timeline"
    )
    evolve_parser.add_argument("--scenario", default="retune",
                               choices=("retune", "patch-rollout",
                                        "loop-regression", "clean", "flapping"),
                               help="evolution scenario (default retune)")
    evolve_parser.add_argument("--steps", type=int, default=3, metavar="N",
                               help="captures in the timeline (default 3)")
    evolve_parser.add_argument("--out", default="timeline", metavar="DIR",
                               help="output directory (default timeline/)")
    evolve_parser.add_argument("--interval-days", type=float, default=30.0,
                               metavar="D",
                               help="days between captures (default 30)")
    evolve_parser.add_argument("--config-seed", type=int, default=2018,
                               help="configuration-profile seed (default 2018)")
    fleet_parser = subparsers.add_parser(
        "fleet", help="simulate a multi-UE fleet with batched physics"
    )
    fleet_parser.add_argument("--ues", type=int, default=100, metavar="N",
                              help="fleet population (default 100)")
    fleet_parser.add_argument("--duration", type=float, default=600.0, metavar="S",
                              help="per-UE simulated seconds (default 600)")
    fleet_parser.add_argument("--scenario", default="indianapolis",
                              help="drive scenario city (default indianapolis)")
    fleet_parser.add_argument("--carriers", nargs="*", default=None, metavar="C",
                              help="subscriptions, assigned round-robin "
                                   "(default: A)")
    fleet_parser.add_argument("--traffic", default="speedtest",
                              choices=("speedtest", "iperf", "ping", "idle"),
                              help="data service every UE runs (default "
                                   "speedtest)")
    fleet_parser.add_argument("--tick-ms", type=int, default=200,
                              help="simulation step in ms (default 200)")
    fleet_parser.add_argument("--fleet-seed", type=int, default=2024,
                              help="root of the per-UE seed tree (default 2024)")
    fleet_parser.add_argument("--seed", type=int, default=7,
                              help="deployment seed (default 7)")
    fleet_parser.add_argument("--config-seed", type=int, default=2018,
                              help="configuration-profile seed (default 2018)")
    fleet_parser.add_argument("--workers", type=int, default=None, metavar="N",
                              help="worker processes for fleet shards "
                                   "(default: REPRO_WORKERS or 1)")
    fleet_parser.add_argument("--out", default=None, metavar="PATH",
                              help="write the JSON report here (default: "
                                   "stdout)")
    return parser


def _resolve_fleet(args: argparse.Namespace):
    """Deploy the fleet ``--city``/seeds select: ``(env, server)`` or None.

    Shared by ``lint`` and ``snapshot`` so both commands audit/capture
    exactly the same populations.  Prints to stderr and returns None for
    an unknown city.
    """
    from repro.cellnet.deployment import (
        DeploymentPlan,
        build_us_deployment,
        city_by_name,
        deploy_city,
    )
    from repro.cellnet.world import RadioEnvironment
    from repro.datasets.d2 import d2_world
    from repro.rrc.broadcast import ConfigServer

    if args.city == "world":
        # The exact deployment the D2 dataset builder audits/collects
        # from (and a shared process-level cache with it).
        world = d2_world(
            seed=args.seed,
            config_seed=args.config_seed,
            extra_rings=args.extra_rings,
        )
        return world.env, world.server
    if args.city == "loop-fixture":
        from repro.lint.fixtures import loop_fixture

        scenario = loop_fixture(misconfigured=True)
        return scenario.env, scenario.server
    if args.city == "dead-zone-fixture":
        from repro.lint.fixtures import dead_zone_fixture

        dead_zone = dead_zone_fixture(misconfigured=True)
        return dead_zone.env, dead_zone.server
    if args.city == "dead-zone-fixture-corrected":
        from repro.lint.fixtures import dead_zone_fixture

        dead_zone = dead_zone_fixture(misconfigured=False)
        return dead_zone.env, dead_zone.server
    if args.city == "us":
        plan = build_us_deployment(seed=args.seed)
    else:
        try:
            city = city_by_name(args.city)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return None
        plan = DeploymentPlan()
        deploy_city(city, plan, args.seed)
    env = RadioEnvironment(plan)
    return env, ConfigServer(env, seed=args.config_seed)


def _run_lint_diff(args: argparse.Namespace) -> int:
    """Differential audit of two (or a timeline of) snapshot files."""
    from repro.lint import Baseline, ConfigSnapshot, diff_lint, exit_code
    from repro.lint.report import DIFF_RENDERERS, render_diff_text

    if len(args.diff) < 2:
        print("--diff needs at least two snapshot files", file=sys.stderr)
        return 2
    try:
        timeline = [ConfigSnapshot.load(path) for path in args.diff]
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    baseline = Baseline.load(args.baseline) if args.baseline else None
    report = diff_lint(
        timeline[-2],
        timeline[-1],
        timeline=timeline,
        codes=args.rules,
        baseline=baseline,
        workers=args.workers,
    )
    if args.format == "text":
        print(render_diff_text(report, verbose=args.verbose))
    else:
        print(DIFF_RENDERERS[args.format](report))
    return exit_code(report.findings, args.fail_on)


def _run_lint(args: argparse.Namespace) -> int:
    """Deploy the requested fleet and audit it with the lint engine."""
    from repro.lint import Baseline, exit_code, lint_world, render_text
    from repro.lint.report import RENDERERS

    if args.explain is not None:
        from repro.lint.explain import render_explain

        try:
            print(render_explain(args.explain or None))
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        return 0
    if args.diff is not None:
        return _run_lint_diff(args)
    fleet = _resolve_fleet(args)
    if fleet is None:
        return 2
    env, server = fleet
    baseline_path = args.baseline
    if args.update_baseline and baseline_path is None:
        baseline_path = "lint-baseline.json"
    baseline = None
    # Regeneration audits fresh (suppressing against the stale file
    # would only relabel findings, not change what gets written).
    if baseline_path and not args.update_baseline:
        baseline = Baseline.load(baseline_path)
    try:
        report = lint_world(
            env,
            server,
            carriers=tuple(args.carriers) if args.carriers else None,
            max_cells_per_carrier=args.max_cells,
            codes=args.rules,
            baseline=baseline,
            graph=args.graph,
            coverage=args.coverage,
            workers=args.workers,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    if baseline is not None:
        # Scope staleness to the rules this audit actually ran: a
        # non---graph run must not flag (or prune!) HC2xx suppressions
        # it could never have re-confirmed.
        matched = report.findings + report.suppressed
        stale = baseline.unused(matched, rules_run=report.rules_run)
        if stale and args.prune_baseline:
            pruned = baseline.prune(matched, rules_run=report.rules_run)
            baseline.save(baseline_path)
            print(
                f"# pruned {len(pruned)} stale suppressions from "
                f"{baseline_path} ({len(baseline)} remain)",
                file=sys.stderr,
            )
        elif stale:
            print(
                f"# {len(stale)} baseline suppressions no longer match any "
                "finding; run with --prune-baseline to drop them",
                file=sys.stderr,
            )
    write_path = args.write_baseline
    if args.update_baseline:
        write_path = baseline_path
    if write_path:
        captured = Baseline.from_findings(report.findings + report.suppressed)
        captured.save(write_path)
        print(
            f"# wrote {len(captured)} suppressions to {write_path}",
            file=sys.stderr,
        )
    if args.format == "text":
        print(render_text(report, verbose=args.verbose))
    else:
        print(RENDERERS[args.format](report))
    return exit_code(report.findings, args.fail_on)


def _run_snapshot(args: argparse.Namespace) -> int:
    """Capture the selected fleet's configuration state to a file."""
    from repro.lint import ConfigSnapshot

    fleet = _resolve_fleet(args)
    if fleet is None:
        return 2
    env, server = fleet
    label = args.label or args.out
    snapshot = ConfigSnapshot.capture_world(
        env,
        server,
        label=label,
        carriers=tuple(args.carriers) if args.carriers else None,
        max_cells_per_carrier=args.max_cells,
        captured_day=args.captured_day,
    )
    snapshot.save(args.out)
    print(
        f"# snapshot {label!r}: {len(snapshot)} cells "
        f"(fleet digest {snapshot.fleet_digest}) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def _run_evolve(args: argparse.Namespace) -> int:
    """Generate a synthetic evolution timeline of snapshot files."""
    from repro.datasets.evolve import EvolveOptions, evolve_timeline

    options = EvolveOptions(
        scenario=args.scenario,
        steps=args.steps,
        interval_days=args.interval_days,
        seed=args.config_seed,
    )
    timeline = evolve_timeline(options)
    paths = timeline.save(args.out)
    print(
        f"# {options.scenario} timeline: {len(paths)} captures of "
        f"{len(timeline.snapshots[0])} cells -> "
        f"{paths[0]} .. {paths[-1]}",
        file=sys.stderr,
    )
    return 0


def _run_build_d1(args: argparse.Namespace) -> int:
    """Build D1 over the work-unit pipeline and save it as JSONL."""
    import time

    from repro.datasets.d1 import D1Options, build_d1
    from repro.experiments.common import default_workers

    options = D1Options(
        seed=args.seed,
        config_seed=args.config_seed,
        scenario=args.scenario,
        active_drives=args.active_drives,
        idle_drives=args.idle_drives,
        drive_duration_s=args.duration,
        scale=args.scale,
        carriers=tuple(args.carriers) if args.carriers else ("A", "T", "V", "S"),
        highway_drives=args.highway_drives,
        workers=args.workers if args.workers is not None else default_workers(),
    )
    start = time.perf_counter()
    build = build_d1(options)
    elapsed = time.perf_counter() - start
    build.store.save(args.out)
    print(
        f"# D1: {len(build.store)} instances "
        f"({len(build.store.active())} active, {len(build.store.idle())} idle) "
        f"from {len(build.drives)} drives in {elapsed:.1f}s "
        f"(workers={options.workers}) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def _run_build_d2(args: argparse.Namespace) -> int:
    """Build D2 over the work-unit pipeline and save it as JSONL."""
    import time

    from repro.datasets.d2 import D2Options, build_d2
    from repro.experiments.common import default_workers

    options = D2Options(
        seed=args.seed,
        config_seed=args.config_seed,
        n_volunteers=args.volunteers,
        extra_rings=args.extra_rings,
        include_dense=not args.no_dense,
        workers=args.workers if args.workers is not None else default_workers(),
    )
    start = time.perf_counter()
    build = build_d2(options)
    elapsed = time.perf_counter() - start
    build.store.save(args.out)
    print(
        f"# D2: {len(build.store)} samples from {len(build.store.unique_cells())} "
        f"cells over {build.n_sessions} sessions in {elapsed:.1f}s "
        f"(workers={options.workers}) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def _run_fleet_sim(args: argparse.Namespace) -> int:
    """Simulate a multi-UE fleet and emit a deterministic JSON report.

    The report (options echo, fleet aggregates, one summary row per UE)
    is byte-identical for any ``--workers`` value — wall-clock timing
    and cache statistics go to stderr so the file can be ``cmp``-ed
    across worker counts.
    """
    import json

    from repro.simulate.fleet import FleetOptions, run_fleet
    from repro.simulate.scenarios import ScenarioSpec

    options = FleetOptions(
        scenario=ScenarioSpec(
            name=args.scenario, seed=args.seed, config_seed=args.config_seed
        ),
        fleet_seed=args.fleet_seed,
        n_ues=args.ues,
        duration_s=args.duration,
        tick_ms=args.tick_ms,
        carriers=tuple(args.carriers) if args.carriers else ("A",),
        traffic=args.traffic,
    )
    result = run_fleet(options, workers=args.workers)
    report = {
        "options": {
            "scenario": args.scenario,
            "seed": args.seed,
            "config_seed": args.config_seed,
            "fleet_seed": options.fleet_seed,
            "n_ues": options.n_ues,
            "duration_s": options.duration_s,
            "tick_ms": options.tick_ms,
            "carriers": list(options.carriers),
            "traffic": options.traffic,
        },
        "aggregates": result.aggregates.to_dict(),
        "ues": [ue.summary_row() for ue in result.ues],
    }
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out is None:
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text)
    cache = result.snapshot_cache
    print(
        f"# fleet: {options.n_ues} UEs x {options.duration_s:.0f}s in "
        f"{result.elapsed_s:.1f}s ({result.ue_ticks_per_s:,.0f} UE-ticks/s), "
        f"snapshot cache hit rate {cache.get('hit_rate', 0.0):.3f}"
        + (f" -> {args.out}" if args.out else ""),
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id in registry.all_experiment_ids():
            print(exp_id)
        return 0
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "snapshot":
        return _run_snapshot(args)
    if args.command == "evolve":
        return _run_evolve(args)
    if args.command == "build-d1":
        return _run_build_d1(args)
    if args.command == "build-d2":
        return _run_build_d2(args)
    if args.command == "fleet":
        return _run_fleet_sim(args)
    wanted = list(args.experiments)
    if wanted == ["all"]:
        wanted = registry.all_experiment_ids()
    unknown = [e for e in wanted if e not in registry.EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(registry.all_experiment_ids())}", file=sys.stderr)
        return 2
    d1 = d2 = None
    for exp_id in wanted:
        kwargs = {}
        if exp_id in _NEEDS_D1:
            if d1 is None:
                print("# building dataset D1...", file=sys.stderr)
                d1 = default_d1(scale=args.scale, workers=args.workers)
            kwargs["d1"] = d1
        elif exp_id in _NEEDS_D2:
            if d2 is None:
                print("# building dataset D2...", file=sys.stderr)
                d2 = default_d2(workers=args.workers)
            kwargs["d2"] = d2
        result = registry.run(exp_id, **kwargs)
        result.print()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
