"""Command-line interface.

Lets a user regenerate any of the paper's tables/figures without
writing code::

    python -m repro list
    python -m repro run fig06
    python -m repro run fig06 --scale 2      # bigger D1 build
    python -m repro run tab04 fig11 fig22    # several at once

The first ``run`` of a D1- or D2-backed experiment builds the shared
dataset (a minute or two); subsequent experiments in the same
invocation reuse it.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import registry
from repro.experiments.common import default_d1, default_d2

#: Which backing dataset each experiment needs.
_NEEDS_D1 = {"fig05", "fig06", "fig08", "fig09", "fig10", "ext-instability"}
_NEEDS_D2 = {
    "tab04", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "ext-policies",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the IMC'18 handoff study",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiment ids")
    run_parser = subparsers.add_parser("run", help="run experiment drivers")
    run_parser.add_argument("experiments", nargs="+", metavar="EXP",
                            help="experiment ids (e.g. fig06 tab04), or 'all'")
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="D1 drive-count multiplier (default 1.0)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id in registry.all_experiment_ids():
            print(exp_id)
        return 0
    wanted = list(args.experiments)
    if wanted == ["all"]:
        wanted = registry.all_experiment_ids()
    unknown = [e for e in wanted if e not in registry.EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(registry.all_experiment_ids())}", file=sys.stderr)
        return 2
    d1 = d2 = None
    for exp_id in wanted:
        kwargs = {}
        if exp_id in _NEEDS_D1:
            if d1 is None:
                print("# building dataset D1...", file=sys.stderr)
                d1 = default_d1(scale=args.scale)
            kwargs["d1"] = d1
        elif exp_id in _NEEDS_D2:
            if d2 is None:
                print("# building dataset D2...", file=sys.stderr)
                d2 = default_d2()
            kwargs["d2"] = d2
        result = registry.run(exp_id, **kwargs)
        result.print()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
