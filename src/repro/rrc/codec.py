"""Binary codec for signaling messages.

Real LTE RRC messages are ASN.1 PER; MobileInsight's core job is
decoding them out of the modem's diag stream.  We reproduce that code
path with a compact self-describing TLV encoding: one tag byte per
value, varint-encoded integers and lengths, IEEE-754 doubles, UTF-8
strings, and nested lists/dicts.  A message wire unit is::

    [type_code: varint][payload: value]

where the payload value is the message's ``to_payload()`` dict.  The
decoder is strict — unknown tags, truncated buffers and trailing bytes
all raise :class:`CodecError` — because the crawler must notice a
corrupt log rather than silently mis-parse configurations.
"""

from __future__ import annotations

import struct

from repro.rrc import messages as msg


class CodecError(ValueError):
    """Raised when a buffer cannot be decoded as a signaling message."""


_TAG_NONE = 0
_TAG_INT = 1
_TAG_NEG_INT = 2
_TAG_FLOAT = 3
_TAG_STR = 4
_TAG_LIST = 5
_TAG_DICT = 6
_TAG_TRUE = 7
_TAG_FALSE = 8


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CodecError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise CodecError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


def _encode_value(out: bytearray, value) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        if value >= 0:
            out.append(_TAG_INT)
            _write_varint(out, value)
        else:
            out.append(_TAG_NEG_INT)
            _write_varint(out, -value)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(struct.pack("<d", value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        _write_varint(out, len(encoded))
        out.extend(encoded)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        _write_varint(out, len(value))
        for key in value:  # Insertion order: payloads are built deterministically.
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            _encode_value(out, key)
            _encode_value(out, value[key])
    else:
        raise CodecError(f"cannot encode {type(value).__name__}")


def _decode_value(buf: bytes, pos: int):
    if pos >= len(buf):
        raise CodecError("truncated value")
    tag = buf[pos]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        return _read_varint(buf, pos)
    if tag == _TAG_NEG_INT:
        value, pos = _read_varint(buf, pos)
        return -value, pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(buf):
            raise CodecError("truncated float")
        return struct.unpack_from("<d", buf, pos)[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _read_varint(buf, pos)
        if pos + length > len(buf):
            raise CodecError("truncated string")
        return buf[pos : pos + length].decode("utf-8"), pos + length
    if tag == _TAG_LIST:
        count, pos = _read_varint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            items.append(item)
        return items, pos
    if tag == _TAG_DICT:
        count, pos = _read_varint(buf, pos)
        result = {}
        for _ in range(count):
            key, pos = _decode_value(buf, pos)
            if not isinstance(key, str):
                raise CodecError("dict key is not a string")
            value, pos = _decode_value(buf, pos)
            result[key] = value
        return result, pos
    raise CodecError(f"unknown tag {tag}")


def encode_message(message: msg.Message) -> bytes:
    """Serialize a message to its binary wire form."""
    out = bytearray()
    _write_varint(out, message.TYPE_CODE)
    _encode_value(out, message.to_payload())
    return bytes(out)


def decode_message(buf: bytes) -> msg.Message:
    """Parse a binary wire form back into a typed message.

    Raises:
        CodecError: On unknown type codes, malformed or trailing bytes.
    """
    type_code, pos = _read_varint(buf, 0)
    message_type = msg.MESSAGE_TYPES.get(type_code)
    if message_type is None:
        raise CodecError(f"unknown message type code {type_code:#x}")
    payload, pos = _decode_value(buf, pos)
    if pos != len(buf):
        raise CodecError(f"{len(buf) - pos} trailing bytes after message")
    if not isinstance(payload, dict):
        raise CodecError("message payload is not a dict")
    return message_type.from_payload(payload)
