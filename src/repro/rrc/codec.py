"""Binary codec for signaling messages.

Real LTE RRC messages are ASN.1 PER; MobileInsight's core job is
decoding them out of the modem's diag stream.  We reproduce that code
path with a compact self-describing TLV encoding: one tag byte per
value, varint-encoded integers and lengths, IEEE-754 doubles, UTF-8
strings, and nested lists/dicts.  A message wire unit is::

    [type_code: varint][payload: value]

where the payload value is the message's ``to_payload()`` dict.  The
decoder is strict — unknown tags, truncated buffers and trailing bytes
all raise :class:`CodecError` — because the crawler must notice a
corrupt log rather than silently mis-parse configurations.
"""

from __future__ import annotations

import struct

from repro.rrc import messages as msg


class CodecError(ValueError):
    """Raised when a buffer cannot be decoded as a signaling message."""


_TAG_NONE = 0
_TAG_INT = 1
_TAG_NEG_INT = 2
_TAG_FLOAT = 3
_TAG_STR = 4
_TAG_LIST = 5
_TAG_DICT = 6
_TAG_TRUE = 7
_TAG_FALSE = 8


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CodecError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise CodecError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


_PACK_DOUBLE = struct.Struct("<d").pack


def _encode_value(out: bytearray, value) -> None:
    # Exact-type dispatch: payloads are plain python scalars and
    # containers (flat dicts of str/int/float for the hot per-tick
    # messages), so ``type(value) is X`` resolves nearly every value in
    # one check with lengths/small ints appended inline.  Subclasses —
    # IntEnum fields, str subclasses — fall through to the reference
    # isinstance ladder at the bottom, which produces the identical
    # wire form.
    t = type(value)
    if t is str:
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        n = len(encoded)
        if n < 0x80:
            out.append(n)
        else:
            _write_varint(out, n)
        out.extend(encoded)
    elif t is int:
        if value >= 0:
            out.append(_TAG_INT)
        else:
            out.append(_TAG_NEG_INT)
            value = -value
        if value < 0x80:
            out.append(value)
        else:
            _write_varint(out, value)
    elif t is float:
        out.append(_TAG_FLOAT)
        out.extend(_PACK_DOUBLE(value))
    elif t is dict:
        out.append(_TAG_DICT)
        n = len(value)
        if n < 0x80:
            out.append(n)
        else:
            _write_varint(out, n)
        for key in value:  # Insertion order: payloads are built deterministically.
            if type(key) is str:
                encoded = key.encode("utf-8")
                out.append(_TAG_STR)
                n = len(encoded)
                if n < 0x80:
                    out.append(n)
                else:
                    _write_varint(out, n)
                out.extend(encoded)
            elif isinstance(key, str):
                _encode_value(out, key)
            else:
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            _encode_value(out, value[key])
    elif t is list or t is tuple:
        out.append(_TAG_LIST)
        n = len(value)
        if n < 0x80:
            out.append(n)
        else:
            _write_varint(out, n)
        for item in value:
            _encode_value(out, item)
    elif value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        if value >= 0:
            out.append(_TAG_INT)
            _write_varint(out, value)
        else:
            out.append(_TAG_NEG_INT)
            _write_varint(out, -value)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(struct.pack("<d", value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        _write_varint(out, len(encoded))
        out.extend(encoded)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        _write_varint(out, len(value))
        for key in value:
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            _encode_value(out, key)
            _encode_value(out, value[key])
    else:
        raise CodecError(f"cannot encode {type(value).__name__}")


def _decode_value(buf: bytes, pos: int):
    if pos >= len(buf):
        raise CodecError("truncated value")
    tag = buf[pos]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        return _read_varint(buf, pos)
    if tag == _TAG_NEG_INT:
        value, pos = _read_varint(buf, pos)
        return -value, pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(buf):
            raise CodecError("truncated float")
        return struct.unpack_from("<d", buf, pos)[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _read_varint(buf, pos)
        if pos + length > len(buf):
            raise CodecError("truncated string")
        return buf[pos : pos + length].decode("utf-8"), pos + length
    if tag == _TAG_LIST:
        count, pos = _read_varint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            items.append(item)
        return items, pos
    if tag == _TAG_DICT:
        count, pos = _read_varint(buf, pos)
        result = {}
        for _ in range(count):
            key, pos = _decode_value(buf, pos)
            if not isinstance(key, str):
                raise CodecError("dict key is not a string")
            value, pos = _decode_value(buf, pos)
            result[key] = value
        return result, pos
    raise CodecError(f"unknown tag {tag}")


#: Broadcast-class messages are frozen dataclasses rebuilt with
#: identical field values on every camp, so their wire form is memoized
#: by equality: re-camping on a cell (every handover re-reads the full
#: SIB set) costs one dict hit instead of a payload build plus a TLV
#: encode.  Per-emission messages (PhyServingMeas, MeasurementReport)
#: are excluded — every instance is unique, so caching them would only
#: grow the dict without ever hitting.
_CACHEABLE_TYPES = frozenset(
    {
        msg.Sib1,
        msg.Sib3,
        msg.Sib4,
        msg.Sib5,
        msg.Sib6,
        msg.Sib7,
        msg.Sib8,
        msg.MobilityControlInfo,
        msg.RrcConnectionReconfiguration,
    }
)
_encode_cache: dict[msg.Message, bytes] = {}
_ENCODE_CACHE_MAX = 4096


def _encode_uncached(message: msg.Message) -> bytes:
    out = bytearray()
    _write_varint(out, message.TYPE_CODE)
    _encode_value(out, message.to_payload())
    return bytes(out)


#: The one high-rate per-emission message is PhyServingMeas (one per UE
#: every 500 ms).  Its payload shape is fixed and only the two metric
#: floats change between emissions from the same serving cell, so the
#: wire form around them is templated per (cell identity, state) and the
#: floats are spliced in — byte-identical to the generic encoder, which
#: remains the reference (and the template builder).
_TAG_FLOAT_BYTE = bytes([_TAG_FLOAT])
_phy_templates: dict[tuple, tuple[bytes, bytes, bytes]] = {}


def _encode_phy_serving(message) -> bytes:
    key = (
        message.carrier,
        message.gci,
        message.channel,
        message.rat,
        message.sinr_db,
        message.rrc_connected,
    )
    parts = _phy_templates.get(key)
    if parts is None:
        head = bytearray()
        _write_varint(head, message.TYPE_CODE)
        head.append(_TAG_DICT)
        head.append(8)  # to_payload() field count
        for field, value in (
            ("carrier", message.carrier),
            ("gci", message.gci),
            ("channel", message.channel),
            ("rat", message.rat),
        ):
            _encode_value(head, field)
            _encode_value(head, value)
        _encode_value(head, "rsrp_dbm")
        mid = bytearray()
        _encode_value(mid, "rsrq_db")
        tail = bytearray()
        _encode_value(tail, "sinr_db")
        _encode_value(tail, message.sinr_db)
        _encode_value(tail, "rrc_connected")
        _encode_value(tail, message.rrc_connected)
        if len(_phy_templates) >= _ENCODE_CACHE_MAX:
            _phy_templates.clear()
        parts = (bytes(head), bytes(mid), bytes(tail))
        _phy_templates[key] = parts
    head, mid, tail = parts
    return b"".join(
        (
            head,
            _TAG_FLOAT_BYTE,
            _PACK_DOUBLE(message.rsrp_dbm),
            mid,
            _TAG_FLOAT_BYTE,
            _PACK_DOUBLE(message.rsrq_db),
            tail,
        )
    )


def encode_message(message: msg.Message) -> bytes:
    """Serialize a message to its binary wire form."""
    if type(message) is msg.PhyServingMeas:
        return _encode_phy_serving(message)
    if type(message) in _CACHEABLE_TYPES:
        try:
            cached = _encode_cache.get(message)
        except TypeError:  # unhashable field value: encode directly
            return _encode_uncached(message)
        if cached is None:
            cached = _encode_uncached(message)
            if len(_encode_cache) >= _ENCODE_CACHE_MAX:
                _encode_cache.clear()
            _encode_cache[message] = cached
        return cached
    return _encode_uncached(message)


def decode_message(buf: bytes) -> msg.Message:
    """Parse a binary wire form back into a typed message.

    Raises:
        CodecError: On unknown type codes, malformed or trailing bytes.
    """
    type_code, pos = _read_varint(buf, 0)
    message_type = msg.MESSAGE_TYPES.get(type_code)
    if message_type is None:
        raise CodecError(f"unknown message type code {type_code:#x}")
    payload, pos = _decode_value(buf, pos)
    if pos != len(buf):
        raise CodecError(f"{len(buf) - pos} trailing bytes after message")
    if not isinstance(payload, dict):
        raise CodecError("message payload is not a dict")
    return message_type.from_payload(payload)
