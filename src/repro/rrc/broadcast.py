"""Configuration broadcast: what a camped device hears from each cell.

``ConfigServer`` is the network side of configuration distribution.  For
any cell it can produce the SIB sequence the cell broadcasts (SIB1 +
SIB3-8 for LTE, a system-information wrapper for legacy RATs) and the
measConfig a connected UE would be sent.  It derives each cell's
:class:`~repro.config.profiles.ConfigContext` from the actual deployment
(which other layers exist nearby), so SIB5/6/7/8 describe real
neighbor layers rather than made-up ones.
"""

from __future__ import annotations

import numpy as np

from repro.cellnet.cell import Cell
from repro.cellnet.rat import RAT
from repro.cellnet.world import RadioEnvironment
from repro.config.lte import LteCellConfig, MeasurementConfig
from repro.config.profiles import ConfigContext, profile_for_carrier
from repro.rrc.messages import (
    LegacySystemInfo,
    Message,
    RrcConnectionReconfiguration,
    Sib1,
    Sib3,
    Sib4,
    Sib5,
    Sib6,
    Sib7,
    Sib8,
)

#: Radius within which other layers of the carrier count as "present"
#: for the purpose of building SIB5/6/7/8 layer lists.
_CONTEXT_RADIUS_M = 4000.0


class ConfigServer:
    """Per-deployment configuration oracle.

    Args:
        env: The radio environment whose cells are being configured.
        seed: Profile seed shared by all carriers in this deployment.
    """

    def __init__(self, env: RadioEnvironment, seed: int = 2018):
        self.env = env
        self.seed = seed
        self._contexts: dict = {}
        self._base_configs: dict = {}
        # Time-zero broadcasts are deterministic per cell; messages are
        # frozen, so the same objects can be handed to every camping UE.
        self._sib_cache: dict = {}
        self._reconfig_cache: dict = {}

    def context_for(self, cell: Cell) -> ConfigContext:
        """Deployment context of one cell (cached)."""
        if cell.cell_id in self._contexts:
            return self._contexts[cell.cell_id]
        nearby = self.env.cells_near(cell.location, carrier=cell.carrier, radius_m=_CONTEXT_RADIUS_M)
        lte_channels = tuple(sorted({c.channel for c in nearby if c.rat is RAT.LTE}))
        utra_channels = tuple(sorted({c.channel for c in nearby if c.rat is RAT.UMTS}))
        geran_channels = tuple(sorted({c.channel for c in nearby if c.rat is RAT.GSM}))
        cdma_bands = tuple(sorted({c.band_number for c in nearby if c.rat in (RAT.EVDO, RAT.CDMA1X)}))
        context = ConfigContext(
            city=cell.city,
            lte_channels=lte_channels,
            utra_channels=utra_channels,
            geran_channels=geran_channels,
            cdma_bands=cdma_bands,
        )
        self._contexts[cell.cell_id] = context
        return context

    def lte_config(self, cell: Cell) -> LteCellConfig:
        """The base (time-zero) configuration of an LTE cell (cached)."""
        if cell.rat is not RAT.LTE:
            raise ValueError(f"{cell.cell_id} is not an LTE cell")
        if cell.cell_id not in self._base_configs:
            profile = profile_for_carrier(cell.carrier, seed=self.seed)
            self._base_configs[cell.cell_id] = profile.lte_config(cell, self.context_for(cell))
        return self._base_configs[cell.cell_id]

    def observed_lte_config(
        self, cell: Cell, obs_rng: np.random.Generator, days_since_first: float = 0.0
    ) -> LteCellConfig:
        """One observation of an LTE cell's configuration (may churn)."""
        profile = profile_for_carrier(cell.carrier, seed=self.seed)
        return profile.observed_lte_config(
            cell, self.context_for(cell), obs_rng, days_since_first=days_since_first
        )

    def sib_messages(
        self,
        cell: Cell,
        obs_rng: np.random.Generator | None = None,
        days_since_first: float = 0.0,
    ) -> list[Message]:
        """The system-information sequence ``cell`` broadcasts.

        For LTE this is SIB1 plus SIB3-8 (SIB5-8 only when layers of
        that kind exist nearby, as real cells omit empty SIBs).  For
        legacy RATs it is one :class:`LegacySystemInfo`.
        """
        if obs_rng is None:
            cached = self._sib_cache.get(cell.cell_id)
            if cached is not None:
                return list(cached)
            sibs = self._sib_messages(cell, None, days_since_first)
            self._sib_cache[cell.cell_id] = tuple(sibs)
            return sibs
        return self._sib_messages(cell, obs_rng, days_since_first)

    def _sib_messages(
        self,
        cell: Cell,
        obs_rng: np.random.Generator | None,
        days_since_first: float,
    ) -> list[Message]:
        if cell.rat is not RAT.LTE:
            profile = profile_for_carrier(cell.carrier, seed=self.seed)
            config = profile.legacy_config(cell)
            return [
                LegacySystemInfo.from_config(
                    cell.carrier, cell.cell_id.gci, cell.channel, cell.rat, config, city=cell.city
                )
            ]
        if obs_rng is None:
            config = self.lte_config(cell)
        else:
            config = self.observed_lte_config(cell, obs_rng, days_since_first=days_since_first)
        sibs: list[Message] = [
            Sib1(
                carrier=cell.carrier,
                gci=cell.cell_id.gci,
                pci=cell.pci,
                channel=cell.channel,
                rat=cell.rat.value,
                q_rx_lev_min=config.serving.q_rx_lev_min,
                city=cell.city,
            ),
            Sib3(config=config.serving),
            Sib4(config=config.intra_neighbors),
        ]
        if config.inter_freq_layers:
            sibs.append(Sib5(layers=config.inter_freq_layers))
        if config.utra_layers:
            sibs.append(Sib6(layers=config.utra_layers))
        if config.geran_layers:
            sibs.append(Sib7(layers=config.geran_layers))
        if config.cdma_layers:
            sibs.append(Sib8(layers=config.cdma_layers))
        return sibs

    def connection_reconfiguration(
        self, cell: Cell, obs_rng: np.random.Generator | None = None
    ) -> RrcConnectionReconfiguration:
        """The measConfig message a UE connecting to ``cell`` receives."""
        if obs_rng is None:
            cached = self._reconfig_cache.get(cell.cell_id)
            if cached is not None:
                return cached
        profile = profile_for_carrier(cell.carrier, seed=self.seed)
        meas: MeasurementConfig = profile.measurement_config(cell, obs_rng=obs_rng)
        message = RrcConnectionReconfiguration(meas_config=meas)
        if obs_rng is None:
            self._reconfig_cache[cell.cell_id] = message
        return message
