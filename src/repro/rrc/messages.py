"""Signaling message classes.

Each message knows how to flatten itself into a plain payload dict
(``to_payload``) and rebuild from one (``from_payload``); the binary
codec works on those dicts, so messages stay codec-agnostic.  The
message set covers what MMLab needs (Table 2's rightmost column): SIB1
and SIB3-8 for idle-state configuration, RRC Connection Reconfiguration
(measConfig / mobilityControlInfo) and Measurement Report for the
active-state machinery, and a generic system-information wrapper for
the legacy RATs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.cellnet.cell import CellId
from repro.cellnet.rat import RAT
from repro.config.events import EventConfig, EventType, PeriodicConfig
from repro.config.legacy import LEGACY_CONFIG_TYPES, LegacyCellConfig
from repro.config.lte import (
    InterFreqLayerConfig,
    InterRatCdmaConfig,
    InterRatGeranConfig,
    InterRatUtraConfig,
    IntraFreqNeighborConfig,
    MeasurementConfig,
    ServingCellConfig,
)


class Message:
    """Base class: every message has a TYPE_CODE and payload codecs."""

    TYPE_CODE: int = 0x00

    def to_payload(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: dict) -> "Message":
        raise NotImplementedError


@dataclass(frozen=True)
class Sib1(Message):
    """SIB1: cell identity and access baseline.

    The first thing a camped device decodes; it carries the identity
    MMLab keys configuration snapshots on.
    """

    TYPE_CODE = 0x01

    carrier: str = ""
    gci: int = 0
    pci: int = 0
    channel: int = 0
    rat: str = "LTE"
    q_rx_lev_min: float = -122.0
    city: str = ""

    @property
    def cell_id(self) -> CellId:
        return CellId(self.carrier, self.gci)

    def to_payload(self) -> dict:
        # Flat scalar fields: a literal dict in field order produces the
        # same payload as dataclasses.asdict without its deepcopy pass.
        return {
            "carrier": self.carrier,
            "gci": self.gci,
            "pci": self.pci,
            "channel": self.channel,
            "rat": self.rat,
            "q_rx_lev_min": self.q_rx_lev_min,
            "city": self.city,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Sib1":
        return cls(**payload)


@dataclass(frozen=True)
class Sib3(Message):
    """SIB3: serving-cell reselection configuration."""

    TYPE_CODE = 0x03

    config: ServingCellConfig = field(default_factory=ServingCellConfig)

    def to_payload(self) -> dict:
        return asdict(self.config)

    @classmethod
    def from_payload(cls, payload: dict) -> "Sib3":
        return cls(config=ServingCellConfig(**payload))


@dataclass(frozen=True)
class Sib4(Message):
    """SIB4: intra-frequency neighbor configuration."""

    TYPE_CODE = 0x04

    config: IntraFreqNeighborConfig = field(default_factory=IntraFreqNeighborConfig)

    def to_payload(self) -> dict:
        payload = asdict(self.config)
        payload["black_cell_list"] = list(payload["black_cell_list"])
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "Sib4":
        payload = dict(payload)
        payload["black_cell_list"] = tuple(payload.get("black_cell_list", ()))
        return cls(config=IntraFreqNeighborConfig(**payload))


@dataclass(frozen=True)
class Sib5(Message):
    """SIB5: inter-frequency carrier layers."""

    TYPE_CODE = 0x05

    layers: tuple[InterFreqLayerConfig, ...] = ()

    def to_payload(self) -> dict:
        return {"layers": [asdict(layer) for layer in self.layers]}

    @classmethod
    def from_payload(cls, payload: dict) -> "Sib5":
        return cls(layers=tuple(InterFreqLayerConfig(**d) for d in payload["layers"]))


@dataclass(frozen=True)
class Sib6(Message):
    """SIB6: inter-RAT UTRA layers."""

    TYPE_CODE = 0x06

    layers: tuple[InterRatUtraConfig, ...] = ()

    def to_payload(self) -> dict:
        return {"layers": [asdict(layer) for layer in self.layers]}

    @classmethod
    def from_payload(cls, payload: dict) -> "Sib6":
        return cls(layers=tuple(InterRatUtraConfig(**d) for d in payload["layers"]))


@dataclass(frozen=True)
class Sib7(Message):
    """SIB7: inter-RAT GERAN frequency groups."""

    TYPE_CODE = 0x07

    layers: tuple[InterRatGeranConfig, ...] = ()

    def to_payload(self) -> dict:
        payloads = []
        for layer in self.layers:
            d = asdict(layer)
            d["carrier_freqs"] = list(d["carrier_freqs"])
            payloads.append(d)
        return {"layers": payloads}

    @classmethod
    def from_payload(cls, payload: dict) -> "Sib7":
        layers = []
        for d in payload["layers"]:
            d = dict(d)
            d["carrier_freqs"] = tuple(d["carrier_freqs"])
            layers.append(InterRatGeranConfig(**d))
        return cls(layers=tuple(layers))


@dataclass(frozen=True)
class Sib8(Message):
    """SIB8: inter-RAT CDMA2000 band classes."""

    TYPE_CODE = 0x08

    layers: tuple[InterRatCdmaConfig, ...] = ()

    def to_payload(self) -> dict:
        return {"layers": [asdict(layer) for layer in self.layers]}

    @classmethod
    def from_payload(cls, payload: dict) -> "Sib8":
        return cls(layers=tuple(InterRatCdmaConfig(**d) for d in payload["layers"]))


def _event_to_payload(event: EventConfig) -> dict:
    d = asdict(event)
    d["event"] = event.event.value
    return d


def _event_from_payload(d: dict) -> EventConfig:
    d = dict(d)
    d["event"] = EventType(d["event"])
    return EventConfig(**d)


@dataclass(frozen=True)
class MobilityControlInfo(Message):
    """Handover command content inside an RRC reconfiguration."""

    TYPE_CODE = 0x12

    target_carrier: str = ""
    target_gci: int = 0
    target_channel: int = 0
    target_pci: int = 0
    target_rat: str = "LTE"

    @property
    def target_cell_id(self) -> CellId:
        return CellId(self.target_carrier, self.target_gci)

    def to_payload(self) -> dict:
        return {
            "target_carrier": self.target_carrier,
            "target_gci": self.target_gci,
            "target_channel": self.target_channel,
            "target_pci": self.target_pci,
            "target_rat": self.target_rat,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MobilityControlInfo":
        return cls(**payload)


@dataclass(frozen=True)
class RrcConnectionReconfiguration(Message):
    """RRC Connection Reconfiguration.

    Without ``mobility`` it (re)configures measurements; with it, it is
    the handover command ("within 80-230 ms once the last measurement
    report is sent", Section 4.1).
    """

    TYPE_CODE = 0x10

    meas_config: MeasurementConfig | None = None
    mobility: MobilityControlInfo | None = None

    def to_payload(self) -> dict:
        payload: dict = {}
        if self.meas_config is not None:
            payload["meas_config"] = {
                "events": [_event_to_payload(e) for e in self.meas_config.events],
                "periodic": asdict(self.meas_config.periodic) if self.meas_config.periodic else None,
                "s_measure": self.meas_config.s_measure,
            }
        if self.mobility is not None:
            payload["mobility"] = self.mobility.to_payload()
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "RrcConnectionReconfiguration":
        meas = None
        if payload.get("meas_config") is not None:
            m = payload["meas_config"]
            periodic = PeriodicConfig(**m["periodic"]) if m.get("periodic") else None
            meas = MeasurementConfig(
                events=tuple(_event_from_payload(d) for d in m["events"]),
                periodic=periodic,
                s_measure=m["s_measure"],
            )
        mobility = None
        if payload.get("mobility") is not None:
            mobility = MobilityControlInfo.from_payload(payload["mobility"])
        return cls(meas_config=meas, mobility=mobility)


@dataclass(frozen=True)
class MeasResult(Message):
    """One measured cell inside a measurement report."""

    TYPE_CODE = 0x13

    carrier: str = ""
    gci: int = 0
    pci: int = 0
    channel: int = 0
    rat: str = "LTE"
    rsrp_dbm: float = -140.0
    rsrq_db: float = -19.5

    @property
    def cell_id(self) -> CellId:
        return CellId(self.carrier, self.gci)

    def to_payload(self) -> dict:
        return {
            "carrier": self.carrier,
            "gci": self.gci,
            "pci": self.pci,
            "channel": self.channel,
            "rat": self.rat,
            "rsrp_dbm": self.rsrp_dbm,
            "rsrq_db": self.rsrq_db,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MeasResult":
        return cls(**payload)


@dataclass(frozen=True)
class MeasurementReport(Message):
    """Measurement Report: the uplink message that precedes a handoff.

    The paper gauges "the last event is decisive because all the
    handoffs happen immediately (within 80-230 ms) once the last
    measurement report is sent" — handoff-instance extraction keys on
    exactly this message.
    """

    TYPE_CODE = 0x11

    event: str = "A3"
    metric: str = "rsrp"
    serving: MeasResult = field(default_factory=MeasResult)
    neighbors: tuple[MeasResult, ...] = ()

    def to_payload(self) -> dict:
        return {
            "event": self.event,
            "metric": self.metric,
            "serving": self.serving.to_payload(),
            "neighbors": [n.to_payload() for n in self.neighbors],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MeasurementReport":
        return cls(
            event=payload["event"],
            metric=payload["metric"],
            serving=MeasResult.from_payload(payload["serving"]),
            neighbors=tuple(MeasResult.from_payload(d) for d in payload["neighbors"]),
        )


@dataclass(frozen=True)
class LegacySystemInfo(Message):
    """System information of a legacy (non-LTE) serving cell."""

    TYPE_CODE = 0x20

    carrier: str = ""
    gci: int = 0
    channel: int = 0
    rat: str = "UMTS"
    city: str = ""
    fields: dict = field(default_factory=dict)

    @classmethod
    def from_config(
        cls, carrier: str, gci: int, channel: int, rat: RAT, config: LegacyCellConfig, city: str = ""
    ) -> "LegacySystemInfo":
        """Wrap a legacy config object into a broadcastable message."""
        values = {}
        for name, value in config.parameter_samples():
            values[name] = value
        return cls(carrier=carrier, gci=gci, channel=channel, rat=rat.value, city=city, fields=values)

    def to_config(self) -> LegacyCellConfig:
        """Rebuild the typed config object from the broadcast fields."""
        config_type = LEGACY_CONFIG_TYPES[RAT(self.rat)]
        kwargs = dict(self.fields)
        for key, value in kwargs.items():
            if isinstance(value, list):
                kwargs[key] = tuple(value)
        return config_type(**kwargs)

    @property
    def cell_id(self) -> CellId:
        return CellId(self.carrier, self.gci)

    def to_payload(self) -> dict:
        return {
            "carrier": self.carrier,
            "gci": self.gci,
            "channel": self.channel,
            "rat": self.rat,
            "city": self.city,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LegacySystemInfo":
        return cls(**payload)


@dataclass(frozen=True)
class PhyServingMeas(Message):
    """Periodic PHY-layer serving-cell measurement record.

    MobileInsight exposes the modem's connected/idle-mode measurement
    logs alongside RRC messages; MMLab uses them to know the serving
    cell's radio quality before and after each handoff (Fig. 6/10).
    The simulated modem emits one of these on a fixed cadence.
    """

    TYPE_CODE = 0x21

    carrier: str = ""
    gci: int = 0
    channel: int = 0
    rat: str = "LTE"
    rsrp_dbm: float = -140.0
    rsrq_db: float = -19.5
    sinr_db: float = -10.0
    rrc_connected: bool = False

    @property
    def cell_id(self) -> CellId:
        return CellId(self.carrier, self.gci)

    def to_payload(self) -> dict:
        return {
            "carrier": self.carrier,
            "gci": self.gci,
            "channel": self.channel,
            "rat": self.rat,
            "rsrp_dbm": self.rsrp_dbm,
            "rsrq_db": self.rsrq_db,
            "sinr_db": self.sinr_db,
            "rrc_connected": self.rrc_connected,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PhyServingMeas":
        return cls(**payload)


#: Registry used by the codec: type code -> message class.
MESSAGE_TYPES: dict[int, type[Message]] = {
    cls.TYPE_CODE: cls
    for cls in (
        Sib1, Sib3, Sib4, Sib5, Sib6, Sib7, Sib8,
        RrcConnectionReconfiguration, MeasurementReport, MeasResult,
        MobilityControlInfo, LegacySystemInfo, PhyServingMeas,
    )
}
