"""Signaling-message substrate.

Cellular configurations reach a phone inside signaling messages: System
Information Blocks broadcast on the air, RRC Connection Reconfiguration
carrying a measConfig, Measurement Reports going back up.  MMLab's whole
premise (Section 3) is that a device can crawl configurations by parsing
these messages — so this package implements the messages, a binary codec
for them, the modem "diag" log format the collector records, and the
broadcast scheduling that decides which SIBs a camped device hears.
"""

from repro.rrc.messages import (
    Message,
    Sib1,
    Sib3,
    Sib4,
    Sib5,
    Sib6,
    Sib7,
    Sib8,
    RrcConnectionReconfiguration,
    MeasurementReport,
    MeasResult,
    MobilityControlInfo,
    LegacySystemInfo,
    PhyServingMeas,
)
from repro.rrc.codec import encode_message, decode_message, CodecError
from repro.rrc.diag import DiagRecord, DiagWriter, DiagReader, DiagError
from repro.rrc.broadcast import ConfigServer

__all__ = [
    "Message",
    "Sib1",
    "Sib3",
    "Sib4",
    "Sib5",
    "Sib6",
    "Sib7",
    "Sib8",
    "RrcConnectionReconfiguration",
    "MeasurementReport",
    "MeasResult",
    "MobilityControlInfo",
    "LegacySystemInfo",
    "PhyServingMeas",
    "encode_message",
    "decode_message",
    "CodecError",
    "DiagRecord",
    "DiagWriter",
    "DiagReader",
    "DiagError",
    "ConfigServer",
]
