"""Modem diag log format.

MMLab (via MobileInsight) reads signaling messages from the baseband's
diagnostic interface on rooted Android phones.  We reproduce the shape
of that interface as a binary record log: the simulated modem appends
records, the collector stores the file, and the crawler parses it back
— configurations are only ever learned *through this format*, never by
peeking at simulator objects.

Record layout (little-endian)::

    magic     2 bytes   0xD1A6
    length    4 bytes   payload byte count
    timestamp 8 bytes   milliseconds since the trace epoch
    checksum  2 bytes   sum of payload bytes mod 65536
    payload   N bytes   one encoded signaling message

A reader validates magic and checksum per record; corruption raises
:class:`DiagError` with the record index for debuggability.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator

from repro.rrc import messages as msg
from repro.rrc.codec import decode_message, encode_message

_MAGIC = 0xD1A6
_HEADER = struct.Struct("<HIqH")


class DiagError(ValueError):
    """Raised when a diag log is corrupt or truncated."""


@dataclass(frozen=True)
class DiagRecord:
    """One parsed diag record: when the modem saw which message."""

    timestamp_ms: int
    message: msg.Message


class DiagWriter:
    """Appends signaling messages to a binary diag log.

    Works over any binary stream; :meth:`in_memory` gives a writer
    backed by a fresh buffer, which the simulation uses per drive.
    """

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        self.records_written = 0

    @classmethod
    def in_memory(cls) -> "DiagWriter":
        return cls(io.BytesIO())

    def write(self, timestamp_ms: int, message: msg.Message) -> None:
        """Append one record."""
        payload = encode_message(message)
        checksum = sum(payload) & 0xFFFF
        self._stream.write(_HEADER.pack(_MAGIC, len(payload), int(timestamp_ms), checksum))
        self._stream.write(payload)
        self.records_written += 1

    def getvalue(self) -> bytes:
        """The log bytes so far (in-memory writers only)."""
        if not isinstance(self._stream, io.BytesIO):
            raise TypeError("getvalue() requires an in-memory writer")
        return self._stream.getvalue()


class DiagReader:
    """Parses a binary diag log back into :class:`DiagRecord` items."""

    def __init__(self, data: bytes):
        self._data = data

    @classmethod
    def from_file(cls, path) -> "DiagReader":
        with open(path, "rb") as f:
            return cls(f.read())

    def __iter__(self) -> Iterator[DiagRecord]:
        data = self._data
        pos = 0
        index = 0
        while pos < len(data):
            if pos + _HEADER.size > len(data):
                raise DiagError(f"record {index}: truncated header at byte {pos}")
            magic, length, timestamp, checksum = _HEADER.unpack_from(data, pos)
            if magic != _MAGIC:
                raise DiagError(f"record {index}: bad magic {magic:#x} at byte {pos}")
            pos += _HEADER.size
            if pos + length > len(data):
                raise DiagError(f"record {index}: truncated payload")
            payload = data[pos : pos + length]
            pos += length
            if sum(payload) & 0xFFFF != checksum:
                raise DiagError(f"record {index}: checksum mismatch")
            message = decode_message(payload)
            yield DiagRecord(timestamp_ms=timestamp, message=message)
            index += 1

    def records(self) -> list[DiagRecord]:
        """All records as a list (convenience for small logs)."""
        return list(self)
