"""Per-cell lint rules (codes HC001-HC012).

These rules audit one cell's configuration in isolation: standardized
domains, the event-policy pathologies of paper Section 4, measurement-
efficiency problems of Section 4.2.2 and the symbolic ping-pong algebra
of :mod:`repro.lint.pingpong`.
"""

from __future__ import annotations

from typing import Iterator

from repro.cellnet.rat import RAT
from repro.config.events import EventConfig, EventType
from repro.config.legacy import validate_legacy
from repro.core.crawler import CellConfigSnapshot
from repro.lint.pingpong import analyze_a3, analyze_a5
from repro.lint.rules import Issue, rule

#: The A5 "no requirement" serving threshold (best RSRP = -44 dBm).
A5_NO_SERVING_REQUIREMENT = -44.0

#: Gap above which intra-freq measurement is considered premature
#: (Fig. 11: the paper finds >30 dB gaps in ~95% of cells and calls the
#: battery cost out explicitly).
PREMATURE_GAP_DB = 30.0

#: Physical reporting ranges per metric (TS 36.133 mapping ranges).
_METRIC_RANGE = {"rsrp": (-140.0, -44.0), "rsrq": (-20.0, -3.0)}


def _armed_events(snapshot: CellConfigSnapshot) -> tuple[EventConfig, ...]:
    if snapshot.meas_config is not None:
        return snapshot.meas_config.events
    return ()


@rule("HC001", "domain-violation", scope="cell", severity="problem",
      summary="A configured value sits outside its standardized domain")
def domain_violation(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    problems: list[str] = []
    if snapshot.lte_config is not None:
        problems += snapshot.lte_config.validate()
    if snapshot.legacy_config is not None:
        problems += validate_legacy(snapshot.legacy_config, RAT(snapshot.rat))
    for problem in problems:
        yield Issue(f"value outside standardized domain: {problem}")


@rule("HC002", "a3-negative-offset", scope="cell", severity="warning",
      summary="A3 offset is negative, deferring or misdirecting handoffs")
def a3_negative_offset(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    for event in _armed_events(snapshot):
        if event.event is EventType.A3 and event.offset < 0:
            yield Issue(
                f"A3 offset {event.offset:g} dB is negative: handoffs may "
                "trigger toward weaker cells or be deferred"
            )


@rule("HC003", "a5-no-serving-requirement", scope="cell", severity="info",
      summary="A5 serving threshold -44 dBm places no serving requirement")
def a5_no_serving_requirement(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    for event in _armed_events(snapshot):
        if (
            event.event is EventType.A5
            and event.metric == "rsrp"
            and event.threshold1 == A5_NO_SERVING_REQUIREMENT
        ):
            yield Issue(
                "A5 serving threshold -44 dBm places no requirement on the "
                "serving cell: early handoffs possible, weaker targets not "
                "excluded"
            )


@rule("HC004", "a5-inverted-thresholds", scope="cell", severity="warning",
      summary="A5 candidate threshold below the serving threshold")
def a5_inverted_thresholds(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    for event in _armed_events(snapshot):
        if (
            event.event is EventType.A5
            and event.threshold1 is not None
            and event.threshold2 is not None
            and event.threshold2 < event.threshold1
        ):
            yield Issue(
                f"A5 candidate threshold ({event.threshold2:g}) below "
                f"serving threshold ({event.threshold1:g}): handoffs to "
                "weaker cells are permitted"
            )


@rule("HC005", "nonintra-above-intra", scope="cell", severity="problem",
      summary="Theta_nonintra exceeds Theta_intra")
def nonintra_above_intra(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    config = snapshot.lte_config
    if config is None:
        return
    serving = config.serving
    if serving.s_non_intra_search_p > serving.s_intra_search_p:
        yield Issue(
            "Theta_nonintra exceeds Theta_intra: non-intra-frequency "
            "measurement would start before intra-frequency"
        )


@rule("HC006", "premature-intra-measurement", scope="cell", severity="warning",
      summary="Theta_intra sits far above the decision threshold (battery)")
def premature_intra_measurement(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    config = snapshot.lte_config
    if config is None:
        return
    serving = config.serving
    gap = serving.s_intra_search_p - serving.thresh_serving_low_p
    if gap > PREMATURE_GAP_DB:
        yield Issue(
            f"Theta_intra sits {gap:g} dB above the decision threshold: "
            "intra-freq measurements run while no handoff can trigger "
            "(battery drain)"
        )


@rule("HC007", "late-nonintra-measurement", scope="cell", severity="warning",
      summary="Theta_nonintra below the decision threshold (late measurement)")
def late_nonintra_measurement(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    config = snapshot.lte_config
    if config is None:
        return
    serving = config.serving
    if serving.s_non_intra_search_p < serving.thresh_serving_low_p:
        yield Issue(
            "Theta_nonintra below the decision threshold: non-intra "
            "measurements may start too late to assist the handoff"
        )


@rule("HC008", "smeasure-shadows-event", scope="cell", severity="info",
      summary="s-Measure gates neighbor measurement below an event's "
              "serving threshold")
def smeasure_shadows_event(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    meas = snapshot.meas_config
    if meas is None:
        return
    for event in _armed_events(snapshot):
        if (
            event.event in (EventType.A5, EventType.B2)
            and event.metric == "rsrp"
            and event.threshold1 is not None
            and event.threshold1 > meas.s_measure
        ):
            yield Issue(
                f"{event.event.value} serving threshold "
                f"{event.threshold1:g} dBm sits above s-Measure "
                f"{meas.s_measure:g} dBm: neighbors are not measured until "
                f"the serving cell drops below {meas.s_measure:g} dBm, so "
                "the event is shadowed and fires later than configured"
            )


@rule("HC009", "a3-ping-pong", scope="cell", severity="warning",
      summary="A3 offset+hysteresis algebra permits handoff ping-pong")
def a3_ping_pong(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    for event in _armed_events(snapshot):
        risk = analyze_a3(event)
        if risk is not None:
            yield Issue(
                f"A3 ping-pong: {risk.reason}",
                severity="problem" if risk.guaranteed else None,
            )


@rule("HC010", "a5-ping-pong", scope="cell", severity="warning",
      summary="Permissive A5 pair leaves only the TTT between handoff loops")
def a5_ping_pong(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    for event in _armed_events(snapshot):
        risk = analyze_a5(event)
        if risk is not None:
            yield Issue(f"A5 ping-pong: {risk.reason}")


@rule("HC011", "dead-event", scope="cell", severity="warning",
      summary="An armed event's entry condition is unsatisfiable")
def dead_event(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    for event in _armed_events(snapshot):
        low, high = _METRIC_RANGE.get(event.metric, _METRIC_RANGE["rsrp"])
        hys = event.hysteresis
        reason = None
        if event.event is EventType.A1 and event.threshold1 is not None:
            if event.threshold1 >= high - hys:
                reason = (
                    f"A1 needs serving - {hys:g} > {event.threshold1:g}, "
                    f"beyond the {event.metric} ceiling {high:g}"
                )
        elif event.event is EventType.A2 and event.threshold1 is not None:
            if event.threshold1 <= low + hys:
                reason = (
                    f"A2 needs serving + {hys:g} < {event.threshold1:g}, "
                    f"below the {event.metric} floor {low:g}"
                )
        elif event.event in (EventType.A4, EventType.B1) and event.threshold1 is not None:
            if event.threshold1 >= high - hys:
                reason = (
                    f"{event.event.value} needs a neighbor above "
                    f"{event.threshold1:g}, beyond the {event.metric} "
                    f"ceiling {high:g}"
                )
        elif event.event in (EventType.A5, EventType.B2):
            if event.threshold1 is not None and event.threshold1 <= low + hys:
                reason = (
                    f"{event.event.value} serving clause needs serving + "
                    f"{hys:g} < {event.threshold1:g}, below the "
                    f"{event.metric} floor {low:g}"
                )
            elif event.threshold2 is not None and event.threshold2 >= high - hys:
                reason = (
                    f"{event.event.value} neighbor clause needs a neighbor "
                    f"above {event.threshold2:g}, beyond the "
                    f"{event.metric} ceiling {high:g}"
                )
        if reason is not None:
            yield Issue(f"dead event, can never fire: {reason}")


@rule("HC012", "duplicate-event", scope="cell", severity="info",
      summary="Two armed events share a type and metric (one is redundant)")
def duplicate_event(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    seen: set[tuple[str, str]] = set()
    for event in _armed_events(snapshot):
        key = (event.event.value, event.metric)
        if key in seen:
            yield Issue(
                f"{event.event.value}/{event.metric} is armed more than "
                "once: the stricter instance is shadowed by the looser one"
            )
        seen.add(key)
