"""Baseline suppression files.

A baseline records the findings a network *knowingly* carries — in this
repository, the misconfigurations the synthetic carrier profiles
reproduce from the paper on purpose (negative T-Mobile A3 offsets,
AT&T's permissive -44 dBm A5 pairs, priority conflicts, ...).  Auditing
against a baseline surfaces only *new* findings, which is how a config
linter stays useful on a fleet that will never be finding-free.

Format (JSON, versioned)::

    {
      "version": 1,
      "tool": "repro.lint",
      "codes": {"HC002": "a3-negative-offset", ...},
      "suppressions": [
        {"fingerprint": "HC002:T:17:1975:", "code": "HC002",
         "message": "A3 offset -1 dB is negative: ..."},
        ...
      ]
    }

Suppression is keyed on :attr:`Finding.fingerprint` (code + cell +
channel + subject, *not* the message), so rewording a rule or changing a
numeric detail does not invalidate a baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

BASELINE_VERSION = 1
BASELINE_TOOL = "repro.lint"


@dataclass
class Baseline:
    """A set of suppressed finding fingerprints."""

    fingerprints: set[str] = field(default_factory=set)
    #: rule code -> rule name, kept for human readers of the file.
    codes: dict[str, str] = field(default_factory=dict)
    #: fingerprint -> exemplar message at capture time (documentation).
    messages: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """Capture a baseline that suppresses exactly ``findings``."""
        baseline = cls()
        for finding in findings:
            baseline.fingerprints.add(finding.fingerprint)
            baseline.codes[finding.code] = finding.name
            baseline.messages.setdefault(finding.fingerprint, finding.message)
        return baseline

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file, validating its version."""
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path} (expected {BASELINE_VERSION})"
            )
        baseline = cls(codes=dict(payload.get("codes", {})))
        for entry in payload.get("suppressions", []):
            fingerprint = entry["fingerprint"]
            baseline.fingerprints.add(fingerprint)
            if "message" in entry:
                baseline.messages[fingerprint] = entry["message"]
        return baseline

    def save(self, path: str | Path) -> None:
        """Write the baseline file (sorted, diff-friendly)."""
        payload = {
            "version": BASELINE_VERSION,
            "tool": BASELINE_TOOL,
            "codes": dict(sorted(self.codes.items())),
            "suppressions": [
                {
                    "fingerprint": fingerprint,
                    "code": fingerprint.split(":", 1)[0],
                    "message": self.messages.get(fingerprint, ""),
                }
                for fingerprint in sorted(self.fingerprints)
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition ``findings`` into (new, suppressed)."""
        new: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            if finding.fingerprint in self.fingerprints:
                suppressed.append(finding)
            else:
                new.append(finding)
        return new, suppressed

    def unused(
        self,
        findings: list[Finding],
        rules_run: tuple[str, ...] | None = None,
    ) -> set[str]:
        """Suppressions that matched nothing (stale baseline entries).

        When ``rules_run`` is given, only suppressions for rules that
        actually executed are considered: a suppression for a rule the
        audit never ran (filtered out with ``--rules``, or a graph rule
        on a non-``--graph`` run) is unverifiable, not stale.
        """
        seen = {finding.fingerprint for finding in findings}
        stale = self.fingerprints - seen
        if rules_run is not None:
            ran = set(rules_run)
            stale = {fp for fp in stale if fp.split(":", 1)[0] in ran}
        return stale

    def prune(
        self,
        findings: list[Finding],
        rules_run: tuple[str, ...] | None = None,
    ) -> set[str]:
        """Drop suppressions that no audit finding matches, in place.

        Returns the pruned fingerprints.  ``rules_run`` scopes the
        staleness test exactly as in :meth:`unused` — pruning after a
        partial audit must not discard suppressions the audit could
        never have re-confirmed.  The ``codes`` legend is rebuilt from
        the surviving suppressions so the saved file only documents
        rules it still mentions.
        """
        stale = self.unused(findings, rules_run)
        self.fingerprints -= stale
        for fingerprint in stale:
            self.messages.pop(fingerprint, None)
        surviving_codes = {fp.split(":", 1)[0] for fp in self.fingerprints}
        self.codes = {
            code: name for code, name in self.codes.items()
            if code in surviving_codes
        }
        return stale

    def __len__(self) -> int:
        return len(self.fingerprints)
