"""Finding: the unit result of every lint rule.

One dataclass serves the whole static-analysis stack: per-cell rules,
cross-cell network rules, the legacy ``repro.core.analysis.verification``
shims and all three reporters.  Findings are plain frozen data so they
can be printed, counted, serialized and asserted on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import asdict, dataclass

#: Severity levels, weakest first.  "problem" marks configurations the
#: paper ties to concrete harm (handoff loops, unreachable layers);
#: "warning" marks questionable-but-survivable settings; "info" marks
#: notable practices worth surfacing.
SEVERITIES = ("info", "warning", "problem")

#: The one severity table every consumer maps through.  Reporters,
#: exit-code gates and tests all key off this — text output prints the
#: severity name, JSON carries it verbatim, SARIF uses the ``sarif``
#: column, and ``--fail-on`` thresholds compare the ``rank`` column.
SEVERITY_RANK: dict[str, int] = {s: i for i, s in enumerate(SEVERITIES)}

#: SARIF 2.1.0 ``level`` per severity (the ``sarif`` column of the
#: shared table).  Re-exported by :mod:`repro.lint.report` as
#: ``SARIF_LEVELS`` for backwards compatibility.
SARIF_LEVELS = {"info": "note", "warning": "warning", "problem": "error"}

#: Valid ``--fail-on`` gate values: a minimum severity, "any" (fail on
#: any finding at all) or "never" (always exit 0; report-only mode).
FAIL_ON_CHOICES = ("never", "any") + SEVERITIES


def exit_code(findings: list["Finding"], fail_on: str) -> int:
    """The process exit code one set of findings maps to.

    The single gate shared by ``repro lint``, ``repro lint --diff`` and
    CI: 0 when the findings pass the ``fail_on`` threshold, 1 otherwise.
    """
    if fail_on not in FAIL_ON_CHOICES:
        raise ValueError(f"unknown fail-on threshold {fail_on!r}")
    if fail_on == "never":
        return 0
    if fail_on == "any":
        return 1 if findings else 0
    floor = SEVERITY_RANK[fail_on]
    return 1 if any(SEVERITY_RANK[f.severity] >= floor for f in findings) else 0


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding.

    Attributes:
        code: Stable machine-readable rule code (``HC001``...).
        severity: One of :data:`SEVERITIES`.
        carrier: Carrier the finding is about.
        gci: Cell the finding is about (-1 = network level).
        message: Human-readable explanation with the offending values.
        name: Human-readable rule slug (``a3-negative-offset``).
        channel: Channel the finding is about (-1 = not channel-bound).
        subject: Extra discriminator for network findings that concern
            more than one channel (e.g. ``"850->1975"``).
    """

    code: str
    severity: str
    carrier: str
    gci: int
    message: str
    name: str = ""
    channel: int = -1
    subject: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        """Stable identity used by baseline suppression.

        Deliberately excludes the message: rewording a rule must not
        invalidate existing baselines.
        """
        return f"{self.code}:{self.carrier}:{self.gci}:{self.channel}:{self.subject}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (adds the fingerprint)."""
        payload: dict[str, object] = asdict(self)
        payload["fingerprint"] = self.fingerprint
        return payload


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: carrier, cell, code, subject."""
    return sorted(
        findings,
        key=lambda f: (f.carrier, f.gci, f.channel, f.code, f.subject, f.message),
    )


def summarize(findings: list[Finding]) -> dict[str, int]:
    """Finding counts per code, for report tables."""
    counts: dict[str, int] = defaultdict(int)
    for finding in findings:
        counts[finding.code] += 1
    return dict(sorted(counts.items()))


def count_by_severity(findings: list[Finding]) -> dict[str, int]:
    """Finding counts per severity ("problem" first)."""
    counts = {severity: 0 for severity in reversed(SEVERITIES)}
    for finding in findings:
        counts[finding.severity] += 1
    return counts
