"""The rule framework: protocol, registry and the ``@rule`` decorator.

A lint rule is a pure function over crawled configuration state:

* **cell** rules see one :class:`~repro.core.crawler.CellConfigSnapshot`
  at a time and catch local misconfigurations (bad domains, inverted
  thresholds, ping-pong-prone event algebra);
* **network** rules see every snapshot of an audit at once and catch
  emergent problems no single cell exhibits (priority preference loops,
  inter-channel threshold gaps, conflicting priorities on one EARFCN);
* **graph** rules run per connected component of the symbolic handoff-
  policy graph (:mod:`repro.lint.graph`); the engine routes them through
  the :class:`~repro.lint.graph.GraphAnalyzer` rather than the snapshot
  pass, so they can shard over pipeline workers and cache per-component
  results;
* **drift** rules see a :class:`~repro.lint.diff.DriftContext` — two
  captures plus the semantic changes between them — and catch
  *regressions*: problems a reconfiguration introduced that a
  single-capture audit cannot attribute (:mod:`repro.lint.drift_rules`).
  Only :func:`repro.lint.diff.diff_lint` runs them;
* **coverage** rules run per cell over the signal-space fire-region
  partition computed by :mod:`repro.lint.coverage`; the engine routes
  them through the :class:`~repro.lint.coverage.CoverageAnalyzer` (which
  shards per cell and synthesizes a replayable
  :class:`~repro.lint.witness.CoverageWitness` for every finding) rather
  than the snapshot pass.

Rules yield lightweight :class:`Issue` drafts; the engine stamps them
into full :class:`~repro.lint.findings.Finding` records with the rule's
stable code, slug and default severity.  Codes are append-only: a code
is never reused for a different check, which is what makes baselines
and SARIF dashboards stable across releases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Protocol, runtime_checkable

from repro.core.crawler import CellConfigSnapshot
from repro.lint.findings import SEVERITIES, Finding

#: Rule scopes.
SCOPES = ("cell", "network", "graph", "drift", "coverage")


@dataclass(frozen=True)
class Issue:
    """One draft finding yielded by a rule body.

    Every field is optional; the engine fills carrier/gci/channel from
    the snapshot for cell rules and severity from the rule default.
    """

    message: str
    severity: str | None = None
    carrier: str | None = None
    gci: int | None = None
    channel: int | None = None
    subject: str = ""


@runtime_checkable
class Rule(Protocol):
    """What the engine requires of a rule (satisfied by ``@rule``)."""

    code: str
    name: str
    severity: str
    scope: str
    summary: str

    def check(
        self, snapshots: list[CellConfigSnapshot]
    ) -> Iterator[Finding]: ...


@dataclass(frozen=True)
class RegisteredRule:
    """A registered rule: metadata plus the wrapped check function."""

    code: str
    name: str
    severity: str
    scope: str
    summary: str
    func: Callable[..., Iterator[Issue]] = field(compare=False)

    def check(self, snapshots: list[CellConfigSnapshot]) -> Iterator[Finding]:
        """Run the rule over an audit's snapshots, yielding findings.

        Graph-scope rules do not run here — they execute per component
        inside :func:`repro.lint.graph.analyze_component` — and neither
        do drift-scope rules, which only
        :func:`repro.lint.diff.diff_lint` evaluates.
        """
        if self.scope == "cell":
            for snapshot in snapshots:
                for issue in self.func(snapshot):
                    yield self._stamp(issue, snapshot)
        elif self.scope == "network":
            for issue in self.func(snapshots):
                yield self._stamp(issue, None)

    def stamp(self, issue: Issue) -> Finding:
        """Stamp a standalone issue (graph rules) into a full finding."""
        return self._stamp(issue, None)

    def _stamp(self, issue: Issue, snapshot: CellConfigSnapshot | None) -> Finding:
        carrier = issue.carrier if issue.carrier is not None else (
            snapshot.carrier if snapshot is not None else ""
        )
        gci = issue.gci if issue.gci is not None else (
            snapshot.gci if snapshot is not None else -1
        )
        channel = issue.channel if issue.channel is not None else (
            snapshot.channel if snapshot is not None else -1
        )
        return Finding(
            code=self.code,
            severity=issue.severity or self.severity,
            carrier=carrier,
            gci=gci,
            message=issue.message,
            name=self.name,
            channel=channel,
            subject=issue.subject,
        )


_REGISTRY: dict[str, RegisteredRule] = {}


def rule(
    code: str, name: str, *, scope: str, severity: str, summary: str
) -> Callable[[Callable[..., Iterator[Issue]]], RegisteredRule]:
    """Register a check function as a lint rule.

    Args:
        code: Stable ``HCnnn`` code (1xx = network scope, 2xx = graph
            scope, 3xx = drift scope, 4xx = coverage scope by
            convention).
        name: Human-readable kebab-case slug.
        scope: "cell" (function takes one snapshot), "network"
            (function takes the full snapshot list), "graph" (function
            takes one policy-graph component), "drift" (function takes
            a :class:`~repro.lint.diff.DriftContext`) or "coverage"
            (function takes one snapshot; executed per cell by the
            :class:`~repro.lint.coverage.CoverageAnalyzer`).
        severity: Default severity; individual issues may override.
        summary: One-line description used by reporters and ``--help``.
    """
    if scope not in SCOPES:
        raise ValueError(f"unknown rule scope {scope!r}")
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def register(func: Callable[..., Iterator[Issue]]) -> RegisteredRule:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code}")
        registered = RegisteredRule(
            code=code, name=name, severity=severity, scope=scope,
            summary=summary, func=func,
        )
        _REGISTRY[code] = registered
        return registered

    return register


def all_rules() -> tuple[RegisteredRule, ...]:
    """Every registered rule, ordered by code."""
    _ensure_loaded()
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> RegisteredRule:
    """Look a rule up by its stable code."""
    _ensure_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}") from None


def select_rules(codes: Iterable[str] | None = None) -> tuple[RegisteredRule, ...]:
    """Resolve an optional code filter to concrete rules."""
    if codes is None:
        return all_rules()
    return tuple(get_rule(code) for code in codes)


def _ensure_loaded() -> None:
    """Import the built-in rule modules (registration side effect)."""
    from repro.lint import (  # noqa: F401
        cell_rules,
        coverage,
        drift_rules,
        graph,
        network_rules,
    )
