"""Cross-cell network lint rules (codes HC101-HC104).

These rules only make sense over a *population* of snapshots: they catch
the emergent misconfigurations behind the paper's instability case
studies (Section 5.4.1) — channels carrying multiple priorities,
cells disagreeing about a layer's priority, priority preference cycles
between channels, and inter-channel threshold gaps that bounce idle
devices between layers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.core.crawler import CellConfigSnapshot
from repro.lint.rules import Issue, rule


def _lte_snapshots(snapshots: list[CellConfigSnapshot]) -> list[CellConfigSnapshot]:
    return [s for s in snapshots if s.lte_config is not None]


@rule("HC101", "priority-conflict", scope="network", severity="warning",
      summary="One EARFCN observed with multiple serving priorities")
def priority_conflict(snapshots: list[CellConfigSnapshot]) -> Iterator[Issue]:
    per_channel: dict[tuple[str, int], set[int]] = defaultdict(set)
    for snapshot in _lte_snapshots(snapshots):
        per_channel[(snapshot.carrier, snapshot.channel)].add(
            snapshot.lte_config.serving.cell_reselection_priority
        )
    for (carrier, channel), priorities in sorted(per_channel.items()):
        if len(priorities) > 1:
            yield Issue(
                f"channel {channel} carries multiple priorities "
                f"{sorted(priorities)}: prone to inconsistent handoffs",
                carrier=carrier,
                channel=channel,
            )


@rule("HC102", "layer-priority-disagreement", scope="network", severity="warning",
      summary="Cells disagree about an inter-freq layer's priority")
def layer_priority_disagreement(snapshots: list[CellConfigSnapshot]) -> Iterator[Issue]:
    per_target: dict[tuple[str, int], set[int]] = defaultdict(set)
    for snapshot in _lte_snapshots(snapshots):
        for layer in snapshot.lte_config.inter_freq_layers:
            per_target[(snapshot.carrier, layer.dl_carrier_freq)].add(
                layer.cell_reselection_priority
            )
    for (carrier, channel), priorities in sorted(per_target.items()):
        if len(priorities) > 1:
            yield Issue(
                f"SIB5 entries assign channel {channel} conflicting "
                f"priorities {sorted(priorities)}: reselection order "
                "depends on which cell a device camps on",
                carrier=carrier,
                channel=channel,
            )


def _strongly_connected_components(
    graph: dict[int, set[int]]
) -> list[list[int]]:
    """Iterative Tarjan SCC over an adjacency-set graph (deterministic)."""
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0
    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbors = work[-1]
            advanced = False
            for nxt in neighbors:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


@rule("HC103", "priority-loop", scope="network", severity="problem",
      summary="Priority preference cycle between channels (handoff loops)")
def priority_loop(snapshots: list[CellConfigSnapshot]) -> Iterator[Issue]:
    # Edge ch_a -> ch_b when some cell on ch_a assigns ch_b a strictly
    # higher priority than its own: the device on ch_a defers to ch_b.
    # A cycle means two (or more) channels each defer to the other — a
    # device can bounce between them indefinitely (paper Section 5.4.1).
    graphs: dict[str, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
    for snapshot in _lte_snapshots(snapshots):
        own = snapshot.lte_config.serving.cell_reselection_priority
        for layer in snapshot.lte_config.inter_freq_layers:
            if layer.cell_reselection_priority > own:
                graphs[snapshot.carrier][snapshot.channel].add(layer.dl_carrier_freq)
    for carrier, graph in sorted(graphs.items()):
        for component in _strongly_connected_components(dict(graph)):
            if len(component) < 2:
                continue
            yield Issue(
                "priority preference loop between channels "
                f"{' -> '.join(str(c) for c in component)} -> {component[0]}: "
                "devices may handoff in circles",
                carrier=carrier,
                subject="<->".join(str(c) for c in component),
            )


@rule("HC104", "reselection-gap", scope="network", severity="warning",
      summary="Inter-channel threshold gap bounces devices between layers")
def reselection_gap(snapshots: list[CellConfigSnapshot]) -> Iterator[Issue]:
    # A device leaves channel X downward (to lower-priority Y) once X
    # drops below X-cells' thresh_serving_low; from Y it climbs back the
    # moment X exceeds the thresh_x_high that Y-cells configure for X.
    # If that return threshold sits *below* the leave threshold (both
    # are relative levels against comparable floors), the two regions
    # overlap and idle devices bounce X -> Y -> X.
    leave: dict[tuple[str, int, int], float] = {}
    ret: dict[tuple[str, int, int], float] = {}
    for snapshot in _lte_snapshots(snapshots):
        config = snapshot.lte_config
        own = config.serving.cell_reselection_priority
        for layer in config.inter_freq_layers:
            key = (snapshot.carrier, snapshot.channel, layer.dl_carrier_freq)
            if layer.cell_reselection_priority < own:
                threshold = config.serving.thresh_serving_low_p
                leave[key] = max(leave.get(key, threshold), threshold)
            elif layer.cell_reselection_priority > own:
                threshold = layer.thresh_x_high_p
                ret[key] = min(ret.get(key, threshold), threshold)
    for (carrier, x, y), leave_at in sorted(leave.items()):
        return_at = ret.get((carrier, y, x))
        if return_at is not None and return_at < leave_at:
            yield Issue(
                f"threshold gap between channels {x} and {y}: devices "
                f"leave {x} below serving-low {leave_at:g} dB but return "
                f"from {y} once {x} exceeds thresh-x-high {return_at:g} dB "
                f"({leave_at - return_at:g} dB overlap invites reselection "
                "bouncing)",
                carrier=carrier,
                channel=x,
                subject=f"{x}->{y}",
            )
