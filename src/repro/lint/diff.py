"""The differential configuration-drift analyzer.

Two halves:

* :func:`diff_config_snapshots` — a *semantic* differ between two
  :class:`~repro.lint.snapshot.ConfigSnapshot` captures.  Instead of raw
  JSON deltas it emits typed :class:`ConfigChange` records over
  path-qualified parameters (``serving.q_hyst``,
  ``lte-layer[1975].thresh_x_high_p``, ``meas.event[A5/rsrp].threshold1``):
  parameter changed, cell or layer added/retired, priority reshuffle,
  measurement-profile migration.  Cell diffs shard over
  :mod:`repro.pipeline` work units and merge in canonical order, so the
  change list is byte-identical at any worker count.
* :func:`diff_lint` — the regression gate.  It audits both captures with
  every non-drift rule (sharing one
  :class:`~repro.lint.graph.GraphAnalyzer`, so the graph verifier
  re-runs only on components whose member configurations changed), runs
  the HC3xx drift rules over the :class:`DriftContext`, fingerprints the
  findings *introduced* between the captures, and blames each on the
  :class:`ConfigChange` that made it appear.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields
from typing import Sequence

from repro.config.events import EventConfig
from repro.core.crawler import CellConfigSnapshot
from repro.lint.baseline import Baseline
from repro.lint.findings import (
    Finding,
    count_by_severity,
    sort_findings,
    summarize,
)
from repro.lint.graph import GraphAnalyzer, GraphStats, snapshot_digest
from repro.lint.rules import RegisteredRule
from repro.lint.snapshot import ConfigSnapshot
from repro.pipeline import ExecutionBackend, WorkUnit, resolve_backend

#: Change kinds the differ classifies into (stable, append-only like
#: rule codes: reports and blame ids depend on them).
CHANGE_KINDS = (
    "cell-added",
    "cell-retired",
    "layer-added",
    "layer-retired",
    "parameter-changed",
    "priority-reshuffle",
    "profile-migration",
)

#: Path prefixes that denote a whole configured layer (SIB5/6/7/8
#: entry); appearing/disappearing wholesale is a layer add/retire, not a
#: pile of parameter changes.
_LAYER_PREFIXES = ("lte-layer[", "utra-layer[", "geran-layer[", "cdma-layer[")

#: Path prefix of one armed measurement event; the armed-event *set*
#: changing is a measurement-profile migration (MMLab-style patch
#: rollouts swap whole event profiles, paper Section 5.3).
_EVENT_PREFIX = "meas.event["


@dataclass(frozen=True)
class ConfigChange:
    """One typed, semantic difference between two captures.

    Attributes:
        kind: One of :data:`CHANGE_KINDS`.
        carrier / gci / channel / city: The cell the change is about
            (identity from the *new* capture when present there).
        parameter: Path-qualified parameter (or layer/event prefix for
            structural changes; empty for cell add/retire).
        old_value / new_value: Values before/after (None when absent).
        detail: Human-readable description of the change.
    """

    kind: str
    carrier: str
    gci: int
    channel: int
    city: str
    parameter: str = ""
    old_value: object = None
    new_value: object = None
    detail: str = ""

    @property
    def change_id(self) -> str:
        """Stable identity used for blame references in reports."""
        return f"{self.kind}:{self.carrier}:{self.gci}:{self.parameter}"

    def describe(self) -> str:
        """One-line rendering for text reports and blame lines."""
        where = f"{self.carrier}/{self.gci}"
        if self.kind in ("cell-added", "cell-retired"):
            return f"{self.kind} {where} ch{self.channel}"
        if self.kind in ("layer-added", "layer-retired"):
            return f"{self.kind} {where} {self.parameter}"
        return (
            f"{self.kind} {where} {self.parameter}: "
            f"{self.old_value!r} -> {self.new_value!r}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (values stringified via repr)."""
        return {
            "change_id": self.change_id,
            "kind": self.kind,
            "carrier": self.carrier,
            "gci": self.gci,
            "channel": self.channel,
            "city": self.city,
            "parameter": self.parameter,
            "old_value": None if self.old_value is None else repr(self.old_value),
            "new_value": None if self.new_value is None else repr(self.new_value),
            "detail": self.detail,
        }


# ---------------------------------------------------------------------------
# Path-qualified flattening


def _frozen(value: object) -> object:
    """Sequence values as tuples so flattened values compare/hash."""
    if isinstance(value, list):
        return tuple(value)
    return value


def _event_key(config: EventConfig) -> str:
    return f"{config.event.value}/{config.metric}"


def _claim(prefix: str, used: set[str]) -> str:
    """Disambiguate repeated structural prefixes (duplicate layers)."""
    candidate = prefix
    serial = 2
    while candidate in used:
        candidate = f"{prefix}#{serial}"
        serial += 1
    used.add(candidate)
    return candidate


def flatten_cell(snapshot: CellConfigSnapshot) -> dict[str, object]:
    """Flatten one cell's configuration into path-qualified parameters.

    Unlike the dataset builders' flat ``parameter_samples()`` (names
    repeat across layers), every path here is unique within the cell and
    *identity-qualified*: inter-frequency layers key on their target
    channel, events on ``type/metric`` — so "layer 1975's thresh_x_high_p
    changed" survives list reordering and layer insertion.
    """
    flat: dict[str, object] = {
        "identity.rat": snapshot.rat,
        "identity.channel": snapshot.channel,
        "identity.city": snapshot.city,
    }
    used: set[str] = set()
    lte = snapshot.lte_config
    if lte is not None:
        for name, value in lte.serving.parameter_samples():
            flat[f"serving.{name}"] = _frozen(value)
        for name, value in lte.intra_neighbors.parameter_samples():
            flat[f"intra.{name}"] = _frozen(value)
        for layer in lte.inter_freq_layers:
            prefix = _claim(f"lte-layer[{layer.dl_carrier_freq}]", used)
            for name, value in layer.parameter_samples():
                flat[f"{prefix}.{name}"] = _frozen(value)
        for utra in lte.utra_layers:
            prefix = _claim(f"utra-layer[{utra.carrier_freq}]", used)
            for name, value in utra.parameter_samples():
                flat[f"{prefix}.{name}"] = _frozen(value)
        for geran in lte.geran_layers:
            anchor = min(geran.carrier_freqs) if geran.carrier_freqs else 0
            prefix = _claim(f"geran-layer[{anchor}]", used)
            for name, value in geran.parameter_samples():
                flat[f"{prefix}.{name}"] = _frozen(value)
        for cdma in lte.cdma_layers:
            prefix = _claim(f"cdma-layer[{cdma.band_class}]", used)
            for name, value in cdma.parameter_samples():
                flat[f"{prefix}.{name}"] = _frozen(value)
        meas = snapshot.meas_config or lte.measurement
        flat["meas.s_measure"] = meas.s_measure
        for event in meas.events:
            prefix = _claim(f"{_EVENT_PREFIX}{_event_key(event)}]", used)
            for f in fields(event):
                if f.name in ("event", "metric"):
                    continue
                flat[f"{prefix}.{f.name}"] = _frozen(getattr(event, f.name))
        if meas.periodic is not None:
            for f in fields(meas.periodic):
                flat[f"meas.periodic.{f.name}"] = _frozen(
                    getattr(meas.periodic, f.name)
                )
    if snapshot.legacy_config is not None:
        for name, value in snapshot.legacy_config.parameter_samples():
            flat[f"legacy.{name}"] = _frozen(value)
    return flat


# ---------------------------------------------------------------------------
# Per-cell semantic diff (the sharded unit of work)


def _structural_prefix(path: str) -> str | None:
    """The layer/event prefix a path belongs to, if any."""
    if any(path.startswith(p) for p in _LAYER_PREFIXES + (_EVENT_PREFIX,)):
        return path.split("].", 1)[0] + "]"
    return None


def _is_priority_path(path: str) -> bool:
    leaf = path.rsplit(".", 1)[-1]
    return "priority" in leaf


def diff_cell(
    old: CellConfigSnapshot, new: CellConfigSnapshot
) -> tuple[ConfigChange, ...]:
    """Semantic changes between two observations of one cell."""
    if snapshot_digest(old) == snapshot_digest(new):
        return ()
    old_flat = flatten_cell(old)
    new_flat = flatten_cell(new)
    changes: list[ConfigChange] = []

    def change(kind: str, parameter: str, old_value: object,
               new_value: object, detail: str) -> None:
        changes.append(ConfigChange(
            kind=kind, carrier=new.carrier, gci=new.gci,
            channel=new.channel, city=new.city, parameter=parameter,
            old_value=old_value, new_value=new_value, detail=detail,
        ))

    old_paths = set(old_flat)
    new_paths = set(new_flat)
    # Structural prefixes present on only one side: whole layers or
    # armed events appeared/disappeared.
    old_prefixes = {p for p in map(_structural_prefix, old_paths) if p}
    new_prefixes = {p for p in map(_structural_prefix, new_paths) if p}
    handled: set[str] = set()
    for prefix in sorted(new_prefixes - old_prefixes):
        members = sorted(p for p in new_paths if p.startswith(prefix + "."))
        handled.update(members)
        if prefix.startswith(_EVENT_PREFIX):
            event = prefix[len(_EVENT_PREFIX):-1]
            change(
                "profile-migration", prefix, None, event,
                f"measurement profile armed event {event} "
                f"({len(members)} parameters)",
            )
        else:
            change(
                "layer-added", prefix, None, None,
                f"configured neighbor layer {prefix} added "
                f"({len(members)} parameters)",
            )
    for prefix in sorted(old_prefixes - new_prefixes):
        members = sorted(p for p in old_paths if p.startswith(prefix + "."))
        handled.update(members)
        if prefix.startswith(_EVENT_PREFIX):
            event = prefix[len(_EVENT_PREFIX):-1]
            change(
                "profile-migration", prefix, event, None,
                f"measurement profile disarmed event {event} "
                f"({len(members)} parameters)",
            )
        else:
            change(
                "layer-retired", prefix, None, None,
                f"configured neighbor layer {prefix} retired "
                f"({len(members)} parameters)",
            )
    # Remaining one-sided paths (e.g. periodic reporting toggled, or a
    # legacy/LTE config section appearing) are plain parameter changes.
    for path in sorted((new_paths - old_paths) - handled):
        change("parameter-changed", path, None, new_flat[path],
               f"{path} configured (was absent)")
    for path in sorted((old_paths - new_paths) - handled):
        change("parameter-changed", path, old_flat[path], None,
               f"{path} removed (was {old_flat[path]!r})")
    # Value changes on paths both sides share.
    for path in sorted(old_paths & new_paths):
        before, after = old_flat[path], new_flat[path]
        if before == after:
            continue
        kind = "priority-reshuffle" if _is_priority_path(path) else "parameter-changed"
        change(kind, path, before, after,
               f"{path}: {before!r} -> {after!r}")
    return tuple(changes)


@dataclass(frozen=True)
class CellDiffUnit(WorkUnit):
    """One cell-pair diff on a :mod:`repro.pipeline` backend."""

    unit_id: int
    old: CellConfigSnapshot
    new: CellConfigSnapshot

    def run(self) -> tuple[ConfigChange, ...]:
        return diff_cell(self.old, self.new)


def _sort_changes(changes: list[ConfigChange]) -> tuple[ConfigChange, ...]:
    return tuple(sorted(
        changes, key=lambda c: (c.carrier, c.gci, c.kind, c.parameter)
    ))


def diff_config_snapshots(
    old: ConfigSnapshot,
    new: ConfigSnapshot,
    workers: int | None = None,
    backend: ExecutionBackend | None = None,
) -> tuple[ConfigChange, ...]:
    """Semantic changes between two captures, deterministically ordered.

    Cells are matched by (carrier, gci); per-cell digests short-circuit
    unchanged cells, and changed pairs shard over pipeline workers with
    results merged in canonical unit order — the output is byte-for-byte
    identical at any ``workers`` value.
    """
    old_cells = {(c.carrier, c.gci): c for c in old.cells}
    new_cells = {(c.carrier, c.gci): c for c in new.cells}
    changes: list[ConfigChange] = []
    for key in sorted(set(old_cells) - set(new_cells)):
        cell = old_cells[key]
        changes.append(ConfigChange(
            kind="cell-retired", carrier=cell.carrier, gci=cell.gci,
            channel=cell.channel, city=cell.city,
            detail=f"cell {cell.carrier}/{cell.gci} ({cell.rat} "
                   f"ch{cell.channel}) retired",
        ))
    for key in sorted(set(new_cells) - set(old_cells)):
        cell = new_cells[key]
        changes.append(ConfigChange(
            kind="cell-added", carrier=cell.carrier, gci=cell.gci,
            channel=cell.channel, city=cell.city,
            detail=f"cell {cell.carrier}/{cell.gci} ({cell.rat} "
                   f"ch{cell.channel}) added",
        ))
    units = [
        CellDiffUnit(unit_id=i, old=old_cells[key], new=new_cells[key])
        for i, key in enumerate(sorted(set(old_cells) & set(new_cells)))
    ]
    runner = resolve_backend(workers, backend)
    for result in runner.run(units):
        assert isinstance(result, tuple)
        changes.extend(result)
    return _sort_changes(changes)


# ---------------------------------------------------------------------------
# Blame: which change made a finding appear


def _subject_channels(finding: Finding) -> set[int]:
    """Channels a finding references (its field plus subject mentions)."""
    channels = {int(tok) for tok in re.findall(r"\d+", finding.subject)}
    if finding.channel >= 0:
        channels.add(finding.channel)
    return channels


def blame_change(
    finding: Finding, changes: Sequence[ConfigChange]
) -> ConfigChange | None:
    """The change most plausibly responsible for ``finding``.

    Deterministic narrowing: same cell first, then same carrier touching
    a channel the finding names (network/graph findings carry their loop
    members in ``subject``), then any same-carrier change.
    """
    same_cell = [
        c for c in changes
        if c.carrier == finding.carrier and c.gci == finding.gci
    ]
    if same_cell:
        return same_cell[0]
    carrier_changes = [c for c in changes if c.carrier == finding.carrier]
    channels = _subject_channels(finding)
    touching = [
        c for c in carrier_changes
        if c.channel in channels
        or any(f"[{ch}]" in c.parameter for ch in channels)
    ]
    if touching:
        return touching[0]
    if carrier_changes:
        return carrier_changes[0]
    return None


# ---------------------------------------------------------------------------
# The drift-rule context and the differential lint entry point


@dataclass(frozen=True)
class DriftContext:
    """What a drift-scope (HC3xx) rule sees: ``(old, new, changes)``.

    Attributes:
        old / new: The compared captures.
        changes: Semantic differences between them, canonical order.
        old_findings / new_findings: Full static-audit findings of each
            capture (no baseline applied).
        timeline: Every capture of the series, oldest first (ends with
            ``old, new``); longitudinal rules like the flapping detector
            need more than two points.
        baseline: The suppression baseline in force, if any.
    """

    old: ConfigSnapshot
    new: ConfigSnapshot
    changes: tuple[ConfigChange, ...]
    old_findings: tuple[Finding, ...]
    new_findings: tuple[Finding, ...]
    timeline: tuple[ConfigSnapshot, ...] = ()
    baseline: Baseline | None = None

    @property
    def old_fingerprints(self) -> frozenset[str]:
        return frozenset(f.fingerprint for f in self.old_findings)

    @property
    def new_fingerprints(self) -> frozenset[str]:
        return frozenset(f.fingerprint for f in self.new_findings)

    def introduced(self) -> list[Finding]:
        """Findings present in ``new`` but absent from ``old``."""
        known = self.old_fingerprints
        return [f for f in self.new_findings if f.fingerprint not in known]

    def fixed(self) -> list[Finding]:
        """Findings present in ``old`` but gone from ``new``."""
        kept = self.new_fingerprints
        return [f for f in self.old_findings if f.fingerprint not in kept]


@dataclass
class DriftReport:
    """Everything one differential audit produced.

    ``findings`` is the *gate* population — findings introduced between
    the captures plus the HC3xx drift findings, minus baseline
    suppressions — deliberately excluding everything both captures
    already carried, which is what makes ``repro lint --diff`` usable as
    a CI regression gate on fleets that are never finding-free.
    """

    old_label: str = ""
    new_label: str = ""
    changes: tuple[ConfigChange, ...] = ()
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    introduced: list[Finding] = field(default_factory=list)
    fixed: list[Finding] = field(default_factory=list)
    #: finding fingerprint -> blamed change_id (gate findings only).
    blame: dict[str, str] = field(default_factory=dict)
    rules_run: tuple[str, ...] = ()
    snapshots_audited: int = 0
    old_counts: dict[str, int] = field(default_factory=dict)
    new_counts: dict[str, int] = field(default_factory=dict)
    graph_stats: GraphStats | None = None
    timeline_labels: tuple[str, ...] = ()

    def counts_by_code(self) -> dict[str, int]:
        return summarize(self.findings)

    def counts_by_severity(self) -> dict[str, int]:
        return count_by_severity(self.findings)

    def counts_by_change_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for c in self.changes:
            counts[c.kind] = counts.get(c.kind, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def has_problems(self) -> bool:
        return any(f.severity == "problem" for f in self.findings)

    @property
    def has_warnings(self) -> bool:
        return any(f.severity in ("warning", "problem") for f in self.findings)


def drift_rules(
    codes: Sequence[str] | None = None,
) -> tuple[RegisteredRule, ...]:
    """The registered drift-scope rules, optionally filtered by code."""
    from repro.lint.rules import select_rules

    return tuple(
        r for r in select_rules(list(codes) if codes is not None else None)
        if r.scope == "drift"
    )


def diff_lint(
    old: ConfigSnapshot,
    new: ConfigSnapshot,
    timeline: Sequence[ConfigSnapshot] = (),
    codes: list[str] | None = None,
    baseline: Baseline | None = None,
    workers: int | None = None,
    backend: ExecutionBackend | None = None,
    graph_analyzer: GraphAnalyzer | None = None,
) -> DriftReport:
    """Differentially audit two captures; report what changed *and broke*.

    Both captures run through the full static rule set (cell, network
    and graph scope) against one shared :class:`GraphAnalyzer`, so the
    graph verifier's second pass re-analyzes only components whose
    member digests changed — the differential re-run the drift rules
    (HC301) rely on.  Then the HC3xx rules evaluate ``(old, new,
    changes)`` and every gate finding is blamed on a concrete change.
    """
    from repro.lint.engine import lint_snapshots
    from repro.lint.rules import select_rules

    rules = select_rules(codes)
    static_rules = tuple(r for r in rules if r.scope != "drift")
    drifts = tuple(r for r in rules if r.scope == "drift")
    analyzer = graph_analyzer if graph_analyzer is not None else GraphAnalyzer()
    old_report = lint_snapshots(
        list(old.cells), rules=static_rules, graph=True,
        workers=workers, graph_analyzer=analyzer,
    )
    new_report = lint_snapshots(
        list(new.cells), rules=static_rules, graph=True,
        workers=workers, graph_analyzer=analyzer,
    )
    changes = diff_config_snapshots(old, new, workers=workers, backend=backend)
    series = tuple(timeline) if timeline else (old, new)
    context = DriftContext(
        old=old,
        new=new,
        changes=changes,
        old_findings=tuple(old_report.findings),
        new_findings=tuple(new_report.findings),
        timeline=series,
        baseline=baseline,
    )
    drift_findings: list[Finding] = []
    for registered in drifts:
        for issue in registered.func(context):
            drift_findings.append(registered.stamp(issue))
    gate = sort_findings(context.introduced() + drift_findings)
    suppressed: list[Finding] = []
    if baseline is not None:
        gate, suppressed = baseline.split(gate)
    blame: dict[str, str] = {}
    for finding in gate:
        culprit = blame_change(finding, changes)
        if culprit is not None:
            blame[finding.fingerprint] = culprit.change_id
    return DriftReport(
        old_label=old.label,
        new_label=new.label,
        changes=changes,
        findings=gate,
        suppressed=suppressed,
        introduced=context.introduced(),
        fixed=context.fixed(),
        blame=blame,
        rules_run=tuple(r.code for r in static_rules) + tuple(
            r.code for r in drifts
        ),
        snapshots_audited=len(old.cells) + len(new.cells),
        old_counts=summarize(list(old_report.findings)),
        new_counts=summarize(list(new_report.findings)),
        graph_stats=new_report.graph_stats,
        timeline_labels=tuple(s.label for s in series),
    )
