"""``repro lint --explain``: human documentation for every rule.

Each registered rule has a hand-written explanation — what the check
means in the paper's terms, why it matters operationally, and a minimal
configuration example that triggers it.  The examples use the repo's
own dataclass constructors so they double as copy-paste reproductions:
feed the example config to :func:`repro.lint.engine.lint_snapshots`
(or the analyzer the rule's scope names) and the rule fires.

A test asserts every code in the registry has an entry here, so adding
a rule without documentation fails CI (:func:`missing_explanations`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.rules import all_rules, get_rule

#: description, minimal triggering example — keyed by rule code.
_EXPLANATIONS: dict[str, tuple[str, str]] = {
    "HC001": (
        "A configured parameter value falls outside the domain the"
        " standard allots it (TS 36.331 value ranges); such values"
        " either get clamped by equipment or silently disable the"
        " feature, so the deployed behavior no longer matches intent.",
        "EventConfig(event=EventType.A3, offset=3.0, hysteresis=-1.0)\n"
        "# hysteresis below the standardized [0, 15] dB domain",
    ),
    "HC002": (
        "A negative A3 offset makes the 'neighbor better than serving'"
        " event fire while the neighbor is still *weaker*, misdirecting"
        " handoffs toward inferior cells or deferring them outright.",
        "EventConfig(event=EventType.A3, offset=-2.0, hysteresis=0.5)",
    ),
    "HC003": (
        "An A5 threshold1 of -44 dBm (the reporting ceiling) imposes no"
        " serving-cell requirement at all: the event degenerates to"
        " 'any neighbor above threshold2', the paper's Section 4.1"
        " unconditional-handoff configuration.",
        "EventConfig(event=EventType.A5, threshold1=-44.0,\n"
        "            threshold2=-112.0, hysteresis=1.0)",
    ),
    "HC004": (
        "The A5 candidate threshold (threshold2) sits below the serving"
        " threshold (threshold1): the cell hands off to targets weaker"
        " than the serving level that triggered the handoff, trading a"
        " bad link for a worse one.",
        "EventConfig(event=EventType.A5, threshold1=-100.0,\n"
        "            threshold2=-110.0, hysteresis=1.0)",
    ),
    "HC005": (
        "Theta_nonintra (s_non_intra_search_p) exceeds Theta_intra"
        " (s_intra_search_p): the cell starts measuring other-frequency"
        " neighbors before same-frequency ones, inverting the paper's"
        " measurement-cost ordering.",
        "ServingCellConfig(s_intra_search_p=10.0, s_non_intra_search_p=20.0)",
    ),
    "HC006": (
        "Theta_intra sits far above the reselection decision threshold:"
        " devices burn battery measuring intra-frequency neighbors long"
        " before any reselection could act on the measurements.",
        "ServingCellConfig(s_intra_search_p=40.0, thresh_serving_low_p=6.0)",
    ),
    "HC007": (
        "Theta_nonintra sits below the decision threshold: by the time"
        " the device starts measuring other layers it is already past"
        " the point where it should have reselected — handoff-too-late"
        " in idle mode.",
        "ServingCellConfig(s_non_intra_search_p=2.0, thresh_serving_low_p=6.0)",
    ),
    "HC008": (
        "s-Measure gates neighbor measurement to serving levels below"
        " an armed event's serving threshold: the event's entry"
        " condition can be satisfied while measurement is still off, so"
        " it fires late or never.",
        "MeasurementConfig(\n"
        "    events=(EventConfig(event=EventType.A5, threshold1=-80.0,\n"
        "                        threshold2=-95.0, hysteresis=1.0),),\n"
        "    s_measure=-100.0)  # gate opens 20 dB below the A5 serving clause",
    ),
    "HC009": (
        "The A3 offset+hysteresis algebra leaves a band where cell A"
        " prefers B while B simultaneously prefers A; only the TTT"
        " separates the pair from handoff ping-pong (paper Section"
        " 4.2's instability condition).",
        "EventConfig(event=EventType.A3, offset=0.5, hysteresis=0.5,\n"
        "            time_to_trigger_ms=40)",
    ),
    "HC010": (
        "A permissive A5 pair (wide leave/entry window, short TTT)"
        " leaves only the time-to-trigger between handoff loops of"
        " comparable cells — the interval-algebra generalization of"
        " HC009 for absolute-threshold events.",
        "EventConfig(event=EventType.A5, threshold1=-95.0,\n"
        "            threshold2=-108.0, hysteresis=0.5,\n"
        "            time_to_trigger_ms=40)",
    ),
    "HC011": (
        "An armed event's entry condition is unsatisfiable inside the"
        " measurable RSRP range (e.g. a neighbor threshold above the"
        " ceiling after hysteresis): the event is dead weight that can"
        " never fire.",
        "EventConfig(event=EventType.A4, threshold1=-44.0, hysteresis=2.0)\n"
        "# neighbor must exceed -42 dBm: above the reporting ceiling",
    ),
    "HC012": (
        "Two armed events share type and metric: one is redundant, and"
        " whichever has the laxer thresholds silently decides every"
        " handoff, making the other's tuning illusory.",
        "MeasurementConfig(events=(\n"
        "    EventConfig(event=EventType.A4, threshold1=-100.0),\n"
        "    EventConfig(event=EventType.A4, threshold1=-95.0)))",
    ),
    "HC101": (
        "One EARFCN is observed with different serving-cell reselection"
        " priorities on different cells: devices crossing cells on the"
        " same layer see the layer's rank flip, destabilizing idle-mode"
        " camping.",
        "# cell 1: ServingCellConfig(cell_reselection_priority=4)\n"
        "# cell 2, same channel: ServingCellConfig(cell_reselection_priority=6)",
    ),
    "HC102": (
        "Cells disagree about an *inter-freq layer's* priority: the"
        " same target layer is ranked differently depending on which"
        " cell the device camps on, producing asymmetric reselection"
        " flows between the same two layers.",
        "# cell 1: InterFreqLayerConfig(dl_carrier_freq=1975,\n"
        "#             cell_reselection_priority=7)\n"
        "# cell 2: InterFreqLayerConfig(dl_carrier_freq=1975,\n"
        "#             cell_reselection_priority=2)",
    ),
    "HC103": (
        "Channel A ranks channel B higher while B ranks A higher: a"
        " priority preference cycle. Idle devices bounce between the"
        " layers indefinitely — the network-scope loop the paper"
        " measured as persistent reselection churn.",
        "# cell on ch 850:  InterFreqLayerConfig(dl_carrier_freq=1975,\n"
        "#                     cell_reselection_priority=7)  # own priority 4\n"
        "# cell on ch 1975: InterFreqLayerConfig(dl_carrier_freq=850,\n"
        "#                     cell_reselection_priority=7)  # own priority 4",
    ),
    "HC104": (
        "The leave threshold of one layer and the entry threshold of"
        " the next leave a gap (or overlap) in RSRP space: devices in"
        " the gap oscillate between layers on every evaluation cycle.",
        "# serving: thresh_serving_low_p=6.0 (leave below -116 dBm)\n"
        "# target layer: thresh_x_low_p=20.0 (enter above -102 dBm)\n"
        "# -116..-102 dBm: neither layer retains the device",
    ),
    "HC201": (
        "The symbolic handoff-policy graph contains a k-cell cycle"
        " whose connected-mode (event-driven) edge conditions are"
        " simultaneously satisfiable: a persistent handoff loop is"
        " *statically guaranteed* for some RSRP assignment, before any"
        " simulation.",
        "# 3 cells, each arming A5(threshold1=-44, threshold2=-112)\n"
        "# toward the next cell's channel: see\n"
        "# repro.lint.fixtures.loop_fixture(misconfigured=True)",
    ),
    "HC202": (
        "Like HC201 but over idle-mode reselection edges: priority and"
        " threshold configurations admit a reselection cycle that"
        " drains stationary devices' batteries.",
        "# ring of InterFreqLayerConfig entries, each granting the next\n"
        "# channel cell_reselection_priority=7 with thresh_x_high_p=0.0",
    ),
    "HC203": (
        "A configured neighbor layer is undeployed in the audited world"
        " (or its entry threshold unsatisfiable): measurement effort is"
        " spent on a target no device can ever reach.",
        "InterFreqLayerConfig(dl_carrier_freq=39150,  # no such deployment\n"
        "                     cell_reselection_priority=5)",
    ),
    "HC204": (
        "A strictly-higher-priority preference cycle spans RATs (LTE ->"
        " UTRA -> LTE): cross-technology reselection ping-pong that"
        " per-RAT audits cannot see.",
        "# LTE cell:  InterRatUtraConfig(cell_reselection_priority=6)\n"
        "# UTRA cell: prefers the LTE layer back at priority 6 (own 4)",
    ),
    "HC301": (
        "A configuration change introduced a handoff loop that the"
        " previous capture did not have: the drift differ attributes"
        " the new HC201/HC103-class cycle to the specific change that"
        " created it.",
        "# old: InterFreqLayerConfig(..., cell_reselection_priority=2)\n"
        "# new: InterFreqLayerConfig(..., cell_reselection_priority=7)\n"
        "# -> closes a preference cycle with the reverse direction",
    ),
    "HC302": (
        "A change opened (or widened) an inter-channel threshold gap"
        " between captures: a reselection dead band that regressed, not"
        " merely existed.",
        "# old: thresh_x_low_p=6.0   new: thresh_x_low_p=20.0\n"
        "# the entry floor rose 14 dB past the serving leave level",
    ),
    "HC303": (
        "A parameter flips back and forth across the capture timeline"
        " (A -> B -> A): operational churn the paper observed in"
        " longitudinal crawls, usually a tug-of-war between tools.",
        "# capture 1: hysteresis=2.0; capture 2: hysteresis=0.0;\n"
        "# capture 3: hysteresis=2.0",
    ),
    "HC304": (
        "A change widened an event's ping-pong RSRP window (the overlap"
        " of leave and entry regions): every dB of widening is more"
        " signal space where comparable cells trade the device.",
        "# old: A5 threshold1=-100, threshold2=-95 (window 0 dB)\n"
        "# new: A5 threshold1=-95,  threshold2=-108 (window 13 dB)",
    ),
    "HC305": (
        "A baseline suppression stopped matching after this change: the"
        " underlying finding was fixed (or mutated), so the suppression"
        " entry is stale and should be pruned with --update-baseline.",
        "# baseline pins HC004 at cell 0x2A01; the new capture's A5\n"
        "# thresholds are corrected, so the pin no longer matches",
    ),
    "HC401": (
        "Signal-space dead zone: a sub-band of the critical serving-"
        "RSRP region [-128, -115] dBm that no handoff-capable event"
        " covers. A connected device degrading through it has no"
        " configured escape until radio-link failure — the static"
        " signature of the paper's handoff-too-late failures. Every"
        " finding carries a replayable trajectory witness.",
        "MeasurementConfig(\n"
        "    events=(EventConfig(event=EventType.A5, threshold1=-126.0,\n"
        "                        threshold2=-121.0, hysteresis=1.0,\n"
        "                        time_to_trigger_ms=1024),),\n"
        "    s_measure=-44.0)\n"
        "# A5 leaves only below -127 dBm: [-127, -115] dBm is uncovered",
    ),
    "HC402": (
        "Shadowed event: another event of the same report family covers"
        " the shadowed event's entire serving and neighbor entry region"
        " with an equal-or-shorter TTT, so the shadowed event can never"
        " be the decisive trigger — its tuning is dead configuration.",
        "MeasurementConfig(events=(\n"
        "    EventConfig(event=EventType.A4, threshold1=-100.0,\n"
        "                hysteresis=1.0, time_to_trigger_ms=100),\n"
        "    EventConfig(event=EventType.A5, threshold1=-110.0,\n"
        "                threshold2=-95.0, hysteresis=1.0,\n"
        "                time_to_trigger_ms=480)))\n"
        "# the A4 fires anywhere the A5 could, 380 ms sooner",
    ),
    "HC403": (
        "Measurement-gap hole: A2 (serving-below) arms neighbor"
        " measurement only below a serving level at which the target-"
        "entry thresholds would require an implausible neighbor"
        " advantage (>25 dB over a cell-edge serving signal) — by the"
        " time measurement starts, the handoff it feeds is unreachable.",
        "MeasurementConfig(\n"
        "    events=(EventConfig(event=EventType.A2, threshold1=-120.0,\n"
        "                        hysteresis=1.0),\n"
        "            EventConfig(event=EventType.A4, threshold1=-90.0,\n"
        "                        hysteresis=1.0)),\n"
        "    s_measure=-44.0)\n"
        "# A2 gates at -121 dBm; A4 needs a neighbor above -89 dBm",
    ),
    "HC404": (
        "TTT-vs-fading contradiction: the event's fire region is so"
        " close to radio-link failure that, at a vehicular edge-decay"
        " rate, the device crosses the region faster than the time-to-"
        "trigger — the entry condition cannot hold long enough to"
        " complete before the link is lost.",
        "EventConfig(event=EventType.A5, threshold1=-126.0,\n"
        "            threshold2=-121.0, hysteresis=1.0,\n"
        "            time_to_trigger_ms=1024)\n"
        "# fire region [-140, -127): 1 dB of dwell for a 1024 ms TTT",
    ),
    "HC405": (
        "Leave/entry overlap: the serving-leave and target-entry"
        " thresholds of one event overlap in RSRP space, so two cells"
        " both inside the window satisfy each other's handoff condition"
        " simultaneously — a symbolic ping-pong window, replayable as a"
        " stationary park witness that oscillates.",
        "EventConfig(event=EventType.A5, threshold1=-95.0,\n"
        "            threshold2=-110.0, hysteresis=1.0,\n"
        "            time_to_trigger_ms=100)\n"
        "# leave below -96 dBm overlaps entry above -109 dBm: 13 dB window",
    ),
}


@dataclass(frozen=True)
class RuleExplanation:
    """One rule's registry metadata joined with its documentation."""

    code: str
    name: str
    severity: str
    scope: str
    summary: str
    description: str
    example: str


def explain(code: str) -> RuleExplanation:
    """The explanation for one rule code (raises KeyError if unknown)."""
    registered = get_rule(code)
    try:
        description, example = _EXPLANATIONS[code]
    except KeyError:
        raise KeyError(f"rule {code} has no explanation entry") from None
    return RuleExplanation(
        code=registered.code,
        name=registered.name,
        severity=registered.severity,
        scope=registered.scope,
        summary=registered.summary,
        description=description,
        example=example,
    )


def missing_explanations() -> tuple[str, ...]:
    """Registered rule codes lacking an explanation (CI gate: empty)."""
    return tuple(
        r.code for r in all_rules() if r.code not in _EXPLANATIONS
    )


def render_explanation(explanation: RuleExplanation) -> str:
    """Terminal rendering of one rule's documentation."""
    lines = [
        f"{explanation.code} {explanation.name} "
        f"[{explanation.severity}, {explanation.scope} scope]",
        f"  {explanation.summary}",
        "",
    ]
    lines.extend(f"  {line}".rstrip() for line in _wrap(explanation.description))
    lines.append("")
    lines.append("  minimal triggering configuration:")
    lines.extend(f"    {line}".rstrip() for line in explanation.example.splitlines())
    return "\n".join(lines)


def render_explain(codes: list[str] | None = None) -> str:
    """Render explanations for the given codes (default: every rule)."""
    wanted = codes if codes else [r.code for r in all_rules()]
    return "\n\n".join(render_explanation(explain(code)) for code in wanted)


def _wrap(text: str, width: int = 70) -> list[str]:
    words = text.split()
    lines: list[str] = []
    current = ""
    for word in words:
        if current and len(current) + 1 + len(word) > width:
            lines.append(current)
            current = word
        else:
            current = f"{current} {word}" if current else word
    if current:
        lines.append(current)
    return lines
