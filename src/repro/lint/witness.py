"""Replayable counterexample witnesses for coverage findings (HC4xx).

Every finding of the signal-space coverage analyzer
(:mod:`repro.lint.coverage`) carries a :class:`CoverageWitness`: a
concrete, synthesized serving-RSRP trajectory that — replayed through
:class:`~repro.simulate.runner.DriveSimulator` — exhibits the predicted
failure.  This is the analyzer's soundness cross-check, in the spirit of
the loop-fixture canary of :mod:`repro.lint.fixtures`: a static claim
("no event rescues a UE in this RSRP region") is backed by a dynamic
demonstration ("this drive through that region suffers an outage/RLF").

The witness world is built with a *shadowing-free* radio model
(``RadioModel(shadowing_sigma_db=0)``), which makes RSRP an exactly
invertible function of distance:

    RSRP(d) = tx - 62 - 35 * log10(d / 10 m) - 21 * log10(f / 700 MHz)

so a target serving level translates deterministically into a waypoint.
Two cells suffice: the serving cell at the witness origin and one
neighbor placed so it offers a comfortable handoff target
(:data:`NEIGHBOR_ADVANTAGE_DB` above serving) at the level where a sane
configuration would hand off — the witness's *failing* configuration
does not, which is exactly what the replay demonstrates.  Replaying the
same world with a corrected configuration (the "corrected twin") hands
off before the outage and the failure disappears.

Batched replay shards over :mod:`repro.pipeline` work units
(:class:`WitnessReplayUnit`) rather than :mod:`repro.simulate.fleet`:
fleet scenarios rebuild their world from a named-city
:class:`~repro.simulate.scenarios.ScenarioSpec` in each worker, and
witness worlds are synthetic two-cell deployments no catalog names.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.cellnet.bands import earfcn_to_frequency_mhz
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.config.lte import LteCellConfig
from repro.lint.snapshot import decode_value, encode_value
from repro.pipeline import ExecutionBackend, WorkUnit, resolve_backend

if TYPE_CHECKING:
    from repro.cellnet.world import RadioEnvironment
    from repro.lint.fixtures import StaticConfigServer
    from repro.simulate.mobility import Trajectory
    from repro.simulate.runner import DriveResult

#: Serving RSRP below which service is considered unacceptable (outage);
#: the top of the coverage analyzer's critical band.  -115 dBm sits at
#: the weak edge of usable LTE coverage — SINR-limited cells deliver
#: next to nothing below it.
ACCEPTABLE_SERVICE_DBM = -115.0

#: Serving RSRP at which the radio link is effectively lost; the bottom
#: of the critical band.  Below this the UE declares RLF long before any
#: slow event completes its time-to-trigger.
RLF_RSRP_DBM = -128.0

#: UE speed of synthesized walk witnesses (vehicular, ~54 km/h).
WITNESS_SPEED_MPS = 15.0

#: Seed of the witness world's (shadowing-free) radio model.
WITNESS_SEED = 7

#: Headroom above the outage level where a well-configured network would
#: hand off; the witness neighbor is placed to be attractive there.
HANDOFF_HEADROOM_DB = 8.0

#: Neighbor advantage over serving at the intended handoff point.
NEIGHBOR_ADVANTAGE_DB = 3.0

#: Initial level asymmetry of ping-pong park witnesses (the controller
#: prefers the stronger cell first; the window must exceed this for the
#: reverse trigger to re-arm).
PINGPONG_ASYMMETRY_DB = 0.5

#: Outage run (in ticks) a missed-handoff replay must exhibit; 25 ticks
#: at the default 200 ms tick is 5 s of continuous unacceptable service.
MIN_OUTAGE_RUN_TICKS = 25

#: Witness plane origin, far from every catalogued city and fixture.
_ORIGIN = Point(6_000_000.0, 6_000_000.0)

#: City label of witness worlds (never in the deployment catalog).
WITNESS_CITY = "CoverageWitness"

#: Radio-model constants the inversion relies on (matching the defaults
#: of :class:`repro.cellnet.radio.RadioModel`).
_TX_POWER_DBM = 30.0
_REF_LOSS_DB = 62.0
_PATH_LOSS_SLOPE_DB = 35.0  # 10 * path_loss_exponent
_REF_DISTANCE_M = 10.0
_REF_FREQUENCY_MHZ = 700.0
_FREQ_SLOPE_DB = 21.0


def rsrp_at_distance(distance_m: float, channel: int, rat: RAT = RAT.LTE) -> float:
    """Shadowing-free RSRP at ``distance_m`` from a default-power cell."""
    frequency = earfcn_to_frequency_mhz(channel, rat)
    freq_term = _FREQ_SLOPE_DB * math.log10(frequency / _REF_FREQUENCY_MHZ)
    distance = max(distance_m, _REF_DISTANCE_M)
    return (
        _TX_POWER_DBM
        - _REF_LOSS_DB
        - _PATH_LOSS_SLOPE_DB * math.log10(distance / _REF_DISTANCE_M)
        - freq_term
    )


def distance_for_rsrp(level_dbm: float, channel: int, rat: RAT = RAT.LTE) -> float:
    """Distance (m) at which a default-power cell measures ``level_dbm``.

    Exact inverse of :func:`rsrp_at_distance` — the witness builder's
    level-to-waypoint translation.
    """
    frequency = earfcn_to_frequency_mhz(channel, rat)
    freq_term = _FREQ_SLOPE_DB * math.log10(frequency / _REF_FREQUENCY_MHZ)
    exponent = (_TX_POWER_DBM - _REF_LOSS_DB - freq_term - level_dbm) / _PATH_LOSS_SLOPE_DB
    return _REF_DISTANCE_M * 10.0 ** exponent


@dataclass(frozen=True)
class CoverageWitness:
    """A synthesized, simulator-replayable counterexample.

    Attributes:
        code: The HC4xx rule that produced the witness.
        kind: Failure mode the replay checks for — "missed-handoff"
            (walk witnesses: outage/RLF with no rescuing handoff),
            "ping-pong" (park witnesses: repeated A<->B flips) or
            "shadowed-event" (walk witnesses: another event fires,
            the subject event never does).
        carrier: Carrier of the originating cell.
        gci: Cell the finding is about.
        channel: Serving-cell EARFCN of the witness world.
        neighbor_channel: Neighbor-cell EARFCN.
        config: The failing configuration under test (both cells of the
            witness world broadcast it unless a replay overrides).
        neighbor_config: Neighbor's configuration (usually ``config``).
        entry_dbm: Serving RSRP at the start of the synthesized walk
            (equals ``exit_dbm`` for park witnesses).
        exit_dbm: Serving RSRP at the end of the walk.
        hold_s: Park duration for ping-pong witnesses (0 for walks).
        speed_mps: Walk speed.
        subject_event: Label of the event the finding is about (e.g.
            "A5[0]"); shadowed-event detection keys on its type.
        note: Human-readable account of what the replay demonstrates.
    """

    code: str
    kind: str
    carrier: str
    gci: int
    channel: int
    neighbor_channel: int
    config: LteCellConfig
    neighbor_config: LteCellConfig
    entry_dbm: float
    exit_dbm: float
    hold_s: float = 0.0
    speed_mps: float = WITNESS_SPEED_MPS
    subject_event: str = ""
    note: str = ""

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (config codec of the drift store)."""
        return {
            "code": self.code,
            "kind": self.kind,
            "carrier": self.carrier,
            "gci": self.gci,
            "channel": self.channel,
            "neighbor_channel": self.neighbor_channel,
            "config": encode_value(self.config),
            "neighbor_config": encode_value(self.neighbor_config),
            "entry_dbm": self.entry_dbm,
            "exit_dbm": self.exit_dbm,
            "hold_s": self.hold_s,
            "speed_mps": self.speed_mps,
            "subject_event": self.subject_event,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "CoverageWitness":
        config = decode_value(payload["config"])
        neighbor_config = decode_value(payload["neighbor_config"])
        assert isinstance(config, LteCellConfig)
        assert isinstance(neighbor_config, LteCellConfig)
        return cls(
            code=str(payload["code"]),
            kind=str(payload["kind"]),
            carrier=str(payload["carrier"]),
            gci=int(payload["gci"]),  # type: ignore[call-overload]
            channel=int(payload["channel"]),  # type: ignore[call-overload]
            neighbor_channel=int(payload["neighbor_channel"]),  # type: ignore[call-overload]
            config=config,
            neighbor_config=neighbor_config,
            entry_dbm=float(payload["entry_dbm"]),  # type: ignore[arg-type]
            exit_dbm=float(payload["exit_dbm"]),  # type: ignore[arg-type]
            hold_s=float(payload["hold_s"]),  # type: ignore[arg-type]
            speed_mps=float(payload["speed_mps"]),  # type: ignore[arg-type]
            subject_event=str(payload.get("subject_event", "")),
            note=str(payload.get("note", "")),
        )


@dataclass
class WitnessWorld:
    """A built witness world, ready to drive."""

    env: "RadioEnvironment"
    server: "StaticConfigServer"
    carrier: str
    trajectory: "Trajectory"


def build_witness_world(
    witness: CoverageWitness,
    serving_config: LteCellConfig | None = None,
    neighbor_config: LteCellConfig | None = None,
) -> WitnessWorld:
    """Materialize a witness's two-cell world and trajectory.

    ``serving_config``/``neighbor_config`` override the witness's
    (failing) configurations — the corrected-twin replay passes the
    fixed configuration into the *identical* geometry.
    """
    from repro.cellnet.cell import Cell, CellId
    from repro.cellnet.deployment import DeploymentPlan
    from repro.cellnet.radio import RadioModel
    from repro.cellnet.world import RadioEnvironment
    from repro.lint.fixtures import StaticConfigServer
    from repro.simulate.mobility import Trajectory, _timed

    serving_cfg = serving_config if serving_config is not None else witness.config
    neighbor_cfg = (
        neighbor_config if neighbor_config is not None else witness.neighbor_config
    )
    if witness.kind == "ping-pong":
        # Park where the serving cell sits at entry level and the
        # neighbor slightly above it: both levels inside the overlap
        # window, so forward and reverse triggers stay armed.
        park_m = distance_for_rsrp(witness.entry_dbm, witness.channel)
        neighbor_gap_m = distance_for_rsrp(
            witness.entry_dbm + PINGPONG_ASYMMETRY_DB, witness.neighbor_channel
        )
        neighbor_x = park_m + neighbor_gap_m
        park = _ORIGIN.offset(park_m, 0.0)
        hold_ms = max(int(witness.hold_s * 1000.0), 1)
        trajectory = Trajectory(waypoints=(park, park), times_ms=(0, hold_ms))
    else:
        # Walk outward through the failing region.  The neighbor is
        # placed to be NEIGHBOR_ADVANTAGE_DB stronger than serving at
        # the level where a sane configuration would hand off.
        start_m = distance_for_rsrp(witness.entry_dbm, witness.channel)
        end_m = distance_for_rsrp(witness.exit_dbm, witness.channel)
        handoff_dbm = min(
            ACCEPTABLE_SERVICE_DBM + HANDOFF_HEADROOM_DB, witness.entry_dbm - 2.0
        )
        handoff_m = distance_for_rsrp(handoff_dbm, witness.channel)
        neighbor_x = handoff_m + distance_for_rsrp(
            handoff_dbm + NEIGHBOR_ADVANTAGE_DB, witness.neighbor_channel
        )
        trajectory = _timed(
            [_ORIGIN.offset(start_m, 0.0), _ORIGIN.offset(end_m, 0.0)],
            witness.speed_mps,
        )
    plan = DeploymentPlan()
    serving_cell = Cell(
        cell_id=CellId(witness.carrier, plan.next_gci(witness.carrier)),
        rat=RAT.LTE,
        channel=witness.channel,
        pci=210,
        location=_ORIGIN,
        city=WITNESS_CITY,
    )
    neighbor_cell = Cell(
        cell_id=CellId(witness.carrier, plan.next_gci(witness.carrier)),
        rat=RAT.LTE,
        channel=witness.neighbor_channel,
        pci=211,
        location=_ORIGIN.offset(neighbor_x, 0.0),
        city=WITNESS_CITY,
    )
    plan.registry.add(serving_cell)
    plan.registry.add(neighbor_cell)
    env = RadioEnvironment(
        plan, radio=RadioModel(seed=WITNESS_SEED, shadowing_sigma_db=0.0)
    )
    server = StaticConfigServer(env, {
        serving_cell.cell_id: serving_cfg,
        neighbor_cell.cell_id: neighbor_cfg,
    })
    return WitnessWorld(
        env=env, server=server, carrier=witness.carrier, trajectory=trajectory
    )


@dataclass(frozen=True)
class ReplayOutcome:
    """What replaying one witness through the simulator observed.

    ``reproduced`` is the soundness verdict: the replay exhibited the
    failure the witness predicts.  The counters let tests (and the CI
    canary) assert the corrected twin is failure-free, not merely
    "different".
    """

    reproduced: bool
    kind: str
    rlf_count: int
    outage_ticks: int
    max_outage_run_ticks: int
    handoffs: int
    flips: int
    first_outage_ms: int
    first_handoff_ms: int
    detail: str


def _radio_link_failures(result: "DriveResult") -> int:
    """Serving changes in the tick samples with no handoff in between.

    The simulator re-camps silently after a radio-link failure — a
    serving-cell change between consecutive samples that no
    :class:`~repro.ue.device.HandoffEvent` explains is exactly an RLF.
    """
    handoff_times = [h.time_ms for h in result.handoffs]
    count = 0
    for prev, sample in zip(result.samples, result.samples[1:]):
        if sample.serving == prev.serving:
            continue
        if not any(prev.t_ms < t <= sample.t_ms for t in handoff_times):
            count += 1
    return count


def _flip_count(result: "DriveResult") -> int:
    """Back-and-forth handoffs (each hop undoes the previous one)."""
    flips = 0
    for prev, hop in zip(result.handoffs, result.handoffs[1:]):
        if hop.target == prev.source and hop.source == prev.target:
            flips += 1
    return flips


def classify_replay(witness: CoverageWitness, result: "DriveResult") -> ReplayOutcome:
    """Judge one finished replay against the witness's predicted failure."""
    rlf_count = _radio_link_failures(result)
    flips = _flip_count(result)
    outage_ticks = 0
    max_run = run = 0
    first_outage_ms = -1
    for sample in result.samples:
        if sample.rsrp_dbm <= ACCEPTABLE_SERVICE_DBM and not sample.interrupted:
            outage_ticks += 1
            run += 1
            max_run = max(max_run, run)
            if first_outage_ms < 0:
                first_outage_ms = sample.t_ms
        else:
            run = 0
    first_handoff_ms = result.handoffs[0].time_ms if result.handoffs else -1
    if witness.kind == "ping-pong":
        reproduced = flips >= 2
        detail = f"{flips} back-and-forth handoffs in {witness.hold_s:g} s"
    elif witness.kind == "shadowed-event":
        subject_type = witness.subject_event.split("[", 1)[0]
        subject_fired = any(
            h.decisive_event == subject_type for h in result.handoffs
        )
        other_fired = any(
            h.decisive_event not in (None, subject_type) for h in result.handoffs
        )
        reproduced = other_fired and not subject_fired
        detail = (
            f"subject {witness.subject_event} fired: {subject_fired}; "
            f"dominating event fired: {other_fired}"
        )
    else:  # missed-handoff
        rescued_first = 0 <= first_handoff_ms and (
            first_outage_ms < 0 or first_handoff_ms < first_outage_ms
        )
        reproduced = rlf_count >= 1 or (
            max_run >= MIN_OUTAGE_RUN_TICKS and not rescued_first
        )
        detail = (
            f"{rlf_count} RLFs, longest outage run {max_run} ticks, "
            f"first handoff at {first_handoff_ms} ms, "
            f"first outage at {first_outage_ms} ms"
        )
    return ReplayOutcome(
        reproduced=reproduced,
        kind=witness.kind,
        rlf_count=rlf_count,
        outage_ticks=outage_ticks,
        max_outage_run_ticks=max_run,
        handoffs=len(result.handoffs),
        flips=flips,
        first_outage_ms=first_outage_ms,
        first_handoff_ms=first_handoff_ms,
        detail=detail,
    )


def replay_witness(
    witness: CoverageWitness,
    serving_config: LteCellConfig | None = None,
    neighbor_config: LteCellConfig | None = None,
    seed: int = 0,
) -> ReplayOutcome:
    """Drive one witness through the simulator and judge the outcome.

    The drive runs with ``config_lint=False`` — witnesses exist because
    the configuration is broken; the preflight warning would only
    restate the finding under replay.
    """
    from repro.simulate.runner import DriveSimulator
    from repro.simulate.traffic import ConstantRate

    world = build_witness_world(
        witness, serving_config=serving_config, neighbor_config=neighbor_config
    )
    simulator = DriveSimulator(
        world.env, world.server, world.carrier, seed=seed, config_lint=False
    )
    result = simulator.run(world.trajectory, ConstantRate())
    return classify_replay(witness, result)


def corrected_twin(config: LteCellConfig, corrected: LteCellConfig) -> LteCellConfig:
    """Convenience: the corrected configuration with ``config``'s layers.

    Keeps deployment-shaped fields (inter-frequency layers) from the
    failing configuration so the twin differs only in event policy.
    """
    return replace(corrected, inter_freq_layers=config.inter_freq_layers)


@dataclass(frozen=True)
class WitnessReplayUnit(WorkUnit):
    """One witness replay on a :mod:`repro.pipeline` backend."""

    unit_id: int
    witness: CoverageWitness
    seed: int = 0

    def run(self) -> ReplayOutcome:
        return replay_witness(self.witness, seed=self.seed)


def replay_witnesses(
    witnesses: list[CoverageWitness],
    workers: int | None = None,
    backend: ExecutionBackend | None = None,
    seed: int = 0,
) -> list[ReplayOutcome]:
    """Replay a batch of witnesses, sharded over pipeline workers.

    Outcomes come back in witness order regardless of worker count (the
    backend's ordered merge), so batch verdicts are deterministic.
    """
    units = [
        WitnessReplayUnit(unit_id=i, witness=w, seed=seed)
        for i, w in enumerate(witnesses)
    ]
    outcomes: list[ReplayOutcome] = []
    for outcome in resolve_backend(workers, backend).run(units):
        assert isinstance(outcome, ReplayOutcome)
        outcomes.append(outcome)
    return outcomes
