"""Drift lint rules (codes HC301-HC305).

These rules only make sense over *two or more* captures: they catch the
regressions behind the paper's longitudinal findings (Section 5.3) —
reconfigurations that introduce handoff loops, widen ping-pong windows,
re-open inter-channel threshold gaps, or churn a parameter back and
forth across a timeline.  Each sees a
:class:`~repro.lint.diff.DriftContext` and is evaluated exclusively by
:func:`~repro.lint.diff.diff_lint`.

Code conventions (append-only, like every other HC family):

==========  ==================================================
HC301       change introduces a new handoff-loop finding
HC302       serving/target threshold-gap regression
HC303       parameter flaps across >= 3 timeline captures
HC304       change widens a ping-pong RSRP window
HC305       baseline suppression went stale with this change
==========  ==================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.crawler import CellConfigSnapshot
from repro.lint.diff import blame_change, flatten_cell
from repro.lint.pingpong import pingpong_window_db
from repro.lint.rules import Issue, rule

if TYPE_CHECKING:
    from repro.lint.diff import DriftContext

#: Finding codes that assert a handoff loop (priority SCC, guaranteed
#: graph cycle, fading-assisted graph cycle) — the HC301 trigger set.
LOOP_FINDING_CODES = ("HC103", "HC201", "HC202")

#: Minimum timeline captures before flap detection (HC303) engages.
FLAP_MIN_SNAPSHOTS = 3

#: Minimum value transitions for a parameter to count as flapping.
FLAP_MIN_TRANSITIONS = 2

#: Float tolerance for "strictly worse" comparisons (HC302/HC304).
_EPS = 1e-9


def _blame_suffix(ctx: "DriftContext", finding_like: object) -> str:
    """`` (introduced by <change>)`` for a finding, when attributable."""
    from repro.lint.findings import Finding

    assert isinstance(finding_like, Finding)
    culprit = blame_change(finding_like, ctx.changes)
    if culprit is None:
        return ""
    return f" (introduced by {culprit.describe()})"


@rule("HC301", "drift-new-loop", scope="drift", severity="problem",
      summary="A configuration change introduced a new handoff loop")
def drift_new_loop(ctx: "DriftContext") -> Iterator[Issue]:
    known = ctx.old_fingerprints
    for finding in ctx.new_findings:
        if finding.code not in LOOP_FINDING_CODES:
            continue
        if finding.fingerprint in known:
            continue
        yield Issue(
            f"new {finding.code} loop not present in capture "
            f"{ctx.old.label!r}: {finding.message}"
            f"{_blame_suffix(ctx, finding)}",
            carrier=finding.carrier,
            gci=finding.gci,
            channel=finding.channel,
            subject=finding.fingerprint,
        )


def _gap_overlaps(
    cells: tuple[CellConfigSnapshot, ...]
) -> dict[tuple[str, int, int], float]:
    """Positive leave/return overlaps per (carrier, X, Y) channel pair.

    The HC104 algebra (see :mod:`repro.lint.network_rules`): devices
    leave channel X downward below X's max ``thresh_serving_low_p`` and
    return from Y once X exceeds the min ``thresh_x_high_p`` Y-cells
    configure for X; any positive difference is a bounce region.
    """
    leave: dict[tuple[str, int, int], float] = {}
    ret: dict[tuple[str, int, int], float] = {}
    for snapshot in cells:
        config = snapshot.lte_config
        if config is None:
            continue
        own = config.serving.cell_reselection_priority
        for layer in config.inter_freq_layers:
            key = (snapshot.carrier, snapshot.channel, layer.dl_carrier_freq)
            if layer.cell_reselection_priority < own:
                threshold = config.serving.thresh_serving_low_p
                leave[key] = max(leave.get(key, threshold), threshold)
            elif layer.cell_reselection_priority > own:
                threshold = layer.thresh_x_high_p
                ret[key] = min(ret.get(key, threshold), threshold)
    overlaps: dict[tuple[str, int, int], float] = {}
    for (carrier, x, y), leave_at in leave.items():
        return_at = ret.get((carrier, y, x))
        if return_at is not None and return_at < leave_at:
            overlaps[(carrier, x, y)] = leave_at - return_at
    return overlaps


@rule("HC302", "drift-threshold-gap-regression", scope="drift",
      severity="warning",
      summary="A change opened or widened an inter-channel threshold gap")
def drift_threshold_gap_regression(ctx: "DriftContext") -> Iterator[Issue]:
    old_overlaps = _gap_overlaps(ctx.old.cells)
    new_overlaps = _gap_overlaps(ctx.new.cells)
    for (carrier, x, y), overlap in sorted(new_overlaps.items()):
        before = old_overlaps.get((carrier, x, y))
        if before is not None and overlap <= before + _EPS:
            continue
        if before is None:
            trend = f"opened a {overlap:g} dB reselection overlap"
        else:
            trend = (
                f"widened the reselection overlap from {before:g} to "
                f"{overlap:g} dB"
            )
        yield Issue(
            f"threshold-gap regression between channels {x} and {y}: "
            f"the change {trend} — idle devices bounce {x} -> {y} -> {x}",
            carrier=carrier,
            channel=x,
            subject=f"{x}->{y}",
        )


@rule("HC303", "drift-flapping-parameter", scope="drift", severity="warning",
      summary="A parameter churns back and forth across the timeline")
def drift_flapping_parameter(ctx: "DriftContext") -> Iterator[Issue]:
    timeline = ctx.timeline
    if len(timeline) < FLAP_MIN_SNAPSHOTS:
        return
    # Per capture: (carrier, gci) -> flattened parameters.
    flattened: list[dict[tuple[str, int], dict[str, object]]] = [
        {(c.carrier, c.gci): flatten_cell(c) for c in snap.cells}
        for snap in timeline
    ]
    cells = sorted({key for capture in flattened for key in capture})
    for carrier, gci in cells:
        series = [capture.get((carrier, gci)) for capture in flattened]
        present = [s for s in series if s is not None]
        if len(present) < FLAP_MIN_SNAPSHOTS:
            continue
        paths = sorted({path for flat in present for path in flat})
        for path in paths:
            values = [flat[path] for flat in present if path in flat]
            if len(values) < FLAP_MIN_SNAPSHOTS:
                continue
            transitions = sum(
                1 for before, after in zip(values, values[1:])
                if before != after
            )
            # Flapping = repeated change that *revisits* values; a
            # monotonic retuning campaign has distinct values at every
            # transition and is deliberately not flagged.
            if transitions < FLAP_MIN_TRANSITIONS:
                continue
            if len(set(map(repr, values))) > transitions:
                continue
            rendered = " -> ".join(repr(v) for v in values)
            channel = next(
                c.channel for c in ctx.new.cells + ctx.old.cells
                if c.carrier == carrier and c.gci == gci
            )
            yield Issue(
                f"parameter {path} flapped across "
                f"{len(values)} captures ({rendered}): {transitions} "
                "transitions revisiting earlier values suggests dueling "
                "retunes rather than a campaign",
                carrier=carrier,
                gci=gci,
                channel=channel,
                subject=path,
            )


def _pingpong_windows(
    snapshot: CellConfigSnapshot,
) -> dict[str, float]:
    """Max ping-pong window (dB) per armed event ``TYPE/metric`` key."""
    windows: dict[str, float] = {}
    if snapshot.lte_config is None:
        return windows
    meas = snapshot.meas_config or snapshot.lte_config.measurement
    for event in meas.events:
        key = f"{event.event.value}/{event.metric}"
        width = pingpong_window_db(event)
        windows[key] = max(windows.get(key, 0.0), width)
    return windows


@rule("HC304", "drift-pingpong-window-widened", scope="drift",
      severity="warning",
      summary="A change widened an event's ping-pong RSRP window")
def drift_pingpong_window_widened(ctx: "DriftContext") -> Iterator[Issue]:
    old_cells = {(c.carrier, c.gci): c for c in ctx.old.cells}
    for cell in ctx.new.cells:
        old_cell = old_cells.get((cell.carrier, cell.gci))
        if old_cell is None:
            continue
        before = _pingpong_windows(old_cell)
        after = _pingpong_windows(cell)
        for key, width in sorted(after.items()):
            previous = before.get(key, 0.0)
            if width <= previous + _EPS:
                continue
            yield Issue(
                f"event {key} ping-pong window widened from {previous:g} "
                f"to {width:g} dB: the reverse trigger re-arms across a "
                "larger signal range than before the change",
                carrier=cell.carrier,
                gci=cell.gci,
                channel=cell.channel,
                subject=key,
            )


@rule("HC305", "drift-stale-suppression", scope="drift", severity="info",
      summary="A baseline suppression stopped firing with this change")
def drift_stale_suppression(ctx: "DriftContext") -> Iterator[Issue]:
    if ctx.baseline is None:
        return
    old_fps = ctx.old_fingerprints
    new_fps = ctx.new_fingerprints
    for fingerprint in sorted(ctx.baseline.fingerprints):
        if fingerprint not in old_fps or fingerprint in new_fps:
            continue
        code, carrier, gci, channel, subject = fingerprint.split(":", 4)
        yield Issue(
            f"baseline suppression for {code} ({subject or 'no subject'}) "
            "no longer fires after this change — run "
            "`repro lint --prune-baseline` to retire it",
            carrier=carrier,
            gci=int(gci),
            channel=int(channel),
            subject=fingerprint,
        )
