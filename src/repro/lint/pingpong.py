"""Symbolic ping-pong analysis of handoff event configurations.

The paper's instability case studies (Section 5.4) observe devices
bouncing between cells; its proposed remedy is *static* configuration
verification.  This module reasons about the hysteresis + TTT + offset
algebra of TS 36.331 entry conditions without running the simulator.

**A3 algebra.**  An A3 handoff from serving S to target T requires

    T + Ofn - Hys > S + Off            (entry, held for TTT)

After the handoff the roles swap; the reverse handoff requires

    S + Ofn - Hys > T + Off

Writing d = T - S, the forward condition is ``d > Off + Hys - Ofn`` and
the reverse is ``-d > Off + Hys - Ofn``.  Both can hold (for different
instants of a fluctuating d) whenever the separation band

    margin = 2 * (Off + Hys - Ofn)

is narrow: with ``margin <= 0`` the two trigger regions *overlap* and a
device between comparable cells oscillates indefinitely; with a small
positive margin, ordinary shadow fading (a few dB) walks d across the
band and only the time-to-trigger damps the loop.

**A5 algebra.**  A5 requires ``S + Hys < Thresh1`` and ``T + Ofn - Hys >
Thresh2``.  When Thresh1 is the spec ceiling (-44 dBm: "no serving
requirement", Section 4.1) the serving clause always holds, so right
after a handoff the *old* serving cell re-satisfies the neighbor clause
it just passed — the reverse event is armed immediately and only the
TTT stands between the device and a loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.events import EventConfig, EventType

#: Best possible RSRP (dBm): the spec's reporting ceiling.
RSRP_CEILING_DBM = -44.0

#: Worst possible RSRP (dBm): the spec's reporting floor.
RSRP_FLOOR_DBM = -140.0

#: Band (dB) under which shadow fading realistically crosses the A3
#: forward/reverse separation; ~2 dB matches suburban shadowing sigma.
A3_RISK_BAND_DB = 2.0

#: TTT (ms) at or below which a risky A3 band is considered undamped.
A3_RISK_TTT_MS = 160

#: TTT (ms) at or below which a no-serving-requirement A5 is considered
#: undamped (the profile population uses 640+ for coverage events).
A5_RISK_TTT_MS = 640


@dataclass(frozen=True, order=True)
class Interval:
    """A signal-level interval in dBm (or dB), closed by default.

    The symbolic building block shared by the 2-cell ping-pong algebra
    here, the k-cell handoff-graph verifier in :mod:`repro.lint.graph`
    and the signal-space coverage analyzer in
    :mod:`repro.lint.coverage`: every feasible-transition edge and every
    event fire region carries the interval of serving/target levels
    under which its trigger condition holds.

    Endpoint semantics are explicit: ``lo_open``/``hi_open`` exclude the
    corresponding bound, so the strict inequalities of TS 36.331 entry
    conditions (``Ms + Hys < Thresh`` -> ``[floor, Thresh - Hys)``) are
    representable exactly.  The default (both closed) preserves the
    historical behaviour of the two-positional-argument call sites.

    Emptiness: ``lo > hi``, or ``lo == hi`` with either endpoint open
    (a degenerate single-point interval ``[x, x]`` is non-empty; its
    half-open or open variants are empty).
    """

    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    @property
    def empty(self) -> bool:
        """Whether no value satisfies the interval."""
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    @property
    def width(self) -> float:
        """Length of the interval in dB (0 when empty).

        Open endpoints do not change the measure: ``(a, b)`` and
        ``[a, b]`` are both ``b - a`` wide.
        """
        if self.empty:
            return 0.0
        return max(0.0, self.hi - self.lo)

    def intersect(self, other: "Interval") -> "Interval":
        """The interval of values satisfying both constraints.

        On a tied bound the open endpoint wins (the intersection must
        exclude a value either operand excludes).
        """
        if other.lo > self.lo:
            lo, lo_open = other.lo, other.lo_open
        elif other.lo < self.lo:
            lo, lo_open = self.lo, self.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open or other.lo_open
        if other.hi < self.hi:
            hi, hi_open = other.hi, other.hi_open
        elif other.hi > self.hi:
            hi, hi_open = self.hi, self.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open or other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        if self.empty:
            return False
        above_lo = value > self.lo if self.lo_open else value >= self.lo
        below_hi = value < self.hi if self.hi_open else value <= self.hi
        return above_lo and below_hi

    def covers(self, other: "Interval") -> bool:
        """Whether every value of ``other`` lies inside ``self``.

        The empty interval is covered by everything; nothing but another
        (superset-shaped) interval covers a non-empty one.
        """
        if other.empty:
            return True
        if self.empty:
            return False
        lo_ok = self.lo < other.lo or (
            self.lo == other.lo and (not self.lo_open or other.lo_open)
        )
        hi_ok = self.hi > other.hi or (
            self.hi == other.hi and (not self.hi_open or other.hi_open)
        )
        return lo_ok and hi_ok

    def overlaps_or_touches(self, other: "Interval") -> bool:
        """Whether the union of the two intervals is one interval.

        Touching bounds merge only when at least one side is closed at
        the shared point: ``[a, b] u [b, c]`` and ``[a, b) u [b, c]``
        are single intervals, ``[a, b) u (b, c]`` leaves the gap
        ``{b}``.
        """
        if self.empty or other.empty:
            return False
        first, second = (self, other) if self.lo <= other.lo else (other, self)
        if second.lo < first.hi:
            return True
        if second.lo > first.hi:
            return False
        return not (first.hi_open and second.lo_open)

    def union(self, other: "Interval") -> "Interval | None":
        """The union, when it is a single interval; None otherwise.

        An empty operand is the identity; two disjoint non-empty
        intervals (a real gap between them) return None.
        """
        if self.empty:
            return other
        if other.empty:
            return self
        if not self.overlaps_or_touches(other):
            return None
        if self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif self.lo > other.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi > other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif self.hi < other.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def __str__(self) -> str:
        if self.empty:
            return "(empty)"
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{self.lo:g}, {self.hi:g}{right} dBm"


#: Every reportable RSRP value: the unconstrained edge annotation.
FULL_RSRP = Interval(RSRP_FLOOR_DBM, RSRP_CEILING_DBM)

#: The canonical empty interval.
EMPTY_INTERVAL = Interval(0.0, -1.0)


def a3_separation_band(config: EventConfig) -> float:
    """Separation band (dB) between forward and reverse A3 triggers.

    ``2 * (Off + Hys)``: the band shadow fading must walk the serving/
    neighbor difference across to re-trigger the reverse handoff.
    """
    return 2.0 * (config.offset + config.hysteresis)


def a5_serving_interval(config: EventConfig) -> Interval:
    """Serving levels under which the A5/B2 serving clause holds.

    ``Ms + Hys < Thresh1`` is strict, so the interval is half-open:
    ``[floor, Thresh1 - Hys)``.  A threshold at the reporting ceiling
    places no requirement on the serving cell.
    """
    assert config.threshold1 is not None
    return Interval(
        RSRP_FLOOR_DBM, config.threshold1 - config.hysteresis, hi_open=True
    )


def a5_neighbor_interval(config: EventConfig) -> Interval:
    """Neighbor levels under which the A5/B2 neighbor clause holds.

    ``Mn + Ofn - Hys > Thresh2`` (strict) with Ofn = 0 (frequency
    offsets are not known statically): ``(Thresh2 + Hys, ceiling]``.
    """
    assert config.threshold2 is not None
    return Interval(
        config.threshold2 + config.hysteresis, RSRP_CEILING_DBM, lo_open=True
    )


def a4_neighbor_interval(config: EventConfig) -> Interval:
    """Neighbor levels under which the A4/B1 entry condition holds.

    ``Mn + Ofn - Hys > Thresh`` (strict): ``(Thresh + Hys, ceiling]``.
    """
    assert config.threshold1 is not None
    return Interval(
        config.threshold1 + config.hysteresis, RSRP_CEILING_DBM, lo_open=True
    )


@dataclass(frozen=True)
class PingPongRisk:
    """Result of the symbolic analysis of one armed event.

    Attributes:
        event: The analyzed event type value ("A3", "A5").
        margin_db: Separation band between forward and reverse triggers
            (A3 only; 0.0 for A5).
        time_to_trigger_ms: The event's TTT (the only remaining damper).
        guaranteed: True when the trigger regions overlap, i.e. a loop
            needs no fading at all.
        reason: Human-readable explanation of the algebra.
    """

    event: str
    margin_db: float
    time_to_trigger_ms: int
    guaranteed: bool
    reason: str


def analyze_a3(config: EventConfig) -> PingPongRisk | None:
    """Symbolic ping-pong risk of one armed A3/A6 event, if any."""
    if config.event not in (EventType.A3, EventType.A6):
        return None
    margin = a3_separation_band(config)
    if margin <= 0.0:
        return PingPongRisk(
            event=config.event.value,
            margin_db=margin,
            time_to_trigger_ms=config.time_to_trigger_ms,
            guaranteed=True,
            reason=(
                f"offset {config.offset:g} dB + hysteresis "
                f"{config.hysteresis:g} dB <= 0: forward and reverse A3 "
                "triggers overlap, comparable cells hand off in circles"
            ),
        )
    if margin < A3_RISK_BAND_DB and config.time_to_trigger_ms <= A3_RISK_TTT_MS:
        return PingPongRisk(
            event=config.event.value,
            margin_db=margin,
            time_to_trigger_ms=config.time_to_trigger_ms,
            guaranteed=False,
            reason=(
                f"{margin:g} dB separation band with "
                f"{config.time_to_trigger_ms} ms TTT: ordinary shadow "
                "fading re-triggers the reverse handoff"
            ),
        )
    return None


def analyze_a5(config: EventConfig) -> PingPongRisk | None:
    """Symbolic ping-pong risk of one armed A5/B2 event, if any."""
    if config.event not in (EventType.A5, EventType.B2):
        return None
    if config.metric != "rsrp" or config.threshold1 is None:
        return None
    if config.threshold1 < RSRP_CEILING_DBM:
        return None
    if config.time_to_trigger_ms > A5_RISK_TTT_MS:
        return None
    return PingPongRisk(
        event=config.event.value,
        margin_db=0.0,
        time_to_trigger_ms=config.time_to_trigger_ms,
        guaranteed=False,
        reason=(
            f"serving threshold {config.threshold1:g} dBm places no "
            "requirement on the serving cell, so the reverse A5 arms the "
            "instant the handoff completes; only the "
            f"{config.time_to_trigger_ms} ms TTT damps the loop"
        ),
    )


def pingpong_window_db(config: EventConfig) -> float:
    """Width (dB) of the signal-level window where a ping-pong can arm.

    A scalar the drift rules can compare across captures (HC304):

    * A3/A6 — overlap of forward and reverse trigger regions,
      ``max(0, -separation_band)``; a positive separation band means no
      overlap (0 dB window).
    * A5/B2 (rsrp) — width of serving levels that satisfy *both* the
      serving and (with the old serving as neighbor) the neighbor
      clause: the window where the reverse event is armed right after a
      handoff.
    * Everything else (serving-only events, periodic) — 0.0.
    """
    if config.event in (EventType.A3, EventType.A6):
        return max(0.0, -a3_separation_band(config))
    if (
        config.event in (EventType.A5, EventType.B2)
        and config.metric == "rsrp"
        and config.threshold1 is not None
        and config.threshold2 is not None
    ):
        window = a5_serving_interval(config).intersect(
            a5_neighbor_interval(config)
        )
        return window.width
    return 0.0


def analyze_event(config: EventConfig) -> PingPongRisk | None:
    """Dispatch to the right analyzer for one armed event."""
    if config.event in (EventType.A3, EventType.A6):
        return analyze_a3(config)
    if config.event in (EventType.A5, EventType.B2):
        return analyze_a5(config)
    return None
