"""The lint engine: run rules over snapshots, worlds and fleets.

Three entry layers, cheapest first:

* :func:`lint_snapshots` — audit crawled/constructed snapshots;
* :func:`lint_world` — audit a deployed world straight from its
  :class:`~repro.rrc.broadcast.ConfigServer` (no diag round trip, no
  simulation: this is the "audit millions of cell configs without
  running the simulator" path);
* :func:`warn_before_run` — the simulation preflight hook; memoizes one
  audit per world content-digest (and caches it per server for
  warn-once semantics) and surfaces findings as a
  :class:`ConfigLintWarning` so every drive knows what configuration
  problems it is driving through.

Audits optionally include the symbolic handoff-graph verifier
(:mod:`repro.lint.graph`, rules HC201-HC204) via ``graph=True``; graph
analysis shards per connected component over :mod:`repro.pipeline`
workers and re-verifies only components whose member configurations
changed since the analyzer last saw them.  ``coverage=True`` adds the
signal-space coverage analyzer (:mod:`repro.lint.coverage`, rules
HC401-HC405), which shards per cell the same way and attaches a
replayable :class:`~repro.lint.witness.CoverageWitness` to every
finding.
"""

from __future__ import annotations

import hashlib
import os
import warnings
import weakref
from dataclasses import dataclass, field

from repro.cellnet.cell import Cell
from repro.cellnet.rat import RAT
from repro.cellnet.world import RadioEnvironment
from repro.config.profiles import profile_for_carrier
from repro.core.crawler import CellConfigSnapshot
from repro.lint.baseline import Baseline
from repro.lint.coverage import CoverageAnalyzer, CoverageStats
from repro.lint.findings import (
    Finding,
    count_by_severity,
    sort_findings,
    summarize,
)
from repro.lint.graph import GraphAnalyzer, GraphStats
from repro.lint.rules import RegisteredRule, select_rules
from repro.lint.witness import CoverageWitness
from repro.rrc.broadcast import ConfigServer


class ConfigLintWarning(UserWarning):
    """Configuration findings surfaced before a simulation runs."""


@dataclass
class LintReport:
    """Everything one audit produced.

    Attributes:
        findings: New findings (baseline-suppressed ones excluded),
            deterministically sorted.
        suppressed: Findings matched by the baseline.
        snapshots_audited: How many cell snapshots the audit covered.
        rules_run: Codes of the rules that ran.
        graph_stats: Counters of the handoff-graph verification pass
            (None when the audit ran without ``graph=True``).
        coverage_stats: Counters of the signal-space coverage pass
            (None when the audit ran without ``coverage=True``).
        witnesses: Replayable counterexamples for coverage findings,
            keyed by finding fingerprint.  Baseline-suppressed findings
            drop their witnesses so reporters only see live ones.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    snapshots_audited: int = 0
    rules_run: tuple[str, ...] = ()
    graph_stats: GraphStats | None = None
    coverage_stats: CoverageStats | None = None
    witnesses: dict[str, CoverageWitness] = field(default_factory=dict)

    def counts_by_code(self) -> dict[str, int]:
        return summarize(self.findings)

    def counts_by_severity(self) -> dict[str, int]:
        return count_by_severity(self.findings)

    @property
    def has_problems(self) -> bool:
        return any(f.severity == "problem" for f in self.findings)

    @property
    def has_warnings(self) -> bool:
        return any(f.severity in ("warning", "problem") for f in self.findings)


def lint_snapshots(
    snapshots: list[CellConfigSnapshot],
    rules: tuple[RegisteredRule, ...] | None = None,
    codes: list[str] | None = None,
    baseline: Baseline | None = None,
    graph: bool = False,
    coverage: bool = False,
    workers: int | None = None,
    graph_analyzer: GraphAnalyzer | None = None,
    coverage_analyzer: CoverageAnalyzer | None = None,
) -> LintReport:
    """Run (all or selected) rules over a list of snapshots.

    Args:
        snapshots: The audit population.
        rules: Explicit rule set (overrides ``codes``).
        codes: Rule-code filter (default: every registered rule).
        baseline: Optional suppression baseline.
        graph: Also run the handoff-graph verifier (HC2xx rules).
        coverage: Also run the signal-space coverage analyzer (HC4xx
            rules); every coverage finding carries a replayable witness
            in :attr:`LintReport.witnesses`.
        workers: Worker processes for the graph/coverage passes
            (None/1 = serial).
        graph_analyzer: Analyzer instance to reuse for incremental
            per-component caching (default: a fresh one per call).
        coverage_analyzer: Analyzer instance to reuse for incremental
            per-cell caching (default: a fresh one per call).
    """
    if rules is None:
        rules = select_rules(codes)
    # Drift-scope rules need two captures; a single-capture audit can
    # never run them (repro.lint.diff.diff_lint is their engine).
    # Graph and coverage scopes run through their analyzers below.
    snapshot_rules = tuple(
        r for r in rules if r.scope not in ("graph", "drift", "coverage")
    )
    graph_codes = tuple(r.code for r in rules if r.scope == "graph")
    coverage_codes = tuple(r.code for r in rules if r.scope == "coverage")
    findings: list[Finding] = []
    for registered in snapshot_rules:
        findings.extend(registered.check(snapshots))
    graph_stats: GraphStats | None = None
    rules_run = tuple(r.code for r in snapshot_rules)
    if graph and graph_codes:
        analyzer = graph_analyzer if graph_analyzer is not None else GraphAnalyzer()
        graph_findings, graph_stats = analyzer.analyze(
            snapshots, codes=graph_codes, workers=workers
        )
        findings.extend(graph_findings)
        rules_run = rules_run + graph_codes
    coverage_stats: CoverageStats | None = None
    witnesses: dict[str, CoverageWitness] = {}
    if coverage and coverage_codes:
        cov = (
            coverage_analyzer
            if coverage_analyzer is not None
            else CoverageAnalyzer()
        )
        coverage_findings, coverage_stats, witnesses = cov.analyze(
            snapshots, codes=coverage_codes, workers=workers
        )
        findings.extend(coverage_findings)
        rules_run = rules_run + coverage_codes
    findings = sort_findings(findings)
    suppressed: list[Finding] = []
    if baseline is not None:
        findings, suppressed = baseline.split(findings)
    if witnesses:
        live = {f.fingerprint for f in findings}
        witnesses = {fp: w for fp, w in witnesses.items() if fp in live}
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        snapshots_audited=len(snapshots),
        rules_run=rules_run,
        graph_stats=graph_stats,
        coverage_stats=coverage_stats,
        witnesses=witnesses,
    )


def snapshot_for_cell(cell: Cell, server: ConfigServer) -> CellConfigSnapshot:
    """Build one cell's audit snapshot straight from the config server.

    The snapshot carries exactly what a crawler would recover from the
    cell's broadcasts plus a measConfig observation — but is built from
    the server's cached base configuration, skipping the diag encode/
    decode round trip.
    """
    if cell.rat is RAT.LTE:
        config = server.lte_config(cell)
        return CellConfigSnapshot(
            carrier=cell.carrier,
            gci=cell.cell_id.gci,
            rat=cell.rat.value,
            channel=cell.channel,
            city=cell.city,
            first_seen_ms=0,
            lte_config=config,
            meas_config=config.measurement,
        )
    profile = profile_for_carrier(cell.carrier, seed=server.seed)
    return CellConfigSnapshot(
        carrier=cell.carrier,
        gci=cell.cell_id.gci,
        rat=cell.rat.value,
        channel=cell.channel,
        city=cell.city,
        first_seen_ms=0,
        legacy_config=profile.legacy_config(cell),
    )


def world_snapshots(
    env: RadioEnvironment,
    server: ConfigServer,
    carriers: tuple[str, ...] | None = None,
    max_cells_per_carrier: int = 0,
) -> list[CellConfigSnapshot]:
    """Audit snapshots for a deployed world, optionally sampled.

    Args:
        env: The radio environment whose cells to audit.
        server: Configuration oracle for that environment.
        carriers: Restrict to these carriers (default: every carrier
            present in the deployment).
        max_cells_per_carrier: Audit at most this many cells per carrier
            (0 = all).  Sampling is deterministic — cells are taken in
            cell-id order — so repeated audits see the same population.
    """
    by_carrier: dict[str, list[Cell]] = {}
    for cell in env.registry:
        by_carrier.setdefault(cell.carrier, []).append(cell)
    wanted = sorted(by_carrier) if carriers is None else list(carriers)
    snapshots: list[CellConfigSnapshot] = []
    for carrier in wanted:
        cells = sorted(by_carrier.get(carrier, ()), key=lambda c: c.cell_id)
        if max_cells_per_carrier > 0:
            cells = cells[:max_cells_per_carrier]
        snapshots.extend(snapshot_for_cell(cell, server) for cell in cells)
    return snapshots


def lint_world(
    env: RadioEnvironment,
    server: ConfigServer,
    carriers: tuple[str, ...] | None = None,
    max_cells_per_carrier: int = 0,
    codes: list[str] | None = None,
    baseline: Baseline | None = None,
    graph: bool = False,
    coverage: bool = False,
    workers: int | None = None,
    graph_analyzer: GraphAnalyzer | None = None,
    coverage_analyzer: CoverageAnalyzer | None = None,
) -> LintReport:
    """Audit a whole deployed world (or fleet subset) in one pass."""
    snapshots = world_snapshots(
        env, server, carriers=carriers, max_cells_per_carrier=max_cells_per_carrier
    )
    return lint_snapshots(
        snapshots,
        codes=codes,
        baseline=baseline,
        graph=graph,
        coverage=coverage,
        workers=workers,
        graph_analyzer=graph_analyzer,
        coverage_analyzer=coverage_analyzer,
    )


#: Preflight audits cached per config server: {carrier: report}.  This
#: layer exists for warn-once semantics — the warning fires once per
#: (server, carrier), and repeated calls return the identical object.
_PREFLIGHT_CACHE: "weakref.WeakKeyDictionary[ConfigServer, dict[str, LintReport]]" = (
    weakref.WeakKeyDictionary()
)

#: World content digests cached per environment (the registry is
#: immutable for a deployed world, so the digest is computed once).
_WORLD_DIGESTS: "weakref.WeakKeyDictionary[RadioEnvironment, str]" = (
    weakref.WeakKeyDictionary()
)

#: Preflight reports memoized per world *content* digest: fresh servers
#: over the same deployment and seed reuse the finished audit instead of
#: re-running it, which is what keeps graph-enabled preflights free for
#: fleets of drives.  Keys are (world digest, config seed, carrier,
#: graph flag); the dict is bounded below.
_PREFLIGHT_REPORTS: dict[tuple[str, int, str, bool], LintReport] = {}

#: Bound on the digest-keyed memo; preflights touch a handful of worlds
#: per process, so eviction is a safety valve, not a steady state.
_PREFLIGHT_REPORTS_LIMIT = 64

#: Cell cap for preflight audits: enough for a representative verdict,
#: cheap enough to run in front of every first drive.
PREFLIGHT_MAX_CELLS = 200

#: Shared analyzer for preflight graph passes: its per-component cache
#: makes repeated preflights over overlapping worlds incremental.
_PREFLIGHT_GRAPH_ANALYZER = GraphAnalyzer()


def world_digest(env: RadioEnvironment, config_seed: int) -> str:
    """Content digest of a deployed world's configuration inputs.

    Every cell configuration is a deterministic function of the cell's
    identity/location and the profile seed, so hashing those inputs
    fingerprints the full configuration state without generating it.
    """
    cached = _WORLD_DIGESTS.get(env)
    if cached is None:
        hasher = hashlib.sha256()
        for cell in env.registry.all_cells():
            hasher.update(repr((
                cell.cell_id.carrier, cell.cell_id.gci, cell.rat.value,
                cell.channel, cell.pci, cell.location, cell.tx_power_dbm,
                cell.city, cell.bandwidth_mhz,
            )).encode())
        cached = hasher.hexdigest()[:16]
        _WORLD_DIGESTS[env] = cached
    return f"{cached}:{config_seed}"


def warn_before_run(
    env: RadioEnvironment,
    server: ConfigServer,
    carrier: str,
    graph: bool | None = None,
) -> LintReport:
    """Simulation preflight: audit ``carrier`` once and warn on findings.

    The finished report is memoized per world content-digest, so fleets
    of drives — even ones constructing a fresh :class:`ConfigServer`
    per drive — pay for the audit exactly once per deployment, and
    enabling graph rules adds no per-run latency.  The warning itself
    is emitted once per (server, carrier).

    Args:
        graph: Include the handoff-graph verifier in the preflight.
            Default: the ``REPRO_LINT_GRAPH`` environment variable
            (off unless set to a non-empty value other than "0").
    """
    if graph is None:
        graph = os.environ.get("REPRO_LINT_GRAPH", "0") not in ("", "0")
    per_server = _PREFLIGHT_CACHE.setdefault(server, {})
    cached = per_server.get(carrier)
    if cached is not None:
        return cached
    memo_key = (world_digest(env, server.seed), server.seed, carrier, graph)
    report = _PREFLIGHT_REPORTS.get(memo_key)
    if report is None:
        report = lint_world(
            env,
            server,
            carriers=(carrier,),
            max_cells_per_carrier=PREFLIGHT_MAX_CELLS,
            graph=graph,
            graph_analyzer=_PREFLIGHT_GRAPH_ANALYZER,
        )
        if len(_PREFLIGHT_REPORTS) >= _PREFLIGHT_REPORTS_LIMIT:
            _PREFLIGHT_REPORTS.clear()
        _PREFLIGHT_REPORTS[memo_key] = report
    per_server[carrier] = report
    if report.findings:
        severities = report.counts_by_severity()
        codes = ", ".join(sorted(report.counts_by_code()))
        warnings.warn(
            ConfigLintWarning(
                f"carrier {carrier!r} configuration has "
                f"{len(report.findings)} lint findings "
                f"({severities['problem']} problems, "
                f"{severities['warning']} warnings; rules: {codes}); "
                "run `python -m repro lint` for details"
            ),
            stacklevel=3,
        )
    return report
