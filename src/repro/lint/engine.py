"""The lint engine: run rules over snapshots, worlds and fleets.

Three entry layers, cheapest first:

* :func:`lint_snapshots` — audit crawled/constructed snapshots;
* :func:`lint_world` — audit a deployed world straight from its
  :class:`~repro.rrc.broadcast.ConfigServer` (no diag round trip, no
  simulation: this is the "audit millions of cell configs without
  running the simulator" path);
* :func:`warn_before_run` — the simulation preflight hook; caches one
  audit per (server, carrier) and surfaces findings as a
  :class:`ConfigLintWarning` so every drive knows what configuration
  problems it is driving through.
"""

from __future__ import annotations

import warnings
import weakref
from dataclasses import dataclass, field

from repro.cellnet.cell import Cell
from repro.cellnet.rat import RAT
from repro.cellnet.world import RadioEnvironment
from repro.config.profiles import profile_for_carrier
from repro.core.crawler import CellConfigSnapshot
from repro.lint.baseline import Baseline
from repro.lint.findings import (
    Finding,
    count_by_severity,
    sort_findings,
    summarize,
)
from repro.lint.rules import RegisteredRule, select_rules
from repro.rrc.broadcast import ConfigServer


class ConfigLintWarning(UserWarning):
    """Configuration findings surfaced before a simulation runs."""


@dataclass
class LintReport:
    """Everything one audit produced.

    Attributes:
        findings: New findings (baseline-suppressed ones excluded),
            deterministically sorted.
        suppressed: Findings matched by the baseline.
        snapshots_audited: How many cell snapshots the audit covered.
        rules_run: Codes of the rules that ran.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    snapshots_audited: int = 0
    rules_run: tuple[str, ...] = ()

    def counts_by_code(self) -> dict[str, int]:
        return summarize(self.findings)

    def counts_by_severity(self) -> dict[str, int]:
        return count_by_severity(self.findings)

    @property
    def has_problems(self) -> bool:
        return any(f.severity == "problem" for f in self.findings)

    @property
    def has_warnings(self) -> bool:
        return any(f.severity in ("warning", "problem") for f in self.findings)


def lint_snapshots(
    snapshots: list[CellConfigSnapshot],
    rules: tuple[RegisteredRule, ...] | None = None,
    codes: list[str] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run (all or selected) rules over a list of snapshots."""
    if rules is None:
        rules = select_rules(codes)
    findings: list[Finding] = []
    for registered in rules:
        findings.extend(registered.check(snapshots))
    findings = sort_findings(findings)
    suppressed: list[Finding] = []
    if baseline is not None:
        findings, suppressed = baseline.split(findings)
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        snapshots_audited=len(snapshots),
        rules_run=tuple(r.code for r in rules),
    )


def snapshot_for_cell(cell: Cell, server: ConfigServer) -> CellConfigSnapshot:
    """Build one cell's audit snapshot straight from the config server.

    The snapshot carries exactly what a crawler would recover from the
    cell's broadcasts plus a measConfig observation — but is built from
    the server's cached base configuration, skipping the diag encode/
    decode round trip.
    """
    if cell.rat is RAT.LTE:
        config = server.lte_config(cell)
        return CellConfigSnapshot(
            carrier=cell.carrier,
            gci=cell.cell_id.gci,
            rat=cell.rat.value,
            channel=cell.channel,
            city=cell.city,
            first_seen_ms=0,
            lte_config=config,
            meas_config=config.measurement,
        )
    profile = profile_for_carrier(cell.carrier, seed=server.seed)
    return CellConfigSnapshot(
        carrier=cell.carrier,
        gci=cell.cell_id.gci,
        rat=cell.rat.value,
        channel=cell.channel,
        city=cell.city,
        first_seen_ms=0,
        legacy_config=profile.legacy_config(cell),
    )


def world_snapshots(
    env: RadioEnvironment,
    server: ConfigServer,
    carriers: tuple[str, ...] | None = None,
    max_cells_per_carrier: int = 0,
) -> list[CellConfigSnapshot]:
    """Audit snapshots for a deployed world, optionally sampled.

    Args:
        env: The radio environment whose cells to audit.
        server: Configuration oracle for that environment.
        carriers: Restrict to these carriers (default: every carrier
            present in the deployment).
        max_cells_per_carrier: Audit at most this many cells per carrier
            (0 = all).  Sampling is deterministic — cells are taken in
            cell-id order — so repeated audits see the same population.
    """
    by_carrier: dict[str, list[Cell]] = {}
    for cell in env.registry:
        by_carrier.setdefault(cell.carrier, []).append(cell)
    wanted = sorted(by_carrier) if carriers is None else list(carriers)
    snapshots: list[CellConfigSnapshot] = []
    for carrier in wanted:
        cells = sorted(by_carrier.get(carrier, ()), key=lambda c: c.cell_id)
        if max_cells_per_carrier > 0:
            cells = cells[:max_cells_per_carrier]
        snapshots.extend(snapshot_for_cell(cell, server) for cell in cells)
    return snapshots


def lint_world(
    env: RadioEnvironment,
    server: ConfigServer,
    carriers: tuple[str, ...] | None = None,
    max_cells_per_carrier: int = 0,
    codes: list[str] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Audit a whole deployed world (or fleet subset) in one pass."""
    snapshots = world_snapshots(
        env, server, carriers=carriers, max_cells_per_carrier=max_cells_per_carrier
    )
    return lint_snapshots(snapshots, codes=codes, baseline=baseline)


#: Preflight audits cached per config server: {carrier: (report, warned)}.
_PREFLIGHT_CACHE: "weakref.WeakKeyDictionary[ConfigServer, dict]" = (
    weakref.WeakKeyDictionary()
)

#: Cell cap for preflight audits: enough for a representative verdict,
#: cheap enough to run in front of every first drive.
PREFLIGHT_MAX_CELLS = 200


def warn_before_run(
    env: RadioEnvironment, server: ConfigServer, carrier: str
) -> LintReport:
    """Simulation preflight: audit ``carrier`` once and warn on findings.

    The audit is cached per (server, carrier) so fleets of drives pay
    for it exactly once; the warning is emitted once per cache entry.
    """
    per_server = _PREFLIGHT_CACHE.setdefault(server, {})
    cached = per_server.get(carrier)
    if cached is not None:
        return cached[0]
    report = lint_world(
        env, server, carriers=(carrier,), max_cells_per_carrier=PREFLIGHT_MAX_CELLS
    )
    per_server[carrier] = (report, True)
    if report.findings:
        severities = report.counts_by_severity()
        codes = ", ".join(sorted(report.counts_by_code()))
        warnings.warn(
            ConfigLintWarning(
                f"carrier {carrier!r} configuration has "
                f"{len(report.findings)} lint findings "
                f"({severities['problem']} problems, "
                f"{severities['warning']} warnings; rules: {codes}); "
                "run `python -m repro lint` for details"
            ),
            stacklevel=3,
        )
    return report
