"""Reporters: text for terminals, JSON for pipelines, SARIF for CI.

Each renderer takes a :class:`~repro.lint.engine.LintReport` and returns
a string; none of them mutate the report.  The SARIF output follows the
2.1.0 schema shape (tool.driver.rules + results) so standard code-
scanning UIs can ingest fleet audits.
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.lint.engine import LintReport
from repro.lint.rules import all_rules

JSON_REPORT_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Lint severity -> SARIF result level.
SARIF_LEVELS = {"info": "note", "warning": "warning", "problem": "error"}


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report: summary table plus per-finding lines."""
    lines = [
        f"repro lint: {report.snapshots_audited} cell configurations audited, "
        f"{len(report.findings)} findings "
        f"({len(report.suppressed)} baseline-suppressed)"
    ]
    stats = report.graph_stats
    if stats is not None:
        lines.append(
            f"graph: {stats.cells} cells over {stats.layers} layers, "
            f"{stats.edges} edges in {stats.components} components "
            f"({stats.components_analyzed} analyzed, "
            f"{stats.components_cached} cached); "
            f"{stats.cycles_checked} cycles checked"
            + (f" ({stats.cycles_truncated} components truncated)"
               if stats.cycles_truncated else "")
        )
    counts = report.counts_by_code()
    if counts:
        names = {rule.code: rule.name for rule in all_rules()}
        lines.append("")
        for code, count in counts.items():
            lines.append(f"  {code}  {names.get(code, '?'):32s} {count:6d}")
        lines.append("")
    shown: set[str] = set()
    for finding in report.findings:
        first_of_code = finding.code not in shown
        shown.add(finding.code)
        if not (verbose or first_of_code):
            continue
        where = f"{finding.carrier}/{finding.gci}" if finding.gci >= 0 else finding.carrier
        if finding.channel >= 0:
            where += f" ch{finding.channel}"
        prefix = "" if verbose else "e.g. "
        lines.append(
            f"{prefix}{finding.code} [{finding.severity}] {where}: {finding.message}"
        )
    severities = report.counts_by_severity()
    lines.append(
        f"{severities['problem']} problems, {severities['warning']} warnings, "
        f"{severities['info']} informational"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable JSON report."""
    payload: dict[str, object] = {
        "version": JSON_REPORT_VERSION,
        "tool": "repro.lint",
        "snapshots_audited": report.snapshots_audited,
        "rules_run": list(report.rules_run),
        "counts_by_code": report.counts_by_code(),
        "counts_by_severity": report.counts_by_severity(),
        "suppressed": len(report.suppressed),
        "findings": [finding.to_dict() for finding in report.findings],
    }
    if report.graph_stats is not None:
        payload["graph_stats"] = asdict(report.graph_stats)
    return json.dumps(payload, indent=2)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 report for code-scanning ingestion.

    Cells have no file locations, so each result carries a synthetic
    ``logicalLocations`` entry (carrier/gci) plus the raw identifiers in
    ``properties``.
    """
    ran = set(report.rules_run)
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": SARIF_LEVELS[rule.severity]},
        }
        for rule in all_rules()
        if rule.code in ran
    ]
    results = [
        {
            "ruleId": finding.code,
            "level": SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "name": f"{finding.carrier}/{finding.gci}",
                            "kind": "namespace",
                        }
                    ]
                }
            ],
            "partialFingerprints": {"reproLint/v1": finding.fingerprint},
            "properties": {
                "carrier": finding.carrier,
                "gci": finding.gci,
                "channel": finding.channel,
                "subject": finding.subject,
            },
        }
        for finding in report.findings
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
