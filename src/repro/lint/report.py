"""Reporters: text for terminals, JSON for pipelines, SARIF for CI.

Each renderer takes a :class:`~repro.lint.engine.LintReport` (or, for
the ``*_diff_*`` family, a :class:`~repro.lint.diff.DriftReport`) and
returns a string; none of them mutate the report.  The SARIF output
follows the 2.1.0 schema shape (tool.driver.rules + results) so standard
code-scanning UIs can ingest fleet audits.

Severity handling is deliberately *not* local to this module: all three
formats and the CLI exit gate map through the one table in
:mod:`repro.lint.findings` (``SEVERITY_RANK`` for ordering/gating,
``SARIF_LEVELS`` for the SARIF ``level`` strings), so a finding can
never gate differently than it renders.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import TYPE_CHECKING

from repro.lint.engine import LintReport
from repro.lint.findings import SARIF_LEVELS, Finding
from repro.lint.rules import all_rules

if TYPE_CHECKING:
    from repro.lint.diff import DriftReport

JSON_REPORT_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report: summary table plus per-finding lines."""
    lines = [
        f"repro lint: {report.snapshots_audited} cell configurations audited, "
        f"{len(report.findings)} findings "
        f"({len(report.suppressed)} baseline-suppressed)"
    ]
    stats = report.graph_stats
    if stats is not None:
        lines.append(
            f"graph: {stats.cells} cells over {stats.layers} layers, "
            f"{stats.edges} edges in {stats.components} components "
            f"({stats.components_analyzed} analyzed, "
            f"{stats.components_cached} cached); "
            f"{stats.cycles_checked} cycles checked"
            + (f" ({stats.cycles_truncated} components truncated)"
               if stats.cycles_truncated else "")
        )
    cov = report.coverage_stats
    if cov is not None:
        lines.append(
            f"coverage: {cov.cells} cells "
            f"({cov.cells_analyzed} analyzed, {cov.cells_cached} cached), "
            f"{cov.regions} fire regions, {cov.gaps} critical-band gaps, "
            f"{cov.witnesses} replayable witnesses"
        )
    counts = report.counts_by_code()
    if counts:
        names = {rule.code: rule.name for rule in all_rules()}
        lines.append("")
        for code, count in counts.items():
            lines.append(f"  {code}  {names.get(code, '?'):32s} {count:6d}")
        lines.append("")
    shown: set[str] = set()
    for finding in report.findings:
        first_of_code = finding.code not in shown
        shown.add(finding.code)
        if not (verbose or first_of_code):
            continue
        where = f"{finding.carrier}/{finding.gci}" if finding.gci >= 0 else finding.carrier
        if finding.channel >= 0:
            where += f" ch{finding.channel}"
        prefix = "" if verbose else "e.g. "
        lines.append(
            f"{prefix}{finding.code} [{finding.severity}] {where}: {finding.message}"
        )
        witness = report.witnesses.get(finding.fingerprint)
        if witness is not None:
            lines.append(f"    witness ({witness.kind}): {witness.note}")
    severities = report.counts_by_severity()
    lines.append(
        f"{severities['problem']} problems, {severities['warning']} warnings, "
        f"{severities['info']} informational"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable JSON report."""
    payload: dict[str, object] = {
        "version": JSON_REPORT_VERSION,
        "tool": "repro.lint",
        "snapshots_audited": report.snapshots_audited,
        "rules_run": list(report.rules_run),
        "counts_by_code": report.counts_by_code(),
        "counts_by_severity": report.counts_by_severity(),
        "suppressed": len(report.suppressed),
        "findings": [finding.to_dict() for finding in report.findings],
    }
    if report.graph_stats is not None:
        payload["graph_stats"] = asdict(report.graph_stats)
    if report.coverage_stats is not None:
        payload["coverage_stats"] = asdict(report.coverage_stats)
    if report.witnesses:
        payload["witnesses"] = {
            fingerprint: witness.to_dict()
            for fingerprint, witness in sorted(report.witnesses.items())
        }
    return json.dumps(payload, indent=2)


def _sarif_rules(
    rules_run: tuple[str, ...] | list[str],
    findings: list[Finding],
) -> list[dict[str, object]]:
    """Rule metadata for ``tool.driver.rules``.

    Derived from the union of the rules that ran and the codes present
    in the results, so every result's ``ruleId`` resolves even when the
    findings come from a pass whose codes are not in ``rules_run``
    (e.g. drift findings carried in a gate report).  Iterating the
    registry — where each code appears exactly once, in code order —
    guarantees no duplicate entries when rule families mix.
    """
    wanted = set(rules_run) | {finding.code for finding in findings}
    return [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": SARIF_LEVELS[rule.severity]},
        }
        for rule in all_rules()
        if rule.code in wanted
    ]


def _sarif_result(finding: Finding, blame: str | None = None) -> dict[str, object]:
    properties: dict[str, object] = {
        "carrier": finding.carrier,
        "gci": finding.gci,
        "channel": finding.channel,
        "subject": finding.subject,
    }
    if blame is not None:
        properties["blame"] = blame
    return {
        "ruleId": finding.code,
        "level": SARIF_LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "logicalLocations": [
                    {
                        "name": f"{finding.carrier}/{finding.gci}",
                        "kind": "namespace",
                    }
                ]
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
        "properties": properties,
    }


def _sarif_payload(
    rules: list[dict[str, object]],
    results: list[dict[str, object]],
    run_properties: dict[str, object] | None = None,
) -> str:
    run: dict[str, object] = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "informationUri": "https://example.invalid/repro",
                "rules": rules,
            }
        },
        "results": results,
    }
    if run_properties:
        run["properties"] = run_properties
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(payload, indent=2)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 report for code-scanning ingestion.

    Cells have no file locations, so each result carries a synthetic
    ``logicalLocations`` entry (carrier/gci) plus the raw identifiers in
    ``properties``.  Coverage findings embed their replayable witness in
    the result's ``properties``.
    """
    results = []
    for finding in report.findings:
        result = _sarif_result(finding)
        witness = report.witnesses.get(finding.fingerprint)
        if witness is not None:
            properties = result["properties"]
            assert isinstance(properties, dict)
            properties["witness"] = witness.to_dict()
        results.append(result)
    return _sarif_payload(_sarif_rules(report.rules_run, report.findings), results)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


# ---------------------------------------------------------------------------
# Differential (drift) reporters


def render_diff_text(report: "DriftReport", verbose: bool = False) -> str:
    """Human-readable drift report: changes, introduced findings, blame."""
    lines = [
        f"repro lint --diff: {report.old_label!r} -> {report.new_label!r}, "
        f"{report.snapshots_audited} cell configurations audited"
    ]
    if len(report.timeline_labels) > 2:
        lines.append(
            "timeline: " + " -> ".join(report.timeline_labels)
        )
    stats = report.graph_stats
    if stats is not None:
        lines.append(
            f"graph re-verify: {stats.components} components "
            f"({stats.components_analyzed} re-analyzed, "
            f"{stats.components_cached} unchanged/cached)"
        )
    kind_counts = report.counts_by_change_kind()
    lines.append(
        f"{len(report.changes)} configuration changes"
        + (": " + ", ".join(f"{k} x{n}" for k, n in kind_counts.items())
           if kind_counts else "")
    )
    lines.append(
        f"{len(report.findings)} gate findings "
        f"({len(report.introduced)} introduced, {len(report.fixed)} fixed, "
        f"{len(report.suppressed)} baseline-suppressed)"
    )
    counts = report.counts_by_code()
    if counts:
        names = {rule.code: rule.name for rule in all_rules()}
        lines.append("")
        for code, count in counts.items():
            lines.append(f"  {code}  {names.get(code, '?'):32s} {count:6d}")
        lines.append("")
    blamed_changes = {c.change_id: c for c in report.changes}
    shown: set[str] = set()
    for finding in report.findings:
        first_of_code = finding.code not in shown
        shown.add(finding.code)
        if not (verbose or first_of_code):
            continue
        where = (
            f"{finding.carrier}/{finding.gci}" if finding.gci >= 0
            else finding.carrier
        )
        if finding.channel >= 0:
            where += f" ch{finding.channel}"
        prefix = "" if verbose else "e.g. "
        lines.append(
            f"{prefix}{finding.code} [{finding.severity}] {where}: "
            f"{finding.message}"
        )
        change_id = report.blame.get(finding.fingerprint)
        culprit = blamed_changes.get(change_id) if change_id else None
        if culprit is not None:
            lines.append(f"    blame: {culprit.describe()}")
    severities = report.counts_by_severity()
    lines.append(
        f"{severities['problem']} problems, {severities['warning']} warnings, "
        f"{severities['info']} informational"
    )
    return "\n".join(lines)


def render_diff_json(report: "DriftReport") -> str:
    """Machine-readable JSON drift report (findings carry blame ids)."""

    def finding_dict(finding: Finding) -> dict[str, object]:
        payload = finding.to_dict()
        payload["blame"] = report.blame.get(finding.fingerprint)
        return payload

    payload: dict[str, object] = {
        "version": JSON_REPORT_VERSION,
        "tool": "repro.lint",
        "mode": "diff",
        "old_label": report.old_label,
        "new_label": report.new_label,
        "timeline": list(report.timeline_labels),
        "snapshots_audited": report.snapshots_audited,
        "rules_run": list(report.rules_run),
        "changes": [change.to_dict() for change in report.changes],
        "counts_by_change_kind": report.counts_by_change_kind(),
        "counts_by_code": report.counts_by_code(),
        "counts_by_severity": report.counts_by_severity(),
        "old_counts_by_code": report.old_counts,
        "new_counts_by_code": report.new_counts,
        "introduced": len(report.introduced),
        "fixed": [finding.to_dict() for finding in report.fixed],
        "suppressed": len(report.suppressed),
        "findings": [finding_dict(finding) for finding in report.findings],
    }
    if report.graph_stats is not None:
        payload["graph_stats"] = asdict(report.graph_stats)
    return json.dumps(payload, indent=2)


def render_diff_sarif(report: "DriftReport") -> str:
    """SARIF 2.1.0 drift report; blame rides in result ``properties``."""
    results = [
        _sarif_result(finding, blame=report.blame.get(finding.fingerprint))
        for finding in report.findings
    ]
    return _sarif_payload(
        _sarif_rules(report.rules_run, report.findings),
        results,
        run_properties={
            "mode": "diff",
            "oldLabel": report.old_label,
            "newLabel": report.new_label,
            "changes": len(report.changes),
        },
    )


DIFF_RENDERERS = {
    "text": render_diff_text,
    "json": render_diff_json,
    "sarif": render_diff_sarif,
}
