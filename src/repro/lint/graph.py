"""Whole-network symbolic handoff-policy-graph verifier (HC201-HC204).

The paper's costliest misconfigurations are *persistent handoff loops
spanning three or more cells* (Section 6) — invisible to the per-cell
rules (HC001-012 see one snapshot) and to the 2-cell ping-pong algebra
of :mod:`repro.lint.pingpong`.  This module builds a typed directed
graph over an audited snapshot population and verifies it symbolically:

* **Nodes** are deployed frequency layers, one per (RAT, channel) of a
  carrier's cells in one city; each cell contributes its configuration
  to the node its own layer maps to.
* **Edges** are feasible transitions derived from the configurations:
  A3/A4/A5 and B1/B2 event configs (active mode), SIB5/6/7 reselection
  priorities and the SIB19 return path from UMTS (idle mode).  Every
  edge is annotated with the :class:`~repro.lint.pingpong.Interval` of
  serving/target RSRP under which its trigger condition holds, plus a
  *relative margin* for rank-based rules (A3's ``Off + Hys``,
  equal-priority reselection's ``Qhyst``) whose per-cycle sum plays the
  role of the 2-cell separation band.

On that graph the verifier runs SCC detection plus bounded simple-cycle
enumeration with interval-compatibility checking:

* **HC201** (loop-active): a cycle whose hops can all fire in connected
  mode — every node has a non-empty RSRP window (the intersection of
  the incoming edge's target constraint and the outgoing edge's serving
  constraint) and the summed relative margin is within the shadow-fading
  band; generalizes HC009/HC010 from 2 cells to k cells.
* **HC202** (loop-idle): the same feasibility over idle reselection
  edges only; generalizes HC103 with threshold awareness.
* **HC203** (dead target): a configured neighbor layer no audited cell
  deploys, or a transition rule whose interval constraint is empty —
  the rule can never fire.
* **HC204** (cross-RAT priority inversion): a strictly-higher-priority
  preference cycle whose layers span more than one RAT, found path-wise
  over the priority subgraph.

Analysis shards per (carrier, city, connected-component) through the
:mod:`repro.pipeline` backends, and a :class:`GraphAnalyzer` caches
per-component results keyed by a content digest over the member cells'
configurations — re-auditing a world where one cell changed re-verifies
only that cell's component.

The interval model is a deterministic near-exact heuristic: both
intervals of an edge come from the *source* cell's configuration, and
when several cells of a layer could carry a hop the verifier picks the
most permissive candidate (lowest margin, widest windows) with
deterministic tie-breaks.  RSRQ-metric events contribute edges with
unconstrained RSRP intervals (their thresholds live on another axis).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.config.events import EventConfig, EventType
from repro.config.lte import LteCellConfig
from repro.config.legacy import UmtsCellConfig
from repro.core.crawler import CellConfigSnapshot
from repro.lint.findings import Finding, sort_findings
from repro.lint.pingpong import (
    FULL_RSRP,
    RSRP_CEILING_DBM,
    RSRP_FLOOR_DBM,
    Interval,
    a4_neighbor_interval,
    a5_neighbor_interval,
    a5_serving_interval,
)
from repro.lint.rules import Issue, RegisteredRule, rule, select_rules
from repro.pipeline import ExecutionBackend, WorkUnit, resolve_backend

#: Longest simple cycle the enumerator checks.  The paper's observed
#: loops span 2-4 cells; longer cycles exist combinatorially but add
#: little diagnostic value and cost factorially.
MAX_CYCLE_LEN = 4

#: Per-component cap on enumerated cycles (dense priority graphs can
#: hold thousands of simple cycles; the first findings already tell the
#: operator which layers participate).
MAX_CYCLES_PER_COMPONENT = 200

#: Shadow-fading band (dB) a persistent loop's summed relative margin
#: must stay within to keep re-triggering; matches the 2-cell
#: :data:`~repro.lint.pingpong.A3_RISK_BAND_DB`.
LOOP_FADING_BAND_DB = 2.0

#: Wildcard channel: "every deployed channel of the target RAT".
ANY_CHANNEL = -1

#: Wildcard RAT for B1/B2 targets: "every deployed non-LTE layer".
ANY_LEGACY_RAT = "*legacy*"


@dataclass(frozen=True, order=True)
class LayerRef:
    """One graph node: a (RAT, channel) frequency layer."""

    rat: str
    channel: int

    def __str__(self) -> str:
        return f"{self.rat} ch{self.channel}"


@dataclass(frozen=True)
class LayerRule:
    """One outgoing transition rule of one cell's configuration.

    ``target`` may be a wildcard (:data:`ANY_CHANNEL` channel and/or
    :data:`ANY_LEGACY_RAT` RAT); edge construction expands wildcards
    over the layers actually deployed in the component.

    Attributes:
        target: Destination layer (possibly wildcard).
        mode: "idle" (reselection) or "active" (measurement event).
        kind: Rule flavor ("A3", "A5", "B1", "resel-higher", ...).
        serving_interval: Serving-cell RSRP under which the rule fires.
        target_interval: Target-cell RSRP under which the rule fires.
        margin_db: Relative separation the rule needs between target and
            serving (rank-based rules only; 0 for absolute thresholds).
        priority_delta: Target-layer priority minus serving priority
            (idle rules; 0 for active rules).
    """

    target: LayerRef
    mode: str
    kind: str
    serving_interval: Interval
    target_interval: Interval
    margin_db: float = 0.0
    priority_delta: int = 0


@dataclass(frozen=True)
class CellPolicy:
    """Everything the graph verifier needs from one cell's snapshot."""

    carrier: str
    gci: int
    city: str
    layer: LayerRef
    policy_digest: str
    serving_priority: int | None
    rules: tuple[LayerRule, ...]


@dataclass(frozen=True)
class PolicyEdge:
    """One concrete (wildcard-expanded) edge of the layer graph."""

    src: LayerRef
    dst: LayerRef
    via_gci: int
    mode: str
    kind: str
    serving_interval: Interval
    target_interval: Interval
    margin_db: float
    priority_delta: int


@dataclass(frozen=True)
class ComponentGraph:
    """One connected component of one carrier's layer graph in one city.

    Self-contained and picklable so a :class:`GraphComponentUnit` can
    carry it to a pool worker.
    """

    carrier: str
    city: str
    digest: str
    policies: tuple[CellPolicy, ...]

    @property
    def layers(self) -> tuple[LayerRef, ...]:
        """Deployed layers of the component, sorted."""
        return tuple(sorted({p.layer for p in self.policies}))


@dataclass(frozen=True)
class ComponentResult:
    """What analyzing one component produced (cache value)."""

    digest: str
    findings: tuple[Finding, ...]
    n_edges: int
    cycles_checked: int
    cycles_truncated: bool


@dataclass(frozen=True)
class GraphStats:
    """Deterministic counters of one graph analysis.

    Every field is independent of worker count and of wall-clock, so
    reports embedding these stats stay byte-identical across runs and
    ``--workers`` values.  ``components_cached`` is the incremental-
    analysis observable: a re-audit after mutating one cell re-analyzes
    exactly the dirty component and serves the rest from cache.
    """

    cells: int = 0
    layers: int = 0
    edges: int = 0
    components: int = 0
    components_analyzed: int = 0
    components_cached: int = 0
    cycles_checked: int = 0
    cycles_truncated: int = 0


# ---------------------------------------------------------------------------
# Policy extraction: snapshot -> CellPolicy


def snapshot_digest(snapshot: CellConfigSnapshot) -> str:
    """Content digest of one cell's configuration (dataclass reprs).

    Shared digest machinery: keys the per-component cache here and the
    per-cell digests of :class:`repro.lint.snapshot.ConfigSnapshot`, so
    the drift differ and the incremental graph verifier agree on what
    "unchanged" means.
    """
    text = repr((
        snapshot.carrier, snapshot.gci, snapshot.rat, snapshot.channel,
        snapshot.city, snapshot.lte_config, snapshot.legacy_config,
        snapshot.meas_config,
    ))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _reselection_rule(
    kind: str,
    target: LayerRef,
    priority_delta: int,
    serving_interval: Interval,
    target_interval: Interval,
    margin_db: float = 0.0,
) -> LayerRule:
    return LayerRule(
        target=target, mode="idle", kind=kind,
        serving_interval=serving_interval, target_interval=target_interval,
        margin_db=margin_db, priority_delta=priority_delta,
    )


def _lte_idle_rules(config: LteCellConfig) -> Iterator[LayerRule]:
    """SIB5/6/7 reselection rules of one LTE cell (TS 36.304 shape).

    Levels are converted to absolute dBm against each layer's
    ``q_rx_lev_min`` so intervals compose with the absolute event
    thresholds along a loop.  SIB8 (CDMA) is skipped: band classes do
    not map onto channel numbers, so its targets cannot be resolved to
    deployed layers.
    """
    own = config.serving.cell_reselection_priority
    serving_floor = config.serving.q_rx_lev_min
    for layer in config.inter_freq_layers:
        target = LayerRef("LTE", layer.dl_carrier_freq)
        delta = layer.cell_reselection_priority - own
        if delta > 0:
            yield _reselection_rule(
                "resel-higher", target, delta, FULL_RSRP,
                Interval(layer.q_rx_lev_min + layer.thresh_x_high_p, RSRP_CEILING_DBM),
            )
        elif delta < 0:
            yield _reselection_rule(
                "resel-lower", target, delta,
                Interval(RSRP_FLOOR_DBM,
                         serving_floor + config.serving.thresh_serving_low_p),
                Interval(layer.q_rx_lev_min + layer.thresh_x_low_p, RSRP_CEILING_DBM),
            )
        else:
            # Equal priority: rank-based (R-criterion) — the target must
            # beat serving by Qhyst + Qoffset, a relative margin.
            yield _reselection_rule(
                "resel-equal", target, 0, FULL_RSRP, FULL_RSRP,
                margin_db=config.serving.q_hyst + layer.q_offset_freq,
            )
    for utra in config.utra_layers:
        target = LayerRef("UMTS", utra.carrier_freq)
        delta = utra.cell_reselection_priority - own
        if delta > 0:
            yield _reselection_rule(
                "resel-higher", target, delta, FULL_RSRP,
                Interval(utra.q_rx_lev_min + utra.thresh_x_high, RSRP_CEILING_DBM),
            )
        elif delta < 0:
            yield _reselection_rule(
                "resel-lower", target, delta,
                Interval(RSRP_FLOOR_DBM,
                         serving_floor + config.serving.thresh_serving_low_p),
                Interval(utra.q_rx_lev_min + utra.thresh_x_low, RSRP_CEILING_DBM),
            )
    for geran in config.geran_layers:
        for channel in geran.carrier_freqs:
            target = LayerRef("GSM", channel)
            delta = geran.cell_reselection_priority - own
            if delta > 0:
                yield _reselection_rule(
                    "resel-higher", target, delta, FULL_RSRP,
                    Interval(geran.q_rx_lev_min + geran.thresh_x_high,
                             RSRP_CEILING_DBM),
                )
            elif delta < 0:
                yield _reselection_rule(
                    "resel-lower", target, delta,
                    Interval(RSRP_FLOOR_DBM,
                             serving_floor + config.serving.thresh_serving_low_p),
                    Interval(geran.q_rx_lev_min + geran.thresh_x_low,
                             RSRP_CEILING_DBM),
                )


def _event_rules(events: Sequence[EventConfig]) -> Iterator[LayerRule]:
    """Active-mode rules from the armed measurement events.

    A3/A4/A5 candidates are *all* intra-RAT neighbors (any channel) and
    B1/B2 candidates all inter-RAT neighbors, mirroring
    :class:`repro.ue.reporting.EventMonitor`; targets are therefore
    wildcards expanded against the component's deployed layers.  Events
    triggered on RSRQ get unconstrained RSRP intervals — their
    thresholds constrain a different axis.
    """
    for config in events:
        rsrp = config.metric == "rsrp"
        if config.event in (EventType.A3, EventType.A6):
            yield LayerRule(
                target=LayerRef("LTE", ANY_CHANNEL), mode="active",
                kind=config.event.value,
                serving_interval=FULL_RSRP, target_interval=FULL_RSRP,
                margin_db=config.offset + config.hysteresis,
            )
        elif config.event is EventType.A4:
            yield LayerRule(
                target=LayerRef("LTE", ANY_CHANNEL), mode="active", kind="A4",
                serving_interval=FULL_RSRP,
                target_interval=a4_neighbor_interval(config) if rsrp else FULL_RSRP,
            )
        elif config.event is EventType.A5:
            yield LayerRule(
                target=LayerRef("LTE", ANY_CHANNEL), mode="active", kind="A5",
                serving_interval=a5_serving_interval(config) if rsrp else FULL_RSRP,
                target_interval=a5_neighbor_interval(config) if rsrp else FULL_RSRP,
            )
        elif config.event is EventType.B1:
            yield LayerRule(
                target=LayerRef(ANY_LEGACY_RAT, ANY_CHANNEL), mode="active",
                kind="B1",
                serving_interval=FULL_RSRP,
                target_interval=a4_neighbor_interval(config) if rsrp else FULL_RSRP,
            )
        elif config.event is EventType.B2:
            yield LayerRule(
                target=LayerRef(ANY_LEGACY_RAT, ANY_CHANNEL), mode="active",
                kind="B2",
                serving_interval=a5_serving_interval(config) if rsrp else FULL_RSRP,
                target_interval=a5_neighbor_interval(config) if rsrp else FULL_RSRP,
            )


def _umts_rules(config: UmtsCellConfig) -> Iterator[LayerRule]:
    """SIB19 EUTRA reselection rules of one UMTS cell.

    An empty ``eutra_freq_list`` is the wildcard "any EUTRA layer".
    """
    delta = config.priority_eutra - config.priority_serving
    targets = (
        [LayerRef("LTE", ch) for ch in config.eutra_freq_list]
        if config.eutra_freq_list
        else [LayerRef("LTE", ANY_CHANNEL)]
    )
    for target in targets:
        if delta > 0:
            yield _reselection_rule(
                "sib19-higher", target, delta, FULL_RSRP,
                Interval(config.q_rxlevmin_eutra + config.thresh_high_eutra,
                         RSRP_CEILING_DBM),
            )
        elif delta < 0:
            yield _reselection_rule(
                "sib19-lower", target, delta,
                Interval(RSRP_FLOOR_DBM,
                         config.q_rxlevmin + config.thresh_serving_low),
                Interval(config.q_rxlevmin_eutra + config.thresh_low_eutra,
                         RSRP_CEILING_DBM),
            )


def cell_policy(snapshot: CellConfigSnapshot) -> CellPolicy | None:
    """Extract the graph-relevant policy of one snapshot.

    Returns None for snapshots without a rebuilt configuration (an
    episode that ended before SIB3 arrived contributes nothing).  Cells
    of RATs with no cross-layer policy (GSM/EVDO/CDMA1x) still become
    nodes — they can be handoff *targets* — just without outgoing edges.
    """
    rules: list[LayerRule] = []
    priority: int | None = None
    if snapshot.lte_config is not None:
        config = snapshot.lte_config
        priority = config.serving.cell_reselection_priority
        rules.extend(_lte_idle_rules(config))
        meas = snapshot.meas_config or config.measurement
        rules.extend(_event_rules(meas.events))
    elif isinstance(snapshot.legacy_config, UmtsCellConfig):
        priority = snapshot.legacy_config.priority_serving
        rules.extend(_umts_rules(snapshot.legacy_config))
    elif snapshot.legacy_config is None:
        return None
    return CellPolicy(
        carrier=snapshot.carrier,
        gci=snapshot.gci,
        city=snapshot.city,
        layer=LayerRef(snapshot.rat, snapshot.channel),
        policy_digest=snapshot_digest(snapshot),
        serving_priority=priority,
        rules=tuple(rules),
    )


# ---------------------------------------------------------------------------
# Graph construction: policies -> components -> edges


def _expand_targets(
    rule_: LayerRule, layers: Sequence[LayerRef], own: LayerRef
) -> list[LayerRef]:
    """Concrete destination layers of one (possibly wildcard) rule."""
    target = rule_.target
    if target.rat == ANY_LEGACY_RAT:
        return [ly for ly in layers if ly.rat != "LTE"]
    if target.channel == ANY_CHANNEL:
        return [ly for ly in layers if ly.rat == target.rat and ly != own]
    return [ly for ly in layers if ly == target]


def component_edges(component: ComponentGraph) -> list[PolicyEdge]:
    """Every concrete edge of a component, deterministically ordered."""
    layers = component.layers
    edges: list[PolicyEdge] = []
    for policy in component.policies:
        for rule_ in policy.rules:
            for dst in _expand_targets(rule_, layers, policy.layer):
                if dst == policy.layer:
                    continue
                edges.append(PolicyEdge(
                    src=policy.layer, dst=dst, via_gci=policy.gci,
                    mode=rule_.mode, kind=rule_.kind,
                    serving_interval=rule_.serving_interval,
                    target_interval=rule_.target_interval,
                    margin_db=rule_.margin_db,
                    priority_delta=rule_.priority_delta,
                ))
    edges.sort(key=lambda e: (e.src, e.dst, e.mode, e.kind, e.via_gci))
    return edges


def _connected_groups(
    nodes: Sequence[LayerRef], edges: Sequence[PolicyEdge]
) -> list[list[LayerRef]]:
    """Weakly connected components of the layer graph (deterministic)."""
    parent: dict[LayerRef, LayerRef] = {node: node for node in nodes}

    def find(node: LayerRef) -> LayerRef:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for edge in edges:
        a, b = find(edge.src), find(edge.dst)
        if a != b:
            parent[max(a, b)] = min(a, b)
    groups: dict[LayerRef, list[LayerRef]] = defaultdict(list)
    for node in sorted(nodes):
        groups[find(node)].append(node)
    return [groups[root] for root in sorted(groups)]


def build_components(
    snapshots: Sequence[CellConfigSnapshot],
) -> list[ComponentGraph]:
    """Partition an audit population into per-(carrier, city) components.

    Wildcard expansion happens against each (carrier, city) group's full
    layer population, so any two layers one cell can transition between
    always land in the same component; the component digest over member
    cells' policy digests is what makes re-analysis incremental.
    """
    by_group: dict[tuple[str, str], list[CellPolicy]] = defaultdict(list)
    for snapshot in snapshots:
        policy = cell_policy(snapshot)
        if policy is not None:
            by_group[(policy.carrier, policy.city)].append(policy)
    components: list[ComponentGraph] = []
    for (carrier, city), policies in sorted(by_group.items()):
        policies.sort(key=lambda p: (p.layer, p.gci))
        whole = ComponentGraph(
            carrier=carrier, city=city, digest="", policies=tuple(policies)
        )
        edges = component_edges(whole)
        for group in _connected_groups(whole.layers, edges):
            members = tuple(p for p in policies if p.layer in set(group))
            digest = hashlib.sha256(
                ("\n".join(p.policy_digest for p in members)).encode()
            ).hexdigest()[:16]
            components.append(ComponentGraph(
                carrier=carrier, city=city, digest=digest, policies=members
            ))
    return components


# ---------------------------------------------------------------------------
# Cycle enumeration and feasibility


def _strongly_connected(
    adjacency: dict[LayerRef, set[LayerRef]]
) -> list[list[LayerRef]]:
    """Iterative Tarjan SCC, deterministic via sorted iteration."""
    index: dict[LayerRef, int] = {}
    lowlink: dict[LayerRef, int] = {}
    on_stack: set[LayerRef] = set()
    stack: list[LayerRef] = []
    components: list[list[LayerRef]] = []
    counter = 0
    for root in sorted(adjacency):
        if root in index:
            continue
        work = [(root, iter(sorted(adjacency.get(root, ()))))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbors = work[-1]
            advanced = False
            for nxt in neighbors:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adjacency.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                members = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    if member == node:
                        break
                components.append(sorted(members))
    return components


def _enumerate_cycles(
    adjacency: dict[LayerRef, set[LayerRef]], limit: int
) -> tuple[list[tuple[LayerRef, ...]], bool]:
    """Simple cycles up to :data:`MAX_CYCLE_LEN`, canonically rotated.

    Within each SCC, DFS from the smallest node visiting only nodes that
    sort after it — each cycle is produced exactly once, starting at its
    smallest member.  Returns (cycles, truncated-at-limit flag).
    """
    cycles: list[tuple[LayerRef, ...]] = []
    truncated = False
    for scc in _strongly_connected(adjacency):
        if len(scc) < 2:
            continue
        members = set(scc)
        for start in scc:
            path = [start]
            seen = {start}

            def dfs(node: LayerRef) -> bool:
                nonlocal truncated
                for nxt in sorted(adjacency.get(node, ())):
                    if nxt not in members or nxt < start:
                        continue
                    if nxt == start and len(path) >= 2:
                        if len(cycles) >= limit:
                            truncated = True
                            return False
                        cycles.append(tuple(path))
                        continue
                    if nxt in seen or len(path) >= MAX_CYCLE_LEN:
                        continue
                    seen.add(nxt)
                    path.append(nxt)
                    if not dfs(nxt):
                        return False
                    path.pop()
                    seen.discard(nxt)
                return True

            if not dfs(start):
                return cycles, truncated
    return cycles, truncated


@dataclass(frozen=True)
class CycleFeasibility:
    """Verdict of the interval/margin check on one hop assignment."""

    feasible: bool
    guaranteed: bool
    margin_sum_db: float
    hops: tuple[PolicyEdge, ...]
    common_window: Interval


def _pick_candidate(candidates: list[PolicyEdge]) -> PolicyEdge:
    """Most permissive hop candidate, with deterministic tie-breaks."""
    return min(candidates, key=lambda e: (
        e.margin_db,
        -(e.serving_interval.width + e.target_interval.width),
        e.kind, e.mode, e.via_gci,
    ))


def check_cycle(
    cycle: tuple[LayerRef, ...],
    candidates: dict[tuple[LayerRef, LayerRef], list[PolicyEdge]],
    modes: tuple[str, ...],
    prefer_mode: str | None = None,
) -> CycleFeasibility | None:
    """Interval-compatibility check of one cycle under a mode policy.

    Picks one candidate edge per hop (restricted to ``modes``, preferring
    ``prefer_mode`` when offered), then requires every node's RSRP
    window — incoming hop's target constraint intersected with outgoing
    hop's serving constraint — to be non-empty, and the summed relative
    margin of rank-based hops to fit the shadow-fading band
    (``<= 0``: the loop needs no fading at all and is *guaranteed*).

    Returns None when some hop has no candidate in the allowed modes.
    """
    hops: list[PolicyEdge] = []
    for i, src in enumerate(cycle):
        dst = cycle[(i + 1) % len(cycle)]
        pool = [e for e in candidates.get((src, dst), ()) if e.mode in modes]
        if not pool:
            return None
        preferred = [e for e in pool if e.mode == prefer_mode]
        hops.append(_pick_candidate(preferred or pool))
    windows: list[Interval] = []
    for i in range(len(cycle)):
        incoming = hops[i - 1]
        outgoing = hops[i]
        windows.append(incoming.target_interval.intersect(outgoing.serving_interval))
    if any(w.empty for w in windows):
        return CycleFeasibility(False, False, 0.0, tuple(hops), FULL_RSRP)
    margin_sum = sum(h.margin_db for h in hops)
    feasible = margin_sum <= LOOP_FADING_BAND_DB
    guaranteed = margin_sum <= 0.0
    common = windows[0]
    for window in windows[1:]:
        common = common.intersect(window)
    return CycleFeasibility(feasible, guaranteed, margin_sum, tuple(hops), common)


def _cycle_message(
    cycle: tuple[LayerRef, ...], verdict: CycleFeasibility, mode_word: str
) -> str:
    """Deterministic human-readable loop description.

    Names the full cell cycle (via the cells whose configurations carry
    each hop) and the satisfying RSRP interval.
    """
    steps = [f"cell {hop.via_gci} ({cycle[i]})" for i, hop in enumerate(verdict.hops)]
    steps.append(f"cell {verdict.hops[0].via_gci} ({cycle[0]})")
    route = " -> ".join(steps)
    kinds = "/".join(sorted({h.kind for h in verdict.hops}))
    if verdict.common_window.empty:
        window = "per-hop RSRP windows individually satisfiable"
    else:
        window = f"satisfying RSRP window {verdict.common_window}"
    strength = (
        "needs no fading (guaranteed)"
        if verdict.guaranteed
        else (f"within the {LOOP_FADING_BAND_DB:g} dB fading band "
              f"(summed margin {verdict.margin_sum_db:g} dB)")
    )
    return (
        f"persistent {mode_word} handoff loop over {len(cycle)} layers: "
        f"{route} via {kinds}; {window}; {strength}"
    )


def _cycle_subject(cycle: tuple[LayerRef, ...]) -> str:
    return "<->".join(f"{ly.rat}:{ly.channel}" for ly in cycle)


# ---------------------------------------------------------------------------
# Graph-scope rules (registered for metadata/reporting; executed per
# component by analyze_component, not by the snapshot pass)


@rule("HC201", "k-cell-loop-active", scope="graph", severity="problem",
      summary="Persistent k-cell handoff loop feasible in connected mode")
def loop_active(component: ComponentGraph) -> Iterator[Issue]:
    for cycle, verdict in _feasible_cycles(component, ("idle", "active"), "active"):
        if not any(h.mode == "active" for h in verdict.hops):
            continue
        yield Issue(
            _cycle_message(cycle, verdict, "active-mode"),
            carrier=component.carrier,
            gci=verdict.hops[0].via_gci,
            channel=cycle[0].channel,
            subject=_cycle_subject(cycle),
        )


@rule("HC202", "k-cell-loop-idle", scope="graph", severity="problem",
      summary="Persistent k-cell reselection loop feasible in idle mode")
def loop_idle(component: ComponentGraph) -> Iterator[Issue]:
    for cycle, verdict in _feasible_cycles(component, ("idle",), None):
        yield Issue(
            _cycle_message(cycle, verdict, "idle-mode"),
            carrier=component.carrier,
            gci=verdict.hops[0].via_gci,
            channel=cycle[0].channel,
            subject=_cycle_subject(cycle),
        )


@rule("HC203", "dead-target-layer", scope="graph", severity="warning",
      summary="Configured neighbor layer undeployed or threshold unsatisfiable")
def dead_target(component: ComponentGraph) -> Iterator[Issue]:
    deployed = set(component.layers)
    for policy in component.policies:
        for rule_ in policy.rules:
            target = rule_.target
            explicit = target.channel != ANY_CHANNEL and target.rat != ANY_LEGACY_RAT
            if explicit and target not in deployed:
                yield Issue(
                    f"{rule_.kind} rule targets {target}, which no audited "
                    f"{component.carrier} cell in {component.city} deploys: "
                    "devices measure a layer that is never there",
                    carrier=policy.carrier,
                    gci=policy.gci,
                    channel=policy.layer.channel,
                    subject=f"{target.rat}:{target.channel}",
                )
            if rule_.serving_interval.empty or rule_.target_interval.empty:
                yield Issue(
                    f"{rule_.kind} rule toward {target} can never fire: its "
                    "trigger interval is empty (inverted thresholds)",
                    carrier=policy.carrier,
                    gci=policy.gci,
                    channel=policy.layer.channel,
                    subject=f"dead:{rule_.kind}:{target.rat}:{target.channel}",
                )


@rule("HC204", "cross-rat-priority-inversion", scope="graph", severity="warning",
      summary="Strictly-higher-priority preference cycle spanning RATs")
def priority_inversion(component: ComponentGraph) -> Iterator[Issue]:
    adjacency: dict[LayerRef, set[LayerRef]] = defaultdict(set)
    for edge in component_edges(component):
        if edge.mode == "idle" and edge.priority_delta > 0:
            adjacency[edge.src].add(edge.dst)
    for scc in _strongly_connected(dict(adjacency)):
        if len(scc) < 2 or len({ly.rat for ly in scc}) < 2:
            continue
        route = " -> ".join(str(ly) for ly in scc)
        yield Issue(
            f"cross-RAT priority inversion: layers {route} each defer to "
            "the next with strictly higher reselection priority — the "
            "preference order cannot be satisfied",
            carrier=component.carrier,
            channel=scc[0].channel,
            subject=_cycle_subject(tuple(scc)),
        )


def _feasible_cycles(
    component: ComponentGraph,
    modes: tuple[str, ...],
    prefer_mode: str | None,
) -> list[tuple[tuple[LayerRef, ...], CycleFeasibility]]:
    """Feasible cycles of a component under a mode policy (cached)."""
    edges = [e for e in component_edges(component) if e.mode in modes]
    adjacency: dict[LayerRef, set[LayerRef]] = defaultdict(set)
    candidates: dict[tuple[LayerRef, LayerRef], list[PolicyEdge]] = defaultdict(list)
    for edge in edges:
        adjacency[edge.src].add(edge.dst)
        candidates[(edge.src, edge.dst)].append(edge)
    cycles, _ = _enumerate_cycles(dict(adjacency), MAX_CYCLES_PER_COMPONENT)
    results = []
    for cycle in cycles:
        verdict = check_cycle(cycle, candidates, modes, prefer_mode)
        if verdict is not None and verdict.feasible:
            results.append((cycle, verdict))
    return results


# ---------------------------------------------------------------------------
# Per-component execution (pipeline work unit) and the analyzer


def graph_rules(codes: Sequence[str] | None = None) -> tuple[RegisteredRule, ...]:
    """The registered graph-scope rules, optionally filtered by code."""
    return tuple(
        r for r in select_rules(list(codes) if codes is not None else None)
        if r.scope == "graph"
    )


def analyze_component(
    component: ComponentGraph, codes: tuple[str, ...]
) -> ComponentResult:
    """Run the graph-scope rules over one component (picklable entry)."""
    edges = component_edges(component)
    adjacency: dict[LayerRef, set[LayerRef]] = defaultdict(set)
    for edge in edges:
        adjacency[edge.src].add(edge.dst)
    cycles, truncated = _enumerate_cycles(dict(adjacency), MAX_CYCLES_PER_COMPONENT)
    findings: list[Finding] = []
    for registered in graph_rules(codes):
        for issue in registered.func(component):
            findings.append(registered.stamp(issue))
    return ComponentResult(
        digest=component.digest,
        findings=tuple(sort_findings(findings)),
        n_edges=len(edges),
        cycles_checked=len(cycles),
        cycles_truncated=truncated,
    )


@dataclass(frozen=True)
class GraphComponentUnit(WorkUnit):
    """One component analysis on a :mod:`repro.pipeline` backend."""

    unit_id: int
    component: ComponentGraph
    codes: tuple[str, ...]

    def run(self) -> ComponentResult:
        return analyze_component(self.component, self.codes)


#: Upper bound on cached component results; a full default world holds
#: a few hundred components, so eviction only triggers on pathological
#: churn (then the cache simply restarts cold).
_CACHE_LIMIT = 4096


class GraphAnalyzer:
    """Incremental whole-network analyzer with a per-component cache.

    Results are keyed by ``(component digest, rule codes)``: re-auditing
    a world where one cell's configuration changed re-analyzes exactly
    the component containing that cell and serves every other component
    from cache.  The analyzer is cheap to construct; callers that want
    incrementality across audits hold on to one instance (the preflight
    hook keeps a module-global one).
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, tuple[str, ...]], ComponentResult] = {}

    def analyze(
        self,
        snapshots: Sequence[CellConfigSnapshot],
        codes: Sequence[str] | None = None,
        workers: int | None = None,
        backend: ExecutionBackend | None = None,
    ) -> tuple[list[Finding], GraphStats]:
        """Verify an audit population; returns (findings, stats).

        Findings are deterministically sorted and independent of
        ``workers`` (components are self-contained and merged in
        canonical order).
        """
        rule_codes = tuple(r.code for r in graph_rules(codes))
        components = build_components(snapshots)
        results: dict[str, ComponentResult] = {}
        pending: list[GraphComponentUnit] = []
        cached = 0
        for component in components:
            hit = self._cache.get((component.digest, rule_codes))
            if hit is not None:
                results[component.digest] = hit
                cached += 1
            else:
                pending.append(GraphComponentUnit(
                    unit_id=len(pending), component=component, codes=rule_codes
                ))
        runner = resolve_backend(workers, backend)
        for result in runner.run(pending):
            assert isinstance(result, ComponentResult)
            if len(self._cache) >= _CACHE_LIMIT:
                self._cache.clear()
            self._cache[(result.digest, rule_codes)] = result
            results[result.digest] = result
        findings: list[Finding] = []
        edges = cycles = truncated = 0
        for component in components:
            result = results[component.digest]
            findings.extend(result.findings)
            edges += result.n_edges
            cycles += result.cycles_checked
            truncated += int(result.cycles_truncated)
        stats = GraphStats(
            cells=sum(len(c.policies) for c in components),
            layers=sum(len(c.layers) for c in components),
            edges=edges,
            components=len(components),
            components_analyzed=len(pending),
            components_cached=cached,
            cycles_checked=cycles,
            cycles_truncated=truncated,
        )
        return sort_findings(findings), stats
