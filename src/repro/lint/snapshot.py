"""Versioned configuration snapshots: the unit the drift analyzer diffs.

The paper's longitudinal findings (Section 5.3, Fig. 22) are about how
carrier configurations *evolve* — parameters retuned over months, RAT
layers retired, measurement profiles migrated.  A single audit cannot
see any of that; a :class:`ConfigSnapshot` freezes one crawled (or
deployed) population to disk so two captures can be compared
semantically by :mod:`repro.lint.diff`.

Design points:

* **Content-digested per cell** — every member cell carries the same
  sha256 digest the PR 4 graph verifier caches on
  (:func:`repro.lint.graph.snapshot_digest`), so "this cell changed"
  means exactly the same thing to the differ and to the incremental
  re-verification pass.
* **Versioned file format** — a ``version`` field is checked on load,
  like :class:`repro.lint.baseline.Baseline` files.
* **Atomic saves** — temp file in the target directory + ``os.replace``
  (the :mod:`repro.datasets.store` discipline): a crashed capture never
  leaves a torn snapshot behind.
* **Typed codec, not pickles** — configurations are recursively encoded
  from their frozen dataclasses into tagged JSON and rebuilt through
  the dataclass constructors (re-running their validation) on load.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.config.events import EventConfig, EventType, PeriodicConfig
from repro.config.legacy import (
    Cdma1xCellConfig,
    EvdoCellConfig,
    GsmCellConfig,
    UmtsCellConfig,
)
from repro.config.lte import (
    InterFreqLayerConfig,
    InterRatCdmaConfig,
    InterRatGeranConfig,
    InterRatUtraConfig,
    IntraFreqNeighborConfig,
    LteCellConfig,
    MeasurementConfig,
    ServingCellConfig,
)
from repro.core.crawler import CellConfigSnapshot
from repro.lint.graph import snapshot_digest

if TYPE_CHECKING:
    from repro.cellnet.world import RadioEnvironment
    from repro.rrc.broadcast import ConfigServer

SNAPSHOT_VERSION = 1
SNAPSHOT_TOOL = "repro.lint"

#: Every dataclass the codec may encounter inside a cell snapshot,
#: keyed by class name (the ``__type__`` tag in the file).
_CONFIG_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        CellConfigSnapshot,
        LteCellConfig,
        ServingCellConfig,
        IntraFreqNeighborConfig,
        InterFreqLayerConfig,
        InterRatUtraConfig,
        InterRatGeranConfig,
        InterRatCdmaConfig,
        MeasurementConfig,
        EventConfig,
        PeriodicConfig,
        UmtsCellConfig,
        GsmCellConfig,
        EvdoCellConfig,
        Cdma1xCellConfig,
    )
}


def encode_value(value: object) -> object:
    """Recursively encode a config value into tagged, JSON-safe data.

    Dataclasses become ``{"__type__": name, ...fields...}`` (fields with
    ``repr=False`` — the crawler's transient SIB buffer — are dropped),
    enums become ``{"__enum__": ..., "value": ...}``, tuples are tagged
    so decode can restore them (config sequence fields are tuples).
    """
    if is_dataclass(value) and not isinstance(value, type):
        if type(value).__name__ not in _CONFIG_TYPES:
            raise TypeError(f"unregistered config type {type(value).__name__}")
        payload: dict[str, object] = {"__type__": type(value).__name__}
        for f in fields(value):
            if not f.repr:
                continue
            payload[f.name] = encode_value(getattr(value, f.name))
        return payload
    if isinstance(value, EventType):
        return {"__enum__": "EventType", "value": value.value}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__} value {value!r}")


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value` (constructors re-validate)."""
    if isinstance(value, dict):
        if "__enum__" in value:
            return EventType(value["value"])
        if "__tuple__" in value:
            raw = value["__tuple__"]
            assert isinstance(raw, list)
            return tuple(decode_value(v) for v in raw)
        tag = value.get("__type__")
        if tag is not None:
            cls = _CONFIG_TYPES.get(str(tag))
            if cls is None:
                raise ValueError(f"unknown config type tag {tag!r}")
            kwargs = {
                str(k): decode_value(v) for k, v in value.items() if k != "__type__"
            }
            return cls(**kwargs)
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


@dataclass(frozen=True)
class ConfigSnapshot:
    """One captured configuration state of a fleet, ready to diff.

    Attributes:
        label: Human-readable capture label (e.g. ``"round-003"``).
        captured_day: Observation day of the capture (timeline axis for
            the longitudinal drift rules).
        cells: Member cell snapshots in canonical (carrier, gci,
            channel) order.
    """

    label: str
    captured_day: float
    cells: tuple[CellConfigSnapshot, ...]

    @classmethod
    def capture(
        cls,
        snapshots: Sequence[CellConfigSnapshot],
        label: str,
        captured_day: float = 0.0,
    ) -> "ConfigSnapshot":
        """Freeze an audit population into a snapshot (canonical order)."""
        ordered = sorted(snapshots, key=lambda s: (s.carrier, s.gci, s.channel))
        return cls(label=label, captured_day=captured_day, cells=tuple(ordered))

    @classmethod
    def capture_world(
        cls,
        env: "RadioEnvironment",
        server: "ConfigServer",
        label: str,
        carriers: tuple[str, ...] | None = None,
        max_cells_per_carrier: int = 0,
        captured_day: float = 0.0,
    ) -> "ConfigSnapshot":
        """Capture a deployed world straight from its config server."""
        from repro.lint.engine import world_snapshots

        return cls.capture(
            world_snapshots(
                env, server, carriers=carriers,
                max_cells_per_carrier=max_cells_per_carrier,
            ),
            label=label,
            captured_day=captured_day,
        )

    def cell_digests(self) -> dict[tuple[str, int], str]:
        """Per-cell content digests, keyed by (carrier, gci).

        The same digests the graph verifier's component cache is keyed
        on — the differ's fast path for unchanged cells.
        """
        return {(c.carrier, c.gci): snapshot_digest(c) for c in self.cells}

    @property
    def fleet_digest(self) -> str:
        """Digest over every member cell digest (order-independent)."""
        joined = "\n".join(
            digest for _, digest in sorted(self.cell_digests().items())
        )
        return hashlib.sha256(joined.encode()).hexdigest()[:16]

    def __len__(self) -> int:
        return len(self.cells)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the snapshot atomically (temp file + ``os.replace``)."""
        payload = {
            "version": SNAPSHOT_VERSION,
            "tool": SNAPSHOT_TOOL,
            "label": self.label,
            "captured_day": self.captured_day,
            "fleet_digest": self.fleet_digest,
            "cells": [encode_value(cell) for cell in self.cells],
        }
        target = Path(path)
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(payload, f, indent=2)
                f.write("\n")
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str | Path) -> "ConfigSnapshot":
        """Read a snapshot file, validating its version."""
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {payload.get('version')!r} "
                f"in {path} (expected {SNAPSHOT_VERSION})"
            )
        cells = []
        for raw in payload.get("cells", []):
            cell = decode_value(raw)
            assert isinstance(cell, CellConfigSnapshot)
            cells.append(cell)
        return cls.capture(
            cells,
            label=str(payload.get("label", "")),
            captured_day=float(payload.get("captured_day", 0.0)),
        )
