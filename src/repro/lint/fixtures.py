"""Synthetic misconfiguration scenarios for the graph and coverage verifiers.

The centerpiece is :func:`loop_fixture`: a deliberately misconfigured
3-cell LTE deployment whose configurations chain every cell to the next
one — cell 1 prefers cell 2's channel, 2 prefers 3's, 3 prefers 1's —
with an A5 event whose serving threshold sits at the reporting ceiling
(no serving requirement, paper Section 4.1).  The handoff-policy graph
of this world contains a 3-layer cycle that is *statically guaranteed*
(HC201), and a drive simulation of a stationary device demonstrably
enters the loop.  The ``misconfigured=False`` twin keeps the same
deployment but sane thresholds and flat priorities: the analyzer stays
quiet and the simulator performs no handoffs.

:func:`dead_zone_fixture` is the coverage analyzer's counterpart: a
2-cell deployment whose A5 thresholds sit below the radio-link-failure
level, leaving the whole critical band [-127, -115] dBm uncovered
(HC401 dead zone, plus an HC404 TTT-vs-fading contradiction in the
1 dB sliver the event *can* fire in).  Its corrected twin arms the same
event family at sane levels and is HC4xx-clean.

Configurations are injected through :class:`StaticConfigServer`, a
:class:`~repro.rrc.broadcast.ConfigServer` whose cells broadcast fixed,
caller-supplied configurations instead of profile-derived ones — the
lint/simulator analogue of a table-driven unit-test double.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.deployment import DeploymentPlan
from repro.cellnet.geo import Point
from repro.cellnet.rat import RAT
from repro.cellnet.world import RadioEnvironment
from repro.config.events import EventConfig, EventType
from repro.config.lte import (
    InterFreqLayerConfig,
    LteCellConfig,
    MeasurementConfig,
    ServingCellConfig,
)
from repro.rrc.broadcast import ConfigServer
from repro.rrc.messages import RrcConnectionReconfiguration

#: Carrier and LTE channels of the fixture (three of carrier A's
#: holdings, so band/frequency lookups resolve normally).
LOOP_CARRIER = "A"
LOOP_CHANNELS = (850, 1975, 2000)

#: City label of the fixture cells (not in the deployment catalog; the
#: fixture builds its plan by hand).
LOOP_CITY = "LoopFixture"

#: Fixture plane origin, far away from every catalogued city.
_ORIGIN = Point(5_000_000.0, 5_000_000.0)

#: Triangle circumradius: small enough that a device at the centroid
#: hears all three cells strongly.
_RADIUS_M = 160.0


class StaticConfigServer(ConfigServer):
    """A config server broadcasting fixed per-cell configurations.

    Overrides every configuration source a UE consults — the cached
    base config, per-observation (churned) configs and the connected-
    mode measConfig — so simulations and audits both see exactly the
    injected configuration.
    """

    def __init__(
        self, env: RadioEnvironment, configs: dict[CellId, LteCellConfig],
        seed: int = 2018,
    ) -> None:
        super().__init__(env, seed=seed)
        self.configs = dict(configs)

    def lte_config(self, cell: Cell) -> LteCellConfig:
        if cell.cell_id in self.configs:
            return self.configs[cell.cell_id]
        return super().lte_config(cell)

    def observed_lte_config(
        self, cell: Cell, obs_rng: np.random.Generator, days_since_first: float = 0.0
    ) -> LteCellConfig:
        if cell.cell_id in self.configs:
            return self.configs[cell.cell_id]
        return super().observed_lte_config(
            cell, obs_rng, days_since_first=days_since_first
        )

    def connection_reconfiguration(
        self, cell: Cell, obs_rng: np.random.Generator | None = None
    ) -> RrcConnectionReconfiguration:
        if cell.cell_id in self.configs:
            return RrcConnectionReconfiguration(
                meas_config=self.configs[cell.cell_id].measurement
            )
        return super().connection_reconfiguration(cell, obs_rng=obs_rng)


@dataclass
class LoopScenario:
    """The fixture bundle: deployment, environment, injected configs."""

    plan: DeploymentPlan
    env: RadioEnvironment
    server: StaticConfigServer
    cells: tuple[Cell, ...]
    #: Where a stationary drive should park to hear all three cells.
    centroid: Point
    misconfigured: bool


def _cell_config(index: int, misconfigured: bool) -> LteCellConfig:
    """Configuration of fixture cell ``index`` (0-based).

    Misconfigured: the cell assigns the *next* channel in the ring a
    much higher reselection priority (idle pull) and arms an A5 whose
    serving threshold is the reporting ceiling — any audible neighbor
    above -112 dBm triggers a handoff regardless of serving quality
    (active pull).  Corrected: flat priorities, and an A5 that requires
    the serving cell below -100 dBm while the target must exceed
    -90 dBm — intervals that no stationary device near three strong
    cells can satisfy (and whose loop windows are statically empty).
    """
    next_channel = LOOP_CHANNELS[(index + 1) % len(LOOP_CHANNELS)]
    if misconfigured:
        serving = ServingCellConfig(cell_reselection_priority=1, q_hyst=4.0)
        layer = InterFreqLayerConfig(
            dl_carrier_freq=next_channel,
            cell_reselection_priority=7,
            thresh_x_high_p=0.0,
        )
        event = EventConfig(
            event=EventType.A5,
            threshold1=-44.0,   # ceiling: no serving requirement
            threshold2=-112.0,  # any audible neighbor qualifies
            hysteresis=1.0,
            time_to_trigger_ms=40,
        )
    else:
        serving = ServingCellConfig(cell_reselection_priority=4, q_hyst=4.0)
        layer = InterFreqLayerConfig(
            dl_carrier_freq=next_channel,
            cell_reselection_priority=4,
            thresh_x_high_p=12.0,
        )
        event = EventConfig(
            event=EventType.A5,
            threshold1=-100.0,
            threshold2=-90.0,
            hysteresis=1.0,
            time_to_trigger_ms=640,
        )
    return LteCellConfig(
        serving=serving,
        inter_freq_layers=(layer,),
        measurement=MeasurementConfig(events=(event,), s_measure=-44.0),
    )


def loop_fixture(misconfigured: bool = True) -> LoopScenario:
    """Build the 3-cell loop world (or its corrected twin).

    Deterministic: same flag, same world, same configurations.
    """
    plan = DeploymentPlan()
    centroid = _ORIGIN
    cells = []
    for index, channel in enumerate(LOOP_CHANNELS):
        angle = 2.0 * np.pi * index / len(LOOP_CHANNELS)
        location = centroid.offset(
            _RADIUS_M * float(np.cos(angle)), _RADIUS_M * float(np.sin(angle))
        )
        cell = Cell(
            cell_id=CellId(LOOP_CARRIER, plan.next_gci(LOOP_CARRIER)),
            rat=RAT.LTE,
            channel=channel,
            pci=100 + index,
            location=location,
            city=LOOP_CITY,
        )
        plan.registry.add(cell)
        cells.append(cell)
    env = RadioEnvironment(plan)
    configs = {
        cell.cell_id: _cell_config(index, misconfigured)
        for index, cell in enumerate(cells)
    }
    server = StaticConfigServer(env, configs)
    return LoopScenario(
        plan=plan,
        env=env,
        server=server,
        cells=tuple(cells),
        centroid=centroid,
        misconfigured=misconfigured,
    )


# ---------------------------------------------------------------------------
# Dead-zone fixture (coverage analyzer, HC401/HC404)

#: Carrier and LTE channels of the dead-zone fixture.
DEAD_ZONE_CARRIER = "A"
DEAD_ZONE_CHANNELS = (850, 1975)

#: City label of the dead-zone fixture cells.
DEAD_ZONE_CITY = "DeadZoneFixture"

#: Fixture plane origin, away from the loop fixture and every city.
_DEAD_ZONE_ORIGIN = Point(5_500_000.0, 5_000_000.0)

#: Inter-site distance: far enough apart that a device leaving one
#: cell's service area degrades through the whole critical band before
#: the other cell becomes dominant.
_DEAD_ZONE_SPACING_M = 2_600.0


@dataclass
class DeadZoneScenario:
    """The dead-zone fixture bundle."""

    plan: DeploymentPlan
    env: RadioEnvironment
    server: StaticConfigServer
    cells: tuple[Cell, ...]
    misconfigured: bool


def _dead_zone_config(index: int, misconfigured: bool) -> LteCellConfig:
    """Configuration of dead-zone fixture cell ``index`` (0-based).

    Misconfigured: the A5 serving-leave threshold (-126 dBm, hysteresis
    1) only opens *below* -127 dBm — past radio-link failure — so no
    handoff-capable event covers the critical band [-127, -115] dBm
    (HC401), and the 1 dB band the event can fire in passes faster than
    its 1024 ms time-to-trigger (HC404).  Corrected: the same A5 leaves
    at serving < -107 dBm toward a target above -105 dBm, covering the
    critical band with dwell to spare.
    """
    other = DEAD_ZONE_CHANNELS[(index + 1) % len(DEAD_ZONE_CHANNELS)]
    layer = InterFreqLayerConfig(
        dl_carrier_freq=other,
        cell_reselection_priority=4,
        thresh_x_high_p=12.0,
    )
    if misconfigured:
        event = EventConfig(
            event=EventType.A5,
            threshold1=-126.0,  # leave only below -127 dBm: past RLF
            threshold2=-121.0,
            hysteresis=1.0,
            time_to_trigger_ms=1024,
        )
    else:
        event = EventConfig(
            event=EventType.A5,
            threshold1=-106.0,
            threshold2=-106.0,
            hysteresis=1.0,
            time_to_trigger_ms=480,
        )
    return LteCellConfig(
        serving=ServingCellConfig(cell_reselection_priority=4),
        inter_freq_layers=(layer,),
        measurement=MeasurementConfig(events=(event,), s_measure=-44.0),
    )


def dead_zone_fixture(misconfigured: bool = True) -> DeadZoneScenario:
    """Build the 2-cell dead-zone world (or its corrected twin).

    Deterministic: same flag, same world, same configurations.
    """
    plan = DeploymentPlan()
    cells = []
    for index, channel in enumerate(DEAD_ZONE_CHANNELS):
        location = _DEAD_ZONE_ORIGIN.offset(index * _DEAD_ZONE_SPACING_M, 0.0)
        cell = Cell(
            cell_id=CellId(DEAD_ZONE_CARRIER, plan.next_gci(DEAD_ZONE_CARRIER)),
            rat=RAT.LTE,
            channel=channel,
            pci=150 + index,
            location=location,
            city=DEAD_ZONE_CITY,
        )
        plan.registry.add(cell)
        cells.append(cell)
    env = RadioEnvironment(plan)
    configs = {
        cell.cell_id: _dead_zone_config(index, misconfigured)
        for index, cell in enumerate(cells)
    }
    server = StaticConfigServer(env, configs)
    return DeadZoneScenario(
        plan=plan,
        env=env,
        server=server,
        cells=tuple(cells),
        misconfigured=misconfigured,
    )
