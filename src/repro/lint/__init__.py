"""``repro.lint``: static analysis for handoff configurations.

The paper's operator-facing takeaway is that *misconfigurations* —
priority preference loops, inverted A5 thresholds, negative A3 offsets,
threshold gaps (Section 6) — cause persistent handoff loops and
throughput loss, and it explicitly proposes automated configuration
verification as the remedy.  This package is that verifier: a rule
engine that audits cell configurations statically, without running the
simulator.

Layout:

* :mod:`findings` — the :class:`Finding` result record, the shared
  severity table and the ``--fail-on`` exit-code gate;
* :mod:`rules` — the :class:`Rule` protocol, ``@rule`` decorator and
  registry of stable ``HCnnn`` codes;
* :mod:`cell_rules` / :mod:`network_rules` — the built-in rules;
* :mod:`pingpong` — symbolic hysteresis/TTT/offset ping-pong algebra
  and the :class:`Interval` RSRP algebra it shares with the graph pass;
* :mod:`graph` — the whole-network symbolic handoff-graph verifier
  (persistent k-cell loops, dead layers, priority inversions);
* :mod:`snapshot` — versioned :class:`ConfigSnapshot` captures of a
  fleet's configuration state (atomic saves, typed codec);
* :mod:`diff` — the differential drift analyzer: semantic
  :class:`ConfigChange` records between captures and the
  :func:`diff_lint` regression gate;
* :mod:`drift_rules` — the HC3xx drift rules evaluated over
  ``(old, new, changes)``;
* :mod:`coverage` — the signal-space coverage analyzer (HC4xx): per-cell
  fire-region partitions over the interval algebra, dead zones, shadowed
  events, TTT contradictions and overlap windows;
* :mod:`witness` — replayable counterexample witnesses: every HC4xx
  finding carries a synthesized trajectory that, replayed through the
  drive simulator, exhibits the predicted failure;
* :mod:`explain` — per-rule documentation with minimal triggering
  configuration examples (``repro lint --explain``);
* :mod:`fixtures` — deterministic misconfigured worlds for tests;
* :mod:`engine` — snapshot/world audits and the simulation preflight;
* :mod:`baseline` — suppression files for known-and-accepted findings;
* :mod:`report` — text, JSON and SARIF renderers (plus the ``diff``
  variants that carry change blame).

Quick start::

    from repro.lint import lint_world
    report = lint_world(scenario.env, scenario.server)
    print(report.counts_by_code())

Drift gating::

    from repro.lint import ConfigSnapshot, diff_lint
    old = ConfigSnapshot.load("capture-000.json")
    new = ConfigSnapshot.load("capture-001.json")
    report = diff_lint(old, new)
    print([f.code for f in report.findings], report.blame)
"""

from repro.lint.baseline import Baseline
from repro.lint.coverage import (
    CoverageAnalyzer,
    CoverageStats,
    FireRegion,
    coverage_gaps,
    fire_regions,
)
from repro.lint.diff import (
    CHANGE_KINDS,
    ConfigChange,
    DriftContext,
    DriftReport,
    blame_change,
    diff_config_snapshots,
    diff_lint,
    flatten_cell,
)
from repro.lint.engine import (
    ConfigLintWarning,
    LintReport,
    lint_snapshots,
    lint_world,
    snapshot_for_cell,
    warn_before_run,
    world_snapshots,
)
from repro.lint.findings import (
    SEVERITIES,
    SEVERITY_RANK,
    Finding,
    count_by_severity,
    exit_code,
    sort_findings,
    summarize,
)
from repro.lint.graph import (
    GraphAnalyzer,
    GraphStats,
    build_components,
    cell_policy,
    snapshot_digest,
)
from repro.lint.pingpong import FULL_RSRP, Interval
from repro.lint.report import (
    render_diff_json,
    render_diff_sarif,
    render_diff_text,
    render_json,
    render_sarif,
    render_text,
)
from repro.lint.rules import (
    Issue,
    RegisteredRule,
    Rule,
    all_rules,
    get_rule,
    rule,
    select_rules,
)
from repro.lint.snapshot import ConfigSnapshot
from repro.lint.witness import (
    CoverageWitness,
    ReplayOutcome,
    classify_replay,
    replay_witness,
    replay_witnesses,
)

__all__ = [
    "Baseline",
    "CHANGE_KINDS",
    "ConfigChange",
    "ConfigLintWarning",
    "ConfigSnapshot",
    "CoverageAnalyzer",
    "CoverageStats",
    "CoverageWitness",
    "DriftContext",
    "DriftReport",
    "FULL_RSRP",
    "Finding",
    "FireRegion",
    "GraphAnalyzer",
    "GraphStats",
    "Interval",
    "Issue",
    "LintReport",
    "RegisteredRule",
    "ReplayOutcome",
    "Rule",
    "SEVERITIES",
    "SEVERITY_RANK",
    "all_rules",
    "classify_replay",
    "coverage_gaps",
    "fire_regions",
    "replay_witness",
    "replay_witnesses",
    "blame_change",
    "build_components",
    "cell_policy",
    "count_by_severity",
    "diff_config_snapshots",
    "diff_lint",
    "exit_code",
    "flatten_cell",
    "get_rule",
    "lint_snapshots",
    "lint_world",
    "render_diff_json",
    "render_diff_sarif",
    "render_diff_text",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "select_rules",
    "snapshot_digest",
    "snapshot_for_cell",
    "sort_findings",
    "summarize",
    "warn_before_run",
    "world_snapshots",
]
