"""``repro.lint``: static analysis for handoff configurations.

The paper's operator-facing takeaway is that *misconfigurations* —
priority preference loops, inverted A5 thresholds, negative A3 offsets,
threshold gaps (Section 6) — cause persistent handoff loops and
throughput loss, and it explicitly proposes automated configuration
verification as the remedy.  This package is that verifier: a rule
engine that audits cell configurations statically, without running the
simulator.

Layout:

* :mod:`findings` — the :class:`Finding` result record;
* :mod:`rules` — the :class:`Rule` protocol, ``@rule`` decorator and
  registry of stable ``HCnnn`` codes;
* :mod:`cell_rules` / :mod:`network_rules` — the built-in rules;
* :mod:`pingpong` — symbolic hysteresis/TTT/offset ping-pong algebra
  and the :class:`Interval` RSRP algebra it shares with the graph pass;
* :mod:`graph` — the whole-network symbolic handoff-graph verifier
  (persistent k-cell loops, dead layers, priority inversions);
* :mod:`fixtures` — deterministic misconfigured worlds for tests;
* :mod:`engine` — snapshot/world audits and the simulation preflight;
* :mod:`baseline` — suppression files for known-and-accepted findings;
* :mod:`report` — text, JSON and SARIF renderers.

Quick start::

    from repro.lint import lint_world
    report = lint_world(scenario.env, scenario.server)
    print(report.counts_by_code())
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    ConfigLintWarning,
    LintReport,
    lint_snapshots,
    lint_world,
    snapshot_for_cell,
    warn_before_run,
    world_snapshots,
)
from repro.lint.findings import (
    SEVERITIES,
    Finding,
    count_by_severity,
    sort_findings,
    summarize,
)
from repro.lint.graph import GraphAnalyzer, GraphStats, build_components, cell_policy
from repro.lint.pingpong import FULL_RSRP, Interval
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.rules import (
    Issue,
    RegisteredRule,
    Rule,
    all_rules,
    get_rule,
    rule,
    select_rules,
)

__all__ = [
    "Baseline",
    "ConfigLintWarning",
    "FULL_RSRP",
    "Finding",
    "GraphAnalyzer",
    "GraphStats",
    "Interval",
    "Issue",
    "LintReport",
    "RegisteredRule",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "build_components",
    "cell_policy",
    "count_by_severity",
    "get_rule",
    "lint_snapshots",
    "lint_world",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "select_rules",
    "snapshot_for_cell",
    "sort_findings",
    "summarize",
    "warn_before_run",
    "world_snapshots",
]
