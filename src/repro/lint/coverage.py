"""Signal-space coverage analyzer (HC401-HC405).

The paper's Q2 analysis shows that handoff failures are often baked into
the *configuration*: threshold gaps between serving-leave and
target-entry conditions produce handoff-too-late radio-link failures,
shadowed events never fire, and hysteresis/TTT windows mismatched to
fading oscillate.  The per-cell rules (HC0xx) catch parameter-local
smells and the graph verifier (HC2xx) cross-cell loops; this module
reasons about the *continuous signal space* of one cell: which serving-
RSRP regions are handled by which armed event, and which by none.

Each armed event contributes a :class:`FireRegion` — the interval of
serving RSRP where its trigger condition can complete, derived from the
TS 36.331 entry algebra of :mod:`repro.lint.pingpong` and clipped by the
s-Measure gate (neighbor-triggered events cannot fire while the serving
cell is above s-Measure, :class:`repro.ue.reporting.EventMonitor`).  The
per-layer partition those regions induce yields five rules:

* **HC401** dead zone: a sub-band of the critical region
  [:data:`RLF_RSRP_DBM`, :data:`ACCEPTABLE_SERVICE_DBM`] that no
  handoff-capable event covers — a UE degrading through it has no
  configured escape until the link fails (handoff-too-late).
* **HC402** shadowed event: an absolute-threshold event whose entry
  region another same-family event fully subsumes with an equal-or-
  shorter TTT — the subsumed event can never be the decisive one.
* **HC403** measurement-gap hole: A2 arms measurement only below a
  serving level at which the target-entry thresholds would require a
  physically implausible neighbor advantage.
* **HC404** TTT-vs-fading contradiction: the time-to-trigger exceeds
  the dwell time physically possible inside the fire region at the
  configured edge-decay rate — the event cannot complete before RLF.
* **HC405** leave/entry overlap: the serving-leave and target-entry
  thresholds overlap, opening a symbolic ping-pong window (the k=2
  interval counterpart of HC009/HC010's margin heuristics).

Every finding carries a :class:`~repro.lint.witness.CoverageWitness`
(:mod:`repro.lint.witness`): a synthesized trajectory that replayed
through the drive simulator exhibits the predicted failure.

Analysis shards per cell over :mod:`repro.pipeline` workers, and a
:class:`CoverageAnalyzer` caches per-cell results keyed by the shared
content digest of :func:`repro.lint.graph.snapshot_digest` — re-auditing
a world where one cell changed re-analyzes only that cell, and reports
are byte-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence

from repro.config.events import EventConfig, EventType
from repro.core.crawler import CellConfigSnapshot
from repro.lint.findings import Finding, sort_findings
from repro.lint.graph import snapshot_digest
from repro.lint.pingpong import (
    A5_RISK_TTT_MS,
    FULL_RSRP,
    RSRP_CEILING_DBM,
    RSRP_FLOOR_DBM,
    Interval,
    a3_separation_band,
    a4_neighbor_interval,
    a5_neighbor_interval,
    a5_serving_interval,
)
from repro.lint.rules import Issue, RegisteredRule, get_rule, rule, select_rules
from repro.lint.witness import (
    ACCEPTABLE_SERVICE_DBM,
    RLF_RSRP_DBM,
    CoverageWitness,
    WITNESS_SPEED_MPS,
)
from repro.pipeline import ExecutionBackend, WorkUnit, resolve_backend

#: Minimum width (dB) of an uncovered critical sub-band worth reporting;
#: sub-dB slivers are measurement noise, not dead zones.
DEAD_ZONE_MIN_DB = 2.0

#: Largest neighbor-over-serving advantage (dB) treated as physically
#: plausible when HC403 relates the A2 measurement gate to target-entry
#: floors: a target >25 dB above a cell-edge serving signal would have
#: been the serving cell long before.
MAX_NEIGHBOR_ADVANTAGE_DB = 25.0

#: Serving-edge decay rate (dB/s) HC404 assumes when converting a fire
#: region's width into the dwell time available to a time-to-trigger —
#: vehicular movement through a suburban cell edge loses roughly this.
EDGE_DECAY_DB_PER_S = 2.0

#: HC405 escalates to problem severity at this window width when the
#: TTT is within :data:`~repro.lint.pingpong.A5_RISK_TTT_MS`.
PINGPONG_PROBLEM_DB = 6.0

#: The periodic-report margin of the handover controller
#: (:data:`repro.ue.handover._PERIODIC_DECISION_MARGIN_DB`): periodic
#: reports only cause handoffs when a candidate beats serving by this.
PERIODIC_MARGIN_DB = 4.0

#: Walk witnesses start this far (dB) above the failing region.
_ENTRY_MARGIN_DB = 12.0

#: Ping-pong park witnesses hold this long (s); long enough for two
#: flips at the slowest standardized TTT (5120 ms).
_PINGPONG_HOLD_S = 60.0

#: The critical band: serving levels between "service unacceptable" and
#: "link lost", where a handoff-capable event must be able to fire.
CRITICAL_BAND = Interval(RLF_RSRP_DBM, ACCEPTABLE_SERVICE_DBM)


@dataclass(frozen=True)
class FireRegion:
    """Where one armed trigger can fire, in serving-RSRP space.

    Attributes:
        label: Stable trigger label, e.g. ``"A5[0]"``, ``"periodic"``,
            ``"resel-lower"`` (event labels carry the armed-event index
            so duplicate events stay distinguishable).
        mode: "active" (measurement event) or "idle" (reselection).
        handoff: Whether completing the trigger can change the serving
            cell (A1/A2 reports alone never do).
        serving: Serving-RSRP interval where the trigger can fire,
            already clipped by the s-Measure measurement gate for
            neighbor-triggered events.
        neighbor: Neighbor-RSRP requirement (absolute-threshold events;
            :data:`~repro.lint.pingpong.FULL_RSRP` otherwise).
        relative: Trigger compares neighbor *against serving* rather
            than an absolute threshold (A3/A6, periodic, rank-based
            reselection).
        margin_db: Required neighbor-over-serving margin of relative
            triggers (0 for absolute ones).
        time_to_trigger_ms: The trigger's TTT (0 when not applicable).
    """

    label: str
    mode: str
    handoff: bool
    serving: Interval
    neighbor: Interval
    relative: bool = False
    margin_db: float = 0.0
    time_to_trigger_ms: int = 0


def _event_label(event: EventConfig, index: int) -> str:
    return f"{event.event.value}[{index}]"


def fire_regions(snapshot: CellConfigSnapshot) -> tuple[FireRegion, ...]:
    """The fire-region partition of one LTE cell's armed trigger set.

    Non-LTE snapshots contribute no regions (their reselection policy
    lives on the graph verifier's axis).  Events triggered on RSRQ get
    unconstrained serving intervals — their thresholds constrain a
    different axis, so treating them as always able to fire avoids
    false dead zones.
    """
    config = snapshot.lte_config
    if config is None:
        return ()
    meas = snapshot.meas_config or config.measurement
    # Neighbor measurement gate: open while serving RSRP <= s-Measure.
    gate = Interval(RSRP_FLOOR_DBM, meas.s_measure)
    regions: list[FireRegion] = []
    for index, event in enumerate(meas.events):
        label = _event_label(event, index)
        rsrp = event.metric == "rsrp"
        ttt = event.time_to_trigger_ms
        hys = event.hysteresis
        if event.event is EventType.A1:
            assert event.threshold1 is not None
            serving = (
                Interval(event.threshold1 + hys, RSRP_CEILING_DBM, lo_open=True)
                if rsrp else FULL_RSRP
            )
            regions.append(FireRegion(
                label=label, mode="active", handoff=False,
                serving=serving, neighbor=FULL_RSRP, time_to_trigger_ms=ttt,
            ))
        elif event.event is EventType.A2:
            assert event.threshold1 is not None
            serving = (
                Interval(RSRP_FLOOR_DBM, event.threshold1 - hys, hi_open=True)
                if rsrp else FULL_RSRP
            )
            regions.append(FireRegion(
                label=label, mode="active", handoff=False,
                serving=serving, neighbor=FULL_RSRP, time_to_trigger_ms=ttt,
            ))
        elif event.event in (EventType.A3, EventType.A6):
            regions.append(FireRegion(
                label=label, mode="active", handoff=True,
                serving=FULL_RSRP.intersect(gate), neighbor=FULL_RSRP,
                relative=True, margin_db=event.offset + hys,
                time_to_trigger_ms=ttt,
            ))
        elif event.event in (EventType.A4, EventType.B1):
            neighbor = a4_neighbor_interval(event) if rsrp else FULL_RSRP
            regions.append(FireRegion(
                label=label, mode="active", handoff=True,
                serving=gate, neighbor=neighbor, time_to_trigger_ms=ttt,
            ))
        elif event.event in (EventType.A5, EventType.B2):
            serving = a5_serving_interval(event) if rsrp else FULL_RSRP
            neighbor = a5_neighbor_interval(event) if rsrp else FULL_RSRP
            regions.append(FireRegion(
                label=label, mode="active", handoff=True,
                serving=serving.intersect(gate), neighbor=neighbor,
                time_to_trigger_ms=ttt,
            ))
    if meas.periodic is not None:
        regions.append(FireRegion(
            label="periodic", mode="active", handoff=True,
            serving=gate, neighbor=FULL_RSRP,
            relative=True, margin_db=PERIODIC_MARGIN_DB,
        ))
    # Idle reselection regions (documented in the partition and stats;
    # HC401 deliberately ignores them — a *connected* UE cannot be
    # rescued by idle reselection until RRC release).
    serving_cfg = config.serving
    regions.append(FireRegion(
        label="resel-intra", mode="idle", handoff=True,
        serving=FULL_RSRP, neighbor=FULL_RSRP,
        relative=True, margin_db=serving_cfg.q_hyst,
    ))
    own = serving_cfg.cell_reselection_priority
    lower_layers = (
        [ly.cell_reselection_priority for ly in config.inter_freq_layers]
        + [ly.cell_reselection_priority for ly in config.utra_layers]
        + [ly.cell_reselection_priority for ly in config.geran_layers]
    )
    if any(priority < own for priority in lower_layers):
        regions.append(FireRegion(
            label="resel-lower", mode="idle", handoff=True,
            serving=Interval(
                RSRP_FLOOR_DBM,
                serving_cfg.q_rx_lev_min + serving_cfg.thresh_serving_low_p,
            ),
            neighbor=FULL_RSRP,
        ))
    return tuple(regions)


def _rescue_regions(regions: Sequence[FireRegion]) -> list[FireRegion]:
    """Active-mode regions that can actually change the serving cell.

    Absolute-threshold events with an empty neighbor requirement are
    dead (HC011's territory) and rescue nothing.
    """
    return [
        r for r in regions
        if r.mode == "active" and r.handoff
        and (r.relative or not r.neighbor.empty)
    ]


def _subtract(band: Interval, covered: Sequence[Interval]) -> list[Interval]:
    """The parts of ``band`` no interval of ``covered`` reaches."""
    gaps = [band]
    for interval in sorted(
        (iv for iv in covered if not iv.empty),
        key=lambda iv: (iv.lo, iv.lo_open),
    ):
        remaining: list[Interval] = []
        for gap in gaps:
            meet = gap.intersect(interval)
            if meet.empty:
                remaining.append(gap)
                continue
            left = Interval(gap.lo, meet.lo, gap.lo_open, not meet.lo_open)
            if not left.empty:
                remaining.append(left)
            right = Interval(meet.hi, gap.hi, not meet.hi_open, gap.hi_open)
            if not right.empty:
                remaining.append(right)
        gaps = remaining
    return gaps


def coverage_gaps(regions: Sequence[FireRegion]) -> tuple[Interval, ...]:
    """Critical-band sub-intervals no handoff-capable event covers."""
    covered = [r.serving for r in _rescue_regions(regions)]
    return tuple(_subtract(CRITICAL_BAND, covered))


# ---------------------------------------------------------------------------
# Witness construction helpers


def _cell_config(snapshot: CellConfigSnapshot):
    """The effective configuration a connected UE would run under."""
    config = snapshot.lte_config
    assert config is not None
    meas = snapshot.meas_config or config.measurement
    return replace(config, measurement=meas)


def _neighbor_channel(snapshot: CellConfigSnapshot) -> int:
    """Witness neighbor EARFCN: the first inter-freq layer, else own."""
    config = snapshot.lte_config
    assert config is not None
    for layer in config.inter_freq_layers:
        if layer.dl_carrier_freq != snapshot.channel:
            return layer.dl_carrier_freq
    return snapshot.channel


def _walk_witness(
    code: str,
    snapshot: CellConfigSnapshot,
    region_hi: float,
    region_lo: float,
    kind: str,
    note: str,
    subject_event: str = "",
) -> CoverageWitness:
    """A drive-outward witness through [region_lo, region_hi]."""
    config = _cell_config(snapshot)
    entry = min(-60.0, region_hi + _ENTRY_MARGIN_DB)
    exit_ = max(RSRP_FLOOR_DBM + 2.0, min(region_lo - 1.0, RLF_RSRP_DBM))
    return CoverageWitness(
        code=code,
        kind=kind,
        carrier=snapshot.carrier,
        gci=snapshot.gci,
        channel=snapshot.channel,
        neighbor_channel=_neighbor_channel(snapshot),
        config=config,
        neighbor_config=config,
        entry_dbm=entry,
        exit_dbm=exit_,
        speed_mps=WITNESS_SPEED_MPS,
        subject_event=subject_event,
        note=note,
    )


def _park_witness(
    code: str,
    snapshot: CellConfigSnapshot,
    level_dbm: float,
    note: str,
    subject_event: str = "",
) -> CoverageWitness:
    """A stationary ping-pong witness parked at ``level_dbm``."""
    config = _cell_config(snapshot)
    return CoverageWitness(
        code=code,
        kind="ping-pong",
        carrier=snapshot.carrier,
        gci=snapshot.gci,
        channel=snapshot.channel,
        neighbor_channel=_neighbor_channel(snapshot),
        config=config,
        neighbor_config=config,
        entry_dbm=level_dbm,
        exit_dbm=level_dbm,
        hold_s=_PINGPONG_HOLD_S,
        speed_mps=0.0,
        subject_event=subject_event,
        note=note,
    )


# ---------------------------------------------------------------------------
# Rule internals: generators yielding (Issue, CoverageWitness) pairs


_Generated = Iterator[tuple[Issue, CoverageWitness]]


def _issue(snapshot: CellConfigSnapshot, message: str, subject: str,
           severity: str | None = None) -> Issue:
    return Issue(
        message=message,
        severity=severity,
        carrier=snapshot.carrier,
        gci=snapshot.gci,
        channel=snapshot.channel,
        subject=subject,
    )


def _hc401(
    snapshot: CellConfigSnapshot,
    regions: Sequence[FireRegion],
    gaps: Sequence[Interval],
) -> _Generated:
    rescuers = _rescue_regions(regions)
    for gap in gaps:
        if gap.width < DEAD_ZONE_MIN_DB:
            continue
        armed = ", ".join(r.label for r in rescuers) or "none"
        message = (
            f"dead zone {gap}: no handoff-capable event fires anywhere in "
            f"this sub-band of the critical region "
            f"[{RLF_RSRP_DBM:g}, {ACCEPTABLE_SERVICE_DBM:g}] dBm — a "
            "connected UE degrading through it has no configured escape "
            f"before radio-link failure (handoff-capable triggers: {armed})"
        )
        witness = _walk_witness(
            "HC401", snapshot, gap.hi, gap.lo, "missed-handoff",
            note=(
                f"drive from {min(-60.0, gap.hi + _ENTRY_MARGIN_DB):g} dBm "
                f"down through the uncovered band {gap}; no event rescues "
                "the UE, so service degrades into an outage/RLF that a "
                "covering configuration avoids by handing off near "
                f"{ACCEPTABLE_SERVICE_DBM + 8.0:g} dBm"
            ),
        )
        yield _issue(snapshot, message, f"gap:{gap.lo:g}:{gap.hi:g}"), witness


#: Event families whose absolute entry regions can shadow each other
#: (intra-RAT vs inter-RAT targets never compete for the same report).
_SHADOW_FAMILIES = (
    (EventType.A4, EventType.A5),
    (EventType.B1, EventType.B2),
)


def _hc402(
    snapshot: CellConfigSnapshot,
    regions: Sequence[FireRegion],
    gaps: Sequence[Interval],
) -> _Generated:
    by_label = {r.label: r for r in regions}
    meas = snapshot.meas_config
    config = snapshot.lte_config
    if meas is None and config is not None:
        meas = config.measurement
    if meas is None:
        return
    events = list(enumerate(meas.events))
    for family in _SHADOW_FAMILIES:
        members = [
            (i, e) for i, e in events
            if e.event in family and e.metric == "rsrp"
        ]
        for i, shadowed in members:
            shadowed_region = by_label.get(_event_label(shadowed, i))
            if shadowed_region is None or shadowed_region.serving.empty:
                continue  # dead events are HC011's finding, not a shadow
            for j, dominating in members:
                if i == j or dominating.event is shadowed.event:
                    continue  # same-type duplicates are HC012's finding
                dom_region = by_label.get(_event_label(dominating, j))
                if dom_region is None:
                    continue
                if not (
                    dom_region.serving.covers(shadowed_region.serving)
                    and dom_region.neighbor.covers(shadowed_region.neighbor)
                    and dom_region.time_to_trigger_ms
                    <= shadowed_region.time_to_trigger_ms
                ):
                    continue
                message = (
                    f"{shadowed_region.label} is unreachable: "
                    f"{dom_region.label} covers its entire entry region "
                    f"(serving {shadowed_region.serving}, neighbor "
                    f"{shadowed_region.neighbor}) with an equal-or-shorter "
                    f"TTT ({dom_region.time_to_trigger_ms} vs "
                    f"{shadowed_region.time_to_trigger_ms} ms), so the "
                    "shadowed event is never the decisive trigger"
                )
                witness = _walk_witness(
                    "HC402", snapshot,
                    shadowed_region.serving.hi, shadowed_region.serving.lo,
                    "shadowed-event",
                    note=(
                        f"drive through {shadowed_region.label}'s entire "
                        f"entry region; every handoff is decided by "
                        f"{dom_region.label.split('[', 1)[0]}, never by "
                        f"{shadowed_region.label.split('[', 1)[0]}"
                    ),
                    subject_event=shadowed_region.label,
                )
                yield _issue(
                    snapshot, message,
                    f"shadow:{shadowed_region.label}:{dom_region.label}",
                ), witness
                break  # one dominating event per shadowed event suffices


def _hc403(
    snapshot: CellConfigSnapshot,
    regions: Sequence[FireRegion],
    gaps: Sequence[Interval],
) -> _Generated:
    meas = snapshot.meas_config
    config = snapshot.lte_config
    if meas is None and config is not None:
        meas = config.measurement
    if meas is None:
        return
    a2_gates = [
        (i, e.threshold1 - e.hysteresis)
        for i, e in enumerate(meas.events)
        if e.event is EventType.A2 and e.metric == "rsrp"
        and e.threshold1 is not None
    ]
    if not a2_gates:
        return
    by_label = {r.label: r for r in regions}
    for i, event in enumerate(meas.events):
        if event.event not in (EventType.A4, EventType.A5,
                               EventType.B1, EventType.B2):
            continue
        if event.metric != "rsrp":
            continue
        region = by_label.get(_event_label(event, i))
        if region is None or region.neighbor.empty:
            continue
        required_floor = region.neighbor.lo
        for j, gate_level in a2_gates:
            advantage = required_floor - gate_level
            if advantage <= MAX_NEIGHBOR_ADVANTAGE_DB:
                continue
            a2_label = _event_label(meas.events[j], j)
            message = (
                f"measurement-gap hole: {a2_label} arms measurement only "
                f"below {gate_level:g} dBm serving, but {region.label} "
                f"needs a neighbor above {required_floor:g} dBm — a "
                f"{advantage:g} dB advantage over a cell-edge serving "
                "signal, so by the time measurement starts the entry "
                "threshold is already unreachable"
            )
            witness = _walk_witness(
                "HC403", snapshot, gate_level, RLF_RSRP_DBM,
                "missed-handoff",
                note=(
                    f"drive below the {a2_label} measurement gate at "
                    f"{gate_level:g} dBm; no neighbor within "
                    f"{MAX_NEIGHBOR_ADVANTAGE_DB:g} dB of serving can "
                    f"satisfy {region.label}'s floor of "
                    f"{required_floor:g} dBm, so the handoff never comes"
                ),
                subject_event=region.label,
            )
            yield _issue(
                snapshot, message, f"hole:{a2_label}:{region.label}",
            ), witness
            break  # the tightest gate already proves the hole


def _hc404(
    snapshot: CellConfigSnapshot,
    regions: Sequence[FireRegion],
    gaps: Sequence[Interval],
) -> _Generated:
    for region in _rescue_regions(regions):
        if region.serving.empty or region.relative:
            continue
        ceiling = region.serving.hi
        if ceiling > ACCEPTABLE_SERVICE_DBM:
            continue
        width = ceiling - RLF_RSRP_DBM
        if width <= 0.0:
            continue
        dwell_ms = width / EDGE_DECAY_DB_PER_S * 1000.0
        if region.time_to_trigger_ms <= dwell_ms:
            continue
        message = (
            f"TTT-vs-fading contradiction: {region.label} can only fire "
            f"with serving inside {region.serving}, a {width:g} dB band "
            f"above link failure; at {EDGE_DECAY_DB_PER_S:g} dB/s edge "
            f"decay that is {dwell_ms:g} ms of dwell, but the entry "
            f"condition must hold for {region.time_to_trigger_ms} ms — "
            "the trigger cannot complete before the link is lost"
        )
        witness = _walk_witness(
            "HC404", snapshot, ceiling, RLF_RSRP_DBM, "missed-handoff",
            note=(
                f"drive through {region.label}'s fire region at "
                f"{WITNESS_SPEED_MPS:g} m/s; the {width:g} dB band passes "
                f"faster than the {region.time_to_trigger_ms} ms TTT, so "
                "the handoff arrives only after a long outage (if at all)"
            ),
            subject_event=region.label,
        )
        yield _issue(snapshot, message, f"dwell:{region.label}"), witness


def _hc405(
    snapshot: CellConfigSnapshot,
    regions: Sequence[FireRegion],
    gaps: Sequence[Interval],
) -> _Generated:
    meas = snapshot.meas_config
    config = snapshot.lte_config
    if meas is None and config is not None:
        meas = config.measurement
    if meas is None or config is None:
        return
    gate = Interval(RSRP_FLOOR_DBM, meas.s_measure)
    for i, event in enumerate(meas.events):
        label = _event_label(event, i)
        if (
            event.event in (EventType.A5, EventType.B2)
            and event.metric == "rsrp"
        ):
            # Both cells of a pair inside this window satisfy the
            # serving clause *and* (as each other's neighbor) the entry
            # clause — the reverse event arms the instant a handoff
            # completes.
            window = (
                a5_serving_interval(event)
                .intersect(a5_neighbor_interval(event))
                .intersect(gate)
            )
            if window.empty:
                continue
            severity = (
                "problem"
                if window.width >= PINGPONG_PROBLEM_DB
                and event.time_to_trigger_ms <= A5_RISK_TTT_MS
                else None
            )
            mid = (window.lo + window.hi) / 2.0
            message = (
                f"leave/entry overlap: {label}'s serving-leave and "
                f"target-entry thresholds overlap in {window} — two cells "
                "both inside the window hand the UE back and forth, with "
                f"only the {event.time_to_trigger_ms} ms TTT damping the "
                "loop"
            )
            witness = _park_witness(
                "HC405", snapshot, mid,
                note=(
                    f"park between two cells whose levels sit at the "
                    f"window midpoint ({mid:g} dBm); both directions of "
                    f"{label.split('[', 1)[0]} stay armed and the UE "
                    "oscillates"
                ),
                subject_event=label,
            )
            yield _issue(
                snapshot, message, f"overlap:{label}", severity=severity
            ), witness
        elif event.event in (EventType.A3, EventType.A6):
            overlap = -a3_separation_band(event)
            if overlap <= 0.0:
                continue
            window = Interval(0.0, overlap)
            message = (
                f"leave/entry overlap: {label}'s forward and reverse "
                f"trigger regions overlap by {overlap:g} dB (offset + "
                "hysteresis is negative) — comparable cells hand the UE "
                "back and forth without any fading"
            )
            witness = _park_witness(
                "HC405", snapshot, -100.0,
                note=(
                    "park between two comparable cells at -100 dBm; the "
                    f"negative {label.split('[', 1)[0]} margin keeps both "
                    "directions armed and the UE oscillates"
                ),
                subject_event=label,
            )
            yield _issue(
                snapshot, message, f"overlap:{label}"
            ), witness


_GENERATORS = {
    "HC401": _hc401,
    "HC402": _hc402,
    "HC403": _hc403,
    "HC404": _hc404,
    "HC405": _hc405,
}


# ---------------------------------------------------------------------------
# Registered rule wrappers (metadata + standalone execution for --explain;
# the engine routes coverage audits through CoverageAnalyzer instead)


def _run_generator(code: str, snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    regions = fire_regions(snapshot)
    gaps = coverage_gaps(regions)
    for issue, _ in _GENERATORS[code](snapshot, regions, gaps):
        yield issue


@rule("HC401", "dead-zone", scope="coverage", severity="problem",
      summary="Critical serving-RSRP band where no handoff event can fire")
def dead_zone(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    yield from _run_generator("HC401", snapshot)


@rule("HC402", "shadowed-event", scope="coverage", severity="warning",
      summary="Event entry region fully subsumed by a faster event")
def shadowed_event(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    yield from _run_generator("HC402", snapshot)


@rule("HC403", "measurement-gap-hole", scope="coverage", severity="warning",
      summary="A2 arms measurement after entry thresholds are unreachable")
def measurement_gap_hole(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    yield from _run_generator("HC403", snapshot)


@rule("HC404", "ttt-exceeds-dwell", scope="coverage", severity="warning",
      summary="Time-to-trigger exceeds the dwell possible in the fire region")
def ttt_exceeds_dwell(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    yield from _run_generator("HC404", snapshot)


@rule("HC405", "leave-entry-overlap", scope="coverage", severity="warning",
      summary="Serving-leave and target-entry thresholds overlap (ping-pong)")
def leave_entry_overlap(snapshot: CellConfigSnapshot) -> Iterator[Issue]:
    yield from _run_generator("HC405", snapshot)


def coverage_rules(codes: Sequence[str] | None = None) -> tuple[RegisteredRule, ...]:
    """The registered coverage-scope rules, optionally filtered by code."""
    return tuple(
        r for r in select_rules(list(codes) if codes is not None else None)
        if r.scope == "coverage"
    )


# ---------------------------------------------------------------------------
# Per-cell execution (pipeline work unit) and the analyzer


@dataclass(frozen=True)
class CellCoverageResult:
    """What analyzing one cell produced (cache value)."""

    digest: str
    findings: tuple[Finding, ...]
    witnesses: tuple[tuple[str, CoverageWitness], ...]
    regions: int
    gaps: int


@dataclass(frozen=True)
class CoverageStats:
    """Deterministic counters of one coverage analysis.

    Independent of worker count and wall-clock, so embedding reports
    stay byte-identical; ``cells_cached`` is the incremental-analysis
    observable (a re-audit after mutating one cell re-analyzes exactly
    that cell).
    """

    cells: int = 0
    cells_analyzed: int = 0
    cells_cached: int = 0
    regions: int = 0
    gaps: int = 0
    witnesses: int = 0


def analyze_cell(
    snapshot: CellConfigSnapshot, codes: tuple[str, ...]
) -> CellCoverageResult:
    """Run the coverage rules over one cell (picklable entry point)."""
    regions = fire_regions(snapshot)
    gaps = coverage_gaps(regions) if regions else ()
    findings: list[Finding] = []
    witnesses: list[tuple[str, CoverageWitness]] = []
    for code in codes:
        registered = get_rule(code)
        for issue, witness in _GENERATORS[code](snapshot, regions, gaps):
            finding = registered.stamp(issue)
            findings.append(finding)
            witnesses.append((finding.fingerprint, witness))
    return CellCoverageResult(
        digest=snapshot_digest(snapshot),
        findings=tuple(sort_findings(findings)),
        witnesses=tuple(witnesses),
        regions=len(regions),
        gaps=len(gaps),
    )


@dataclass(frozen=True)
class CellCoverageUnit(WorkUnit):
    """One cell analysis on a :mod:`repro.pipeline` backend."""

    unit_id: int
    snapshot: CellConfigSnapshot
    codes: tuple[str, ...]

    def run(self) -> CellCoverageResult:
        return analyze_cell(self.snapshot, self.codes)


#: Upper bound on cached per-cell results; a full default world holds a
#: few thousand cells, so eviction only triggers on pathological churn.
_CACHE_LIMIT = 16384


class CoverageAnalyzer:
    """Incremental signal-space analyzer with a per-cell digest cache.

    Results are keyed by ``(cell config digest, rule codes)`` — the same
    :func:`~repro.lint.graph.snapshot_digest` the graph verifier and the
    drift differ use, so all three layers agree on what "unchanged"
    means.  Callers wanting incrementality across audits hold one
    instance.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, tuple[str, ...]], CellCoverageResult] = {}

    def analyze(
        self,
        snapshots: Sequence[CellConfigSnapshot],
        codes: Sequence[str] | None = None,
        workers: int | None = None,
        backend: ExecutionBackend | None = None,
    ) -> tuple[list[Finding], CoverageStats, dict[str, CoverageWitness]]:
        """Analyze an audit population.

        Returns ``(findings, stats, witnesses)`` where ``witnesses``
        maps each finding's fingerprint to its replayable counterexample.
        Findings are deterministically sorted and independent of
        ``workers`` (cells are self-contained and merged in canonical
        order).
        """
        rule_codes = tuple(r.code for r in coverage_rules(codes))
        digests = [snapshot_digest(s) for s in snapshots]
        results: dict[str, CellCoverageResult] = {}
        pending: list[CellCoverageUnit] = []
        cached = 0
        queued: set[str] = set()
        for snapshot, digest in zip(snapshots, digests):
            hit = self._cache.get((digest, rule_codes))
            if hit is not None:
                results[digest] = hit
                cached += 1
            elif digest not in queued:
                queued.add(digest)
                pending.append(CellCoverageUnit(
                    unit_id=len(pending), snapshot=snapshot, codes=rule_codes
                ))
        runner = resolve_backend(workers, backend)
        for result in runner.run(pending):
            assert isinstance(result, CellCoverageResult)
            if len(self._cache) >= _CACHE_LIMIT:
                self._cache.clear()
            self._cache[(result.digest, rule_codes)] = result
            results[result.digest] = result
        findings: list[Finding] = []
        witnesses: dict[str, CoverageWitness] = {}
        regions = gaps = 0
        for digest in digests:
            result = results[digest]
            findings.extend(result.findings)
            witnesses.update(result.witnesses)
            regions += result.regions
            gaps += result.gaps
        stats = CoverageStats(
            cells=len(snapshots),
            cells_analyzed=len(pending),
            cells_cached=cached,
            regions=regions,
            gaps=gaps,
            witnesses=len(witnesses),
        )
        return sort_findings(findings), stats, witnesses
