"""Structural validity checks for configurations.

Distinct from ``repro.core.analysis.verification`` (which audits *policy*
quality, e.g. priority loops and threshold conflicts): this module only
checks that values sit in their standardized domains — the kind of check
an encoder performs before putting a value on the air.
"""

from __future__ import annotations

from repro.cellnet.rat import RAT
from repro.config.legacy import LegacyCellConfig, validate_legacy
from repro.config.lte import LteCellConfig


def validate_config(config: LteCellConfig | LegacyCellConfig, rat: RAT) -> list[str]:
    """Domain-check any cell configuration; returns violations.

    Raises:
        TypeError: When the config object's type does not match ``rat``
            (e.g. an :class:`LteCellConfig` paired with a legacy RAT).
            A mismatch is a caller bug, not a domain violation, so it is
            not reported in the returned list.
    """
    if rat is RAT.LTE:
        if not isinstance(config, LteCellConfig):
            raise TypeError(
                f"expected LteCellConfig for {rat.value}, "
                f"got {type(config).__name__}"
            )
        return config.validate()
    if not isinstance(config, LegacyCellConfig):
        raise TypeError(
            f"expected LegacyCellConfig for {rat.value}, "
            f"got {type(config).__name__}"
        )
    return validate_legacy(config, rat)


def assert_valid(config: LteCellConfig | LegacyCellConfig, rat: RAT) -> None:
    """Raise ``ValueError`` when a configuration violates its domains."""
    problems = validate_config(config, rat)
    if problems:
        raise ValueError("; ".join(problems))
