"""Value domains and quantization for configuration parameters.

3GPP encodes most radio thresholds as small integers over fixed grids
(e.g. RSRP thresholds in 1 dB steps, hysteresis in 0.5 dB steps,
time-to-trigger from a 16-value enumeration).  Encoding the grids here
keeps the synthetic configuration populations on the same lattice as
real networks — which matters for the diversity analyses, where the
number of *distinct* values is itself a measurand.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Allowed time-to-trigger values in milliseconds (TS 36.331
#: TimeToTrigger).  The paper observes the [40, 1280] sub-range for
#: T_reportTrigger (Fig. 14).
TIME_TO_TRIGGER_MS = (
    0, 40, 64, 80, 100, 128, 160, 256, 320, 480, 512, 640, 1024, 1280, 2560, 5120,
)

#: Allowed report-interval values in milliseconds (TS 36.331
#: ReportInterval, subset used for handoff-relevant reporting).
REPORT_INTERVAL_MS = (120, 240, 480, 640, 1024, 2048, 5120, 10240)

#: Allowed report amounts (number of periodic reports; -1 = infinity).
REPORT_AMOUNT = (1, 2, 4, 8, 16, 32, 64, -1)

#: Allowed hysteresis values in dB (0..30 in 0.5 dB steps).
HYSTERESIS_STEP_DB = 0.5

#: Cell reselection priority range (0..7, 7 most preferred).
PRIORITY_RANGE = (0, 7)

#: q-offset / a3-offset range in dB (-30..30 in 0.5 dB steps).
OFFSET_RANGE_DB = (-30.0, 30.0)

#: Treselection range in seconds (0..7, 1 s steps).
T_RESELECTION_RANGE_S = (0, 7)


def quantize_half_db(value: float) -> float:
    """Snap a dB value to the 0.5 dB grid used by hysteresis/offsets."""
    return round(value * 2.0) / 2.0


def nearest_time_to_trigger(value_ms: float) -> int:
    """The allowed TimeToTrigger value closest to ``value_ms``."""
    return min(TIME_TO_TRIGGER_MS, key=lambda v: abs(v - value_ms))


@dataclass(frozen=True)
class Domain:
    """Value domain of one configuration parameter.

    Attributes:
        kind: "int", "float", "enum" or "list".
        low: Inclusive lower bound (numeric kinds).
        high: Inclusive upper bound (numeric kinds).
        step: Grid step for numeric kinds (None = continuous).
        choices: Allowed values for "enum".
    """

    kind: str
    low: float | None = None
    high: float | None = None
    step: float | None = None
    choices: tuple | None = None

    def contains(self, value) -> bool:
        """Whether ``value`` is a member of this domain."""
        if self.kind == "enum":
            return self.choices is not None and value in self.choices
        if self.kind == "list":
            return isinstance(value, (list, tuple))
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        if self.step:
            offset = (value - (self.low or 0.0)) / self.step
            if abs(offset - round(offset)) > 1e-6:
                return False
        return True


# Shared domains for the registry.
DBM_THRESHOLD = Domain("int", low=-140, high=-44, step=1)
#: Event thresholds configurable in either trigger quantity: RSRP
#: (-140..-44 dBm) or RSRQ (-19.5..-3 dB) share one encoded field.
METRIC_THRESHOLD = Domain("float", low=-140, high=-3, step=0.5)
DB_QUALITY_THRESHOLD = Domain("float", low=-19.5, high=-3.0, step=0.5)
RELATIVE_DB = Domain("float", low=0, high=62, step=2)
#: UMTS event 1a/1b reporting range (TS 25.331): 0-14.5 dB, 0.5 dB steps
#: -- finer than the even-step S-criterion thresholds above.
REPORTING_RANGE_DB = Domain("float", low=0, high=14.5, step=0.5)
OFFSET_DB = Domain("float", low=-30, high=30, step=0.5)
HYSTERESIS_DB = Domain("float", low=0, high=15, step=0.5)
PRIORITY = Domain("int", low=0, high=7, step=1)
T_RESELECTION_S = Domain("int", low=0, high=7, step=1)
TTT_MS = Domain("enum", choices=TIME_TO_TRIGGER_MS)
REPORT_INTERVAL = Domain("enum", choices=REPORT_INTERVAL_MS)
REPORT_AMOUNT_DOMAIN = Domain("enum", choices=REPORT_AMOUNT)
CHANNEL_NUMBER = Domain("int", low=0, high=70000, step=1)
POWER_DBM = Domain("int", low=-30, high=33, step=1)
BANDWIDTH_PRB = Domain("enum", choices=(6, 15, 25, 50, 75, 100))
CELL_LIST = Domain("list")
