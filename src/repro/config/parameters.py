"""Registry of standardized handoff configuration parameters.

The paper's measurement space covers "66 parameters for a single 4G LTE
cell and 91 parameters for four 3G/2G RATs" (Section 1, Table 4; the 91
split as 64 UMTS + 9 GSM + 14 EVDO + 4 CDMA1x).  This module enumerates
all of them with the metadata Table 2 reports per parameter: the
category, what procedure it is used for, and which message carries it.

The registry is the single source of truth shared by the configuration
structures (``repro.config.lte`` / ``legacy``), the message codec, the
profile generators and the analysis code — so a parameter name appearing
in a dataset sample is guaranteed to resolve to a spec here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cellnet.rat import RAT
from repro.config import units
from repro.config.units import Domain


@dataclass(frozen=True)
class ParameterSpec:
    """Metadata of one standardized configuration parameter.

    Attributes:
        name: Canonical snake_case parameter name (unique per RAT).
        rat: RAT whose cells carry the parameter.
        category: Table 2 grouping: "cell_priority", "radio_signal",
            "timer" or "misc".
        used_for: Procedure(s) the parameter drives: subset of
            {"measurement", "reporting", "decision", "calibration"}.
        message: Signaling message that carries it ("SIB3", "SIB5",
            "meas_config", ...).
        domain: Value domain for validation and quantization.
        paper_symbol: Symbol used in the paper's tables, if any.
    """

    name: str
    rat: RAT
    category: str
    used_for: tuple[str, ...]
    message: str
    domain: Domain
    paper_symbol: str = ""


def _lte(name, category, used_for, message, domain, symbol=""):
    return ParameterSpec(name, RAT.LTE, category, tuple(used_for), message, domain, symbol)


# --------------------------------------------------------------------------
# 4G LTE: 40 idle-state (SIB) + 26 active-state (measConfig) = 66.
# --------------------------------------------------------------------------

_LTE_IDLE = [
    # SIB3 — serving cell / common reselection (12).
    _lte("q_hyst", "radio_signal", ["decision"], "SIB3", units.HYSTERESIS_DB, "Hs"),
    _lte("s_intra_search_p", "radio_signal", ["measurement"], "SIB3", units.RELATIVE_DB, "Theta_intra_rsrp"),
    _lte("s_intra_search_q", "radio_signal", ["measurement"], "SIB3", units.RELATIVE_DB, "Theta_intra_rsrq"),
    _lte("s_non_intra_search_p", "radio_signal", ["measurement"], "SIB3", units.RELATIVE_DB, "Theta_nonintra_rsrp"),
    _lte("s_non_intra_search_q", "radio_signal", ["measurement"], "SIB3", units.RELATIVE_DB, "Theta_nonintra_rsrq"),
    _lte("thresh_serving_low_p", "radio_signal", ["decision"], "SIB3", units.RELATIVE_DB, "Theta_s_lower_rsrp"),
    _lte("thresh_serving_low_q", "radio_signal", ["decision"], "SIB3", units.RELATIVE_DB, "Theta_s_lower_rsrq"),
    _lte("cell_reselection_priority", "cell_priority", ["measurement", "decision"], "SIB3", units.PRIORITY, "Ps"),
    _lte("q_rx_lev_min", "radio_signal", ["calibration"], "SIB3", units.DBM_THRESHOLD, "Delta_min_rsrp"),
    _lte("q_qual_min", "radio_signal", ["calibration"], "SIB3", units.DB_QUALITY_THRESHOLD, "Delta_min_rsrq"),
    _lte("p_max", "misc", ["calibration"], "SIB3", units.POWER_DBM),
    _lte("t_reselection_eutra", "timer", ["decision"], "SIB3", units.T_RESELECTION_S, "T_reselect"),
    # SIB4 — intra-frequency neighbors (2).
    _lte("q_offset_cell", "radio_signal", ["decision"], "SIB4", units.OFFSET_DB, "Delta_cell"),
    _lte("intra_freq_black_cell_list", "misc", ["measurement"], "SIB4", units.CELL_LIST, "List_forbid"),
    # SIB5 — inter-frequency layers (9).
    _lte("dl_carrier_freq", "misc", ["measurement"], "SIB5", units.CHANNEL_NUMBER, "Freq_interest"),
    _lte("q_offset_freq", "radio_signal", ["decision"], "SIB5", units.OFFSET_DB, "Delta_freq"),
    _lte("cell_reselection_priority_inter", "cell_priority", ["measurement", "decision"], "SIB5", units.PRIORITY, "Pc"),
    _lte("thresh_x_high_p", "radio_signal", ["decision"], "SIB5", units.RELATIVE_DB, "Theta_c_higher"),
    _lte("thresh_x_low_p", "radio_signal", ["decision"], "SIB5", units.RELATIVE_DB, "Theta_c_lower"),
    _lte("q_rx_lev_min_inter", "radio_signal", ["calibration"], "SIB5", units.DBM_THRESHOLD),
    _lte("p_max_inter", "misc", ["calibration"], "SIB5", units.POWER_DBM),
    _lte("t_reselection_eutra_inter", "timer", ["decision"], "SIB5", units.T_RESELECTION_S),
    _lte("allowed_meas_bandwidth", "misc", ["measurement"], "SIB5", units.BANDWIDTH_PRB, "meas_bandwidth"),
    # SIB6 — inter-RAT UTRA (6).
    _lte("carrier_freq_utra", "misc", ["measurement"], "SIB6", units.CHANNEL_NUMBER),
    _lte("cell_reselection_priority_utra", "cell_priority", ["measurement", "decision"], "SIB6", units.PRIORITY),
    _lte("thresh_x_high_utra", "radio_signal", ["decision"], "SIB6", units.RELATIVE_DB),
    _lte("thresh_x_low_utra", "radio_signal", ["decision"], "SIB6", units.RELATIVE_DB),
    _lte("q_rx_lev_min_utra", "radio_signal", ["calibration"], "SIB6", units.DBM_THRESHOLD),
    _lte("t_reselection_utra", "timer", ["decision"], "SIB6", units.T_RESELECTION_S),
    # SIB7 — inter-RAT GERAN (6).
    _lte("carrier_freqs_geran", "misc", ["measurement"], "SIB7", units.CELL_LIST),
    _lte("cell_reselection_priority_geran", "cell_priority", ["measurement", "decision"], "SIB7", units.PRIORITY),
    _lte("thresh_x_high_geran", "radio_signal", ["decision"], "SIB7", units.RELATIVE_DB),
    _lte("thresh_x_low_geran", "radio_signal", ["decision"], "SIB7", units.RELATIVE_DB),
    _lte("q_rx_lev_min_geran", "radio_signal", ["calibration"], "SIB7", units.DBM_THRESHOLD),
    _lte("t_reselection_geran", "timer", ["decision"], "SIB7", units.T_RESELECTION_S),
    # SIB8 — inter-RAT CDMA2000 (5).
    _lte("band_class_cdma", "misc", ["measurement"], "SIB8", units.CHANNEL_NUMBER),
    _lte("cell_reselection_priority_cdma", "cell_priority", ["measurement", "decision"], "SIB8", units.PRIORITY),
    _lte("thresh_x_high_cdma", "radio_signal", ["decision"], "SIB8", units.RELATIVE_DB),
    _lte("thresh_x_low_cdma", "radio_signal", ["decision"], "SIB8", units.RELATIVE_DB),
    _lte("t_reselection_cdma", "timer", ["decision"], "SIB8", units.T_RESELECTION_S),
]

_LTE_CONNECTED = [
    # Event A1 (3): serving becomes better than threshold.
    _lte("a1_threshold", "radio_signal", ["reporting"], "meas_config", units.METRIC_THRESHOLD, "Theta_A1"),
    _lte("a1_hysteresis", "radio_signal", ["reporting"], "meas_config", units.HYSTERESIS_DB, "H_A1"),
    _lte("a1_time_to_trigger", "timer", ["reporting"], "meas_config", units.TTT_MS),
    # Event A2 (3): serving becomes worse than threshold.
    _lte("a2_threshold", "radio_signal", ["reporting"], "meas_config", units.METRIC_THRESHOLD, "Theta_A2"),
    _lte("a2_hysteresis", "radio_signal", ["reporting"], "meas_config", units.HYSTERESIS_DB, "H_A2"),
    _lte("a2_time_to_trigger", "timer", ["reporting"], "meas_config", units.TTT_MS),
    # Event A3 (3): neighbor becomes offset better than serving.
    _lte("a3_offset", "radio_signal", ["reporting"], "meas_config", units.OFFSET_DB, "Delta_A3"),
    _lte("a3_hysteresis", "radio_signal", ["reporting"], "meas_config", units.HYSTERESIS_DB, "H_A3"),
    _lte("a3_time_to_trigger", "timer", ["reporting"], "meas_config", units.TTT_MS, "T_reportTrigger"),
    # Event A4 (3): neighbor becomes better than threshold.
    _lte("a4_threshold", "radio_signal", ["reporting"], "meas_config", units.METRIC_THRESHOLD, "Theta_A4"),
    _lte("a4_hysteresis", "radio_signal", ["reporting"], "meas_config", units.HYSTERESIS_DB, "H_A4"),
    _lte("a4_time_to_trigger", "timer", ["reporting"], "meas_config", units.TTT_MS),
    # Event A5 (4): serving worse than t1 and neighbor better than t2.
    _lte("a5_threshold1", "radio_signal", ["reporting"], "meas_config", units.METRIC_THRESHOLD, "Theta_A5_S"),
    _lte("a5_threshold2", "radio_signal", ["reporting"], "meas_config", units.METRIC_THRESHOLD, "Theta_A5_C"),
    _lte("a5_hysteresis", "radio_signal", ["reporting"], "meas_config", units.HYSTERESIS_DB, "H_A5"),
    _lte("a5_time_to_trigger", "timer", ["reporting"], "meas_config", units.TTT_MS),
    # Event B1 (3): inter-RAT neighbor better than threshold.
    _lte("b1_threshold", "radio_signal", ["reporting"], "meas_config", units.METRIC_THRESHOLD, "Theta_B1"),
    _lte("b1_hysteresis", "radio_signal", ["reporting"], "meas_config", units.HYSTERESIS_DB, "H_B1"),
    _lte("b1_time_to_trigger", "timer", ["reporting"], "meas_config", units.TTT_MS),
    # Event B2 (4): serving worse than t1 and inter-RAT neighbor better than t2.
    _lte("b2_threshold1", "radio_signal", ["reporting"], "meas_config", units.METRIC_THRESHOLD, "Theta_B2_S"),
    _lte("b2_threshold2", "radio_signal", ["reporting"], "meas_config", units.METRIC_THRESHOLD, "Theta_B2_C"),
    _lte("b2_hysteresis", "radio_signal", ["reporting"], "meas_config", units.HYSTERESIS_DB, "H_B2"),
    _lte("b2_time_to_trigger", "timer", ["reporting"], "meas_config", units.TTT_MS),
    # Common reporting configuration (3).
    _lte("report_interval", "timer", ["reporting"], "meas_config", units.REPORT_INTERVAL, "T_reportInterval"),
    _lte("report_amount", "misc", ["reporting"], "meas_config", units.REPORT_AMOUNT_DOMAIN),
    _lte("s_measure", "radio_signal", ["measurement"], "meas_config", units.DBM_THRESHOLD),
]


def _umts(name, category, used_for, message, domain, symbol=""):
    return ParameterSpec(name, RAT.UMTS, category, tuple(used_for), message, domain, symbol)


# --------------------------------------------------------------------------
# 3G UMTS: 28 idle + 36 connected = 64.
# --------------------------------------------------------------------------

_UMTS_IDLE = [
    _umts("q_hyst_1s", "radio_signal", ["decision"], "SIB3", units.HYSTERESIS_DB),
    _umts("q_hyst_2s", "radio_signal", ["decision"], "SIB3", units.HYSTERESIS_DB),
    _umts("s_intrasearch", "radio_signal", ["measurement"], "SIB3", units.RELATIVE_DB),
    _umts("s_intersearch", "radio_signal", ["measurement"], "SIB3", units.RELATIVE_DB),
    _umts("s_search_hcs", "radio_signal", ["measurement"], "SIB3", units.RELATIVE_DB),
    _umts("s_search_rat", "radio_signal", ["measurement"], "SIB3", units.RELATIVE_DB),
    _umts("s_hcs_rat", "radio_signal", ["measurement"], "SIB3", units.RELATIVE_DB),
    _umts("s_limit_search_rat", "radio_signal", ["measurement"], "SIB3", units.RELATIVE_DB),
    _umts("q_rxlevmin", "radio_signal", ["calibration"], "SIB3", units.DBM_THRESHOLD),
    _umts("q_qualmin", "radio_signal", ["calibration"], "SIB3", units.DB_QUALITY_THRESHOLD),
    _umts("t_reselection_s", "timer", ["decision"], "SIB3", units.T_RESELECTION_S),
    _umts("max_allowed_ul_tx_power", "misc", ["calibration"], "SIB3", units.POWER_DBM),
    _umts("q_offset_s_n_1", "radio_signal", ["decision"], "SIB11", units.OFFSET_DB),
    _umts("q_offset_s_n_2", "radio_signal", ["decision"], "SIB11", units.OFFSET_DB),
    _umts("inter_freq_carrier_list", "misc", ["measurement"], "SIB11", units.CELL_LIST),
    _umts("inter_rat_cell_list", "misc", ["measurement"], "SIB11", units.CELL_LIST),
    _umts("hcs_prio", "cell_priority", ["decision"], "SIB11", units.PRIORITY),
    _umts("q_hcs", "radio_signal", ["decision"], "SIB11", units.RELATIVE_DB),
    _umts("penalty_time", "timer", ["decision"], "SIB11", units.T_RESELECTION_S),
    _umts("temporary_offset", "radio_signal", ["decision"], "SIB11", units.OFFSET_DB),
    _umts("priority_eutra", "cell_priority", ["measurement", "decision"], "SIB19", units.PRIORITY),
    _umts("thresh_high_eutra", "radio_signal", ["decision"], "SIB19", units.RELATIVE_DB),
    _umts("thresh_low_eutra", "radio_signal", ["decision"], "SIB19", units.RELATIVE_DB),
    _umts("priority_serving", "cell_priority", ["measurement", "decision"], "SIB19", units.PRIORITY),
    _umts("thresh_serving_low", "radio_signal", ["decision"], "SIB19", units.RELATIVE_DB),
    _umts("t_reselection_eutra", "timer", ["decision"], "SIB19", units.T_RESELECTION_S),
    _umts("eutra_freq_list", "misc", ["measurement"], "SIB19", units.CELL_LIST),
    _umts("q_rxlevmin_eutra", "radio_signal", ["calibration"], "SIB19", units.DBM_THRESHOLD),
]

_UMTS_CONNECTED = [
    # Intra-frequency events 1a-1f (20).
    _umts("e1a_reporting_range", "radio_signal", ["reporting"], "meas_control", units.REPORTING_RANGE_DB),
    _umts("e1a_hysteresis", "radio_signal", ["reporting"], "meas_control", units.HYSTERESIS_DB),
    _umts("e1a_time_to_trigger", "timer", ["reporting"], "meas_control", units.TTT_MS),
    _umts("e1a_weighting", "misc", ["reporting"], "meas_control", units.OFFSET_DB),
    _umts("e1b_reporting_range", "radio_signal", ["reporting"], "meas_control", units.REPORTING_RANGE_DB),
    _umts("e1b_hysteresis", "radio_signal", ["reporting"], "meas_control", units.HYSTERESIS_DB),
    _umts("e1b_time_to_trigger", "timer", ["reporting"], "meas_control", units.TTT_MS),
    _umts("e1b_weighting", "misc", ["reporting"], "meas_control", units.OFFSET_DB),
    _umts("e1c_replacement_threshold", "radio_signal", ["reporting"], "meas_control", units.DBM_THRESHOLD),
    _umts("e1c_hysteresis", "radio_signal", ["reporting"], "meas_control", units.HYSTERESIS_DB),
    _umts("e1c_time_to_trigger", "timer", ["reporting"], "meas_control", units.TTT_MS),
    _umts("e1d_hysteresis", "radio_signal", ["reporting"], "meas_control", units.HYSTERESIS_DB),
    _umts("e1d_time_to_trigger", "timer", ["reporting"], "meas_control", units.TTT_MS),
    _umts("e1e_threshold", "radio_signal", ["reporting"], "meas_control", units.DBM_THRESHOLD),
    _umts("e1e_hysteresis", "radio_signal", ["reporting"], "meas_control", units.HYSTERESIS_DB),
    _umts("e1e_time_to_trigger", "timer", ["reporting"], "meas_control", units.TTT_MS),
    _umts("e1f_threshold", "radio_signal", ["reporting"], "meas_control", units.DBM_THRESHOLD),
    _umts("e1f_hysteresis", "radio_signal", ["reporting"], "meas_control", units.HYSTERESIS_DB),
    _umts("e1f_time_to_trigger", "timer", ["reporting"], "meas_control", units.TTT_MS),
    _umts("intra_freq_filter_coefficient", "misc", ["measurement"], "meas_control", units.PRIORITY),
    # Inter-frequency events 2b/2d/2f (10).
    _umts("e2b_threshold_used", "radio_signal", ["reporting"], "meas_control", units.DBM_THRESHOLD),
    _umts("e2b_threshold_non_used", "radio_signal", ["reporting"], "meas_control", units.DBM_THRESHOLD),
    _umts("e2b_hysteresis", "radio_signal", ["reporting"], "meas_control", units.HYSTERESIS_DB),
    _umts("e2b_time_to_trigger", "timer", ["reporting"], "meas_control", units.TTT_MS),
    _umts("e2d_threshold_used", "radio_signal", ["reporting"], "meas_control", units.DBM_THRESHOLD),
    _umts("e2d_hysteresis", "radio_signal", ["reporting"], "meas_control", units.HYSTERESIS_DB),
    _umts("e2d_time_to_trigger", "timer", ["reporting"], "meas_control", units.TTT_MS),
    _umts("e2f_threshold_used", "radio_signal", ["reporting"], "meas_control", units.DBM_THRESHOLD),
    _umts("e2f_hysteresis", "radio_signal", ["reporting"], "meas_control", units.HYSTERESIS_DB),
    _umts("e2f_time_to_trigger", "timer", ["reporting"], "meas_control", units.TTT_MS),
    # Inter-RAT event 3a + measurement control (6).
    _umts("e3a_threshold_own", "radio_signal", ["reporting"], "meas_control", units.DBM_THRESHOLD),
    _umts("e3a_threshold_other", "radio_signal", ["reporting"], "meas_control", units.DBM_THRESHOLD),
    _umts("e3a_hysteresis", "radio_signal", ["reporting"], "meas_control", units.HYSTERESIS_DB),
    _umts("e3a_time_to_trigger", "timer", ["reporting"], "meas_control", units.TTT_MS),
    _umts("measurement_quantity", "misc", ["measurement"], "meas_control", Domain("enum", choices=("rscp", "ecno"))),
    _umts("inter_rat_filter_coefficient", "misc", ["measurement"], "meas_control", units.PRIORITY),
]


def _gsm(name, category, used_for, message, domain, symbol=""):
    return ParameterSpec(name, RAT.GSM, category, tuple(used_for), message, domain, symbol)


# --------------------------------------------------------------------------
# 2G GSM: 9 parameters (SI3/SI4 cell reselection, C1/C2 criteria).
# --------------------------------------------------------------------------

_GSM_PARAMS = [
    _gsm("cell_reselect_hysteresis", "radio_signal", ["decision"], "SI3", units.HYSTERESIS_DB),
    _gsm("rxlev_access_min", "radio_signal", ["calibration"], "SI3", units.DBM_THRESHOLD),
    _gsm("ms_txpwr_max_cch", "misc", ["calibration"], "SI3", units.POWER_DBM),
    _gsm("cell_reselect_offset", "radio_signal", ["decision"], "SI4", units.OFFSET_DB),
    _gsm("temporary_offset", "radio_signal", ["decision"], "SI4", units.OFFSET_DB),
    _gsm("penalty_time", "timer", ["decision"], "SI4", units.T_RESELECTION_S),
    _gsm("cell_bar_qualify", "misc", ["decision"], "SI4", Domain("enum", choices=(0, 1))),
    _gsm("c2_enabled", "misc", ["decision"], "SI4", Domain("enum", choices=(0, 1))),
    _gsm("multiband_reporting", "misc", ["measurement"], "SI4", Domain("enum", choices=(0, 1, 2, 3))),
]


def _evdo(name, category, used_for, message, domain, symbol=""):
    return ParameterSpec(name, RAT.EVDO, category, tuple(used_for), message, domain, symbol)


# --------------------------------------------------------------------------
# 3G EVDO: 14 parameters (pilot-set management / route update).
# --------------------------------------------------------------------------

_EVDO_PARAMS = [
    _evdo("pilot_add", "radio_signal", ["measurement", "decision"], "sector_params", units.OFFSET_DB),
    _evdo("pilot_drop", "radio_signal", ["decision"], "sector_params", units.OFFSET_DB),
    _evdo("pilot_drop_timer", "timer", ["decision"], "sector_params", units.T_RESELECTION_S),
    _evdo("pilot_compare", "radio_signal", ["decision"], "sector_params", units.OFFSET_DB),
    _evdo("active_set_max", "misc", ["decision"], "sector_params", Domain("int", low=1, high=6, step=1)),
    _evdo("neighbor_max_age", "timer", ["measurement"], "sector_params", units.T_RESELECTION_S),
    _evdo("search_window_active", "misc", ["measurement"], "sector_params", Domain("int", low=0, high=15, step=1)),
    _evdo("search_window_neighbor", "misc", ["measurement"], "sector_params", Domain("int", low=0, high=15, step=1)),
    _evdo("search_window_remaining", "misc", ["measurement"], "sector_params", Domain("int", low=0, high=15, step=1)),
    _evdo("soft_slope", "radio_signal", ["decision"], "sector_params", units.OFFSET_DB),
    _evdo("add_intercept", "radio_signal", ["decision"], "sector_params", units.OFFSET_DB),
    _evdo("drop_intercept", "radio_signal", ["decision"], "sector_params", units.OFFSET_DB),
    _evdo("idle_handoff_threshold", "radio_signal", ["decision"], "sector_params", units.OFFSET_DB),
    _evdo("route_update_radius", "misc", ["decision"], "sector_params", Domain("int", low=0, high=2047, step=1)),
]


def _cdma(name, category, used_for, message, domain, symbol=""):
    return ParameterSpec(name, RAT.CDMA1X, category, tuple(used_for), message, domain, symbol)


# --------------------------------------------------------------------------
# 2G CDMA1x: 4 parameters (classic pilot thresholds).
# --------------------------------------------------------------------------

_CDMA1X_PARAMS = [
    _cdma("t_add", "radio_signal", ["measurement", "decision"], "sys_params", units.OFFSET_DB),
    _cdma("t_drop", "radio_signal", ["decision"], "sys_params", units.OFFSET_DB),
    _cdma("t_comp", "radio_signal", ["decision"], "sys_params", units.OFFSET_DB),
    _cdma("t_tdrop", "timer", ["decision"], "sys_params", units.T_RESELECTION_S),
]

#: The full registry keyed by RAT; counts mirror the paper's Table 4.
REGISTRY: dict[RAT, tuple[ParameterSpec, ...]] = {
    RAT.LTE: tuple(_LTE_IDLE + _LTE_CONNECTED),
    RAT.UMTS: tuple(_UMTS_IDLE + _UMTS_CONNECTED),
    RAT.GSM: tuple(_GSM_PARAMS),
    RAT.EVDO: tuple(_EVDO_PARAMS),
    RAT.CDMA1X: tuple(_CDMA1X_PARAMS),
}

_EXPECTED_COUNTS = {RAT.LTE: 66, RAT.UMTS: 64, RAT.GSM: 9, RAT.EVDO: 14, RAT.CDMA1X: 4}
for _rat, _expected in _EXPECTED_COUNTS.items():
    _actual = len(REGISTRY[_rat])
    if _actual != _expected:
        raise AssertionError(
            f"{_rat.value} registry has {_actual} parameters, paper says {_expected}"
        )
    _names = [s.name for s in REGISTRY[_rat]]
    if len(set(_names)) != len(_names):
        raise AssertionError(f"duplicate parameter names in {_rat.value} registry")


def parameters_for(rat: RAT) -> tuple[ParameterSpec, ...]:
    """All parameter specs of one RAT."""
    return REGISTRY[rat]


def parameter_count(rat: RAT) -> int:
    """Number of standardized parameters for a cell of ``rat``."""
    return len(REGISTRY[rat])


def spec_by_name(rat: RAT, name: str) -> ParameterSpec:
    """Resolve a parameter name within one RAT's registry.

    Raises:
        KeyError: If the name is not in the registry.
    """
    for spec in REGISTRY[rat]:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown {rat.value} parameter {name!r}")


def idle_state_parameters(rat: RAT) -> tuple[ParameterSpec, ...]:
    """Parameters broadcast in SIBs (idle-state handoff configuration)."""
    return tuple(s for s in REGISTRY[rat] if s.message not in ("meas_config", "meas_control"))


def active_state_parameters(rat: RAT) -> tuple[ParameterSpec, ...]:
    """Parameters sent in dedicated signaling (active-state handoffs)."""
    return tuple(s for s in REGISTRY[rat] if s.message in ("meas_config", "meas_control"))
