"""Per-cell LTE handoff configuration structures.

These dataclasses mirror how the configuration actually reaches a phone:
idle-state parameters ride the System Information Blocks the serving
cell broadcasts (SIB3 serving/common, SIB4 intra-freq neighbors, SIB5
inter-freq layers, SIB6/7/8 inter-RAT layers), and active-state
parameters ride the measConfig of an RRC Connection Reconfiguration.

``LteCellConfig`` bundles everything a single cell is configured with
and knows how to flatten itself into (parameter name, value) samples —
the unit dataset D2 counts ("we treat each parameter observed as one
sample", Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.events import EventConfig, PeriodicConfig
from repro.config.parameters import spec_by_name
from repro.cellnet.rat import RAT


@dataclass(frozen=True)
class ServingCellConfig:
    """SIB3 content: serving-cell reselection configuration.

    Thresholds here are *relative* levels in dB against the calibrated
    floor (paper Eq. 1: measurement triggers when rS - Delta_min <=
    Theta), matching the spec's S-criterion encoding.
    """

    q_hyst: float = 4.0
    s_intra_search_p: float = 62.0
    s_intra_search_q: float = 8.0
    s_non_intra_search_p: float = 8.0
    s_non_intra_search_q: float = 4.0
    thresh_serving_low_p: float = 6.0
    thresh_serving_low_q: float = 4.0
    cell_reselection_priority: int = 4
    q_rx_lev_min: float = -122.0
    q_qual_min: float = -18.0
    p_max: int = 23
    t_reselection_eutra: int = 1

    def parameter_samples(self) -> list[tuple[str, object]]:
        """(name, value) pairs for every SIB3 parameter."""
        return [
            ("q_hyst", self.q_hyst),
            ("s_intra_search_p", self.s_intra_search_p),
            ("s_intra_search_q", self.s_intra_search_q),
            ("s_non_intra_search_p", self.s_non_intra_search_p),
            ("s_non_intra_search_q", self.s_non_intra_search_q),
            ("thresh_serving_low_p", self.thresh_serving_low_p),
            ("thresh_serving_low_q", self.thresh_serving_low_q),
            ("cell_reselection_priority", self.cell_reselection_priority),
            ("q_rx_lev_min", self.q_rx_lev_min),
            ("q_qual_min", self.q_qual_min),
            ("p_max", self.p_max),
            ("t_reselection_eutra", self.t_reselection_eutra),
        ]


@dataclass(frozen=True)
class IntraFreqNeighborConfig:
    """SIB4 content: intra-frequency neighbor tuning."""

    q_offset_cell: float = 0.0
    black_cell_list: tuple[int, ...] = ()

    def parameter_samples(self) -> list[tuple[str, object]]:
        return [
            ("q_offset_cell", self.q_offset_cell),
            ("intra_freq_black_cell_list", list(self.black_cell_list)),
        ]


@dataclass(frozen=True)
class InterFreqLayerConfig:
    """SIB5 content for one inter-frequency carrier layer."""

    dl_carrier_freq: int = 5110
    q_offset_freq: float = 0.0
    cell_reselection_priority: int = 4
    thresh_x_high_p: float = 12.0
    thresh_x_low_p: float = 0.0
    q_rx_lev_min: float = -122.0
    p_max: int = 23
    t_reselection_eutra: int = 1
    allowed_meas_bandwidth: int = 50

    def parameter_samples(self) -> list[tuple[str, object]]:
        return [
            ("dl_carrier_freq", self.dl_carrier_freq),
            ("q_offset_freq", self.q_offset_freq),
            ("cell_reselection_priority_inter", self.cell_reselection_priority),
            ("thresh_x_high_p", self.thresh_x_high_p),
            ("thresh_x_low_p", self.thresh_x_low_p),
            ("q_rx_lev_min_inter", self.q_rx_lev_min),
            ("p_max_inter", self.p_max),
            ("t_reselection_eutra_inter", self.t_reselection_eutra),
            ("allowed_meas_bandwidth", self.allowed_meas_bandwidth),
        ]


@dataclass(frozen=True)
class InterRatUtraConfig:
    """SIB6 content for one UTRA (3G UMTS) carrier layer."""

    carrier_freq: int = 4385
    cell_reselection_priority: int = 2
    thresh_x_high: float = 8.0
    thresh_x_low: float = 2.0
    q_rx_lev_min: float = -115.0
    t_reselection: int = 2

    def parameter_samples(self) -> list[tuple[str, object]]:
        return [
            ("carrier_freq_utra", self.carrier_freq),
            ("cell_reselection_priority_utra", self.cell_reselection_priority),
            ("thresh_x_high_utra", self.thresh_x_high),
            ("thresh_x_low_utra", self.thresh_x_low),
            ("q_rx_lev_min_utra", self.q_rx_lev_min),
            ("t_reselection_utra", self.t_reselection),
        ]


@dataclass(frozen=True)
class InterRatGeranConfig:
    """SIB7 content for one GERAN (2G GSM) frequency group."""

    carrier_freqs: tuple[int, ...] = (128,)
    cell_reselection_priority: int = 0
    thresh_x_high: float = 6.0
    thresh_x_low: float = 2.0
    q_rx_lev_min: float = -110.0
    t_reselection: int = 2

    def parameter_samples(self) -> list[tuple[str, object]]:
        return [
            ("carrier_freqs_geran", list(self.carrier_freqs)),
            ("cell_reselection_priority_geran", self.cell_reselection_priority),
            ("thresh_x_high_geran", self.thresh_x_high),
            ("thresh_x_low_geran", self.thresh_x_low),
            ("q_rx_lev_min_geran", self.q_rx_lev_min),
            ("t_reselection_geran", self.t_reselection),
        ]


@dataclass(frozen=True)
class InterRatCdmaConfig:
    """SIB8 content for one CDMA2000 band class."""

    band_class: int = 1
    cell_reselection_priority: int = 1
    thresh_x_high: float = 8.0
    thresh_x_low: float = 2.0
    t_reselection: int = 2

    def parameter_samples(self) -> list[tuple[str, object]]:
        return [
            ("band_class_cdma", self.band_class),
            ("cell_reselection_priority_cdma", self.cell_reselection_priority),
            ("thresh_x_high_cdma", self.thresh_x_high),
            ("thresh_x_low_cdma", self.thresh_x_low),
            ("t_reselection_cdma", self.t_reselection),
        ]


@dataclass(frozen=True)
class MeasurementConfig:
    """measConfig content: armed events and measurement gating.

    ``s_measure`` gates neighbor measurement in connected mode: when the
    serving RSRP exceeds it, the UE may skip neighbor measurements.
    """

    events: tuple[EventConfig, ...] = ()
    periodic: PeriodicConfig | None = None
    s_measure: float = -97.0

    def parameter_samples(self) -> list[tuple[str, object]]:
        samples: list[tuple[str, object]] = [("s_measure", self.s_measure)]
        for event in self.events:
            samples.extend(event.parameter_samples())
        if self.periodic is not None:
            samples.extend(self.periodic.as_event_config().parameter_samples())
        return samples


@dataclass(frozen=True)
class LteCellConfig:
    """Complete handoff configuration of one LTE cell."""

    serving: ServingCellConfig = field(default_factory=ServingCellConfig)
    intra_neighbors: IntraFreqNeighborConfig = field(default_factory=IntraFreqNeighborConfig)
    inter_freq_layers: tuple[InterFreqLayerConfig, ...] = ()
    utra_layers: tuple[InterRatUtraConfig, ...] = ()
    geran_layers: tuple[InterRatGeranConfig, ...] = ()
    cdma_layers: tuple[InterRatCdmaConfig, ...] = ()
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)

    def idle_parameter_samples(self) -> list[tuple[str, object]]:
        """(name, value) samples of the SIB-borne (idle-state) part only.

        The crawler uses this when an episode observed the SIBs but no
        dedicated measConfig — a default measConfig must not leak
        phantom active-state samples into dataset D2.
        """
        samples = list(self.serving.parameter_samples())
        samples.extend(self.intra_neighbors.parameter_samples())
        for layer in self.inter_freq_layers:
            samples.extend(layer.parameter_samples())
        for layer in self.utra_layers:
            samples.extend(layer.parameter_samples())
        for layer in self.geran_layers:
            samples.extend(layer.parameter_samples())
        for layer in self.cdma_layers:
            samples.extend(layer.parameter_samples())
        return samples

    def parameter_samples(self) -> list[tuple[str, object]]:
        """All (name, value) samples this cell's configuration yields.

        Every name resolves in the LTE registry; this invariant is
        enforced in tests and relied on by the dataset builders.
        """
        samples = list(self.serving.parameter_samples())
        samples.extend(self.intra_neighbors.parameter_samples())
        for layer in self.inter_freq_layers:
            samples.extend(layer.parameter_samples())
        for layer in self.utra_layers:
            samples.extend(layer.parameter_samples())
        for layer in self.geran_layers:
            samples.extend(layer.parameter_samples())
        for layer in self.cdma_layers:
            samples.extend(layer.parameter_samples())
        samples.extend(self.measurement.parameter_samples())
        return samples

    def validate(self) -> list[str]:
        """Domain-check every sample; returns violation descriptions."""
        problems = []
        for name, value in self.parameter_samples():
            spec = spec_by_name(RAT.LTE, name)
            if not spec.domain.contains(value):
                problems.append(f"{name}={value!r} outside domain")
        return problems

    def priority_of_layer(self, rat: RAT, channel: int, serving_channel: int) -> int | None:
        """Reselection priority this cell assigns to a (rat, channel) layer.

        Returns the serving priority for the serving channel, the SIB5/6/
        7/8 priority for configured layers, and None for unknown layers
        (which idle reselection then ignores, as a real UE does).
        """
        if rat is RAT.LTE:
            if channel == serving_channel:
                return self.serving.cell_reselection_priority
            for layer in self.inter_freq_layers:
                if layer.dl_carrier_freq == channel:
                    return layer.cell_reselection_priority
            return None
        if rat is RAT.UMTS:
            for layer in self.utra_layers:
                if layer.carrier_freq == channel:
                    return layer.cell_reselection_priority
            return None
        if rat is RAT.GSM:
            for layer in self.geran_layers:
                if channel in layer.carrier_freqs:
                    return layer.cell_reselection_priority
            return None
        for layer in self.cdma_layers:
            return layer.cell_reselection_priority
        return None
