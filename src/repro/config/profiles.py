"""Per-carrier configuration policy profiles.

The paper's central empirical object is the *population* of configuration
values each carrier deploys.  Real values came from crawled SIBs; here a
:class:`CarrierProfile` generates a synthetic population calibrated to
every marginal the paper reports:

* decisive-event policy mix per carrier (Fig. 5: AT&T A3 67.4% / A5
  26.1% / P 4.4% / A2 1.7%; T-Mobile A3 67.7% / P 20.2% / A5 10.0%),
* parameter value ranges and dominant values (Fig. 14/15: AT&T
  Delta_A3 in [0,5] dominated by 3 dB, T-Mobile in [-1,15] dominated by
  3/4/5 dB; A5 thresholds with the permissive -44 dBm serving threshold
  that Section 4.1 dissects; q_rx_lev_min almost single-valued at -122),
* per-carrier diversity tiers (Fig. 17: SK Telecom single-valued,
  MobileOne low, the rest high),
* frequency dependence of priorities with rare multi-valued channels
  (Fig. 18: ~6.3% of AT&T cells; band 30 / channel 9820 on top),
* city dependence (Fig. 20: Chicago differs) and proximity behaviour
  (Fig. 21: T-Mobile configures per (city, channel) — zero spatial
  diversity; AT&T/Verizon/Sprint fine-tune per cell),
* temporal dynamics (Fig. 13: idle-state parameters update rarely,
  active-state measConfig varies across observations).

Profiles are pure functions of (seed, carrier, cell, context): the same
cell always gets the same base configuration, which is what makes the
datasets reproducible and the temporal analysis meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cellnet.cell import Cell
from repro.cellnet.rat import RAT
from repro.config.events import EventConfig, EventType, PeriodicConfig
from repro.config.legacy import (
    Cdma1xCellConfig,
    EvdoCellConfig,
    GsmCellConfig,
    UmtsCellConfig,
)
from repro.config.lte import (
    InterFreqLayerConfig,
    InterRatCdmaConfig,
    InterRatGeranConfig,
    InterRatUtraConfig,
    IntraFreqNeighborConfig,
    LteCellConfig,
    MeasurementConfig,
    ServingCellConfig,
)
from repro.config.units import nearest_time_to_trigger
from repro.util import stable_hash


@dataclass(frozen=True)
class ConfigContext:
    """Deployment context a profile needs to configure one cell.

    Attributes:
        city: City the cell is in (city-dependent policies key on this).
        lte_channels: Other LTE channels of this carrier in the area —
            they become SIB5 inter-freq layers.
        utra_channels: 3G channels for SIB6.
        geran_channels: 2G GSM channels for SIB7.
        cdma_bands: CDMA band classes for SIB8.
    """

    city: str = ""
    lte_channels: tuple[int, ...] = ()
    utra_channels: tuple[int, ...] = ()
    geran_channels: tuple[int, ...] = ()
    cdma_bands: tuple[int, ...] = ()


def _draw(rng: np.random.Generator, table: dict) -> object:
    """Weighted draw from a {value: weight} table (deterministic order)."""
    values = list(table.keys())
    weights = np.array([table[v] for v in values], dtype=float)
    weights /= weights.sum()
    return values[int(rng.choice(len(values), p=weights))]


@dataclass(frozen=True)
class CarrierStyle:
    """Knobs describing one carrier's configuration habits.

    ``diversity`` scales how many alternative values dispersed
    parameters take: "high" carriers use the full tables below, "low"
    carriers collapse most tables to their dominant value, and "none"
    (SK Telecom) is single-valued everywhere.
    """

    event_policy: dict = field(default_factory=lambda: {"A3": 0.65, "A5": 0.2, "P": 0.1, "A2": 0.04, "A1": 0.005, "A4": 0.005})
    a3_offsets: dict = field(default_factory=lambda: {0.0: 1, 1.0: 2, 2.0: 3, 3.0: 10, 4.0: 3, 5.0: 2})
    a3_hysteresis: dict = field(default_factory=lambda: {1.0: 5, 1.5: 2, 2.0: 2, 2.5: 1})
    a5_rsrq_share: float = 0.0
    a5_serving_rsrp: dict = field(default_factory=lambda: {-44.0: 6, -118.0: 2, -121.0: 1, -110.0: 1})
    a5_candidate_rsrp: dict = field(default_factory=lambda: {-114.0: 6, -118.0: 2, -112.0: 1, -101.0: 1})
    a5_serving_rsrq: dict = field(default_factory=lambda: {-11.5: 3, -14.0: 2, -16.0: 2, -18.0: 1})
    a5_candidate_rsrq: dict = field(default_factory=lambda: {-14.0: 3, -15.0: 2, -16.5: 2, -18.5: 1})
    time_to_trigger: dict = field(default_factory=lambda: {40: 2, 80: 2, 128: 2, 256: 1, 320: 3, 480: 1, 640: 3, 1280: 2})
    q_hyst: dict = field(default_factory=lambda: {4.0: 1})
    q_rx_lev_min: dict = field(default_factory=lambda: {-122.0: 400, -124.0: 1, -120.0: 1, -94.0: 1})
    s_intra_search: dict = field(default_factory=lambda: {62.0: 10, 60.0: 2, 58.0: 1, 50.0: 1, 46.0: 1})
    s_non_intra_search: dict = field(default_factory=lambda: (
        dict.fromkeys((0.0, 2.0, 4.0, 6.0, 10.0, 12.0, 14.0, 16.0), 1.0)
        | dict.fromkeys((18.0, 20.0, 22.0, 24.0, 26.0, 30.0, 34.0, 38.0, 42.0, 46.0, 62.0), 0.3)
        | {8.0: 8.0, 28.0: 4.0}
    ))
    thresh_serving_low: dict = field(default_factory=lambda: (
        dict.fromkeys((0.0, 2.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 22.0, 24.0, 26.0, 28.0, 30.0), 1.0)
        | {4.0: 6.0, 6.0: 7.0}
    ))
    thresh_x_high: dict = field(default_factory=lambda: {26.0: 4, 30.0: 3, 22.0: 2, 34.0: 1, 20.0: 1})
    thresh_x_low: dict = field(default_factory=lambda: {0.0: 3, 2.0: 3, 4.0: 2, 8.0: 1, 12.0: 1})
    q_offset_freq: dict = field(default_factory=lambda: {0.0: 8, 2.0: 1, -2.0: 1})
    diversity: str = "high"
    #: "cell" = per-cell fine-tuning (nonzero proximity diversity);
    #: "grid" = config keyed on (city, channel) only (T-Mobile's habit).
    spatial_mode: str = "cell"
    #: Probability that one observation of the measConfig differs from
    #: the base (active-state temporal dynamics, Fig. 13b: ~21-24% of
    #: cells observed with changed active-state configuration).
    active_churn: float = 0.12
    #: Per-180-days probability that idle-state SIB parameters change
    #: (Fig. 13b: 0.4-1.6% of cells).
    idle_churn_180d: float = 0.018
    #: Fraction of cells whose channel carries a second priority value
    #: (the inconsistent settings behind priority loops, Section 5.4.1;
    #: together with the market-dependent channels this lands near the
    #: paper's 6.3% multi-valued-cell share).
    priority_conflict_rate: float = 0.03


def _single_valued(style: CarrierStyle) -> CarrierStyle:
    """Collapse every table of ``style`` to its dominant value."""

    def dominant(table: dict) -> dict:
        best = max(table, key=table.get)
        return {best: 1.0}

    return CarrierStyle(
        event_policy={"A3": 1.0},
        a3_offsets=dominant(style.a3_offsets),
        a3_hysteresis=dominant(style.a3_hysteresis),
        a5_rsrq_share=0.0,
        a5_serving_rsrp=dominant(style.a5_serving_rsrp),
        a5_candidate_rsrp=dominant(style.a5_candidate_rsrp),
        a5_serving_rsrq=dominant(style.a5_serving_rsrq),
        a5_candidate_rsrq=dominant(style.a5_candidate_rsrq),
        time_to_trigger=dominant(style.time_to_trigger),
        q_hyst=dominant(style.q_hyst),
        q_rx_lev_min=dominant(style.q_rx_lev_min),
        s_intra_search=dominant(style.s_intra_search),
        s_non_intra_search=dominant(style.s_non_intra_search),
        thresh_serving_low=dominant(style.thresh_serving_low),
        thresh_x_high=dominant(style.thresh_x_high),
        thresh_x_low=dominant(style.thresh_x_low),
        q_offset_freq=dominant(style.q_offset_freq),
        diversity="none",
        spatial_mode="grid",
        active_churn=0.0,
        idle_churn_180d=0.0,
        priority_conflict_rate=0.0,
    )


def _reduced(style: CarrierStyle, keep: int = 3) -> CarrierStyle:
    """Trim every table of ``style`` to its ``keep`` heaviest values."""

    def trim(table: dict) -> dict:
        top = sorted(table, key=table.get, reverse=True)[:keep]
        return {v: table[v] for v in top}

    return CarrierStyle(
        event_policy=trim(style.event_policy),
        a3_offsets=trim(style.a3_offsets),
        a3_hysteresis=trim(style.a3_hysteresis),
        a5_rsrq_share=style.a5_rsrq_share,
        a5_serving_rsrp=trim(style.a5_serving_rsrp),
        a5_candidate_rsrp=trim(style.a5_candidate_rsrp),
        a5_serving_rsrq=trim(style.a5_serving_rsrq),
        a5_candidate_rsrq=trim(style.a5_candidate_rsrq),
        time_to_trigger=trim(style.time_to_trigger),
        q_hyst=trim(style.q_hyst),
        q_rx_lev_min=trim(style.q_rx_lev_min),
        s_intra_search=trim(style.s_intra_search),
        s_non_intra_search=trim(style.s_non_intra_search),
        thresh_serving_low=trim(style.thresh_serving_low),
        thresh_x_high=trim(style.thresh_x_high),
        thresh_x_low=trim(style.thresh_x_low),
        q_offset_freq=trim(style.q_offset_freq),
        diversity="low",
        spatial_mode="grid",
        active_churn=0.05,
        idle_churn_180d=0.004,
        priority_conflict_rate=0.01,
    )


_BASE_STYLE = CarrierStyle()

#: Carrier-specific styles.  Unlisted carriers get a generic high-
#: diversity style derived from their acronym hash (still deterministic).
CARRIER_STYLES: dict[str, CarrierStyle] = {
    # AT&T: the paper's reference carrier.  Delta_A3 in [0, 5] dominated
    # by 3 dB; A5 split between RSRP and RSRQ with the permissive
    # (-44, -114) RSRP pair dominant; wide TTT dispersion.
    # The event_policy table is the *cell-level* arming mix; it is set
    # so the resulting handoff-instance mix lands on Fig. 5a's shares
    # (A3 67.4% / A5 26.1% / P 4.4%) — A5 and periodic policies fire
    # more handoffs per armed cell than A3 does, so their cell shares
    # sit below their instance shares.
    "A": CarrierStyle(
        event_policy={"A3": 0.755, "A5": 0.20, "P": 0.02, "A2": 0.019, "A1": 0.003, "A4": 0.003},
        a3_offsets={0.0: 1, 1.0: 1, 2.0: 2, 3.0: 12, 4.0: 3, 5.0: 2},
        a3_hysteresis={1.0: 5, 1.5: 2, 2.0: 2, 2.5: 1},
        a5_rsrq_share=0.48,
        a5_serving_rsrp={-44.0: 7, -118.0: 2, -121.0: 1},
        a5_candidate_rsrp={-114.0: 8, -118.0: 1, -112.0: 1},
        a5_serving_rsrq={-11.5: 4, -14.0: 2, -16.0: 2, -18.0: 1},
        a5_candidate_rsrq={-14.0: 4, -15.5: 2, -16.5: 2, -18.5: 1},
        spatial_mode="cell",
    ),
    # T-Mobile: wider, occasionally negative A3 offsets; RSRP-only A5
    # with strict serving thresholds; grid-granularity configuration
    # (near-zero proximity diversity, Fig. 21).
    "T": CarrierStyle(
        event_policy={"A3": 0.677, "P": 0.202, "A5": 0.100, "A2": 0.014, "A1": 0.004, "A4": 0.003},
        a3_offsets={-1.0: 1, 0.0: 1, 1.0: 2, 2.0: 3, 3.0: 10, 4.0: 9, 5.0: 8, 6.0: 3, 8.0: 2, 10.0: 1, 12.0: 1, 15.0: 1},
        a3_hysteresis={0.0: 2, 1.0: 10, 2.0: 3, 3.0: 1, 4.0: 1, 5.0: 1},
        a5_rsrq_share=0.05,
        a5_serving_rsrp={-87.0: 3, -95.0: 2, -105.0: 2, -112.0: 2, -121.0: 3},
        a5_candidate_rsrp={-101.0: 3, -108.0: 3, -112.0: 2, -118.0: 2},
        spatial_mode="grid",
    ),
    # Verizon / Sprint: CDMA-family carriers with per-cell fine-tuning.
    "V": CarrierStyle(spatial_mode="cell"),
    "S": CarrierStyle(spatial_mode="cell"),
    # China Mobile: diverse, TDD-heavy.
    "CM": CarrierStyle(spatial_mode="cell"),
    # SK Telecom: the paper's single-valued outlier (Fig. 15/17).
    "SK": _single_valued(_BASE_STYLE),
    # MobileOne: low diversity.
    "MO": _reduced(_BASE_STYLE, keep=2),
    # China Mobile Hong Kong / Chunghwa: highly diverse.
    "CH": CarrierStyle(spatial_mode="cell"),
    "CW": CarrierStyle(spatial_mode="cell"),
}


def _style_for(acronym: str) -> CarrierStyle:
    if acronym in CARRIER_STYLES:
        return CARRIER_STYLES[acronym]
    # Deterministic generic style: medium diversity.
    return _reduced(_BASE_STYLE, keep=4)


class CarrierProfile:
    """Generates handoff configurations for one carrier's cells.

    Args:
        acronym: Carrier acronym (Table 3).
        seed: Profile seed; all outputs are deterministic in
            (seed, acronym, cell identity / grid key, observation rng).
    """

    def __init__(self, acronym: str, seed: int = 2018):
        self.acronym = acronym
        self.seed = seed
        self.style = _style_for(acronym)

    # -- deterministic RNG plumbing -------------------------------------

    def _cell_rng(self, cell: Cell, salt: int = 0, force_cell: bool = False) -> np.random.Generator:
        """Per-cell generator ("cell" spatial mode) or per-grid-key
        generator ("grid" mode: keyed on city + channel only).

        ``force_cell`` bypasses grid mode: the paper's near-zero spatial
        diversity for grid carriers concerns the *idle* SIB parameters
        (Fig. 21 analyzes Ps); dedicated measConfig content still varies
        per cell on every carrier.
        """
        if self.style.spatial_mode == "grid" and not force_cell:
            key = (stable_hash(cell.city) & 0xFFFFFF, cell.channel)
        else:
            key = (cell.cell_id.gci, cell.channel)
        return np.random.default_rng(
            (self.seed, stable_hash(self.acronym) & 0xFFFF, key[0], key[1], salt)
        )

    # -- priorities ------------------------------------------------------

    def priority_for_channel(self, channel: int, city: str, rng: np.random.Generator) -> int:
        """LTE reselection priority of one EARFCN.

        Mostly a deterministic per-channel value (Fig. 18: each channel
        has one dominant priority); a ``priority_conflict_rate`` fraction
        of draws picks a second value, producing the inconsistent
        settings Section 5.4.1 troubleshoots.  Chicago gets a shifted
        map (Fig. 20: C1 differs from other cities).
        """
        base_rng = np.random.default_rng(
            (self.seed, stable_hash(self.acronym) & 0xFFFF, channel, 0xBEEF)
        )
        if self.style.diversity == "none":
            return 5
        if self.style.spatial_mode == "grid":
            # Grid-granularity carriers (T-Mobile's habit) use one
            # priority per city across all their LTE layers — the reason
            # their proximity diversity is ~zero in Fig. 21.
            city_rng = np.random.default_rng(
                (self.seed, stable_hash(self.acronym) & 0xFFFF,
                 stable_hash(city) & 0xFFFF, 0xC17)
            )
            return int(city_rng.integers(3, 6))
        try:
            from repro.cellnet.bands import earfcn_to_band

            band = earfcn_to_band(channel).number
        except ValueError:
            band = 0
        if band == 30:
            base = 5  # Recently acquired WCS spectrum: top priority.
        elif band in (12, 17, 29):
            base = 2  # LTE-exclusive "main" bands: lower priority.
        elif band in (2, 25):
            base = 3
        elif band == 4:
            base = int(base_rng.integers(3, 5))
        else:
            base = int(base_rng.integers(2, 6))
        # A subset of channels is configured differently per market area
        # (Fig. 20: Chicago differs); most channels stay nationally
        # uniform, keeping Fig. 18's mostly-single-valued breakdown.
        city_sensitive = base_rng.random() < 0.1
        if city == "Chicago" and self.style.diversity == "high" and city_sensitive:
            base = min(7, base + 1)
        if rng.random() < self.style.priority_conflict_rate:
            alt = base - 1 if base >= 3 else base + 1
            return alt
        return base

    # -- active-state (measConfig) ----------------------------------------

    def _event_suite(self, rng: np.random.Generator) -> tuple[tuple[EventConfig, ...], PeriodicConfig | None]:
        """The armed events of one measConfig.

        Every connected UE gets an A2 (radio-problem detector).  The
        carrier's *policy* event — the one that ends up decisive — is
        drawn from the Fig. 5 mix; P policies arm periodic reporting.
        """
        style = self.style
        ttt = int(_draw(rng, style.time_to_trigger))
        policy = str(_draw(rng, style.event_policy))
        events: list[EventConfig] = [
            EventConfig(
                event=EventType.A2,
                metric="rsrp",
                threshold1=float(_draw(rng, {-114.0: 4, -112.0: 2, -116.0: 2, -118.0: 1})),
                hysteresis=1.0,
                time_to_trigger_ms=nearest_time_to_trigger(640),
                report_amount=1,
            )
        ]
        periodic: PeriodicConfig | None = None
        if policy == "A3":
            events.append(
                EventConfig(
                    event=EventType.A3,
                    metric="rsrp",
                    offset=float(_draw(rng, style.a3_offsets)),
                    hysteresis=float(_draw(rng, style.a3_hysteresis)),
                    time_to_trigger_ms=ttt,
                    report_amount=1,
                )
            )
        elif policy == "A5":
            # Coverage-based events ride longer triggers in practice —
            # without this, the permissive (-44 dBm) A5 pairs fire on
            # the first measurement round and A5 would overwhelm the
            # instance mix relative to its cell-policy share.
            ttt = int(_draw(rng, {640: 2, 1280: 4, 2560: 2}))
            use_rsrq = rng.random() < style.a5_rsrq_share
            if use_rsrq:
                events.append(
                    EventConfig(
                        event=EventType.A5,
                        metric="rsrq",
                        threshold1=float(_draw(rng, style.a5_serving_rsrq)),
                        threshold2=float(_draw(rng, style.a5_candidate_rsrq)),
                        hysteresis=1.0,
                        time_to_trigger_ms=ttt,
                        report_amount=1,
                    )
                )
            else:
                events.append(
                    EventConfig(
                        event=EventType.A5,
                        metric="rsrp",
                        threshold1=float(_draw(rng, style.a5_serving_rsrp)),
                        threshold2=float(_draw(rng, style.a5_candidate_rsrp)),
                        hysteresis=1.0,
                        time_to_trigger_ms=ttt,
                        report_amount=1,
                    )
                )
        elif policy == "P":
            periodic = PeriodicConfig(report_interval_ms=int(_draw(rng, {2048: 3, 5120: 4, 10240: 1})))
        elif policy == "A1":
            events.append(
                EventConfig(
                    event=EventType.A1,
                    metric="rsrp",
                    threshold1=-100.0,
                    hysteresis=1.0,
                    time_to_trigger_ms=ttt,
                )
            )
        elif policy == "A4":
            events.append(
                EventConfig(
                    event=EventType.A4,
                    metric="rsrp",
                    threshold1=float(_draw(rng, {-104.0: 2, -108.0: 1})),
                    hysteresis=1.0,
                    time_to_trigger_ms=ttt,
                )
            )
        # policy == "A2": the A2 above is the only trigger (rare; yields
        # the blind-redirection handoffs the paper occasionally sees).
        return tuple(events), periodic

    def measurement_config(self, cell: Cell, obs_rng: np.random.Generator | None = None) -> MeasurementConfig:
        """The measConfig a UE connected to ``cell`` receives.

        With ``obs_rng`` given, the observation may differ from the base
        with probability ``active_churn`` — reproducing the much higher
        temporal variability of active-state parameters (Fig. 13b).
        """
        rng = self._cell_rng(cell, salt=1, force_cell=True)
        events, periodic = self._event_suite(rng)
        if obs_rng is not None and obs_rng.random() < self.style.active_churn:
            alt_rng = np.random.default_rng(
                (self.seed, cell.cell_id.gci, int(obs_rng.integers(1 << 30)), 2)
            )
            events, periodic = self._event_suite(alt_rng)
        s_measure = float(_draw(rng, {-97.0: 5, -95.0: 2, -103.0: 1, -44.0: 1}))
        return MeasurementConfig(events=events, periodic=periodic, s_measure=s_measure)

    # -- idle-state (SIBs) -------------------------------------------------

    def serving_config(self, cell: Cell, context: ConfigContext) -> ServingCellConfig:
        """SIB3 serving-cell configuration for ``cell``."""
        rng = self._cell_rng(cell, salt=3)
        style = self.style
        s_intra = float(_draw(rng, style.s_intra_search))
        # Non-intra threshold never exceeds the intra threshold; ~5% of
        # cells configure them equal (both measurements invoked at the
        # same time — the paper's Fig. 11 tie case).
        if rng.random() < 0.05:
            s_non_intra = s_intra
        else:
            s_non_intra = min(float(_draw(rng, style.s_non_intra_search)), s_intra)
        return ServingCellConfig(
            q_hyst=float(_draw(rng, style.q_hyst)),
            s_intra_search_p=s_intra,
            s_intra_search_q=float(_draw(rng, {8.0: 5, 6.0: 2, 10.0: 1})),
            s_non_intra_search_p=s_non_intra,
            s_non_intra_search_q=float(_draw(rng, {4.0: 5, 6.0: 2, 2.0: 1})),
            thresh_serving_low_p=float(_draw(rng, style.thresh_serving_low)),
            thresh_serving_low_q=float(_draw(rng, {4.0: 5, 2.0: 2, 6.0: 1})),
            cell_reselection_priority=self.priority_for_channel(cell.channel, context.city, rng),
            q_rx_lev_min=float(_draw(rng, style.q_rx_lev_min)),
            q_qual_min=float(_draw(rng, {-18.0: 6, -19.5: 2, -16.0: 1})),
            p_max=23,
            t_reselection_eutra=int(_draw(rng, {1: 5, 2: 3, 0: 1})),
        )

    def lte_config(self, cell: Cell, context: ConfigContext) -> LteCellConfig:
        """Complete base LTE configuration of ``cell``."""
        rng = self._cell_rng(cell, salt=4)
        style = self.style
        serving = self.serving_config(cell, context)
        # The paper observes Theta(c)_lower > Theta(s)_lower: the target
        # of a lower-priority handoff is required to be better than the
        # serving cell was; layer low-thresholds therefore ride above
        # the serving low-threshold.
        base_low = serving.thresh_serving_low_p
        inter_layers = []
        for channel in context.lte_channels:
            if channel == cell.channel:
                continue
            inter_layers.append(
                InterFreqLayerConfig(
                    dl_carrier_freq=channel,
                    q_offset_freq=float(_draw(rng, style.q_offset_freq)),
                    cell_reselection_priority=self.priority_for_channel(channel, context.city, rng),
                    thresh_x_high_p=float(_draw(rng, style.thresh_x_high)),
                    thresh_x_low_p=min(base_low + float(_draw(rng, style.thresh_x_low)) + 2.0, 62.0),
                    q_rx_lev_min=float(_draw(rng, style.q_rx_lev_min)),
                    p_max=23,
                    t_reselection_eutra=int(_draw(rng, {1: 5, 2: 3})),
                    allowed_meas_bandwidth=int(_draw(rng, {50: 5, 100: 3, 25: 1})),
                )
            )
        utra_layers = tuple(
            InterRatUtraConfig(
                carrier_freq=channel,
                cell_reselection_priority=int(_draw(rng, {1: 6, 0: 2})),
                thresh_x_high=float(_draw(rng, style.thresh_x_high)),
                thresh_x_low=min(base_low + float(_draw(rng, style.thresh_x_low)) + 4.0, 62.0),
                q_rx_lev_min=-115.0,
                t_reselection=2,
            )
            for channel in context.utra_channels
        )
        geran_layers = tuple(
            InterRatGeranConfig(
                carrier_freqs=(channel,),
                cell_reselection_priority=0,
                thresh_x_high=float(_draw(rng, style.thresh_x_high)),
                thresh_x_low=min(base_low + float(_draw(rng, style.thresh_x_low)) + 6.0, 62.0),
                q_rx_lev_min=-110.0,
                t_reselection=2,
            )
            for channel in context.geran_channels
        )
        cdma_layers = tuple(
            InterRatCdmaConfig(
                band_class=band,
                cell_reselection_priority=int(_draw(rng, {1: 5, 0: 2})),
                thresh_x_high=float(_draw(rng, style.thresh_x_high)),
                thresh_x_low=min(base_low + float(_draw(rng, style.thresh_x_low)) + 4.0, 62.0),
                t_reselection=2,
            )
            for band in context.cdma_bands
        )
        return LteCellConfig(
            serving=serving,
            intra_neighbors=IntraFreqNeighborConfig(
                q_offset_cell=float(_draw(rng, {0.0: 8, 1.0: 1, -1.0: 1})),
            ),
            inter_freq_layers=tuple(inter_layers),
            utra_layers=utra_layers,
            geran_layers=geran_layers,
            cdma_layers=cdma_layers,
            measurement=self.measurement_config(cell),
        )

    def observed_lte_config(
        self,
        cell: Cell,
        context: ConfigContext,
        obs_rng: np.random.Generator,
        days_since_first: float = 0.0,
    ) -> LteCellConfig:
        """One *observation* of the cell's configuration.

        Models the paper's temporal dynamics: idle-state SIB parameters
        change rarely (probability scaled from ``idle_churn_180d`` by the
        elapsed time), while measConfig content varies observation to
        observation with ``active_churn``.
        """
        base = self.lte_config(cell, context)
        serving = base.serving
        # Idle-state churn is an *event on the cell's timeline*, not an
        # observation effect: version the configuration per 90-day epoch
        # so two observations in the same epoch always agree (Fig. 13b's
        # near-flat, sub-2% idle curve).
        epoch = int(days_since_first // 90)
        changed_epoch = 0
        for e in range(1, epoch + 1):
            flip_rng = np.random.default_rng((self.seed, cell.cell_id.gci, 0xE0, e))
            if flip_rng.random() < self.style.idle_churn_180d / 2.0:
                changed_epoch = e
        if changed_epoch:
            alt_rng = np.random.default_rng(
                (self.seed, cell.cell_id.gci, changed_epoch + 11, 5)
            )
            serving = ServingCellConfig(
                **{
                    **{f: getattr(base.serving, f) for f in (
                        "q_hyst", "s_intra_search_p", "s_intra_search_q",
                        "s_non_intra_search_p", "s_non_intra_search_q",
                        "thresh_serving_low_q", "cell_reselection_priority",
                        "q_rx_lev_min", "q_qual_min", "p_max",
                        "t_reselection_eutra",
                    )},
                    "thresh_serving_low_p": float(_draw(alt_rng, self.style.thresh_serving_low)),
                }
            )
        measurement = self.measurement_config(cell, obs_rng=obs_rng)
        return LteCellConfig(
            serving=serving,
            intra_neighbors=base.intra_neighbors,
            inter_freq_layers=base.inter_freq_layers,
            utra_layers=base.utra_layers,
            geran_layers=base.geran_layers,
            cdma_layers=base.cdma_layers,
            measurement=measurement,
        )

    # -- legacy RATs --------------------------------------------------------

    def umts_config(self, cell: Cell) -> UmtsCellConfig:
        """3G UMTS configuration.

        WCDMA "heavily" shares machinery with LTE (Section 5.5), and
        Fig. 22 shows its diversity second only to LTE's — so most of
        the 64 parameters carry several values, with the usual
        single-valued calibration block.
        """
        rng = self._cell_rng(cell, salt=6)
        if self.style.diversity == "none":
            return UmtsCellConfig()
        ttt = {320: 4, 640: 2, 100: 1, 1280: 1}
        hys = {1.0: 4, 0.5: 2, 1.5: 2, 2.0: 1}
        return UmtsCellConfig(
            q_hyst_1s=float(_draw(rng, {4.0: 4, 2.0: 2, 6.0: 1})),
            q_hyst_2s=float(_draw(rng, {4.0: 4, 2.0: 2, 6.0: 1})),
            s_intrasearch=float(_draw(rng, {10.0: 4, 8.0: 2, 12.0: 2, 14.0: 1})),
            s_intersearch=float(_draw(rng, {10.0: 4, 6.0: 2, 12.0: 1})),
            s_search_rat=float(_draw(rng, {4.0: 4, 2.0: 2, 6.0: 1})),
            s_limit_search_rat=float(_draw(rng, {4.0: 4, 6.0: 2, 2.0: 1})),
            q_rxlevmin=float(_draw(rng, {-115.0: 6, -113.0: 2, -111.0: 1})),
            t_reselection_s=int(_draw(rng, {1: 5, 2: 3, 0: 1})),
            q_offset_s_n_1=float(_draw(rng, {0.0: 6, 2.0: 2, -2.0: 1})),
            q_offset_s_n_2=float(_draw(rng, {0.0: 6, 2.0: 2})),
            penalty_time=int(_draw(rng, {0: 5, 2: 2, 4: 1})),
            temporary_offset=float(_draw(rng, {0.0: 6, 3.0: 2})),
            priority_eutra=int(_draw(rng, {5: 5, 6: 2, 4: 2})),
            thresh_high_eutra=float(_draw(rng, {8.0: 4, 12.0: 2, 6.0: 1})),
            thresh_low_eutra=float(_draw(rng, {4.0: 4, 2.0: 2, 0.0: 1})),
            priority_serving=int(_draw(rng, {2: 6, 1: 2, 3: 1})),
            thresh_serving_low=float(_draw(rng, {4.0: 4, 2.0: 2, 6.0: 2, 8.0: 1})),
            t_reselection_eutra=int(_draw(rng, {2: 5, 1: 3})),
            e1a_reporting_range=float(_draw(rng, {4.0: 4, 3.0: 2, 5.0: 2, 6.0: 1})),
            e1a_hysteresis=float(_draw(rng, hys)),
            e1a_time_to_trigger=int(_draw(rng, ttt)),
            e1b_reporting_range=float(_draw(rng, {6.0: 4, 5.0: 2, 8.0: 1})),
            e1b_hysteresis=float(_draw(rng, hys)),
            e1b_time_to_trigger=int(_draw(rng, ttt)),
            e1c_replacement_threshold=float(_draw(rng, {-95.0: 4, -93.0: 2, -97.0: 1})),
            e1c_time_to_trigger=int(_draw(rng, ttt)),
            e1d_time_to_trigger=int(_draw(rng, ttt)),
            e1e_threshold=float(_draw(rng, {-100.0: 4, -98.0: 2, -102.0: 1})),
            e1f_threshold=float(_draw(rng, {-105.0: 4, -103.0: 2, -107.0: 1})),
            intra_freq_filter_coefficient=int(_draw(rng, {3: 4, 4: 2, 2: 1})),
            e2b_threshold_used=float(_draw(rng, {-100.0: 4, -98.0: 2, -102.0: 1})),
            e2b_threshold_non_used=float(_draw(rng, {-95.0: 4, -93.0: 2})),
            e2b_time_to_trigger=int(_draw(rng, ttt)),
            e2d_threshold_used=float(_draw(rng, {-103.0: 4, -101.0: 2, -105.0: 1})),
            e2d_time_to_trigger=int(_draw(rng, ttt)),
            e2f_threshold_used=float(_draw(rng, {-98.0: 4, -96.0: 2})),
            e2f_time_to_trigger=int(_draw(rng, ttt)),
            e3a_threshold_own=float(_draw(rng, {-102.0: 4, -100.0: 2, -104.0: 1})),
            e3a_threshold_other=float(_draw(rng, {-98.0: 4, -96.0: 2})),
            e3a_time_to_trigger=int(_draw(rng, ttt)),
        )

    def gsm_config(self, cell: Cell) -> GsmCellConfig:
        """2G GSM configuration; nearly static (Fig. 22)."""
        rng = self._cell_rng(cell, salt=7)
        if self.style.diversity == "none" or rng.random() < 0.9:
            return GsmCellConfig()
        return GsmCellConfig(
            cell_reselect_hysteresis=float(_draw(rng, {4.0: 4, 6.0: 2, 2.0: 1})),
            cell_reselect_offset=float(_draw(rng, {0.0: 5, 2.0: 1})),
        )

    def evdo_config(self, cell: Cell) -> EvdoCellConfig:
        """3G EVDO sector parameters; single dominant values."""
        rng = self._cell_rng(cell, salt=8)
        if self.style.diversity == "none" or rng.random() < 0.85:
            return EvdoCellConfig()
        return EvdoCellConfig(
            pilot_add=float(_draw(rng, {-7.0: 5, -6.5: 1, -7.5: 1})),
            pilot_drop=float(_draw(rng, {-9.0: 5, -8.5: 1})),
        )

    def cdma1x_config(self, cell: Cell) -> Cdma1xCellConfig:
        """2G CDMA1x parameters; essentially static."""
        rng = self._cell_rng(cell, salt=9)
        if self.style.diversity == "none" or rng.random() < 0.92:
            return Cdma1xCellConfig()
        return Cdma1xCellConfig(t_add=float(_draw(rng, {-7.0: 5, -6.5: 1})))

    def legacy_config(self, cell: Cell):
        """Dispatch to the right legacy generator for ``cell``'s RAT."""
        if cell.rat is RAT.UMTS:
            return self.umts_config(cell)
        if cell.rat is RAT.GSM:
            return self.gsm_config(cell)
        if cell.rat is RAT.EVDO:
            return self.evdo_config(cell)
        if cell.rat is RAT.CDMA1X:
            return self.cdma1x_config(cell)
        raise ValueError(f"{cell.rat.value} is not a legacy RAT")


_PROFILE_CACHE: dict[tuple[str, int], CarrierProfile] = {}


def profile_for_carrier(acronym: str, seed: int = 2018) -> CarrierProfile:
    """Cached profile accessor (profiles are stateless, sharing is safe)."""
    key = (acronym, seed)
    if key not in _PROFILE_CACHE:
        _PROFILE_CACHE[key] = CarrierProfile(acronym, seed=seed)
    return _PROFILE_CACHE[key]
