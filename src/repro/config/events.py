"""Measurement reporting events (TS 36.331 Section 5.5.4).

LTE defines ten events (A1-A6, B1, B2, C1, C2); the paper observes only
A1-A5, B1 and B2 in the wild, plus carrier-configured periodic reporting
("P").  Each event has an *entry* condition that must hold continuously
for the configured time-to-trigger before a measurement report is sent,
and a *leave* condition that disarms it; hysteresis separates the two.

Entry conditions implemented (Ms = serving, Mn = neighbor, all after the
configured metric's calibration; Ofn/Ocn cell/frequency offsets):

    A1: Ms - Hys > Thresh
    A2: Ms + Hys < Thresh
    A3: Mn + Ofn - Hys > Ms + Off
    A4: Mn + Ofn - Hys > Thresh
    A5: Ms + Hys < Thresh1  and  Mn + Ofn - Hys > Thresh2
    A6: Mn - Hys > Ms + Off            (SCell; never observed, §4.1)
    B1: Mn + Ofn - Hys > Thresh
    B2: Ms + Hys < Thresh1  and  Mn + Ofn - Hys > Thresh2

The leave condition of each event mirrors the entry condition with the
hysteresis sign flipped, exactly as Eq. (2) of the paper shows for A3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.config.units import (
    REPORT_AMOUNT,
    REPORT_INTERVAL_MS,
    TIME_TO_TRIGGER_MS,
)


class EventType(enum.Enum):
    """All standardized LTE reporting event types plus periodic."""

    A1 = "A1"
    A2 = "A2"
    A3 = "A3"
    A4 = "A4"
    A5 = "A5"
    A6 = "A6"
    B1 = "B1"
    B2 = "B2"
    C1 = "C1"
    C2 = "C2"
    PERIODIC = "P"

    @property
    def is_inter_rat(self) -> bool:
        """B-series events target inter-RAT neighbors."""
        return self in (EventType.B1, EventType.B2)

    @property
    def needs_neighbor(self) -> bool:
        """Whether the entry condition involves a neighbor measurement."""
        return self not in (EventType.A1, EventType.A2, EventType.PERIODIC)

    @property
    def needs_serving(self) -> bool:
        """Whether the entry condition involves the serving measurement."""
        return self in (EventType.A1, EventType.A2, EventType.A3,
                        EventType.A5, EventType.A6, EventType.B2)


@dataclass(frozen=True)
class EventConfig:
    """Configuration of one armed reporting event.

    Attributes:
        event: The event type.
        metric: Trigger quantity, "rsrp" or "rsrq" (the paper finds
            AT&T uses both for A5, T-Mobile mostly RSRP).
        threshold1: Serving-cell threshold (A1/A2/A5/B2) or the single
            neighbor threshold (A4/B1); unused for A3/A6.
        threshold2: Neighbor threshold for the two-threshold events
            (A5/B2); unused otherwise.
        offset: A3/A6 offset (the paper's Delta_A3; may be negative in
            the wild, a practice Section 6 flags as questionable).
        hysteresis: Entry/leave hysteresis in dB.
        time_to_trigger_ms: TTT from the standardized enumeration.
        report_interval_ms: Interval between successive reports.
        report_amount: Number of reports (-1 = unbounded).
    """

    event: EventType
    metric: str = "rsrp"
    threshold1: float | None = None
    threshold2: float | None = None
    offset: float = 0.0
    hysteresis: float = 0.0
    time_to_trigger_ms: int = 0
    report_interval_ms: int = 480
    report_amount: int = 1

    def __post_init__(self):
        if self.metric not in ("rsrp", "rsrq"):
            raise ValueError(f"metric must be rsrp or rsrq, got {self.metric!r}")
        if self.time_to_trigger_ms not in TIME_TO_TRIGGER_MS:
            raise ValueError(f"non-standard time-to-trigger {self.time_to_trigger_ms}")
        if self.report_interval_ms not in REPORT_INTERVAL_MS:
            raise ValueError(f"non-standard report interval {self.report_interval_ms}")
        if self.report_amount not in REPORT_AMOUNT:
            raise ValueError(f"non-standard report amount {self.report_amount}")
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        needs1 = self.event in (EventType.A1, EventType.A2, EventType.A4,
                                EventType.A5, EventType.B1, EventType.B2)
        if needs1 and self.threshold1 is None:
            raise ValueError(f"{self.event.value} requires threshold1")
        needs2 = self.event in (EventType.A5, EventType.B2)
        if needs2 and self.threshold2 is None:
            raise ValueError(f"{self.event.value} requires threshold2")

    def parameter_samples(self) -> list[tuple[str, object]]:
        """(registry parameter name, value) pairs this config contributes.

        These names match ``repro.config.parameters``; the dataset
        builders record them as configuration samples.
        """
        prefix = self.event.value.lower()
        samples: list[tuple[str, object]] = []
        if self.event is EventType.PERIODIC:
            samples.append(("report_interval", self.report_interval_ms))
            samples.append(("report_amount", self.report_amount))
            return samples
        if self.event is EventType.A3:
            samples.append(("a3_offset", self.offset))
        elif self.event in (EventType.A5, EventType.B2):
            samples.append((f"{prefix}_threshold1", self.threshold1))
            samples.append((f"{prefix}_threshold2", self.threshold2))
        else:
            samples.append((f"{prefix}_threshold", self.threshold1))
        samples.append((f"{prefix}_hysteresis", self.hysteresis))
        samples.append((f"{prefix}_time_to_trigger", self.time_to_trigger_ms))
        return samples


@dataclass(frozen=True)
class PeriodicConfig:
    """Carrier-configured periodic reporting of strongest cells."""

    metric: str = "rsrp"
    report_interval_ms: int = 5120
    report_amount: int = -1
    max_report_cells: int = 4

    def as_event_config(self) -> EventConfig:
        """The equivalent :class:`EventConfig` with type PERIODIC."""
        return EventConfig(
            event=EventType.PERIODIC,
            metric=self.metric,
            report_interval_ms=self.report_interval_ms,
            report_amount=self.report_amount,
        )


def evaluate_entry(
    config: EventConfig,
    serving: float | None,
    neighbor: float | None,
    neighbor_offset: float = 0.0,
) -> bool:
    """Whether the event's *entry* condition holds for one sample.

    Args:
        config: The armed event.
        serving: Serving-cell value of the trigger metric (calibrated).
        neighbor: Neighbor value (None when not applicable).
        neighbor_offset: Ofn + Ocn cell/frequency offsets of the
            evaluated neighbor.
    """
    e, hys = config.event, config.hysteresis
    if e is EventType.PERIODIC:
        return True
    if e is EventType.A1:
        return serving is not None and serving - hys > config.threshold1
    if e is EventType.A2:
        return serving is not None and serving + hys < config.threshold1
    if e in (EventType.A3, EventType.A6):
        if serving is None or neighbor is None:
            return False
        return neighbor + neighbor_offset - hys > serving + config.offset
    if e in (EventType.A4, EventType.B1):
        return neighbor is not None and neighbor + neighbor_offset - hys > config.threshold1
    if e in (EventType.A5, EventType.B2):
        if serving is None or neighbor is None:
            return False
        return (serving + hys < config.threshold1
                and neighbor + neighbor_offset - hys > config.threshold2)
    raise NotImplementedError(f"event {e.value} not supported")


def evaluate_leave(
    config: EventConfig,
    serving: float | None,
    neighbor: float | None,
    neighbor_offset: float = 0.0,
) -> bool:
    """Whether the event's *leave* condition holds for one sample.

    The leave condition is the entry condition with the hysteresis sign
    flipped; an armed event that satisfies neither stays in its current
    state (TS 36.331 5.5.4.1).
    """
    e, hys = config.event, config.hysteresis
    if e is EventType.PERIODIC:
        return False
    if e is EventType.A1:
        return serving is None or serving + hys < config.threshold1
    if e is EventType.A2:
        return serving is None or serving - hys > config.threshold1
    if e in (EventType.A3, EventType.A6):
        if serving is None or neighbor is None:
            return True
        return neighbor + neighbor_offset + hys < serving + config.offset
    if e in (EventType.A4, EventType.B1):
        return neighbor is None or neighbor + neighbor_offset + hys < config.threshold1
    if e in (EventType.A5, EventType.B2):
        if serving is None or neighbor is None:
            return True
        return (serving - hys > config.threshold1
                or neighbor + neighbor_offset + hys < config.threshold2)
    raise NotImplementedError(f"event {e.value} not supported")


def entry_mask(
    config: EventConfig, serving: float | None, neighbors: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`evaluate_entry` over a neighbor-value array.

    Evaluates the entry condition of one neighbor-triggered event
    (A3-A6, B1, B2) for every candidate in one masked array pass; the
    comparisons are written exactly as the scalar evaluator's so both
    paths agree bit for bit.  Serving-only events (A1/A2, periodic) have
    no neighbor axis and stay on the scalar evaluator.
    """
    e, hys = config.event, config.hysteresis
    if e in (EventType.A3, EventType.A6):
        if serving is None:
            return np.zeros(len(neighbors), dtype=bool)
        return neighbors - hys > serving + config.offset
    if e in (EventType.A4, EventType.B1):
        return neighbors - hys > config.threshold1
    if e in (EventType.A5, EventType.B2):
        if serving is None or not serving + hys < config.threshold1:
            return np.zeros(len(neighbors), dtype=bool)
        return neighbors - hys > config.threshold2
    raise NotImplementedError(f"event {e.value} has no neighbor entry mask")


def entry_mask_batch(
    config: EventConfig, serving: np.ndarray, neighbors: np.ndarray
) -> np.ndarray:
    """:func:`entry_mask` for many UEs at once.

    ``serving`` holds each UE's serving-cell metric (length G) and
    ``neighbors`` the (UE x cell) candidate-value matrix; row ``g`` of
    the result is bit-identical to
    ``entry_mask(config, serving[g], neighbors[g])`` — the comparisons
    are the same ufuncs, broadcast over the UE axis.
    """
    e, hys = config.event, config.hysteresis
    if e in (EventType.A3, EventType.A6):
        return neighbors - hys > serving[:, None] + config.offset
    if e in (EventType.A4, EventType.B1):
        return neighbors - hys > config.threshold1
    if e in (EventType.A5, EventType.B2):
        serving_ok = serving + hys < config.threshold1
        return serving_ok[:, None] & (neighbors - hys > config.threshold2)
    raise NotImplementedError(f"event {e.value} has no neighbor entry mask")


def leave_mask(
    config: EventConfig, serving: float | None, neighbors: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`evaluate_leave` over a neighbor-value array."""
    e, hys = config.event, config.hysteresis
    if e in (EventType.A3, EventType.A6):
        if serving is None:
            return np.ones(len(neighbors), dtype=bool)
        return neighbors + hys < serving + config.offset
    if e in (EventType.A4, EventType.B1):
        return neighbors + hys < config.threshold1
    if e in (EventType.A5, EventType.B2):
        if serving is None or serving - hys > config.threshold1:
            return np.ones(len(neighbors), dtype=bool)
        return neighbors + hys < config.threshold2
    raise NotImplementedError(f"event {e.value} has no neighbor leave mask")
