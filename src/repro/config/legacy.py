"""Handoff configuration structures for the legacy RATs.

The paper's Table 4 covers 3G UMTS (64 parameters), 2G GSM (9), 3G EVDO
(14) and 2G CDMA1x (4).  Section 5.5 finds the legacy configurations far
less diverse than LTE's — most parameters carry a single dominant value —
which the per-carrier profiles reproduce.

Each config class yields (name, value) samples whose names resolve in
``repro.config.parameters``, exactly like the LTE structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.cellnet.rat import RAT
from repro.config.parameters import spec_by_name


def _samples_from_fields(config, skip: tuple[str, ...] = ()) -> list[tuple[str, object]]:
    """Flatten a flat dataclass into (field name, value) samples."""
    samples = []
    for f in fields(config):
        if f.name in skip:
            continue
        value = getattr(config, f.name)
        if isinstance(value, tuple):
            value = list(value)
        samples.append((f.name, value))
    return samples


@dataclass(frozen=True)
class UmtsCellConfig:
    """3G UMTS cell configuration (SIB3/SIB11/SIB19 + meas control).

    Field names match the UMTS registry one-to-one.  A real SIB19 also
    carries EUTRA layer lists; we keep one aggregated entry per cell,
    which matches how the paper counts samples.
    """

    # SIB3 idle reselection.
    q_hyst_1s: float = 4.0
    q_hyst_2s: float = 4.0
    s_intrasearch: float = 10.0
    s_intersearch: float = 10.0
    s_search_hcs: float = 0.0
    s_search_rat: float = 4.0
    s_hcs_rat: float = 0.0
    s_limit_search_rat: float = 4.0
    q_rxlevmin: float = -115.0
    q_qualmin: float = -18.0
    t_reselection_s: int = 1
    max_allowed_ul_tx_power: int = 24
    # SIB11 neighbor tuning.
    q_offset_s_n_1: float = 0.0
    q_offset_s_n_2: float = 0.0
    inter_freq_carrier_list: tuple[int, ...] = ()
    inter_rat_cell_list: tuple[int, ...] = ()
    hcs_prio: int = 0
    q_hcs: float = 0.0
    penalty_time: int = 0
    temporary_offset: float = 0.0
    # SIB19 EUTRA reselection.
    priority_eutra: int = 5
    thresh_high_eutra: float = 8.0
    thresh_low_eutra: float = 4.0
    priority_serving: int = 2
    thresh_serving_low: float = 4.0
    t_reselection_eutra: int = 2
    eutra_freq_list: tuple[int, ...] = ()
    q_rxlevmin_eutra: float = -122.0
    # Connected-mode measurement control (events 1a-1f, 2b/2d/2f, 3a).
    e1a_reporting_range: float = 4.0
    e1a_hysteresis: float = 1.0
    e1a_time_to_trigger: int = 320
    e1a_weighting: float = 0.0
    e1b_reporting_range: float = 6.0
    e1b_hysteresis: float = 1.0
    e1b_time_to_trigger: int = 640
    e1b_weighting: float = 0.0
    e1c_replacement_threshold: float = -95.0
    e1c_hysteresis: float = 1.0
    e1c_time_to_trigger: int = 320
    e1d_hysteresis: float = 1.0
    e1d_time_to_trigger: int = 320
    e1e_threshold: float = -100.0
    e1e_hysteresis: float = 1.0
    e1e_time_to_trigger: int = 320
    e1f_threshold: float = -105.0
    e1f_hysteresis: float = 1.0
    e1f_time_to_trigger: int = 320
    intra_freq_filter_coefficient: int = 3
    e2b_threshold_used: float = -100.0
    e2b_threshold_non_used: float = -95.0
    e2b_hysteresis: float = 1.0
    e2b_time_to_trigger: int = 320
    e2d_threshold_used: float = -103.0
    e2d_hysteresis: float = 1.0
    e2d_time_to_trigger: int = 320
    e2f_threshold_used: float = -98.0
    e2f_hysteresis: float = 1.0
    e2f_time_to_trigger: int = 320
    e3a_threshold_own: float = -102.0
    e3a_threshold_other: float = -98.0
    e3a_hysteresis: float = 1.0
    e3a_time_to_trigger: int = 320
    measurement_quantity: str = "rscp"
    inter_rat_filter_coefficient: int = 3

    def parameter_samples(self) -> list[tuple[str, object]]:
        return _samples_from_fields(self)


@dataclass(frozen=True)
class GsmCellConfig:
    """2G GSM cell reselection configuration (SI3/SI4, C1/C2 criteria)."""

    cell_reselect_hysteresis: float = 4.0
    rxlev_access_min: float = -104.0
    ms_txpwr_max_cch: int = 33
    cell_reselect_offset: float = 0.0
    temporary_offset: float = 0.0
    penalty_time: int = 0
    cell_bar_qualify: int = 0
    c2_enabled: int = 1
    multiband_reporting: int = 1

    def parameter_samples(self) -> list[tuple[str, object]]:
        return _samples_from_fields(self)


@dataclass(frozen=True)
class EvdoCellConfig:
    """3G EVDO sector parameters (pilot-set management)."""

    pilot_add: float = -7.0
    pilot_drop: float = -9.0
    pilot_drop_timer: int = 2
    pilot_compare: float = 2.5
    active_set_max: int = 6
    neighbor_max_age: int = 2
    search_window_active: int = 8
    search_window_neighbor: int = 10
    search_window_remaining: int = 10
    soft_slope: float = 0.0
    add_intercept: float = 0.0
    drop_intercept: float = 0.0
    idle_handoff_threshold: float = -8.0
    route_update_radius: int = 0

    def parameter_samples(self) -> list[tuple[str, object]]:
        return _samples_from_fields(self)


@dataclass(frozen=True)
class Cdma1xCellConfig:
    """2G CDMA1x system parameters (classic pilot thresholds)."""

    t_add: float = -7.0
    t_drop: float = -9.0
    t_comp: float = 2.5
    t_tdrop: int = 2

    def parameter_samples(self) -> list[tuple[str, object]]:
        return _samples_from_fields(self)


#: Config class per legacy RAT, for generic code paths.
LEGACY_CONFIG_TYPES = {
    RAT.UMTS: UmtsCellConfig,
    RAT.GSM: GsmCellConfig,
    RAT.EVDO: EvdoCellConfig,
    RAT.CDMA1X: Cdma1xCellConfig,
}

#: Union alias used in type hints.
LegacyCellConfig = UmtsCellConfig | GsmCellConfig | EvdoCellConfig | Cdma1xCellConfig


def validate_legacy(config: LegacyCellConfig, rat: RAT) -> list[str]:
    """Domain-check a legacy config against its RAT's registry."""
    problems = []
    for name, value in config.parameter_samples():
        spec = spec_by_name(rat, name)
        if not spec.domain.contains(value):
            problems.append(f"{name}={value!r} outside domain")
    return problems
