"""Handoff configuration model.

Everything the paper calls a "handoff configuration" lives here: the
registry of standardized parameters (66 for a 4G LTE cell, 91 across the
3G/2G RATs — Table 4), the reporting-event definitions (A1-A6, B1, B2,
periodic), the per-cell configuration structures that map onto SIB and
RRC messages, and the per-carrier policy *profiles* that generate the
synthetic configuration populations calibrated to the paper's findings.
"""

from repro.config.parameters import (
    ParameterSpec,
    REGISTRY,
    parameters_for,
    parameter_count,
    spec_by_name,
)
from repro.config.events import (
    EventType,
    EventConfig,
    PeriodicConfig,
    evaluate_entry,
    evaluate_leave,
)
from repro.config.lte import (
    ServingCellConfig,
    IntraFreqNeighborConfig,
    InterFreqLayerConfig,
    InterRatUtraConfig,
    InterRatGeranConfig,
    InterRatCdmaConfig,
    MeasurementConfig,
    LteCellConfig,
)
from repro.config.legacy import (
    UmtsCellConfig,
    GsmCellConfig,
    EvdoCellConfig,
    Cdma1xCellConfig,
    LegacyCellConfig,
)
from repro.config.profiles import CarrierProfile, profile_for_carrier

__all__ = [
    "ParameterSpec",
    "REGISTRY",
    "parameters_for",
    "parameter_count",
    "spec_by_name",
    "EventType",
    "EventConfig",
    "PeriodicConfig",
    "evaluate_entry",
    "evaluate_leave",
    "ServingCellConfig",
    "IntraFreqNeighborConfig",
    "InterFreqLayerConfig",
    "InterRatUtraConfig",
    "InterRatGeranConfig",
    "InterRatCdmaConfig",
    "MeasurementConfig",
    "LteCellConfig",
    "UmtsCellConfig",
    "GsmCellConfig",
    "EvdoCellConfig",
    "Cdma1xCellConfig",
    "LegacyCellConfig",
    "CarrierProfile",
    "profile_for_carrier",
]
