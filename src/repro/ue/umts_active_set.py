"""UMTS soft-handover active-set management (events 1a/1b/1c).

3G WCDMA differs from LTE's break-before-make handover: a connected
device holds an *active set* of cells it communicates with
simultaneously, updated by the intra-frequency reporting events whose
parameters the paper's UMTS registry carries (Table 4):

* **1a** — a monitored cell enters the reporting range of the best
  active cell: add it (if the set has room);
* **1b** — an active cell falls out of the (wider) 1b range: remove it
  (never emptying the set);
* **1c** — a monitored cell becomes better than the worst active cell
  while the set is full: replace that worst cell.

Conditions follow TS 25.331 14.1 with the registry's parameters::

    1a: M_new >= M_best - (reporting_range_1a - H_1a / 2)
    1b: M_old <= M_best - (reporting_range_1b + H_1b / 2)
    1c: M_new >= M_worst_active + H_1c / 2

each sustained for its time-to-trigger.  The module is self-contained
(driven with filtered measurements) so the 3G configuration population
in D2 can be exercised end-to-end, mirroring how the LTE machinery
exercises the 4G population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.rat import RAT
from repro.config.legacy import UmtsCellConfig
from repro.ue.measurement import FilteredMeasurement

#: WCDMA active sets are small; three-way soft handover is the classic
#: maximum in deployed networks.
DEFAULT_MAX_ACTIVE_SET = 3


@dataclass(frozen=True)
class ActiveSetUpdate:
    """One executed active-set change."""

    time_ms: int
    kind: str  # "add", "remove" or "replace"
    cell: Cell
    #: For "replace": the cell that left the set.
    removed: Cell | None = None


@dataclass
class ActiveSetManager:
    """Runs the 1a/1b/1c machinery for one connected UMTS device."""

    config: UmtsCellConfig
    max_size: int = DEFAULT_MAX_ACTIVE_SET
    _active: dict[CellId, Cell] = field(default_factory=dict)
    _entry_since: dict[tuple[str, CellId], int] = field(default_factory=dict)

    def start(self, initial: Cell) -> None:
        """Seed the set with the cell the connection was set up on."""
        if initial.rat is not RAT.UMTS:
            raise ValueError("active sets manage UMTS cells")
        self._active = {initial.cell_id: initial}
        self._entry_since.clear()

    @property
    def active_cells(self) -> list[Cell]:
        """Current active set, deterministic order."""
        return [self._active[k] for k in sorted(self._active)]

    @property
    def size(self) -> int:
        return len(self._active)

    def __contains__(self, cell: Cell) -> bool:
        return cell.cell_id in self._active

    def _persist(self, now_ms: int, key: tuple[str, CellId], ttt_ms: int) -> bool:
        started = self._entry_since.setdefault(key, now_ms)
        return now_ms - started >= ttt_ms

    def _clear(self, key: tuple[str, CellId]) -> None:
        self._entry_since.pop(key, None)

    def step(
        self, now_ms: int, measured: dict[CellId, FilteredMeasurement]
    ) -> list[ActiveSetUpdate]:
        """One evaluation round; returns the executed updates."""
        if not self._active:
            raise RuntimeError("call start() before step()")
        config = self.config
        updates: list[ActiveSetUpdate] = []
        active_measured = {
            cid: fm for cid, fm in measured.items() if cid in self._active
        }
        if not active_measured:
            # Every active cell vanished from measurement: keep state,
            # nothing can be evaluated this round.
            return updates
        best_value = max(fm.rsrp_dbm for fm in active_measured.values())
        monitored = {
            cid: fm
            for cid, fm in measured.items()
            if cid not in self._active and fm.cell.rat is RAT.UMTS
        }
        # -- 1b: drop active cells that fell out of range ------------------
        for cid, fm in sorted(active_measured.items()):
            if len(self._active) <= 1:
                break
            threshold = best_value - (config.e1b_reporting_range + config.e1b_hysteresis / 2.0)
            key = ("1b", cid)
            if fm.rsrp_dbm <= threshold:
                if self._persist(now_ms, key, config.e1b_time_to_trigger):
                    removed = self._active.pop(cid)
                    self._clear(key)
                    updates.append(ActiveSetUpdate(now_ms, "remove", removed))
            else:
                self._clear(key)
        # -- 1a: add monitored cells inside the reporting range ------------
        for cid, fm in sorted(monitored.items(), key=lambda kv: -kv[1].rsrp_dbm):
            threshold = best_value - (config.e1a_reporting_range - config.e1a_hysteresis / 2.0)
            key = ("1a", cid)
            if fm.rsrp_dbm >= threshold:
                if len(self._active) < self.max_size:
                    if self._persist(now_ms, key, config.e1a_time_to_trigger):
                        self._active[cid] = fm.cell
                        self._clear(key)
                        updates.append(ActiveSetUpdate(now_ms, "add", fm.cell))
            else:
                self._clear(key)
        # -- 1c: replace the worst active cell when the set is full --------
        if len(self._active) >= self.max_size:
            worst_cid, worst_fm = min(
                (
                    (cid, fm)
                    for cid, fm in active_measured.items()
                    if cid in self._active
                ),
                key=lambda kv: kv[1].rsrp_dbm,
                default=(None, None),
            )
            if worst_cid is not None:
                for cid, fm in sorted(monitored.items(), key=lambda kv: -kv[1].rsrp_dbm):
                    if cid in self._active:
                        continue
                    key = ("1c", cid)
                    if fm.rsrp_dbm >= worst_fm.rsrp_dbm + config.e1c_hysteresis / 2.0:
                        if self._persist(now_ms, key, config.e1c_time_to_trigger):
                            removed = self._active.pop(worst_cid)
                            self._active[cid] = fm.cell
                            self._clear(key)
                            updates.append(
                                ActiveSetUpdate(now_ms, "replace", fm.cell, removed=removed)
                            )
                            break
                    else:
                        self._clear(key)
        # Forget timers of cells that disappeared from measurement.
        measured_ids = set(measured)
        for key in [k for k in self._entry_since if k[1] not in measured_ids]:
            del self._entry_since[key]
        return updates
