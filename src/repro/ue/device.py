"""The user equipment: state, camping, connection and the tick loop.

``UserEquipment`` wires the measurement engine, event monitor,
reselection engine and network controller into the paper's five-step
procedure.  Two design points keep the reproduction honest:

* The UE learns configurations only from *messages*: when it camps on a
  cell it receives the SIB sequence and rebuilds its ``LteCellConfig``
  from those messages, never by peeking at the profile generators.
* Every message the UE sends or receives flows through registered
  listeners; MMLab's collector is just such a listener writing a diag
  log — the same vantage point a rooted phone gives MobileInsight.

The paper studies 4G -> 4G handoffs; the UE therefore runs the full LTE
state machines, with a minimal "return to LTE" behaviour when an
inter-RAT reselection parks it on a legacy cell.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.rat import RAT
from repro.cellnet.world import RadioEnvironment
from repro.config.lte import LteCellConfig, MeasurementConfig
from repro.rrc.broadcast import ConfigServer
from repro.rrc.messages import (
    MeasResult,
    MeasurementReport,
    Message,
    PhyServingMeas,
    RrcConnectionReconfiguration,
    Sib1,
    Sib3,
    Sib4,
    Sib5,
    Sib6,
    Sib7,
    Sib8,
)
from repro.ue.handover import HandoverCommand, NetworkController
from repro.ue.measurement import (
    FilteredMeasurement,
    MeasurementEngine,
    MeasurementRound,
)
from repro.ue.reporting import EventMonitor
from repro.ue.legacy_reselection import LegacyReselectionEngine
from repro.ue.reselection import ReselectionEngine, measurement_gates, rank_candidates
from repro.util import stable_hash


class RrcState(enum.Enum):
    """RRC connection state (idle vs active in the paper's terms)."""

    IDLE = "idle"
    CONNECTED = "connected"


@dataclass(frozen=True)
class HandoffEvent:
    """Ground-truth record of one executed handoff (simulator-side).

    The crawler re-derives equivalent instances from the diag log; the
    ground truth exists so tests can check the crawler's work.
    """

    time_ms: int
    kind: str  # "active" or "idle"
    source: CellId
    target: CellId
    decisive_event: str | None
    old_rsrp_dbm: float
    new_rsrp_dbm: float
    intra_freq: bool
    priority_class: str | None = None  # idle handoffs: higher/equal/lower


def lte_config_from_sibs(messages: list[Message]) -> LteCellConfig:
    """Rebuild a cell's configuration from its broadcast SIB sequence."""
    serving = None
    intra = None
    inter_freq = ()
    utra = ()
    geran = ()
    cdma = ()
    for message in messages:
        if isinstance(message, Sib3):
            serving = message.config
        elif isinstance(message, Sib4):
            intra = message.config
        elif isinstance(message, Sib5):
            inter_freq = message.layers
        elif isinstance(message, Sib6):
            utra = message.layers
        elif isinstance(message, Sib7):
            geran = message.layers
        elif isinstance(message, Sib8):
            cdma = message.layers
    if serving is None:
        raise ValueError("SIB sequence is missing SIB3")
    kwargs = {}
    if intra is not None:
        kwargs["intra_neighbors"] = intra
    return LteCellConfig(
        serving=serving,
        inter_freq_layers=inter_freq,
        utra_layers=utra,
        geran_layers=geran,
        cdma_layers=cdma,
        **kwargs,
    )


class UserEquipment:
    """One simulated device on one carrier subscription.

    Args:
        env: Radio environment.
        server: Configuration oracle (the "network" side of broadcast).
        carrier: Subscribed carrier acronym.
        seed: Seeds the UE's RNG (measurement noise, timers).
        network: Network controller for active-state decisions; built
            with a derived RNG when omitted.
        phy_meas_interval_ms: Cadence of PhyServingMeas diag records.
        sib_obs_rng: Optional RNG driving configuration *observation*
            effects (temporal churn) when reading SIBs; None reads the
            base configuration (used for controlled Type-II drives).
        vectorized: Run the array-resident measurement/event hot path
            (default) or the scalar reference loop; both produce
            bit-identical drives (parity-tested).
    """

    def __init__(
        self,
        env: RadioEnvironment,
        server: ConfigServer,
        carrier: str,
        seed: int = 0,
        network: NetworkController | None = None,
        phy_meas_interval_ms: int = 500,
        sib_obs_rng: np.random.Generator | None = None,
        vectorized: bool | None = None,
    ):
        self.env = env
        self.server = server
        self.carrier = carrier
        self.rng = np.random.default_rng((seed, stable_hash(carrier) & 0xFFFF, 0x0E))
        self.network = network or NetworkController(
            env, server, np.random.default_rng((seed, 0x9E7, 1))
        )
        self.meas = MeasurementEngine(env, self.rng, vectorized=vectorized)
        self.reselection = ReselectionEngine()
        self.legacy_reselection = LegacyReselectionEngine()
        self.monitor: EventMonitor | None = None
        self.state = RrcState.IDLE
        self.serving: Cell | None = None
        self.serving_config: LteCellConfig | None = None
        self.serving_legacy_config = None
        self.pending_handover: HandoverCommand | None = None
        self.interrupted_until_ms = -1
        self.phy_meas_interval_ms = phy_meas_interval_ms
        self._last_phy_meas_ms: int | None = None
        self.sib_obs_rng = sib_obs_rng
        self.days_since_epoch = 0.0
        self._listeners: list = []
        self.handoffs: list[HandoffEvent] = []
        self._pre_handover_rsrp = -140.0
        self._pre_handover_target_rsrp = -140.0
        #: Cadence of higher-priority layer measurement while the
        #: non-intra S-gate is closed (TS 36.304).
        self.higher_meas_period_ms = 60_000
        self._last_higher_meas_ms = -(10**9)
        #: The most recent measurement round (a cell id -> filtered
        #: measurement mapping); exposed for shadow consumers like the
        #: handoff predictor, which must see exactly what the device sees.
        self.last_measurements: dict[CellId, FilteredMeasurement] | MeasurementRound | None = None
        #: When set (by the runner under ``REPRO_PROFILE=1``), per-stage
        #: cumulative seconds are accumulated into this dict.
        self.profile: dict[str, float] | None = None

    # -- message plumbing -------------------------------------------------

    def add_listener(self, listener) -> None:
        """Register ``listener(now_ms, message, direction)``.

        Direction is "down" (network to UE) or "up" (UE to network).
        """
        self._listeners.append(listener)

    def _notify(self, now_ms: int, message: Message, direction: str) -> None:
        for listener in self._listeners:
            listener(now_ms, message, direction)

    # -- camping / connection ----------------------------------------------

    def camp_on(self, cell: Cell, now_ms: int) -> None:
        """Camp on ``cell``: read its SIBs and adopt its configuration."""
        sibs = self.server.sib_messages(
            cell, obs_rng=self.sib_obs_rng, days_since_first=self.days_since_epoch
        )
        for sib in sibs:
            self._notify(now_ms, sib, "down")
        self.serving = cell
        if cell.rat is RAT.LTE:
            self.serving_config = lte_config_from_sibs(sibs)
            self.serving_legacy_config = None
        else:
            self.serving_config = None
            # Legacy cells broadcast one system-information message; the
            # device rebuilds the typed config from it, message-first as
            # for LTE.
            self.serving_legacy_config = sibs[0].to_config() if sibs else None
        self.meas.reset()
        self.reselection.reset()
        self.legacy_reselection.reset()
        self._last_phy_meas_ms = None

    def initial_camp(self, location, now_ms: int = 0) -> Cell:
        """Power-on cell selection: camp on the strongest LTE cell."""
        snap = self.meas.snapshot(location, self.carrier)
        best = snap.strongest(rat=RAT.LTE) or snap.strongest()
        if best is None:
            raise RuntimeError(f"no {self.carrier} coverage at {location}")
        self.camp_on(best, now_ms)
        return best

    def connect(self, now_ms: int) -> None:
        """Enter RRC connected: receive and arm the cell's measConfig."""
        if self.serving is None:
            raise RuntimeError("cannot connect before camping")
        reconfiguration = self.server.connection_reconfiguration(
            self.serving, obs_rng=self.sib_obs_rng
        )
        self._notify(now_ms, reconfiguration, "down")
        self.state = RrcState.CONNECTED
        self._arm(reconfiguration.meas_config)

    def release(self, now_ms: int) -> None:
        """Return to RRC idle."""
        self.state = RrcState.IDLE
        self.monitor = None
        self.pending_handover = None

    def _arm(self, meas_config: MeasurementConfig | None) -> None:
        self.monitor = EventMonitor(meas_config) if meas_config is not None else None

    # -- helpers -------------------------------------------------------------

    def is_interrupted(self, now_ms: int) -> bool:
        """Whether the user plane is down (handover execution)."""
        return now_ms < self.interrupted_until_ms

    def _phy_meas_due(self, now_ms: int) -> bool:
        if self._last_phy_meas_ms is None:
            return True
        return now_ms - self._last_phy_meas_ms >= self.phy_meas_interval_ms

    def _emit_phy_meas(self, now_ms: int, serving_meas: FilteredMeasurement) -> None:
        if not self._phy_meas_due(now_ms):
            return
        self._last_phy_meas_ms = now_ms
        cell = serving_meas.cell
        self._notify(
            now_ms,
            PhyServingMeas(
                carrier=cell.carrier,
                gci=cell.cell_id.gci,
                channel=cell.channel,
                rat=cell.rat.value,
                rsrp_dbm=serving_meas.rsrp_dbm,
                rsrq_db=serving_meas.rsrq_db,
                sinr_db=0.0,
                rrc_connected=self.state is RrcState.CONNECTED,
            ),
            "down",
        )

    @staticmethod
    def _meas_result(fm: FilteredMeasurement) -> MeasResult:
        cell = fm.cell
        return MeasResult(
            carrier=cell.carrier,
            gci=cell.cell_id.gci,
            pci=cell.pci,
            channel=cell.channel,
            rat=cell.rat.value,
            rsrp_dbm=fm.rsrp_dbm,
            rsrq_db=fm.rsrq_db,
        )

    # -- the tick loop ---------------------------------------------------------

    def tick(self, now_ms: int, location) -> list[HandoffEvent]:
        """Advance the device by one simulation step at ``location``.

        Returns handoffs executed during this tick.
        """
        if self.serving is None:
            self.initial_camp(location, now_ms)
        events: list[HandoffEvent] = []
        command = self.pending_handover
        if command is not None and now_ms >= command.execute_at_ms:
            events.append(self._execute_handover(now_ms, command))
        if self.state is RrcState.CONNECTED:
            self._connected_step(now_ms, location)
        else:
            idle_event = self._idle_step(now_ms, location)
            if idle_event is not None:
                events.append(idle_event)
        self.handoffs.extend(events)
        return events

    def quiet_tick(
        self,
        now_ms: int,
        serving_rsrp: float | None = None,
        serving_rsrq: float | None = None,
    ) -> None:
        """Bookkeeping for a tick the batched pass proved a no-op.

        The fleet's batched event pass calls this instead of
        :meth:`tick` when it has already established every fact the
        full path would discover: the device is connected with a
        monitor armed, no handover is pending, the serving cell was
        measured this round, no armed event's entry condition holds
        anywhere, every event's TTT/report state is empty, and no
        periodic report is due.  Under those facts
        :meth:`_connected_step` changes nothing besides the round
        counters and (possibly) the periodic PHY serving-measurement
        emission — so only those happen here, bit-identically.  The
        caller passes the serving cell's filtered metrics exactly when
        the PHY emission is due (it checks the cadence itself); no
        measurement round is materialized, so ``last_measurements`` is
        not updated on quiet ticks.
        """
        meas = self.meas
        meas.intra_freq_rounds += 1
        meas.non_intra_freq_rounds += 1
        if serving_rsrp is not None:
            self._last_phy_meas_ms = now_ms
            cell = self.serving
            self._notify(
                now_ms,
                PhyServingMeas(
                    carrier=cell.carrier,
                    gci=cell.cell_id.gci,
                    channel=cell.channel,
                    rat=cell.rat.value,
                    rsrp_dbm=serving_rsrp,
                    rsrq_db=serving_rsrq,
                    sinr_db=0.0,
                    rrc_connected=self.state is RrcState.CONNECTED,
                ),
                "down",
            )

    # -- connected mode -----------------------------------------------------

    def _connected_step(self, now_ms: int, location) -> None:
        serving = self.serving
        assert serving is not None
        profile = self.profile
        t0 = perf_counter() if profile is not None else 0.0
        measured = self.meas.step(location, self.carrier, serving)
        if profile is not None:
            profile["measurement"] = profile.get("measurement", 0.0) + perf_counter() - t0
        self.last_measurements = measured
        serving_meas = measured.get(serving.cell_id)
        if serving_meas is None:
            # Out of the serving cell's audible range: radio link failure;
            # re-establish on the strongest cell.
            self._radio_link_failure(now_ms, location)
            return
        self._emit_phy_meas(now_ms, serving_meas)
        if self.monitor is None or self.pending_handover is not None:
            return
        t0 = perf_counter() if profile is not None else 0.0
        if isinstance(measured, MeasurementRound):
            triggers = self.monitor.step_round(now_ms, measured, serving_meas)
        else:
            intra_rat, inter_rat = self.meas.split_neighbors(measured, serving)
            triggers = self.monitor.step(now_ms, serving_meas, intra_rat, inter_rat)
        if profile is not None:
            profile["events"] = profile.get("events", 0.0) + perf_counter() - t0
        for trigger in triggers:
            report = MeasurementReport(
                event=trigger.event.value,
                metric=trigger.config.metric,
                serving=self._meas_result(serving_meas),
                neighbors=tuple(self._meas_result(n) for n in trigger.neighbors[:8]),
            )
            self._notify(now_ms, report, "up")
            command = self.network.on_measurement_report(now_ms, serving, report)
            if command is not None:
                self.pending_handover = command
                self._pre_handover_rsrp = serving_meas.rsrp_dbm
                self._pre_handover_target_rsrp = next(
                    (n.rsrp_dbm for n in trigger.neighbors
                     if n.cell.cell_id == command.mobility.target_cell_id),
                    serving_meas.rsrp_dbm,
                )
                break

    def _execute_handover(self, now_ms: int, command: HandoverCommand) -> HandoffEvent:
        source = self.serving
        assert source is not None
        target = self.env.get_cell(command.mobility.target_cell_id)
        # The handover command reaches the device at decision time — the
        # paper's 80-230 ms report-to-handover latency lives between the
        # measurement report and this message.
        self._notify(
            command.execute_at_ms,
            RrcConnectionReconfiguration(mobility=command.mobility),
            "down",
        )
        self.pending_handover = None
        self.interrupted_until_ms = now_ms + command.interruption_ms
        self.camp_on(target, now_ms)
        self.connect(now_ms)
        return HandoffEvent(
            time_ms=now_ms,
            kind="active",
            source=source.cell_id,
            target=target.cell_id,
            decisive_event=command.decisive_event.value,
            old_rsrp_dbm=self._pre_handover_rsrp,
            new_rsrp_dbm=self._pre_handover_target_rsrp,
            intra_freq=source.is_intra_frequency(target),
        )

    def _radio_link_failure(self, now_ms: int, location) -> None:
        """Re-establishment: camp + reconnect on the strongest cell."""
        self.pending_handover = None
        self.interrupted_until_ms = now_ms + 200
        self.initial_camp(location, now_ms)
        self.connect(now_ms)

    # -- idle mode ------------------------------------------------------------

    def _idle_step(self, now_ms: int, location) -> HandoffEvent | None:
        serving = self.serving
        assert serving is not None
        if serving.rat is not RAT.LTE or self.serving_config is None:
            return self._legacy_idle_step(now_ms, location)
        snap = self.meas.snapshot(location, self.carrier)
        if serving not in snap:
            # Lost coverage entirely: reselect from scratch.
            self.initial_camp(location, now_ms)
            return None
        raw_serving_rsrp = snap.rsrp(serving)
        measure_intra, measure_non_intra = measurement_gates(
            self.serving_config, raw_serving_rsrp
        )
        # Even with the non-intra S-gate closed, higher-priority layers
        # are measured periodically (TS 36.304's T_higherPrioritySearch;
        # the paper's Eq. 1 discussion: "only the measurement for those
        # higher priority cells is performed periodically").
        higher_priority_round = False
        if not measure_non_intra and (
            now_ms - self._last_higher_meas_ms >= self.higher_meas_period_ms
        ):
            measure_non_intra = True
            higher_priority_round = True
            self._last_higher_meas_ms = now_ms
        measured = self.meas.step(
            location,
            self.carrier,
            serving,
            measure_intra=measure_intra,
            measure_non_intra=measure_non_intra,
        )
        serving_meas = measured[serving.cell_id]
        self._emit_phy_meas(now_ms, serving_meas)
        neighbors = [m for cid, m in measured.items() if cid != serving.cell_id]
        if higher_priority_round:
            ranked = [
                r
                for r in rank_candidates(self.serving_config, serving_meas, neighbors)
                if r.priority_class == "higher"
            ]
            candidate = ranked[0] if ranked else None
        else:
            candidate = self.reselection.step(
                now_ms, self.serving_config, serving_meas, neighbors
            )
        if candidate is None:
            return None
        target = candidate.cell
        event = HandoffEvent(
            time_ms=now_ms,
            kind="idle",
            source=serving.cell_id,
            target=target.cell_id,
            decisive_event=None,
            old_rsrp_dbm=serving_meas.rsrp_dbm,
            new_rsrp_dbm=candidate.measurement.rsrp_dbm,
            intra_freq=serving.is_intra_frequency(target),
            priority_class=candidate.priority_class,
        )
        self.camp_on(target, now_ms)
        return event

    def _legacy_idle_step(self, now_ms: int, location) -> HandoffEvent | None:
        """Idle camping on a 3G/2G cell: per-RAT reselection rules.

        UMTS runs the SIB19 absolute-priority return to E-UTRA plus
        intra-UMTS ranking; GSM the C2 criterion; the CDMA family the
        pilot-comparison rule (see :mod:`repro.ue.legacy_reselection`).
        """
        serving = self.serving
        assert serving is not None
        measured = self.meas.step(location, self.carrier, serving)
        serving_meas = measured.get(serving.cell_id)
        if serving_meas is None or self.serving_legacy_config is None:
            # Lost the serving cell (or its broadcast): full reselection.
            self.initial_camp(location, now_ms)
            return None
        self._emit_phy_meas(now_ms, serving_meas)
        neighbors = [m for cid, m in measured.items() if cid != serving.cell_id]
        decision = self.legacy_reselection.step(
            now_ms, serving_meas, self.serving_legacy_config, neighbors
        )
        if decision is None:
            return None
        target = decision.cell
        event = HandoffEvent(
            time_ms=now_ms,
            kind="idle",
            source=serving.cell_id,
            target=target.cell_id,
            decisive_event=None,
            old_rsrp_dbm=serving_meas.rsrp_dbm,
            new_rsrp_dbm=decision.target.rsrp_dbm,
            intra_freq=serving.is_intra_frequency(target),
            priority_class=decision.priority_class,
        )
        self.camp_on(target, now_ms)
        return event
