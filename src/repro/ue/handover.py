"""Network-side active-state handoff decision and execution.

In an active-state handoff, the serving cell receives the UE's
measurement report and decides whether to hand the device over and to
which target (paper Fig. 1, steps 3-4).  The paper finds the *last*
reporting event decisive: once a report carrying a suitable candidate
arrives (A3, A5 or periodic), the handover command follows within
80-230 ms.

The decision itself combines the reported radio evaluation with the
network's layer preferences (frequency priorities) — the paper's [22]
treats radio evaluation as necessary but not sufficient; we model the
extra network discretion as a priority-aware pick among reported
candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellnet.cell import Cell
from repro.cellnet.world import RadioEnvironment
from repro.config.events import EventType
from repro.rrc.broadcast import ConfigServer
from repro.rrc.messages import MeasurementReport, MobilityControlInfo

#: Bounds of the report-to-handover latency the paper measures
#: ("handoffs happen immediately (within 80-230 ms) once the last
#: measurement report is sent").
DECISION_DELAY_RANGE_MS = (80, 230)

#: Bounds of the user-plane interruption during handover execution.
EXECUTION_INTERRUPTION_RANGE_MS = (40, 80)

#: Periodic reports carry no event criterion, so the network applies its
#: own margin before acting on them.
_PERIODIC_DECISION_MARGIN_DB = 4.0


@dataclass(frozen=True)
class HandoverCommand:
    """A scheduled handover: what the network told the UE to do."""

    issued_at_ms: int
    execute_at_ms: int
    interruption_ms: int
    decisive_event: EventType
    mobility: MobilityControlInfo


class NetworkController:
    """Serving-cell logic reacting to measurement reports."""

    def __init__(self, env: RadioEnvironment, server: ConfigServer, rng: np.random.Generator):
        self.env = env
        self.server = server
        self.rng = rng

    def _candidate_score(self, serving: Cell, report: MeasurementReport, candidate) -> float:
        """Network preference among reported candidates.

        Radio quality dominates, with a small bonus per priority step so
        a recently acquired high-priority layer (paper Section 5.4.1,
        band 30) attracts handoffs when quality is comparable.
        """
        cell = self.env.get_cell(candidate.cell_id)
        config = self.server.lte_config(serving)
        priority = config.priority_of_layer(cell.rat, cell.channel, serving.channel)
        serving_priority = config.serving.cell_reselection_priority
        bonus = 0.0
        if priority is not None:
            bonus = 1.5 * (priority - serving_priority)
        return candidate.rsrp_dbm + bonus

    def on_measurement_report(
        self, now_ms: int, serving: Cell, report: MeasurementReport
    ) -> HandoverCommand | None:
        """Decide on one report; returns the handover command, if any.

        A1/A2 reports carry no candidate and never trigger a handover by
        themselves (the paper: "event A2 should not trigger a handoff
        unless there is a strong candidate cell").  Periodic reports are
        acted on only when the best candidate beats the serving cell by
        the network margin.
        """
        event = EventType(report.event)
        candidates = [
            n for n in report.neighbors if n.cell_id != serving.cell_id
        ]
        if not candidates:
            return None
        if event is EventType.PERIODIC:
            best_value = max(n.rsrp_dbm for n in candidates)
            serving_value = report.serving.rsrp_dbm
            if best_value < serving_value + _PERIODIC_DECISION_MARGIN_DB:
                return None
        best = max(
            candidates,
            key=lambda n: (self._candidate_score(serving, report, n), -n.gci),
        )
        target = self.env.get_cell(best.cell_id)
        decision_delay = int(self.rng.integers(*DECISION_DELAY_RANGE_MS))
        interruption = int(self.rng.integers(*EXECUTION_INTERRUPTION_RANGE_MS))
        mobility = MobilityControlInfo(
            target_carrier=target.carrier,
            target_gci=target.cell_id.gci,
            target_channel=target.channel,
            target_pci=target.pci,
            target_rat=target.rat.value,
        )
        return HandoverCommand(
            issued_at_ms=now_ms,
            execute_at_ms=now_ms + decision_delay,
            interruption_ms=interruption,
            decisive_event=event,
            mobility=mobility,
        )
