"""Idle-mode reselection for devices camped on legacy (non-LTE) cells.

The study's handoff machinery is 4G-centric, but inter-RAT reselections
do park devices on 3G/2G cells, and how they *come back* shapes the 4G
availability findings of Section 5.4.1.  Each legacy RAT gets its own
standard behaviour:

* **UMTS** — SIB19 absolute-priority reselection toward E-UTRA
  (priority_eutra vs priority_serving, thresh_high_eutra over the
  q_rxlevmin_eutra floor, t_reselection_eutra persistence) plus
  classic ranking-based intra-UMTS reselection with q_Hyst1s.
* **GSM** — the C2 criterion: C2 = RSSI + CELL_RESELECT_OFFSET -
  TEMPORARY_OFFSET (while the penalty timer runs); a neighbor must beat
  the serving C2 by CELL_RESELECT_HYSTERESIS.  Return to LTE follows
  the network-controlled release-with-redirection pattern once LTE
  coverage is decent.
* **EVDO / CDMA1x** — pilot comparison: a neighbor pilot must exceed
  the serving one by T_COMP (in 0.5 dB units) to take over; LTE return
  as for GSM.

All rules carry a persistence timer like LTE's Treselection, so the
engines share the same flapping behaviour the paper's mechanisms are
designed to damp.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.rat import RAT
from repro.config.legacy import (
    Cdma1xCellConfig,
    EvdoCellConfig,
    GsmCellConfig,
    LegacyCellConfig,
    UmtsCellConfig,
)
from repro.ue.measurement import FilteredMeasurement

#: LTE level a GSM/CDMA-camped device needs before the network
#: redirects it back (no E-UTRA priority information is broadcast on
#: those RATs in our model, as in many real 2G deployments).
LTE_RETURN_THRESHOLD_DBM = -108.0

#: Persistence for the 2G return-to-LTE rule, milliseconds.
LTE_RETURN_PERSISTENCE_MS = 4_000


@dataclass(frozen=True)
class LegacyReselection:
    """One legacy reselection decision."""

    target: FilteredMeasurement
    #: "higher" for returns to LTE, "equal" for intra-RAT moves.
    priority_class: str

    @property
    def cell(self) -> Cell:
        return self.target.cell


@dataclass
class LegacyReselectionEngine:
    """Reselection rules for a device camped on a legacy cell."""

    _winning_since: dict[CellId, int] = field(default_factory=dict)

    def reset(self) -> None:
        self._winning_since.clear()

    def _persist(self, now_ms: int, key: CellId, needed_ms: int) -> bool:
        started = self._winning_since.setdefault(key, now_ms)
        return now_ms - started >= needed_ms

    def _prune(self, candidates: set[CellId]) -> None:
        for stale in [k for k in self._winning_since if k not in candidates]:
            del self._winning_since[stale]

    def step(
        self,
        now_ms: int,
        serving: FilteredMeasurement,
        config: LegacyCellConfig,
        neighbors: list[FilteredMeasurement],
    ) -> LegacyReselection | None:
        """One decision round for the camped legacy device."""
        if isinstance(config, UmtsCellConfig):
            return self._step_umts(now_ms, serving, config, neighbors)
        if isinstance(config, GsmCellConfig):
            return self._step_gsm(now_ms, serving, config, neighbors)
        if isinstance(config, (EvdoCellConfig, Cdma1xCellConfig)):
            return self._step_cdma(now_ms, serving, config, neighbors)
        raise TypeError(f"not a legacy config: {type(config).__name__}")

    # -- UMTS ------------------------------------------------------------

    def _step_umts(
        self,
        now_ms: int,
        serving: FilteredMeasurement,
        config: UmtsCellConfig,
        neighbors: list[FilteredMeasurement],
    ) -> LegacyReselection | None:
        winners: list[tuple[int, LegacyReselection, int]] = []
        considered: set[CellId] = set()
        eutra_higher = config.priority_eutra > config.priority_serving
        t_eutra_ms = config.t_reselection_eutra * 1000
        t_intra_ms = config.t_reselection_s * 1000
        for neighbor in neighbors:
            cell = neighbor.cell
            if cell.rat is RAT.LTE and eutra_higher:
                level = neighbor.rsrp_dbm - config.q_rxlevmin_eutra
                if level > config.thresh_high_eutra:
                    considered.add(cell.cell_id)
                    if self._persist(now_ms, cell.cell_id, t_eutra_ms):
                        winners.append((
                            config.priority_eutra,
                            LegacyReselection(neighbor, "higher"),
                            1,
                        ))
            elif cell.rat is RAT.UMTS:
                if neighbor.rsrp_dbm > serving.rsrp_dbm + config.q_hyst_1s:
                    considered.add(cell.cell_id)
                    if self._persist(now_ms, cell.cell_id, t_intra_ms):
                        winners.append((
                            config.priority_serving,
                            LegacyReselection(neighbor, "equal"),
                            0,
                        ))
        self._prune(considered)
        if not winners:
            return None
        winners.sort(
            key=lambda w: (-w[0], -w[2], -w[1].target.rsrp_dbm, w[1].cell.cell_id)
        )
        return winners[0][1]

    # -- GSM ---------------------------------------------------------------

    def _c2(self, measurement: FilteredMeasurement, config: GsmCellConfig,
            is_serving: bool) -> float:
        """The C2 reselection criterion (penalty timer expired)."""
        value = measurement.rsrp_dbm
        if not is_serving and config.c2_enabled:
            value += config.cell_reselect_offset
        return value

    def _step_gsm(
        self,
        now_ms: int,
        serving: FilteredMeasurement,
        config: GsmCellConfig,
        neighbors: list[FilteredMeasurement],
    ) -> LegacyReselection | None:
        considered: set[CellId] = set()
        serving_c2 = self._c2(serving, config, is_serving=True)
        best: LegacyReselection | None = None
        for neighbor in neighbors:
            cell = neighbor.cell
            if cell.rat is RAT.LTE:
                if neighbor.rsrp_dbm > LTE_RETURN_THRESHOLD_DBM:
                    considered.add(cell.cell_id)
                    if self._persist(now_ms, cell.cell_id, LTE_RETURN_PERSISTENCE_MS):
                        candidate = LegacyReselection(neighbor, "higher")
                        if best is None or candidate.target.rsrp_dbm > best.target.rsrp_dbm or best.priority_class != "higher":
                            best = candidate
            elif cell.rat is RAT.GSM and best is None:
                c2 = self._c2(neighbor, config, is_serving=False)
                if c2 > serving_c2 + config.cell_reselect_hysteresis:
                    considered.add(cell.cell_id)
                    if self._persist(now_ms, cell.cell_id, 5_000):
                        best = LegacyReselection(neighbor, "equal")
        self._prune(considered)
        return best

    # -- CDMA family ---------------------------------------------------------

    def _step_cdma(
        self,
        now_ms: int,
        serving: FilteredMeasurement,
        config: EvdoCellConfig | Cdma1xCellConfig,
        neighbors: list[FilteredMeasurement],
    ) -> LegacyReselection | None:
        t_comp = (
            config.pilot_compare
            if isinstance(config, EvdoCellConfig)
            else config.t_comp
        )
        considered: set[CellId] = set()
        best: LegacyReselection | None = None
        for neighbor in neighbors:
            cell = neighbor.cell
            if cell.rat is RAT.LTE:
                if neighbor.rsrp_dbm > LTE_RETURN_THRESHOLD_DBM:
                    considered.add(cell.cell_id)
                    if self._persist(now_ms, cell.cell_id, LTE_RETURN_PERSISTENCE_MS):
                        best = LegacyReselection(neighbor, "higher")
            elif cell.rat is serving.cell.rat and best is None:
                if neighbor.rsrp_dbm > serving.rsrp_dbm + t_comp:
                    considered.add(cell.cell_id)
                    if self._persist(now_ms, cell.cell_id, 3_000):
                        best = LegacyReselection(neighbor, "equal")
        self._prune(considered)
        return best
