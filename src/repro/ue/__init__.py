"""Device-side 3GPP handoff state machines.

Implements the four-to-five step procedure of the paper's Figure 1 from
the device's point of view: receive configuration (``device``), measure
(``measurement``), report (``reporting``), decide (``reselection`` for
idle-state, the network side in ``handover`` for active-state) and
execute (``handover``).
"""

from repro.ue.measurement import FilteredMeasurement, MeasurementEngine
from repro.ue.reporting import EventMonitor, TriggeredReport
from repro.ue.reselection import ReselectionEngine, rank_candidates
from repro.ue.legacy_reselection import LegacyReselectionEngine, LegacyReselection
from repro.ue.handover import NetworkController, HandoverCommand
from repro.ue.device import RrcState, UserEquipment, HandoffEvent
from repro.ue.umts_active_set import ActiveSetManager, ActiveSetUpdate

__all__ = [
    "FilteredMeasurement",
    "MeasurementEngine",
    "EventMonitor",
    "TriggeredReport",
    "ReselectionEngine",
    "rank_candidates",
    "LegacyReselectionEngine",
    "LegacyReselection",
    "NetworkController",
    "HandoverCommand",
    "RrcState",
    "UserEquipment",
    "HandoffEvent",
    "ActiveSetManager",
    "ActiveSetUpdate",
]
