"""Event-triggered reporting (active-state step 3 of the paper's Fig. 1).

An :class:`EventMonitor` holds the armed events of the current
measConfig and tracks, per (event, neighbor) pair, how long the entry
condition has held.  When it has held for the configured
time-to-trigger, the event *fires* and a measurement report is due;
the leave condition (hysteresis-mirrored) disarms it.

The monitor is rebuilt whenever the UE receives a new measConfig —
after every handoff, exactly as in a real network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cellnet.cell import Cell, CellId
from repro.config.events import (
    EventConfig,
    EventType,
    entry_mask,
    evaluate_entry,
    evaluate_leave,
)
from repro.config.lte import MeasurementConfig
from repro.ue.measurement import FilteredMeasurement, MeasurementRound


@dataclass(frozen=True)
class TriggeredReport:
    """One due measurement report.

    Attributes:
        event: The reporting event that fired (PERIODIC for periodic).
        config: The firing event's configuration.
        serving: Serving-cell measurement at fire time.
        neighbors: Neighbors satisfying the condition (or the strongest
            cells for periodic reports), best first.
    """

    event: EventType
    config: EventConfig
    serving: FilteredMeasurement
    neighbors: tuple[FilteredMeasurement, ...]


#: Sentinel key for serving-only events (A1/A2), which have no neighbor.
_SERVING_KEY = CellId("", -1)


@dataclass
class _EventState:
    """TTT and reporting state of one armed event."""

    config: EventConfig
    #: (event, neighbor) -> time entry condition started holding.
    entry_since: dict[CellId, int] = field(default_factory=dict)
    #: Neighbors already reported (until their leave condition holds).
    reported: set[CellId] = field(default_factory=set)


class EventMonitor:
    """Evaluates armed reporting events against measurement rounds."""

    def __init__(self, meas_config: MeasurementConfig):
        self.meas_config = meas_config
        self._states = [_EventState(config=e) for e in meas_config.events]
        self._last_periodic_ms: int | None = None
        #: Entry masks precomputed by the fleet simulator's batched event
        #: pass, aligned with ``_states`` (None per slot = condition holds
        #: nowhere).  Consumed (and cleared) by the next
        #: :meth:`step_round` call instead of recomputing per monitor.
        self._injected_entries: list | None = None
        #: Lazily filled by the fleet simulator: (signature, parameter
        #: matrix, s_measure, periodic) of ``meas_config``, so the batched
        #: event pass groups lanes without re-deriving it every tick.
        self._batch_info: tuple | None = None

    @property
    def armed_events(self) -> list[EventType]:
        """Event types currently armed (paper: multiple per handoff)."""
        events = [s.config.event for s in self._states]
        if self.meas_config.periodic is not None:
            events.append(EventType.PERIODIC)
        return events

    def s_measure_gate_open(self, serving: FilteredMeasurement) -> bool:
        """Whether neighbor measurement is allowed by s-Measure.

        TS 36.331: neighbor measurements run when serving RSRP falls
        below s-Measure.  The permissive -44 value disables the gate.
        """
        return serving.rsrp_dbm <= self.meas_config.s_measure

    def step(
        self,
        now_ms: int,
        serving: FilteredMeasurement,
        intra_rat_neighbors: list[FilteredMeasurement],
        inter_rat_neighbors: list[FilteredMeasurement],
    ) -> list[TriggeredReport]:
        """One evaluation round; returns reports due at ``now_ms``."""
        reports: list[TriggeredReport] = []
        gate_open = self.s_measure_gate_open(serving)
        for state in self._states:
            config = state.config
            candidates: list[FilteredMeasurement | None]
            if not config.event.needs_neighbor:
                candidates = [None]
            elif config.event.is_inter_rat:
                candidates = list(inter_rat_neighbors) if gate_open else []
            else:
                candidates = list(intra_rat_neighbors) if gate_open else []
            fired: list[FilteredMeasurement] = []
            seen_keys: set[CellId] = set()
            for neighbor in candidates:
                key = _SERVING_KEY if neighbor is None else neighbor.cell.cell_id
                seen_keys.add(key)
                serving_value = serving.metric(config.metric)
                neighbor_value = None if neighbor is None else neighbor.metric(config.metric)
                if key in state.reported:
                    if evaluate_leave(config, serving_value, neighbor_value):
                        state.reported.discard(key)
                        state.entry_since.pop(key, None)
                    continue
                if evaluate_entry(config, serving_value, neighbor_value):
                    started = state.entry_since.setdefault(key, now_ms)
                    if now_ms - started >= config.time_to_trigger_ms:
                        state.reported.add(key)
                        if neighbor is not None:
                            fired.append(neighbor)
                        else:
                            fired.append(serving)
                elif evaluate_leave(config, serving_value, neighbor_value):
                    state.entry_since.pop(key, None)
            # Neighbors that disappeared from measurement: clear state.
            for key in [k for k in state.entry_since if k not in seen_keys]:
                del state.entry_since[key]
            state.reported &= seen_keys | ({_SERVING_KEY} & state.reported)
            if fired:
                neighbors = tuple(
                    m for m in fired if m.cell.cell_id != serving.cell.cell_id
                )
                reports.append(
                    TriggeredReport(
                        event=config.event,
                        config=config,
                        serving=serving,
                        neighbors=tuple(
                            sorted(neighbors, key=lambda m: (-m.metric(config.metric), m.cell.cell_id))
                        ),
                    )
                )
        periodic = self.meas_config.periodic
        if periodic is not None and gate_open and intra_rat_neighbors:
            due = (
                self._last_periodic_ms is None
                or now_ms - self._last_periodic_ms >= periodic.report_interval_ms
            )
            if due:
                self._last_periodic_ms = now_ms
                reports.append(
                    TriggeredReport(
                        event=EventType.PERIODIC,
                        config=periodic.as_event_config(),
                        serving=serving,
                        neighbors=tuple(intra_rat_neighbors[: periodic.max_report_cells]),
                    )
                )
        return reports

    def _step_serving_only(
        self, now_ms: int, state: _EventState, serving: FilteredMeasurement
    ) -> bool:
        """A1/A2 evaluation (no neighbor axis); True when the event fires."""
        config = state.config
        serving_value = serving.metric(config.metric)
        key = _SERVING_KEY
        if key in state.reported:
            if evaluate_leave(config, serving_value, None):
                state.reported.discard(key)
                state.entry_since.pop(key, None)
            return False
        if evaluate_entry(config, serving_value, None):
            started = state.entry_since.setdefault(key, now_ms)
            if now_ms - started >= config.time_to_trigger_ms:
                state.reported.add(key)
                return True
        elif evaluate_leave(config, serving_value, None):
            state.entry_since.pop(key, None)
        return False

    def step_round(
        self, now_ms: int, round_: MeasurementRound, serving: FilteredMeasurement
    ) -> list[TriggeredReport]:
        """One evaluation round over an array-resident measurement round.

        Semantically identical to :meth:`step` fed the sorted neighbor
        lists of the same round, but each event's entry/leave conditions
        are evaluated as one masked array pass over the candidate metric
        values; per-neighbor Python work happens only where a mask is
        hot (a condition holds), which on a steady drive is almost
        never.
        """
        reports: list[TriggeredReport] = []
        injected = self._injected_entries
        self._injected_entries = None
        gate_open = self.s_measure_gate_open(serving)
        prepared = round_.prepared
        cell_ids = prepared.cell_ids
        index = prepared.index
        if gate_open:
            intra_cand, inter_cand = round_.neighbor_masks(serving.cell)
        else:
            intra_cand = inter_cand = None
        for state_i, state in enumerate(self._states):
            config = state.config
            if not config.event.needs_neighbor:
                if self._step_serving_only(now_ms, state, serving):
                    reports.append(
                        TriggeredReport(
                            event=config.event,
                            config=config,
                            serving=serving,
                            neighbors=(),
                        )
                    )
                continue
            cand = inter_cand if config.event.is_inter_rat else intra_cand
            serving_value = serving.metric(config.metric)
            fired: list[int] = []
            entry = None
            if cand is not None:
                # One masked array pass over the whole prepared cell
                # list; only positions where the entry condition holds
                # (on a steady drive: almost none) cost Python work.
                # When the fleet's batched pass already computed this
                # event's entry row (bit-identical: same ufuncs broadcast
                # over the UE axis), consume it instead; a None slot
                # means the condition holds nowhere this round.
                values = round_.metric_values(config.metric)
                if injected is not None:
                    entry = injected[state_i]
                else:
                    entry = entry_mask(config, serving_value, values) & cand
                for i in () if entry is None else np.flatnonzero(entry):
                    key = cell_ids[i]
                    if key in state.reported:
                        # Entry and leave are mutually exclusive (hys
                        # >= 0): a reported neighbor whose entry holds
                        # cannot satisfy leave, so nothing to do.
                        continue
                    started = state.entry_since.setdefault(key, now_ms)
                    if now_ms - started >= config.time_to_trigger_ms:
                        state.reported.add(key)
                        fired.append(int(i))
            # Leave conditions only matter for keys with state — the
            # reported set and pending TTT timers, which are near-empty
            # on a steady drive — so they are consulted scalar-wise.
            if state.reported:
                for key in list(state.reported):
                    if key == _SERVING_KEY:
                        continue
                    i = index.get(key)
                    if cand is None or i is None or not cand[i]:
                        # Disappeared from this round's candidates:
                        # clear state, as the scalar pass's stale
                        # cleanup does.
                        state.reported.discard(key)
                        state.entry_since.pop(key, None)
                        continue
                    if evaluate_leave(config, serving_value, float(values[i])):
                        state.reported.discard(key)
                        state.entry_since.pop(key, None)
            if state.entry_since:
                for key in list(state.entry_since):
                    if key in state.reported or key == _SERVING_KEY:
                        continue
                    i = index.get(key)
                    if cand is None or i is None or not cand[i]:
                        del state.entry_since[key]
                        continue
                    if entry is not None and entry[i]:
                        continue
                    if evaluate_leave(config, serving_value, float(values[i])):
                        del state.entry_since[key]
            if fired:
                neighbors = [round_.measurement_at(i) for i in fired]
                reports.append(
                    TriggeredReport(
                        event=config.event,
                        config=config,
                        serving=serving,
                        neighbors=tuple(
                            sorted(
                                neighbors,
                                key=lambda m: (-m.metric(config.metric), m.cell.cell_id),
                            )
                        ),
                    )
                )
        periodic = self.meas_config.periodic
        if periodic is not None and intra_cand is not None:
            due = (
                self._last_periodic_ms is None
                or now_ms - self._last_periodic_ms >= periodic.report_interval_ms
            )
            # The best-first sort is only paid when a report is due and
            # there is at least one intra-RAT neighbor to report.
            if due and intra_cand.any():
                self._last_periodic_ms = now_ms
                intra_idx, _ = round_.neighbor_order(serving.cell)
                reports.append(
                    TriggeredReport(
                        event=EventType.PERIODIC,
                        config=periodic.as_event_config(),
                        serving=serving,
                        neighbors=tuple(
                            round_.measurement_at(i)
                            for i in intra_idx[: periodic.max_report_cells]
                        ),
                    )
                )
        return reports
