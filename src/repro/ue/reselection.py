"""Idle-mode cell reselection (the paper's Eq. 3 decision rules).

The device makes idle-state handoff decisions locally, using criteria
pre-configured by the serving cell's SIBs:

* measurement gating (Eq. 1): intra-freq neighbors are measured only
  when the serving *level* (RSRP minus q_rx_lev_min) drops to
  s_intra_search_p; non-intra-freq ones at s_non_intra_search_p;
  higher-priority layers are always measured periodically;
* ranking (Eq. 3): a higher-priority candidate wins when its level
  clears thresh_x_high; an equal-priority candidate when its RSRP beats
  the serving's by q_hyst (+ q_offset); a lower-priority candidate only
  when the serving level is below thresh_serving_low *and* the
  candidate's level clears thresh_x_low;
* timing: the winning condition must hold continuously for
  t_reselection seconds before the device reselects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.rat import RAT
from repro.config.lte import LteCellConfig
from repro.ue.measurement import FilteredMeasurement


@dataclass(frozen=True)
class RankedCandidate:
    """One neighbor that currently out-ranks the serving cell."""

    measurement: FilteredMeasurement
    priority: int
    serving_priority: int

    @property
    def cell(self) -> Cell:
        return self.measurement.cell

    @property
    def priority_class(self) -> str:
        """"higher", "equal" or "lower" relative to the serving cell."""
        if self.priority > self.serving_priority:
            return "higher"
        if self.priority == self.serving_priority:
            return "equal"
        return "lower"


def _level(rsrp_dbm: float, q_rx_lev_min: float) -> float:
    """Calibrated signal level: actual RSRP minus the configured floor.

    This is the paper's "r_S = r_S(actual) - Delta_min" calibration; all
    relative thresholds (S-criteria, threshX) compare against levels.
    """
    return rsrp_dbm - q_rx_lev_min


def measurement_gates(
    config: LteCellConfig, serving_rsrp_dbm: float
) -> tuple[bool, bool]:
    """(measure_intra, measure_non_intra) per the Eq. 1 S-criteria."""
    level = _level(serving_rsrp_dbm, config.serving.q_rx_lev_min)
    return (
        level <= config.serving.s_intra_search_p,
        level <= config.serving.s_non_intra_search_p,
    )


def rank_candidates(
    config: LteCellConfig,
    serving: FilteredMeasurement,
    neighbors: list[FilteredMeasurement],
) -> list[RankedCandidate]:
    """Neighbors that out-rank the serving cell under Eq. 3.

    Unknown layers (no priority broadcast for that frequency) are
    skipped, as a real UE ignores them.  Results are ordered
    higher-priority-first, then by RSRP, which is also the preference
    order of the reselection rule.
    """
    serving_cell = serving.cell
    serving_priority = config.serving.cell_reselection_priority
    serving_level = _level(serving.rsrp_dbm, config.serving.q_rx_lev_min)
    ranked: list[RankedCandidate] = []
    for neighbor in neighbors:
        cell = neighbor.cell
        priority = config.priority_of_layer(cell.rat, cell.channel, serving_cell.channel)
        if priority is None:
            continue
        level = _level(neighbor.rsrp_dbm, config.serving.q_rx_lev_min)
        if priority > serving_priority:
            threshold = _thresh_high(config, cell)
            if threshold is not None and level > threshold:
                ranked.append(RankedCandidate(neighbor, priority, serving_priority))
        elif priority == serving_priority:
            offset = config.intra_neighbors.q_offset_cell if _is_intra(cell, serving_cell) else _freq_offset(config, cell)
            if neighbor.rsrp_dbm > serving.rsrp_dbm + config.serving.q_hyst + offset:
                ranked.append(RankedCandidate(neighbor, priority, serving_priority))
        else:
            threshold = _thresh_low(config, cell)
            if (
                threshold is not None
                and serving_level < config.serving.thresh_serving_low_p
                and level > threshold
            ):
                ranked.append(RankedCandidate(neighbor, priority, serving_priority))
    ranked.sort(
        key=lambda r: (-r.priority, -r.measurement.rsrp_dbm, r.cell.cell_id)
    )
    return ranked


def _is_intra(cell: Cell, serving: Cell) -> bool:
    return cell.rat is serving.rat and cell.channel == serving.channel


def _freq_offset(config: LteCellConfig, cell: Cell) -> float:
    if cell.rat is RAT.LTE:
        for layer in config.inter_freq_layers:
            if layer.dl_carrier_freq == cell.channel:
                return layer.q_offset_freq
    return 0.0


def _thresh_high(config: LteCellConfig, cell: Cell) -> float | None:
    if cell.rat is RAT.LTE:
        for layer in config.inter_freq_layers:
            if layer.dl_carrier_freq == cell.channel:
                return layer.thresh_x_high_p
        return None
    if cell.rat is RAT.UMTS:
        for layer in config.utra_layers:
            if layer.carrier_freq == cell.channel:
                return layer.thresh_x_high
        return None
    if cell.rat is RAT.GSM:
        for layer in config.geran_layers:
            if cell.channel in layer.carrier_freqs:
                return layer.thresh_x_high
        return None
    for layer in config.cdma_layers:
        return layer.thresh_x_high
    return None


def _thresh_low(config: LteCellConfig, cell: Cell) -> float | None:
    if cell.rat is RAT.LTE:
        for layer in config.inter_freq_layers:
            if layer.dl_carrier_freq == cell.channel:
                return layer.thresh_x_low_p
        return None
    if cell.rat is RAT.UMTS:
        for layer in config.utra_layers:
            if layer.carrier_freq == cell.channel:
                return layer.thresh_x_low
        return None
    if cell.rat is RAT.GSM:
        for layer in config.geran_layers:
            if cell.channel in layer.carrier_freqs:
                return layer.thresh_x_low
        return None
    for layer in config.cdma_layers:
        return layer.thresh_x_low
    return None


@dataclass
class ReselectionEngine:
    """Applies Eq. 3 with the Treselection persistence requirement."""

    #: Candidate -> time its winning condition started holding.
    _winning_since: dict[CellId, int] = field(default_factory=dict)

    def reset(self) -> None:
        """Clear persistence state (after camping on a new cell)."""
        self._winning_since.clear()

    def step(
        self,
        now_ms: int,
        config: LteCellConfig,
        serving: FilteredMeasurement,
        neighbors: list[FilteredMeasurement],
    ) -> RankedCandidate | None:
        """One decision round; returns the reselection target, if any."""
        ranked = rank_candidates(config, serving, neighbors)
        ranked_ids = {r.cell.cell_id for r in ranked}
        for stale in [cid for cid in self._winning_since if cid not in ranked_ids]:
            del self._winning_since[stale]
        t_reselection_ms = config.serving.t_reselection_eutra * 1000
        for candidate in ranked:
            started = self._winning_since.setdefault(candidate.cell.cell_id, now_ms)
            if now_ms - started >= t_reselection_ms:
                return candidate
        return None
