"""UE measurement layer: L1 sampling noise and L3 filtering.

The modem samples each audible cell's reference signals, then an L3
IIR filter (TS 36.331 5.5.3.2) smooths the samples before they feed the
event-evaluation and reselection machinery::

    F_n = (1 - a) * F_{n-1} + a * M_n,    a = 1 / 2**(k / 4)

The paper leans on this twice: "3 dB measurement dynamics is common"
when interpreting delta-RSRP CDFs (Fig. 6), and time-to-trigger exists
precisely because single samples are noisy.

Two implementations share the engine: the default *vectorized* path
keeps filter state in numpy arrays aligned with the snapshot cache's
prepared cell list (one masked array pass per round, stable cell-index
maps, carry-over when the UE crosses a cache-grid boundary), and the
*scalar* path is the original per-cell loop, kept as a reference oracle
— parity tests assert both produce bit-identical drives.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.radio import PreparedCells, RadioSnapshot
from repro.cellnet.rat import (
    RSRP_RANGE_DBM,
    RSRQ_RANGE_DB,
    clamp_rsrp,
    clamp_rsrq,
)
from repro.cellnet.world import RadioEnvironment


def default_vectorized() -> bool:
    """Whether new engines take the vectorized path (REPRO_SCALAR=1 opts out)."""
    return os.environ.get("REPRO_SCALAR", "0") in ("", "0")


@dataclass(frozen=True)
class FilteredMeasurement:
    """L3-filtered measurement of one cell."""

    cell: Cell
    rsrp_dbm: float
    rsrq_db: float

    def metric(self, name: str) -> float:
        """Value of the named trigger quantity ("rsrp" or "rsrq")."""
        if name == "rsrp":
            return self.rsrp_dbm
        if name == "rsrq":
            return self.rsrq_db
        raise ValueError(f"unknown metric {name!r}")


class MeasurementRound(Mapping):
    """One measurement round, array-resident.

    Behaves like the ``dict[CellId, FilteredMeasurement]`` the scalar
    engine returns (same iteration order: snapshot order over measured
    cells), but the filtered values live in numpy arrays aligned with
    the snapshot's prepared cell list; :class:`FilteredMeasurement`
    dataclasses are only materialized for the few cells a consumer
    actually touches (serving cell, report neighbors).
    """

    __slots__ = ("prepared", "rsrp", "rsrq", "mask", "_order", "_fms", "_masks", "_splits")

    def __init__(
        self,
        prepared: PreparedCells,
        rsrp: np.ndarray,
        rsrq: np.ndarray,
        mask: np.ndarray,
    ):
        self.prepared = prepared
        #: Filtered metric arrays aligned with ``prepared.cells``; only
        #: positions where ``mask`` holds carry this round's values.
        self.rsrp = rsrp
        self.rsrq = rsrq
        self.mask = mask
        self._order: np.ndarray | None = None
        self._fms: dict[CellId, FilteredMeasurement] = {}
        self._masks: dict = {}
        self._splits: dict = {}

    @property
    def order(self) -> np.ndarray:
        """Measured positions in snapshot order (``flatnonzero(mask)``)."""
        if self._order is None:
            self._order = np.flatnonzero(self.mask)
        return self._order

    # -- Mapping protocol (scalar-dict compatibility) -----------------------

    def __iter__(self):
        ids = self.prepared.cell_ids
        return (ids[i] for i in self.order)

    def __len__(self) -> int:
        return len(self.order)

    def __contains__(self, cell_id) -> bool:
        i = self.prepared.index.get(cell_id)
        return i is not None and bool(self.mask[i])

    def __getitem__(self, cell_id) -> FilteredMeasurement:
        i = self.prepared.index.get(cell_id)
        if i is None or not self.mask[i]:
            raise KeyError(cell_id)
        return self.measurement_at(i)

    def get(self, cell_id, default=None):
        i = self.prepared.index.get(cell_id)
        if i is None or not self.mask[i]:
            return default
        return self.measurement_at(i)

    # -- array-side accessors ----------------------------------------------

    def measurement_at(self, i: int) -> FilteredMeasurement:
        """The (cached) :class:`FilteredMeasurement` of snapshot position ``i``."""
        cell_id = self.prepared.cell_ids[i]
        fm = self._fms.get(cell_id)
        if fm is None:
            fm = FilteredMeasurement(
                cell=self.prepared.cells[i],
                rsrp_dbm=float(self.rsrp[i]),
                rsrq_db=float(self.rsrq[i]),
            )
            self._fms[cell_id] = fm
        return fm

    def metric_values(self, name: str) -> np.ndarray:
        """Filtered value array of the named metric (snapshot-aligned)."""
        if name == "rsrp":
            return self.rsrp
        if name == "rsrq":
            return self.rsrq
        raise ValueError(f"unknown metric {name!r}")

    def neighbor_masks(self, serving: Cell) -> tuple[np.ndarray, np.ndarray]:
        """(intra-RAT, inter-RAT) neighbor candidate masks, full length.

        Boolean arrays over ``prepared.cells``: measured this round, of
        the respective RAT class, serving cell excluded.  Cached per
        round — every armed event consults the same candidate classes.
        """
        key = serving.cell_id
        cached = self._masks.get(key)
        if cached is not None:
            return cached
        mask = self.mask.copy()
        si = self.prepared.index.get(key)
        if si is not None:
            mask[si] = False
        rat_mask = self.prepared.rat_mask(serving.rat)
        intra = mask & rat_mask
        inter = mask & ~rat_mask
        self._masks[key] = (intra, inter)
        return intra, inter

    def neighbor_order(self, serving: Cell) -> tuple[np.ndarray, np.ndarray]:
        """(intra-RAT, inter-RAT) neighbor positions, best-first.

        Sorted by (-filtered RSRP, cell id), exactly the scalar
        :meth:`MeasurementEngine.split_neighbors` order.  Computed (and
        cached) lazily: the vectorized event pass only needs the
        unsorted masks, so the sort is paid only when a report actually
        materializes neighbors or a shadow consumer splits the round.
        """
        key = serving.cell_id
        cached = self._splits.get(key)
        if cached is not None:
            return cached
        intra_mask, inter_mask = self.neighbor_masks(serving)
        intra = np.flatnonzero(intra_mask)
        inter = np.flatnonzero(inter_mask)
        gci = self.prepared.gci
        if intra.size:
            intra = intra[np.lexsort((gci[intra], -self.rsrp[intra]))]
        if inter.size:
            inter = inter[np.lexsort((gci[inter], -self.rsrp[inter]))]
        self._splits[key] = (intra, inter)
        return intra, inter


class MeasurementEngine:
    """Per-UE measurement state: noise injection plus L3 filtering.

    Args:
        env: Radio environment to sample from.
        rng: The UE's RNG (drives per-sample measurement noise).
        noise_std_db: L1 sample noise standard deviation.
        filter_k: TS 36.331 filterCoefficient (k = 4 gives a = 0.5).
        radius_m: Neighbor search radius per snapshot.
        vectorized: Take the array-resident fast path (default; honours
            ``REPRO_SCALAR=1``) or the scalar per-cell reference loop.
    """

    def __init__(
        self,
        env: RadioEnvironment,
        rng: np.random.Generator,
        noise_std_db: float = 1.8,
        filter_k: int = 4,
        radius_m: float = 2500.0,
        detection_floor_dbm: float = -126.0,
        vectorized: bool | None = None,
    ):
        self.env = env
        self.rng = rng
        self.noise_std_db = noise_std_db
        self.alpha = 1.0 / 2.0 ** (filter_k / 4.0)
        self.radius_m = radius_m
        #: Neighbors below this raw RSRP are undetectable and skipped —
        #: both a realism point (cell search has a sensitivity floor)
        #: and the measurement hot path's main cost saver.
        self.detection_floor_dbm = detection_floor_dbm
        self.vectorized = default_vectorized() if vectorized is None else vectorized
        #: Scalar-path filter state (cell id -> (rsrp, rsrq)).
        self._filtered: dict[CellId, tuple[float, float]] = {}
        #: Vectorized-path filter state, aligned with ``_aligned.cells``.
        self._aligned: PreparedCells | None = None
        self._filt_rsrp: np.ndarray | None = None
        self._filt_rsrq: np.ndarray | None = None
        self._has_filt: np.ndarray | None = None
        #: Memo of the last snapshot taken, so every consumer inside one
        #: tick (measurement, idle gating, the runner's ground-truth
        #: sampling) shares a single vectorized RSRP computation.
        self._snap_key: tuple | None = None
        self._snap: RadioSnapshot | None = None
        #: Count of measurement rounds performed, split by kind — the
        #: measurement-efficiency analysis (Fig. 11) consumes these.
        self.intra_freq_rounds = 0
        self.non_intra_freq_rounds = 0

    def reset(self) -> None:
        """Drop filter state (called after a handoff/reselection)."""
        self._filtered.clear()
        if self._has_filt is not None:
            self._has_filt = np.zeros(len(self._has_filt), dtype=bool)

    def snapshot(self, location, carrier: str) -> RadioSnapshot:
        """Raw vectorized snapshot of the carrier's audible cells.

        Memoized on (location, carrier): repeated calls within one tick
        (UE step + runner ground truth) reuse the same snapshot object.
        """
        key = (location.x, location.y, carrier)
        if key == self._snap_key:
            assert self._snap is not None
            return self._snap
        snap = self.env.snapshot(location, carrier, radius_m=self.radius_m)
        self._snap_key, self._snap = key, snap
        return snap

    def step(
        self,
        location,
        carrier: str,
        serving: Cell,
        measure_intra: bool = True,
        measure_non_intra: bool = True,
    ):
        """One measurement round; returns filtered values per cell.

        ``measure_intra`` / ``measure_non_intra`` implement the Eq. (1)
        gating: when a class of measurement is off, those neighbors are
        simply not sampled this round (their stale filter state is
        dropped, as a real modem ages measurements out).  The serving
        cell is always measured.

        Returns a mapping of cell id to filtered measurement: a plain
        dict on the scalar path, a :class:`MeasurementRound` on the
        vectorized one.
        """
        snap = self.snapshot(location, carrier)
        if measure_intra:
            self.intra_freq_rounds += 1
        if measure_non_intra:
            self.non_intra_freq_rounds += 1
        if self.vectorized:
            return self._step_vectorized(snap, serving, measure_intra, measure_non_intra)
        return self._step_scalar(snap, serving, measure_intra, measure_non_intra)

    # -- vectorized path -----------------------------------------------------

    def _realign(self, prepared: PreparedCells) -> None:
        """Carry filter state over to a new snapshot-cache cell list."""
        n = len(prepared.cells)
        rsrp = np.zeros(n)
        rsrq = np.zeros(n)
        has = np.zeros(n, dtype=bool)
        old = self._aligned
        if old is not None and self._has_filt is not None and self._has_filt.any():
            old_index = old.index
            old_rsrp, old_rsrq, old_has = self._filt_rsrp, self._filt_rsrq, self._has_filt
            for i, cell_id in enumerate(prepared.cell_ids):
                j = old_index.get(cell_id)
                if j is not None and old_has[j]:
                    has[i] = True
                    rsrp[i] = old_rsrp[j]
                    rsrq[i] = old_rsrq[j]
        self._aligned = prepared
        self._filt_rsrp, self._filt_rsrq, self._has_filt = rsrp, rsrq, has

    def _step_vectorized(
        self,
        snap: RadioSnapshot,
        serving: Cell,
        measure_intra: bool,
        measure_non_intra: bool,
    ) -> MeasurementRound:
        prepared = snap.prepared
        n = len(prepared.cells)
        rsrp_arr, rsrq_arr, _ = snap.metric_arrays()
        # The noise draws mirror the scalar path exactly (same RNG
        # stream: two length-n draws per round, eligible or not).
        noise_rsrp = self.rng.normal(0.0, self.noise_std_db, n)
        noise_rsrq = self.rng.normal(0.0, self.noise_std_db / 2.0, n)
        if self._aligned is not prepared:
            self._realign(prepared)
        eligible = rsrp_arr >= self.detection_floor_dbm
        if not (measure_intra and measure_non_intra):
            intra = prepared.intra_mask(serving.rat, serving.channel)
            if not measure_intra:
                eligible &= ~intra
            if not measure_non_intra:
                eligible &= intra
        serving_i = prepared.index.get(serving.cell_id)
        if serving_i is not None:
            eligible[serving_i] = True
        # minimum(maximum(...)) is the scalar clamp's exact op order.
        lo, hi = RSRP_RANGE_DBM
        noisy_rsrp = np.minimum(np.maximum(rsrp_arr + noise_rsrp, lo), hi)
        lo, hi = RSRQ_RANGE_DB
        noisy_rsrq = np.minimum(np.maximum(rsrq_arr + noise_rsrq, lo), hi)
        one_minus_alpha = 1.0 - self.alpha
        has = self._has_filt
        filt_rsrp = np.where(
            has, one_minus_alpha * self._filt_rsrp + self.alpha * noisy_rsrp, noisy_rsrp
        )
        filt_rsrq = np.where(
            has, one_minus_alpha * self._filt_rsrq + self.alpha * noisy_rsrq, noisy_rsrq
        )
        # Cells not measured this round age out (has-state drops), just
        # as the scalar path deletes their dict entries.
        self._filt_rsrp, self._filt_rsrq, self._has_filt = filt_rsrp, filt_rsrq, eligible
        return MeasurementRound(prepared, filt_rsrp, filt_rsrq, eligible)

    # -- scalar reference path ----------------------------------------------

    def _step_scalar(
        self,
        snap: RadioSnapshot,
        serving: Cell,
        measure_intra: bool,
        measure_non_intra: bool,
    ) -> dict[CellId, FilteredMeasurement]:
        measured: dict[CellId, FilteredMeasurement] = {}
        seen: set[CellId] = set()
        rsrp_arr, rsrq_arr, _ = snap.metric_arrays()
        n = len(snap.cells)
        noise_rsrp = self.rng.normal(0.0, self.noise_std_db, n)
        noise_rsrq = self.rng.normal(0.0, self.noise_std_db / 2.0, n)
        one_minus_alpha = 1.0 - self.alpha
        for i, cell in enumerate(snap.cells):
            is_serving = cell.cell_id == serving.cell_id
            if not is_serving:
                if rsrp_arr[i] < self.detection_floor_dbm:
                    continue
                intra = cell.rat is serving.rat and cell.channel == serving.channel
                if intra and not measure_intra:
                    continue
                if not intra and not measure_non_intra:
                    continue
            noisy_rsrp = clamp_rsrp(float(rsrp_arr[i]) + float(noise_rsrp[i]))
            noisy_rsrq = clamp_rsrq(float(rsrq_arr[i]) + float(noise_rsrq[i]))
            prev = self._filtered.get(cell.cell_id)
            if prev is None:
                filt = (noisy_rsrp, noisy_rsrq)
            else:
                filt = (
                    one_minus_alpha * prev[0] + self.alpha * noisy_rsrp,
                    one_minus_alpha * prev[1] + self.alpha * noisy_rsrq,
                )
            self._filtered[cell.cell_id] = filt
            seen.add(cell.cell_id)
            measured[cell.cell_id] = FilteredMeasurement(
                cell=cell, rsrp_dbm=filt[0], rsrq_db=filt[1]
            )
        # Age out cells that were not measured this round.
        for stale in [cid for cid in self._filtered if cid not in seen]:
            del self._filtered[stale]
        return measured

    # -- shared helpers ------------------------------------------------------

    def serving_measurement(self, measured, serving: Cell) -> FilteredMeasurement:
        """The serving cell's entry from a measurement round."""
        return measured[serving.cell_id]

    @staticmethod
    def split_neighbors(
        measured, serving: Cell
    ) -> tuple[list[FilteredMeasurement], list[FilteredMeasurement]]:
        """(intra-RAT LTE neighbors, inter-RAT neighbors) of a round."""
        if isinstance(measured, MeasurementRound):
            intra_idx, inter_idx = measured.neighbor_order(serving)
            return (
                [measured.measurement_at(i) for i in intra_idx],
                [measured.measurement_at(i) for i in inter_idx],
            )
        intra_rat: list[FilteredMeasurement] = []
        inter_rat: list[FilteredMeasurement] = []
        for cid, fm in measured.items():
            if cid == serving.cell_id:
                continue
            if fm.cell.rat is serving.rat:
                intra_rat.append(fm)
            else:
                inter_rat.append(fm)
        intra_rat.sort(key=lambda m: (-m.rsrp_dbm, m.cell.cell_id))
        inter_rat.sort(key=lambda m: (-m.rsrp_dbm, m.cell.cell_id))
        return intra_rat, inter_rat
