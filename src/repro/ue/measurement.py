"""UE measurement layer: L1 sampling noise and L3 filtering.

The modem samples each audible cell's reference signals, then an L3
IIR filter (TS 36.331 5.5.3.2) smooths the samples before they feed the
event-evaluation and reselection machinery::

    F_n = (1 - a) * F_{n-1} + a * M_n,    a = 1 / 2**(k / 4)

The paper leans on this twice: "3 dB measurement dynamics is common"
when interpreting delta-RSRP CDFs (Fig. 6), and time-to-trigger exists
precisely because single samples are noisy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.radio import RadioSnapshot
from repro.cellnet.rat import RAT, clamp_rsrp, clamp_rsrq
from repro.cellnet.world import RadioEnvironment


@dataclass(frozen=True)
class FilteredMeasurement:
    """L3-filtered measurement of one cell."""

    cell: Cell
    rsrp_dbm: float
    rsrq_db: float

    def metric(self, name: str) -> float:
        """Value of the named trigger quantity ("rsrp" or "rsrq")."""
        if name == "rsrp":
            return self.rsrp_dbm
        if name == "rsrq":
            return self.rsrq_db
        raise ValueError(f"unknown metric {name!r}")


class MeasurementEngine:
    """Per-UE measurement state: noise injection plus L3 filtering.

    Args:
        env: Radio environment to sample from.
        rng: The UE's RNG (drives per-sample measurement noise).
        noise_std_db: L1 sample noise standard deviation.
        filter_k: TS 36.331 filterCoefficient (k = 4 gives a = 0.5).
        radius_m: Neighbor search radius per snapshot.
    """

    def __init__(
        self,
        env: RadioEnvironment,
        rng: np.random.Generator,
        noise_std_db: float = 1.8,
        filter_k: int = 4,
        radius_m: float = 2500.0,
        detection_floor_dbm: float = -126.0,
    ):
        self.env = env
        self.rng = rng
        self.noise_std_db = noise_std_db
        self.alpha = 1.0 / 2.0 ** (filter_k / 4.0)
        self.radius_m = radius_m
        #: Neighbors below this raw RSRP are undetectable and skipped —
        #: both a realism point (cell search has a sensitivity floor)
        #: and the measurement hot path's main cost saver.
        self.detection_floor_dbm = detection_floor_dbm
        self._filtered: dict[CellId, tuple[float, float]] = {}
        #: Count of measurement rounds performed, split by kind — the
        #: measurement-efficiency analysis (Fig. 11) consumes these.
        self.intra_freq_rounds = 0
        self.non_intra_freq_rounds = 0

    def reset(self) -> None:
        """Drop filter state (called after a handoff/reselection)."""
        self._filtered.clear()

    def snapshot(self, location, carrier: str) -> RadioSnapshot:
        """Raw vectorized snapshot of the carrier's audible cells."""
        return self.env.snapshot(location, carrier, radius_m=self.radius_m)

    def step(
        self,
        location,
        carrier: str,
        serving: Cell,
        measure_intra: bool = True,
        measure_non_intra: bool = True,
    ) -> dict[CellId, FilteredMeasurement]:
        """One measurement round; returns filtered values per cell.

        ``measure_intra`` / ``measure_non_intra`` implement the Eq. (1)
        gating: when a class of measurement is off, those neighbors are
        simply not sampled this round (their stale filter state is
        dropped, as a real modem ages measurements out).  The serving
        cell is always measured.
        """
        snap = self.snapshot(location, carrier)
        measured: dict[CellId, FilteredMeasurement] = {}
        seen: set[CellId] = set()
        if measure_intra:
            self.intra_freq_rounds += 1
        if measure_non_intra:
            self.non_intra_freq_rounds += 1
        rsrp_arr, rsrq_arr, _ = snap.metric_arrays()
        n = len(snap.cells)
        noise_rsrp = self.rng.normal(0.0, self.noise_std_db, n)
        noise_rsrq = self.rng.normal(0.0, self.noise_std_db / 2.0, n)
        one_minus_alpha = 1.0 - self.alpha
        for i, cell in enumerate(snap.cells):
            is_serving = cell.cell_id == serving.cell_id
            if not is_serving:
                if rsrp_arr[i] < self.detection_floor_dbm:
                    continue
                intra = cell.rat is serving.rat and cell.channel == serving.channel
                if intra and not measure_intra:
                    continue
                if not intra and not measure_non_intra:
                    continue
            noisy_rsrp = clamp_rsrp(float(rsrp_arr[i]) + float(noise_rsrp[i]))
            noisy_rsrq = clamp_rsrq(float(rsrq_arr[i]) + float(noise_rsrq[i]))
            prev = self._filtered.get(cell.cell_id)
            if prev is None:
                filt = (noisy_rsrp, noisy_rsrq)
            else:
                filt = (
                    one_minus_alpha * prev[0] + self.alpha * noisy_rsrp,
                    one_minus_alpha * prev[1] + self.alpha * noisy_rsrq,
                )
            self._filtered[cell.cell_id] = filt
            seen.add(cell.cell_id)
            measured[cell.cell_id] = FilteredMeasurement(
                cell=cell, rsrp_dbm=filt[0], rsrq_db=filt[1]
            )
        # Age out cells that were not measured this round.
        for stale in [cid for cid in self._filtered if cid not in seen]:
            del self._filtered[stale]
        return measured

    def serving_measurement(
        self, measured: dict[CellId, FilteredMeasurement], serving: Cell
    ) -> FilteredMeasurement:
        """The serving cell's entry from a measurement round."""
        return measured[serving.cell_id]

    @staticmethod
    def split_neighbors(
        measured: dict[CellId, FilteredMeasurement], serving: Cell
    ) -> tuple[list[FilteredMeasurement], list[FilteredMeasurement]]:
        """(intra-RAT LTE neighbors, inter-RAT neighbors) of a round."""
        intra_rat: list[FilteredMeasurement] = []
        inter_rat: list[FilteredMeasurement] = []
        for cid, fm in measured.items():
            if cid == serving.cell_id:
                continue
            if fm.cell.rat is serving.rat:
                intra_rat.append(fm)
            else:
                inter_rat.append(fm)
        intra_rat.sort(key=lambda m: (-m.rsrp_dbm, m.cell.cell_id))
        inter_rat.sort(key=lambda m: (-m.rsrp_dbm, m.cell.cell_id))
        return intra_rat, inter_rat
