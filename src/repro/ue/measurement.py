"""UE measurement layer: L1 sampling noise and L3 filtering.

The modem samples each audible cell's reference signals, then an L3
IIR filter (TS 36.331 5.5.3.2) smooths the samples before they feed the
event-evaluation and reselection machinery::

    F_n = (1 - a) * F_{n-1} + a * M_n,    a = 1 / 2**(k / 4)

The paper leans on this twice: "3 dB measurement dynamics is common"
when interpreting delta-RSRP CDFs (Fig. 6), and time-to-trigger exists
precisely because single samples are noisy.

Two implementations share the engine: the default *vectorized* path
keeps filter state in numpy arrays aligned with the snapshot cache's
prepared cell list (one masked array pass per round, stable cell-index
maps, carry-over when the UE crosses a cache-grid boundary), and the
*scalar* path is the original per-cell loop, kept as a reference oracle
— parity tests assert both produce bit-identical drives.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.cellnet.cell import Cell, CellId
from repro.cellnet.radio import PreparedCells, RadioSnapshot
from repro.cellnet.rat import (
    RAT,
    RSRP_RANGE_DBM,
    RSRQ_RANGE_DB,
    clamp_rsrp,
    clamp_rsrq,
)
from repro.cellnet.world import RadioEnvironment


def default_vectorized() -> bool:
    """Whether new engines take the vectorized path (REPRO_SCALAR=1 opts out)."""
    return os.environ.get("REPRO_SCALAR", "0") in ("", "0")


@dataclass(frozen=True)
class FilteredMeasurement:
    """L3-filtered measurement of one cell."""

    cell: Cell
    rsrp_dbm: float
    rsrq_db: float

    def metric(self, name: str) -> float:
        """Value of the named trigger quantity ("rsrp" or "rsrq")."""
        if name == "rsrp":
            return self.rsrp_dbm
        if name == "rsrq":
            return self.rsrq_db
        raise ValueError(f"unknown metric {name!r}")


class MeasurementRound(Mapping):
    """One measurement round, array-resident.

    Behaves like the ``dict[CellId, FilteredMeasurement]`` the scalar
    engine returns (same iteration order: snapshot order over measured
    cells), but the filtered values live in numpy arrays aligned with
    the snapshot's prepared cell list; :class:`FilteredMeasurement`
    dataclasses are only materialized for the few cells a consumer
    actually touches (serving cell, report neighbors).
    """

    __slots__ = ("prepared", "rsrp", "rsrq", "mask", "_order", "_fms", "_masks", "_splits")

    def __init__(
        self,
        prepared: PreparedCells,
        rsrp: np.ndarray,
        rsrq: np.ndarray,
        mask: np.ndarray,
    ):
        self.prepared = prepared
        #: Filtered metric arrays aligned with ``prepared.cells``; only
        #: positions where ``mask`` holds carry this round's values.
        self.rsrp = rsrp
        self.rsrq = rsrq
        self.mask = mask
        self._order: np.ndarray | None = None
        self._fms: dict[CellId, FilteredMeasurement] = {}
        self._masks: dict = {}
        self._splits: dict = {}

    @property
    def order(self) -> np.ndarray:
        """Measured positions in snapshot order (``flatnonzero(mask)``)."""
        if self._order is None:
            self._order = np.flatnonzero(self.mask)
        return self._order

    # -- Mapping protocol (scalar-dict compatibility) -----------------------

    def __iter__(self):
        ids = self.prepared.cell_ids
        return (ids[i] for i in self.order)

    def __len__(self) -> int:
        return len(self.order)

    def __contains__(self, cell_id) -> bool:
        i = self.prepared.index.get(cell_id)
        return i is not None and bool(self.mask[i])

    def __getitem__(self, cell_id) -> FilteredMeasurement:
        i = self.prepared.index.get(cell_id)
        if i is None or not self.mask[i]:
            raise KeyError(cell_id)
        return self.measurement_at(i)

    def get(self, cell_id, default=None):
        i = self.prepared.index.get(cell_id)
        if i is None or not self.mask[i]:
            return default
        return self.measurement_at(i)

    # -- array-side accessors ----------------------------------------------

    def measurement_at(self, i: int) -> FilteredMeasurement:
        """The (cached) :class:`FilteredMeasurement` of snapshot position ``i``."""
        cell_id = self.prepared.cell_ids[i]
        fm = self._fms.get(cell_id)
        if fm is None:
            fm = FilteredMeasurement(
                cell=self.prepared.cells[i],
                rsrp_dbm=float(self.rsrp[i]),
                rsrq_db=float(self.rsrq[i]),
            )
            self._fms[cell_id] = fm
        return fm

    def metric_values(self, name: str) -> np.ndarray:
        """Filtered value array of the named metric (snapshot-aligned)."""
        if name == "rsrp":
            return self.rsrp
        if name == "rsrq":
            return self.rsrq
        raise ValueError(f"unknown metric {name!r}")

    def neighbor_masks(self, serving: Cell) -> tuple[np.ndarray, np.ndarray]:
        """(intra-RAT, inter-RAT) neighbor candidate masks, full length.

        Boolean arrays over ``prepared.cells``: measured this round, of
        the respective RAT class, serving cell excluded.  Cached per
        round — every armed event consults the same candidate classes.
        """
        key = serving.cell_id
        cached = self._masks.get(key)
        if cached is not None:
            return cached
        mask = self.mask.copy()
        si = self.prepared.index.get(key)
        if si is not None:
            mask[si] = False
        rat_mask = self.prepared.rat_mask(serving.rat)
        intra = mask & rat_mask
        inter = mask & ~rat_mask
        self._masks[key] = (intra, inter)
        return intra, inter

    def neighbor_order(self, serving: Cell) -> tuple[np.ndarray, np.ndarray]:
        """(intra-RAT, inter-RAT) neighbor positions, best-first.

        Sorted by (-filtered RSRP, cell id), exactly the scalar
        :meth:`MeasurementEngine.split_neighbors` order.  Computed (and
        cached) lazily: the vectorized event pass only needs the
        unsorted masks, so the sort is paid only when a report actually
        materializes neighbors or a shadow consumer splits the round.
        """
        key = serving.cell_id
        cached = self._splits.get(key)
        if cached is not None:
            return cached
        intra_mask, inter_mask = self.neighbor_masks(serving)
        intra = np.flatnonzero(intra_mask)
        inter = np.flatnonzero(inter_mask)
        gci = self.prepared.gci
        if intra.size:
            intra = intra[np.lexsort((gci[intra], -self.rsrp[intra]))]
        if inter.size:
            inter = inter[np.lexsort((gci[inter], -self.rsrp[inter]))]
        self._splits[key] = (intra, inter)
        return intra, inter


class MeasurementEngine:
    """Per-UE measurement state: noise injection plus L3 filtering.

    Args:
        env: Radio environment to sample from.
        rng: The UE's RNG (drives per-sample measurement noise).
        noise_std_db: L1 sample noise standard deviation.
        filter_k: TS 36.331 filterCoefficient (k = 4 gives a = 0.5).
        radius_m: Neighbor search radius per snapshot.
        vectorized: Take the array-resident fast path (default; honours
            ``REPRO_SCALAR=1``) or the scalar per-cell reference loop.
    """

    def __init__(
        self,
        env: RadioEnvironment,
        rng: np.random.Generator,
        noise_std_db: float = 1.8,
        filter_k: int = 4,
        radius_m: float = 2500.0,
        detection_floor_dbm: float = -126.0,
        vectorized: bool | None = None,
    ):
        self.env = env
        self.rng = rng
        self.noise_std_db = noise_std_db
        self.alpha = 1.0 / 2.0 ** (filter_k / 4.0)
        self.radius_m = radius_m
        #: Neighbors below this raw RSRP are undetectable and skipped —
        #: both a realism point (cell search has a sensitivity floor)
        #: and the measurement hot path's main cost saver.
        self.detection_floor_dbm = detection_floor_dbm
        self.vectorized = default_vectorized() if vectorized is None else vectorized
        #: Scalar-path filter state (cell id -> (rsrp, rsrq)).
        self._filtered: dict[CellId, tuple[float, float]] = {}
        #: Vectorized-path filter state, aligned with ``_aligned.cells``.
        self._aligned: PreparedCells | None = None
        self._filt_rsrp: np.ndarray | None = None
        self._filt_rsrq: np.ndarray | None = None
        self._has_filt: np.ndarray | None = None
        #: Memo of the last snapshot taken, so every consumer inside one
        #: tick (measurement, idle gating, the runner's ground-truth
        #: sampling) shares a single vectorized RSRP computation.
        self._snap_key: tuple | None = None
        self._snap: RadioSnapshot | None = None
        #: A measurement round computed ahead of time by the fleet
        #: simulator's batched pass; the next :meth:`step` consumes it
        #: instead of recomputing (the batch already advanced this
        #: engine's RNG and filter state identically).
        self._pending_round: MeasurementRound | None = None
        #: Count of measurement rounds performed, split by kind — the
        #: measurement-efficiency analysis (Fig. 11) consumes these.
        self.intra_freq_rounds = 0
        self.non_intra_freq_rounds = 0
        #: Buffered standard-normal tap (see :meth:`_noise`).
        self._noise_buf: np.ndarray | None = None
        self._noise_pos = 0

    def _noise(self, m: int) -> np.ndarray:
        """``m`` standard normals from this engine's stream, buffered.

        ``Generator.standard_normal`` hands out elements sequentially
        from the bit stream, so any partition of draws into calls yields
        the same element sequence.  Serving slices of one large buffered
        draw is therefore bit-identical to ``m`` direct draws — leftover
        tail values are carried across refills, never discarded, keeping
        the served sequence exactly the unbuffered one.  All vectorized
        measurement paths (solo, connected batch, fleet matrix) draw
        through this tap, which is what keeps a fleet lane's stream
        aligned with the same UE simulated solo.
        """
        buf = self._noise_buf
        pos = self._noise_pos
        if buf is None or len(buf) - pos < m:
            keep = 0 if buf is None else len(buf) - pos
            new = np.empty(keep + max(4096, m))
            if keep:
                new[:keep] = buf[pos:]
            self.rng.standard_normal(out=new[keep:])
            self._noise_buf = buf = new
            pos = 0
        self._noise_pos = pos + m
        return buf[pos : pos + m]

    def reset(self) -> None:
        """Drop filter state (called after a handoff/reselection)."""
        self._filtered.clear()
        self._pending_round = None
        if self._has_filt is not None:
            self._has_filt = np.zeros(len(self._has_filt), dtype=bool)

    def snapshot(self, location, carrier: str) -> RadioSnapshot:
        """Raw vectorized snapshot of the carrier's audible cells.

        Memoized on (location, carrier): repeated calls within one tick
        (UE step + runner ground truth) reuse the same snapshot object.
        """
        key = (location.x, location.y, carrier)
        if key == self._snap_key:
            assert self._snap is not None
            return self._snap
        snap = self.env.snapshot(location, carrier, radius_m=self.radius_m)
        self._snap_key, self._snap = key, snap
        return snap

    def adopt_snapshot(self, location, carrier: str, snap: RadioSnapshot) -> None:
        """Install a snapshot taken by a co-located UE into the memo.

        The fleet simulator computes one physics pass per occupied spot
        per tick; every other UE at the same (location, carrier) adopts
        the identical snapshot instead of recomputing it.  Values are
        exactly what :meth:`snapshot` would have produced (the pass is
        deterministic in its inputs).
        """
        self._snap_key = (location.x, location.y, carrier)
        self._snap = snap

    def step(
        self,
        location,
        carrier: str,
        serving: Cell,
        measure_intra: bool = True,
        measure_non_intra: bool = True,
    ):
        """One measurement round; returns filtered values per cell.

        ``measure_intra`` / ``measure_non_intra`` implement the Eq. (1)
        gating: when a class of measurement is off, those neighbors are
        simply not sampled this round (their stale filter state is
        dropped, as a real modem ages measurements out).  The serving
        cell is always measured.

        Returns a mapping of cell id to filtered measurement: a plain
        dict on the scalar path, a :class:`MeasurementRound` on the
        vectorized one.
        """
        pending = self._pending_round
        if pending is not None:
            # The fleet's batched pass already performed this exact round
            # (same snapshot, serving and gating) and committed the
            # filter state; consuming it only needs the bookkeeping.
            self._pending_round = None
            if measure_intra:
                self.intra_freq_rounds += 1
            if measure_non_intra:
                self.non_intra_freq_rounds += 1
            return pending
        snap = self.snapshot(location, carrier)
        if measure_intra:
            self.intra_freq_rounds += 1
        if measure_non_intra:
            self.non_intra_freq_rounds += 1
        if self.vectorized:
            return self._step_vectorized(snap, serving, measure_intra, measure_non_intra)
        return self._step_scalar(snap, serving, measure_intra, measure_non_intra)

    # -- vectorized path -----------------------------------------------------

    def _realign(self, prepared: PreparedCells) -> None:
        """Carry filter state over to a new snapshot-cache cell list."""
        n = len(prepared.cells)
        rsrp = np.zeros(n)
        rsrq = np.zeros(n)
        has = np.zeros(n, dtype=bool)
        old = self._aligned
        if old is not None and self._has_filt is not None and self._has_filt.any():
            old_index = old.index
            old_rsrp, old_rsrq, old_has = self._filt_rsrp, self._filt_rsrq, self._has_filt
            for i, cell_id in enumerate(prepared.cell_ids):
                j = old_index.get(cell_id)
                if j is not None and old_has[j]:
                    has[i] = True
                    rsrp[i] = old_rsrp[j]
                    rsrq[i] = old_rsrq[j]
        self._aligned = prepared
        self._filt_rsrp, self._filt_rsrq, self._has_filt = rsrp, rsrq, has

    def _step_vectorized(
        self,
        snap: RadioSnapshot,
        serving: Cell,
        measure_intra: bool,
        measure_non_intra: bool,
    ) -> MeasurementRound:
        prepared = snap.prepared
        n = len(prepared.cells)
        rsrp_arr, rsrq_arr, _ = snap.metric_arrays()
        # The noise draws mirror the scalar path exactly: Generator.normal
        # consumes one standard normal per element and scales it, so one
        # combined 2n draw split and scaled yields bit-identical values
        # to the scalar path's two length-n draws while paying the
        # generator call overhead once (amortized further by the tap).
        z = self._noise(2 * n)
        noise_rsrp = z[:n] * self.noise_std_db
        noise_rsrq = z[n:] * (self.noise_std_db / 2.0)
        if self._aligned is not prepared:
            self._realign(prepared)
        eligible = rsrp_arr >= self.detection_floor_dbm
        if not (measure_intra and measure_non_intra):
            intra = prepared.intra_mask(serving.rat, serving.channel)
            if not measure_intra:
                eligible &= ~intra
            if not measure_non_intra:
                eligible &= intra
        serving_i = prepared.index.get(serving.cell_id)
        if serving_i is not None:
            eligible[serving_i] = True
        # minimum(maximum(...)) is the scalar clamp's exact op order.
        lo, hi = RSRP_RANGE_DBM
        noisy_rsrp = np.minimum(np.maximum(rsrp_arr + noise_rsrp, lo), hi)
        lo, hi = RSRQ_RANGE_DB
        noisy_rsrq = np.minimum(np.maximum(rsrq_arr + noise_rsrq, lo), hi)
        one_minus_alpha = 1.0 - self.alpha
        has = self._has_filt
        filt_rsrp = np.where(
            has, one_minus_alpha * self._filt_rsrp + self.alpha * noisy_rsrp, noisy_rsrp
        )
        filt_rsrq = np.where(
            has, one_minus_alpha * self._filt_rsrq + self.alpha * noisy_rsrq, noisy_rsrq
        )
        # Cells not measured this round age out (has-state drops), just
        # as the scalar path deletes their dict entries.
        self._filt_rsrp, self._filt_rsrq, self._has_filt = filt_rsrp, filt_rsrq, eligible
        return MeasurementRound(prepared, filt_rsrp, filt_rsrq, eligible)

    #: Raw-metric value used to pad batch rows past a lane's own cell
    #: count: far below every detection floor, so padded positions are
    #: never eligible, and sliced away before anything is committed.
    _BATCH_PAD = -1.0e9

    @staticmethod
    def step_connected_batch(
        engines: list["MeasurementEngine"],
        snaps: list[RadioSnapshot],
        servings: list[Cell],
    ) -> tuple[list[MeasurementRound], np.ndarray, np.ndarray, np.ndarray]:
        """One full-measure connected round for many engines at once.

        Lanes may live in *different* snapshot-cache neighborhoods: row
        ``g`` spans its own prepared cell list and is padded out to the
        batch-wide maximum with :data:`_BATCH_PAD` (ineligible by
        construction).  Every per-cell update is elementwise, so row
        ``g``'s leading ``n_g`` values reproduce engine ``g``'s own
        :meth:`_step_vectorized` bit for bit: the noise comes from each
        engine's own RNG (same draws, same order), and the clamp/IIR
        updates are the same ufuncs broadcast over the UE axis.  Each
        engine's round is stashed in ``_pending_round`` for its next
        :meth:`step` call to consume; filter state is committed here.

        Returns ``(rounds, filt_rsrp, filt_rsrq, eligible)`` with the
        arrays shaped (UE, max cells) for the caller's batched event
        pass; callers slice row ``g`` to its own cell count.
        """
        g = len(engines)
        ns = [len(snap.prepared.cells) for snap in snaps]
        max_n = max(ns)
        pad = MeasurementEngine._BATCH_PAD
        rsrp_raw = np.full((g, max_n), pad)
        rsrq_raw = np.full((g, max_n), pad)
        noise_rsrp = np.zeros((g, max_n))
        noise_rsrq = np.zeros((g, max_n))
        prev_rsrp = np.zeros((g, max_n))
        prev_rsrq = np.zeros((g, max_n))
        has = np.zeros((g, max_n), dtype=bool)
        floors = np.empty((g, 1))
        alpha = np.empty((g, 1))
        stds = np.empty((g, 1))
        for gi in range(g):
            eng, snap, n = engines[gi], snaps[gi], ns[gi]
            prepared = snap.prepared
            raw_rsrp, raw_rsrq, _ = snap.metric_arrays()
            rsrp_raw[gi, :n] = raw_rsrp
            rsrq_raw[gi, :n] = raw_rsrq
            z = eng._noise(2 * n)
            noise_rsrp[gi, :n] = z[:n]
            noise_rsrq[gi, :n] = z[n:]
            if eng._aligned is not prepared:
                eng._realign(prepared)
            prev_rsrp[gi, :n] = eng._filt_rsrp
            prev_rsrq[gi, :n] = eng._filt_rsrq
            has[gi, :n] = eng._has_filt
            floors[gi, 0] = eng.detection_floor_dbm
            alpha[gi, 0] = eng.alpha
            stds[gi, 0] = eng.noise_std_db
        # Scaling the unit draws afterwards is the same multiply the
        # per-engine path performs (z * std, z * (std / 2)).
        noise_rsrp *= stds
        noise_rsrq *= stds / 2.0
        eligible = rsrp_raw >= floors
        for gi, serving in enumerate(servings):
            serving_i = snaps[gi].prepared.index.get(serving.cell_id)
            if serving_i is not None:
                eligible[gi, serving_i] = True
        lo, hi = RSRP_RANGE_DBM
        noisy_rsrp = np.minimum(np.maximum(rsrp_raw + noise_rsrp, lo), hi)
        lo, hi = RSRQ_RANGE_DB
        noisy_rsrq = np.minimum(np.maximum(rsrq_raw + noise_rsrq, lo), hi)
        one_minus_alpha = 1.0 - alpha
        filt_rsrp = np.where(
            has, one_minus_alpha * prev_rsrp + alpha * noisy_rsrp, noisy_rsrp
        )
        filt_rsrq = np.where(
            has, one_minus_alpha * prev_rsrq + alpha * noisy_rsrq, noisy_rsrq
        )
        rounds: list[MeasurementRound] = []
        for gi in range(g):
            eng, n = engines[gi], ns[gi]
            row_rsrp = filt_rsrp[gi, :n]
            row_rsrq = filt_rsrq[gi, :n]
            row_elig = eligible[gi, :n]
            eng._filt_rsrp, eng._filt_rsrq, eng._has_filt = row_rsrp, row_rsrq, row_elig
            round_ = MeasurementRound(snaps[gi].prepared, row_rsrp, row_rsrq, row_elig)
            eng._pending_round = round_
            rounds.append(round_)
        return rounds, filt_rsrp, filt_rsrq, eligible

    # -- scalar reference path ----------------------------------------------

    def _step_scalar(
        self,
        snap: RadioSnapshot,
        serving: Cell,
        measure_intra: bool,
        measure_non_intra: bool,
    ) -> dict[CellId, FilteredMeasurement]:
        measured: dict[CellId, FilteredMeasurement] = {}
        seen: set[CellId] = set()
        rsrp_arr, rsrq_arr, _ = snap.metric_arrays()
        n = len(snap.cells)
        noise_rsrp = self.rng.normal(0.0, self.noise_std_db, n)
        noise_rsrq = self.rng.normal(0.0, self.noise_std_db / 2.0, n)
        one_minus_alpha = 1.0 - self.alpha
        for i, cell in enumerate(snap.cells):
            is_serving = cell.cell_id == serving.cell_id
            if not is_serving:
                if rsrp_arr[i] < self.detection_floor_dbm:
                    continue
                intra = cell.rat is serving.rat and cell.channel == serving.channel
                if intra and not measure_intra:
                    continue
                if not intra and not measure_non_intra:
                    continue
            noisy_rsrp = clamp_rsrp(float(rsrp_arr[i]) + float(noise_rsrp[i]))
            noisy_rsrq = clamp_rsrq(float(rsrq_arr[i]) + float(noise_rsrq[i]))
            prev = self._filtered.get(cell.cell_id)
            if prev is None:
                filt = (noisy_rsrp, noisy_rsrq)
            else:
                filt = (
                    one_minus_alpha * prev[0] + self.alpha * noisy_rsrp,
                    one_minus_alpha * prev[1] + self.alpha * noisy_rsrq,
                )
            self._filtered[cell.cell_id] = filt
            seen.add(cell.cell_id)
            measured[cell.cell_id] = FilteredMeasurement(
                cell=cell, rsrp_dbm=filt[0], rsrq_db=filt[1]
            )
        # Age out cells that were not measured this round.
        for stale in [cid for cid in self._filtered if cid not in seen]:
            del self._filtered[stale]
        return measured

    # -- shared helpers ------------------------------------------------------

    def serving_measurement(self, measured, serving: Cell) -> FilteredMeasurement:
        """The serving cell's entry from a measurement round."""
        return measured[serving.cell_id]

    @staticmethod
    def split_neighbors(
        measured, serving: Cell
    ) -> tuple[list[FilteredMeasurement], list[FilteredMeasurement]]:
        """(intra-RAT LTE neighbors, inter-RAT neighbors) of a round."""
        if isinstance(measured, MeasurementRound):
            intra_idx, inter_idx = measured.neighbor_order(serving)
            return (
                [measured.measurement_at(i) for i in intra_idx],
                [measured.measurement_at(i) for i in inter_idx],
            )
        intra_rat: list[FilteredMeasurement] = []
        inter_rat: list[FilteredMeasurement] = []
        for cid, fm in measured.items():
            if cid == serving.cell_id:
                continue
            if fm.cell.rat is serving.rat:
                intra_rat.append(fm)
            else:
                inter_rat.append(fm)
        intra_rat.sort(key=lambda m: (-m.rsrp_dbm, m.cell.cell_id))
        inter_rat.sort(key=lambda m: (-m.rsrp_dbm, m.cell.cell_id))
        return intra_rat, inter_rat


class BatchMeasurementState:
    """Persistent (UE x cell) matrices for a lockstep fleet shard.

    :meth:`MeasurementEngine.step_connected_batch` rebuilds its input
    matrices from every engine on every call; for a fleet ticking the
    same UEs in lockstep most rows are unchanged tick over tick (a
    parked UE's raw snapshot never changes, and its filter state is
    exactly last tick's output).  This class keeps the matrices alive
    across ticks, refreshes only rows that went stale, and updates the
    filter/eligibility matrices **in place**:

    * Raw metric rows are rewritten only when a UE's snapshot object
      changed (movers every tick, parked UEs never).
    * The previous-state and output matrices are the *same buffers*:
      the IIR update writes back into them, so the row views installed
      into each engine stay valid across ticks and need no per-tick
      re-commit.  An engine whose arrays were rebuilt outside the batch
      (handover reset, realignment, a detach by the fleet loop) fails
      the identity check and gets its row refreshed from the engine,
      the single source of truth.
    * Serving-cell eligibility is forced with one fancy-index write
      from cached row/column arrays, rebuilt only when a serving cell,
      a neighborhood, or the set of batched rows changes.

    Because the buffers mutate in place, anything derived from row
    views — :class:`MeasurementRound` objects included — is only valid
    until the next :meth:`step`; the fleet consumes every round within
    its tick.  Callers whose engines hold batch row views MUST detach
    an engine (copy its arrays) before stepping the batch without it,
    or the full-matrix ufuncs would scribble over live engine state.

    Values are bit-identical to per-engine :meth:`_step_vectorized`
    rounds for the same reason the stateless batch is: every update is
    the same elementwise ufunc on the same operand values, and each
    engine's RNG draws its own noise in its own order
    (``standard_normal`` twice consumes the stream exactly as one
    ``normal(0, 1, 2n)`` draw does).
    """

    def __init__(self, n_rows: int):
        self.n_rows = n_rows
        self.max_n = 0
        # Persistent inputs; prev/has double as the in-place outputs.
        self._raw_rsrp: np.ndarray | None = None
        self._raw_rsrq: np.ndarray | None = None
        self._prev_rsrp: np.ndarray | None = None
        self._prev_rsrq: np.ndarray | None = None
        self._has: np.ndarray | None = None
        self._noise_rsrp: np.ndarray | None = None
        self._noise_rsrq: np.ndarray | None = None
        # Elementwise scratch (noisy metrics, IIR terms).
        self._t1: np.ndarray | None = None
        self._t2: np.ndarray | None = None
        self._t3: np.ndarray | None = None
        self._t4: np.ndarray | None = None
        #: Padded LTE rat-mask rows for the batched event pass (every
        #: batched lane serves LTE); refreshed with the raw rows.
        self._rat_lte: np.ndarray | None = None
        self._stds = np.zeros((n_rows, 1))
        self._stds_half = np.zeros((n_rows, 1))
        self._floors = np.zeros((n_rows, 1))
        self._alpha = np.zeros((n_rows, 1))
        self._one_minus_alpha = np.zeros((n_rows, 1))
        # Per-row validity bookkeeping (engine-array identity).
        self._last_snap: list = [None] * n_rows
        self._last_prepared: list = [None] * n_rows
        self._last_n = [0] * n_rows
        self._last_view: list = [None] * n_rows
        self._last_has_view: list = [None] * n_rows
        #: (serving cell, prepared, serving index) memo per row.
        self._serving_memo: list = [None] * n_rows
        #: Cached serving-eligibility write targets (see step()).
        self._sv_rows: np.ndarray | None = None
        self._sv_cols: np.ndarray | None = None
        self._sv_for_rows: list | None = None
        #: Optional ``REPRO_PROFILE`` stage-timing sink (the fleet
        #: simulator attaches its own profile dict here).
        self.profile: dict | None = None

    def _grow(self, need_n: int) -> None:
        """(Re)allocate matrices for a larger cell axis; all rows stale."""
        self.max_n = need_n
        g = self.n_rows
        pad = MeasurementEngine._BATCH_PAD
        self._raw_rsrp = np.full((g, need_n), pad)
        self._raw_rsrq = np.full((g, need_n), pad)
        self._prev_rsrp = np.zeros((g, need_n))
        self._prev_rsrq = np.zeros((g, need_n))
        self._has = np.zeros((g, need_n), dtype=bool)
        self._noise_rsrp = np.zeros((g, need_n))
        self._noise_rsrq = np.zeros((g, need_n))
        self._t1 = np.empty((g, need_n))
        self._t2 = np.empty((g, need_n))
        self._t3 = np.empty((g, need_n))
        self._t4 = np.empty((g, need_n))
        self._rat_lte = np.zeros((g, need_n), dtype=bool)
        self._last_snap = [None] * g
        self._last_prepared = [None] * g
        self._last_n = [0] * g
        self._last_view = [None] * g
        self._last_has_view = [None] * g
        self._sv_for_rows = None

    def detach(self, eng: MeasurementEngine) -> None:
        """Give ``eng`` private copies of its batch row views.

        Called by the fleet loop when a lane leaves the batch while the
        batch keeps stepping: the in-place matrix update would otherwise
        mutate the engine's live filter state under it.  The copies make
        the engine self-contained; if the lane returns, the identity
        check fails and its row is refreshed from the engine.
        """
        if eng._filt_rsrp is not None:
            eng._filt_rsrp = eng._filt_rsrp.copy()
            eng._filt_rsrq = eng._filt_rsrq.copy()
            eng._has_filt = eng._has_filt.copy()

    def step(
        self,
        rows: list[int],
        engines: list[MeasurementEngine],
        snaps: list[RadioSnapshot],
        servings: list[Cell],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One batched connected round; lane ``k`` lives in row ``rows[k]``.

        Advances every engine's filter state and RNG and returns the
        ``(filt_rsrp, filt_rsrq, eligible)`` matrices (the persistent
        in-place buffers, valid until the next call; rows not in
        ``rows`` hold garbage).  No :class:`MeasurementRound` objects
        are created here — the caller materializes them only for lanes
        that actually consume one.
        """
        profile = self.profile
        t0 = perf_counter() if profile is not None else 0.0
        pad = MeasurementEngine._BATCH_PAD
        need_n = max(len(snap.prepared.cells) for snap in snaps)
        if need_n > self.max_n:
            self._grow(need_n)
        raw_rsrp, raw_rsrq = self._raw_rsrp, self._raw_rsrq
        prev_rsrp, prev_rsrq, has = self._prev_rsrp, self._prev_rsrq, self._has
        noise_rsrp, noise_rsrq = self._noise_rsrp, self._noise_rsrq
        last_snap, last_n = self._last_snap, self._last_n
        last_view, last_has_view = self._last_view, self._last_has_view
        last_prepared = self._last_prepared
        serving_memo = self._serving_memo
        rat_lte = self._rat_lte
        sv_dirty = self._sv_for_rows is None or rows != self._sv_for_rows
        for k, r in enumerate(rows):
            eng, snap = engines[k], snaps[k]
            prepared = snap.prepared
            n = len(prepared.cells)
            # One buffered tap read of 2n consumes the stream exactly as
            # the per-engine path's normal(0, 1, 2n) draw (same values,
            # same order), copied into the contiguous noise row slices.
            z = eng._noise(2 * n)
            noise_rsrp[r, :n] = z[:n]
            noise_rsrq[r, :n] = z[n:]
            if snap is not last_snap[r]:
                rr, rq, _ = snap.metric_arrays()
                raw_rsrp[r, :n] = rr
                raw_rsrq[r, :n] = rq
                if n < last_n[r]:
                    raw_rsrp[r, n:last_n[r]] = pad
                    raw_rsrq[r, n:last_n[r]] = pad
                    # Stale noise tails are multiplied by the row's std
                    # every tick without being rewritten; left nonzero
                    # they grow geometrically to overflow (and drag the
                    # full-matrix ufuncs through non-finite values).
                    noise_rsrp[r, n:last_n[r]] = 0.0
                    noise_rsrq[r, n:last_n[r]] = 0.0
                last_snap[r] = snap
                last_n[r] = n
                if prepared is not last_prepared[r]:
                    rat_lte[r, :n] = prepared.rat_mask(RAT.LTE)
                    rat_lte[r, n:] = False
                    last_prepared[r] = prepared
            if (
                eng._filt_rsrp is not last_view[r]
                or eng._has_filt is not last_has_view[r]
                or eng._aligned is not prepared
            ):
                # The engine's arrays were rebuilt outside the batch
                # (reset, realignment, detach): the engine is the source
                # of truth — refresh the row from it, then hand the
                # engine stable views into the in-place buffers.
                if eng._aligned is not prepared:
                    eng._realign(prepared)
                prev_rsrp[r, :n] = eng._filt_rsrp
                prev_rsrq[r, :n] = eng._filt_rsrq
                has[r, :n] = eng._has_filt
                has[r, n:] = False
                self._stds[r, 0] = eng.noise_std_db
                self._stds_half[r, 0] = eng.noise_std_db / 2.0
                self._floors[r, 0] = eng.detection_floor_dbm
                self._alpha[r, 0] = eng.alpha
                self._one_minus_alpha[r, 0] = 1.0 - eng.alpha
                view_rsrp = prev_rsrp[r, :n]
                view_has = has[r, :n]
                eng._filt_rsrp = view_rsrp
                eng._filt_rsrq = prev_rsrq[r, :n]
                eng._has_filt = view_has
                last_view[r] = view_rsrp
                last_has_view[r] = view_has
            serving = servings[k]
            memo = serving_memo[r]
            if memo is None or memo[0] is not serving or memo[1] is not prepared:
                serving_memo[r] = (serving, prepared, prepared.index.get(serving.cell_id))
                sv_dirty = True
        if profile is not None:
            now = perf_counter()
            profile["bs_loop"] = profile.get("bs_loop", 0.0) + now - t0
            t0 = now
        # Scaling the unit draws is the same multiply the per-engine
        # path performs (z * std, z * (std / 2)); the noise rows are
        # consumed destructively (rewritten with fresh draws next tick).
        np.multiply(noise_rsrp, self._stds, out=noise_rsrp)
        np.multiply(noise_rsrq, self._stds_half, out=noise_rsrq)
        t1, t2, t3, t4 = self._t1, self._t2, self._t3, self._t4
        # minimum(maximum(...)) is the scalar clamp's exact op order.
        lo, hi = RSRP_RANGE_DBM
        np.add(raw_rsrp, noise_rsrp, out=t1)
        np.maximum(t1, lo, out=t1)
        np.minimum(t1, hi, out=t1)
        lo, hi = RSRQ_RANGE_DB
        np.add(raw_rsrq, noise_rsrq, out=t2)
        np.maximum(t2, lo, out=t2)
        np.minimum(t2, hi, out=t2)
        # where(has, (1-a)*prev + a*noisy, noisy), written back into the
        # prev buffers: the IIR term is materialized first (it reads
        # prev), then noisy is copied everywhere and overwritten where
        # has holds — the same selected values np.where produces.
        np.multiply(self._one_minus_alpha, prev_rsrp, out=t3)
        np.multiply(self._alpha, t1, out=t4)
        np.add(t3, t4, out=t3)
        np.copyto(prev_rsrp, t1)
        np.copyto(prev_rsrp, t3, where=has)
        np.multiply(self._one_minus_alpha, prev_rsrq, out=t3)
        np.multiply(self._alpha, t2, out=t4)
        np.add(t3, t4, out=t3)
        np.copyto(prev_rsrq, t2)
        np.copyto(prev_rsrq, t3, where=has)
        # Eligibility replaces has in place only after the IIR selection
        # consumed last tick's values (exactly the allocating version's
        # dataflow), then serving cells are forced eligible in one
        # cached fancy-index write.
        np.greater_equal(raw_rsrp, self._floors, out=has)
        if profile is not None:
            now = perf_counter()
            profile["bs_matrix"] = profile.get("bs_matrix", 0.0) + now - t0
            t0 = now
        if sv_dirty:
            pairs = [
                (r, serving_memo[r][2])
                for r in rows
                if serving_memo[r][2] is not None
            ]
            self._sv_rows = np.fromiter(
                (p[0] for p in pairs), dtype=np.intp, count=len(pairs)
            )
            self._sv_cols = np.fromiter(
                (p[1] for p in pairs), dtype=np.intp, count=len(pairs)
            )
            self._sv_for_rows = list(rows)
        has[self._sv_rows, self._sv_cols] = True
        if profile is not None:
            profile["bs_sv"] = profile.get("bs_sv", 0.0) + perf_counter() - t0
        return prev_rsrp, prev_rsrq, has
