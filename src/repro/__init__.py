"""Reproduction of "Mobility Support in Cellular Networks: A Measurement
Study on Its Configurations and Implications" (IMC 2018).

The package is organized bottom-up:

* :mod:`repro.cellnet` — the cellular-network substrate (cells, bands,
  carriers, deployments, radio propagation);
* :mod:`repro.config` — the handoff configuration space (parameter
  registry, reporting events, per-cell structures, carrier profiles);
* :mod:`repro.rrc` — the signaling substrate (messages, binary codec,
  modem diag log format, broadcast);
* :mod:`repro.ue` — the device-side 3GPP state machines (measurement,
  reporting, reselection, handover);
* :mod:`repro.simulate` — mobility, traffic and throughput simulation;
* :mod:`repro.datasets` — the D1/D2 dataset builders;
* :mod:`repro.core` — **MMLab**, the paper's contribution: collector,
  configuration crawler, handoff-instance extraction and the analysis
  toolkit;
* :mod:`repro.experiments` — one driver per table/figure of the paper.

Quickstart::

    from repro.simulate import drive_scenario, DriveSimulator, Speedtest
    from repro.core import MMLab
    import numpy as np

    scenario = drive_scenario("indianapolis")
    sim = DriveSimulator(scenario.env, scenario.server, "A")
    trajectory = scenario.urban_trajectory(np.random.default_rng(1))
    result = sim.run(trajectory, Speedtest())
    mmlab = MMLab()
    configs = mmlab.crawl(result.diag_log)
    handoffs = mmlab.extract_handoffs(result.diag_log, "A")
"""

__version__ = "1.0.0"
