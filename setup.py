"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on this offline machine lacks
``bdist_wheel``; the legacy ``--no-use-pep517`` editable path needs this
file.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
