#!/usr/bin/env python3
"""Quickstart: one drive through the full MMLab pipeline.

Builds a small Type-II world (one of the paper's cities), runs a
10-minute speedtest drive, and walks the device-side measurement study:
the collector's diag log is parsed back into configurations and handoff
instances — nothing is read from the simulator's internals.

Run:
    python examples/quickstart.py
"""

from collections import Counter

import numpy as np

from repro.core import MMLab
from repro.simulate import DriveSimulator, Speedtest, drive_scenario


def main() -> None:
    print("building the world (Indianapolis, four US carriers)...")
    scenario = drive_scenario("indianapolis", seed=7)
    print(f"  {len(scenario.plan.registry)} cells deployed")

    print("driving 10 minutes with a continuous speedtest (AT&T)...")
    sim = DriveSimulator(scenario.env, scenario.server, "A", seed=3)
    trajectory = scenario.urban_trajectory(np.random.default_rng(1), duration_s=600.0)
    result = sim.run(trajectory, Speedtest())
    print(f"  diag log: {len(result.diag_log):,} bytes")

    mmlab = MMLab()
    print("crawling configurations from the diag log...")
    snapshots = mmlab.crawl(result.diag_log)
    print(f"  {len(snapshots)} cell configuration snapshots")
    example = snapshots[0]
    print(f"  example: cell {example.carrier}/{example.gci} on channel "
          f"{example.channel}:")
    serving = example.lte_config.serving
    print(f"    priority={serving.cell_reselection_priority}  "
          f"q_hyst={serving.q_hyst} dB  "
          f"s_intra={serving.s_intra_search_p} dB  "
          f"s_nonintra={serving.s_non_intra_search_p} dB")
    if example.meas_config:
        armed = [e.event.value for e in example.meas_config.events]
        print(f"    armed events: {armed}  s_measure={example.meas_config.s_measure}")

    print("extracting handoff instances...")
    instances = mmlab.extract_handoffs(
        result.diag_log, "A", throughput_series=result.throughput_series()
    )
    events = Counter(i.decisive_event for i in instances)
    print(f"  {len(instances)} handoffs; decisive events: {dict(events)}")
    improved = [i for i in instances if i.delta_rsrp is not None and i.delta_rsrp > 0]
    print(f"  {len(improved)}/{len(instances)} went to a stronger cell")
    latencies = [i.report_to_handover_ms for i in instances
                 if i.report_to_handover_ms is not None]
    if latencies:
        print(f"  report-to-handover latency: {min(latencies)}-{max(latencies)} ms "
              "(paper: 80-230 ms)")

    mean_mbps = np.mean([s.delivered_bps for s in result.samples]) / 1e6
    print(f"drive throughput: {mean_mbps:.1f} Mbps mean")


if __name__ == "__main__":
    main()
