#!/usr/bin/env python3
"""A crowdsourced measurement campaign through the MMLab server.

Reproduces the paper's Fig. 4 control loop at miniature scale: the
server enrols participants on each US carrier, pushes Type-I collection
patches (proactive scans at stops around the city) and one guided
Type-II drive, executes everything, and harvests the archive into
configuration samples and handoff instances — then runs a first-cut
diversity analysis on what came back.

Run:
    python examples/crowdsourced_campaign.py
"""

import numpy as np

from repro.core import MMLabServer
from repro.core.analysis.diversity import parameter_diversity
from repro.datasets.store import ConfigSampleStore
from repro.simulate import Speedtest, drive_scenario
from repro.simulate.mobility import waypoint_ring


def main() -> None:
    scenario = drive_scenario("indianapolis", seed=7)
    server = MMLabServer(scenario, seed=3)
    print("enrolling participants and pushing patches...")
    stops = waypoint_ring(scenario.cities[0], n=10)
    for carrier in ("A", "T", "V", "S"):
        participant = server.register(carrier)
        server.push_type1(participant, stops[:5], observed_day=100.0)
        server.push_type1(participant, stops[5:], observed_day=160.0)
    driver = server.register("A")
    trajectory = scenario.urban_trajectory(np.random.default_rng(2), duration_s=420.0)
    server.push_type2(driver, trajectory, Speedtest())

    executed = server.run_all_pending()
    print(f"executed {executed} patches; archive holds "
          f"{sum(len(l.log_bytes) for l in server.archive):,} bytes of logs")

    store = ConfigSampleStore(server.harvest_config_samples())
    print(f"harvested {len(store):,} configuration samples from "
          f"{len(store.unique_cells())} cells")
    for carrier in ("A", "T", "V", "S"):
        sub = store.for_carrier(carrier).for_rat("LTE")
        if not len(sub):
            continue
        priority = parameter_diversity(sub, "cell_reselection_priority")
        threshold = parameter_diversity(sub, "thresh_serving_low_p")
        print(f"  {carrier}: Ps diversity D={priority.simpson:.2f} "
              f"(richness {priority.richness}); "
              f"Theta_s_low D={threshold.simpson:.2f} "
              f"(richness {threshold.richness})")

    instances = server.harvest_handoff_instances()
    print(f"harvested {len(instances)} handoff instances from the guided drive")
    if instances:
        events = sorted({i.decisive_event for i in instances if i.decisive_event})
        print(f"  decisive events observed: {events}")


if __name__ == "__main__":
    main()
