#!/usr/bin/env python3
"""A miniature of the paper's full measurement study.

Builds small D1 (Type-II drives) and D2 (Type-I crowdsourced
collection) datasets and regenerates a selection of the paper's tables
and figures from them.  This is the condensed version of what the
benchmark suite does at full scale — useful to eyeball the study
end-to-end in about a minute.

Run:
    python examples/measurement_study.py            # quick (small scale)
    python examples/measurement_study.py --full     # default bench scale
"""

import sys

from repro.datasets.d1 import D1Options, build_d1
from repro.datasets.d2 import D2Options, build_d2
from repro.experiments import registry


def main(full: bool = False) -> None:
    if full:
        from repro.experiments.common import default_d1, default_d2

        print("building the default-scale datasets (takes a few minutes)...")
        d1 = default_d1()
        d2 = default_d2()
    else:
        print("building small datasets...")
        d1 = build_d1(D1Options(active_drives=2, idle_drives=2,
                                drive_duration_s=420.0, carriers=("A", "T")))
        d2 = build_d2(D2Options(n_volunteers=8, include_dense=True))
    print(f"  D1: {len(d1.store)} handoff instances "
          f"({len(d1.store.active())} active, {len(d1.store.idle())} idle)")
    print(f"  D2: {len(d2.store):,} configuration samples from "
          f"{len(d2.store.unique_cells()):,} cells")
    print()
    for exp_id in ("fig05", "fig06", "fig10"):
        registry.run(exp_id, d1=d1).print()
        print()
    for exp_id in ("tab04", "fig11", "fig13", "fig17", "fig22"):
        registry.run(exp_id, d2=d2).print()
        print()


if __name__ == "__main__":
    main(full="--full" in sys.argv)
