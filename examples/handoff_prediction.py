#!/usr/bin/env python3
"""Device-side handoff prediction (paper Section 6).

"Using our tool, the mobile devices can readily collect runtime
configuration parameters, and use them plus realtime measurements to
forecast whether and how a handoff will occur in the near future.
Moreover, such predictions can be highly accurate."

This example replays driving runs with a shadow predictor that sees
only what the device sees — the crawled measConfig and its own filtered
measurements — and scores recall, target accuracy and lead time against
the handoffs that actually happened.

Run:
    python examples/handoff_prediction.py
"""

import numpy as np

from repro.core.analysis.prediction import evaluate_predictor
from repro.simulate import drive_scenario


def main() -> None:
    scenario = drive_scenario("indianapolis", seed=7)
    print("scoring the device-side handoff predictor over drives...")
    totals = {"handoffs": 0, "predicted": 0, "correct": 0}
    lead_times = []
    for carrier in ("A", "T"):
        for run in range(3):
            rng = np.random.default_rng((99, run))
            trajectory = scenario.urban_trajectory(rng, duration_s=480.0)
            score = evaluate_predictor(
                scenario.env, scenario.server, carrier, trajectory, seed=run
            )
            totals["handoffs"] += score.n_handoffs
            totals["predicted"] += score.n_predicted
            totals["correct"] += score.n_correct_target
            lead_times.extend(score.lead_times_ms)
            print(f"  {carrier} run {run}: {score.n_handoffs} handoffs, "
                  f"recall {100 * score.recall:.0f}%, "
                  f"target accuracy {100 * score.target_accuracy:.0f}%")
    if totals["handoffs"]:
        recall = totals["predicted"] / totals["handoffs"]
        accuracy = totals["correct"] / max(totals["predicted"], 1)
        print(f"\noverall: {totals['handoffs']} handoffs")
        print(f"  recall          : {100 * recall:.0f}%")
        print(f"  target accuracy : {100 * accuracy:.0f}%")
        if lead_times:
            print(f"  mean lead time  : {np.mean(lead_times):.0f} ms before the handoff")
        print("\nan application getting this signal can pre-buffer, defer "
              "transfers, or re-route before the interruption hits — the "
              "paper's proposed device-side optimization hook.")


if __name__ == "__main__":
    main()
