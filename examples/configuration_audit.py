#!/usr/bin/env python3
"""Configuration audit: the paper's "automated tool for configuration
verification" (Section 6) over a crawled carrier network.

Crawls one carrier's cells through the full device-side pipeline (SIB
broadcasts -> diag log -> crawler) and audits the recovered
configurations for the paper's problem patterns: negative A3 offsets,
permissive/inverted A5 pairs, premature or late measurement thresholds,
priority conflicts and priority loops.

Run:
    python examples/configuration_audit.py [carrier]
"""

import sys
from collections import Counter

from repro.cellnet.rat import RAT
from repro.core.analysis.verification import audit_snapshots, summarize
from repro.core.crawler import ConfigCrawler
from repro.rrc.diag import DiagWriter
from repro.simulate import drive_scenario


def main(carrier: str = "A") -> None:
    print(f"building the world and crawling carrier {carrier!r}...")
    scenario = drive_scenario("indianapolis", seed=7)
    cells = [
        c for c in scenario.plan.registry.by_carrier(carrier) if c.rat is RAT.LTE
    ]
    # Capture each cell's broadcast into a diag log — the audit only
    # ever sees what a phone would see.
    writer = DiagWriter.in_memory()
    t_ms = 0
    for cell in cells:
        for message in scenario.server.sib_messages(cell):
            writer.write(t_ms, message)
            t_ms += 10
        writer.write(t_ms, scenario.server.connection_reconfiguration(cell))
        t_ms += 10
    snapshots = ConfigCrawler.crawl(writer.getvalue())
    print(f"  crawled {len(snapshots)} cell configurations "
          f"({len(writer.getvalue()):,} bytes of signaling)")

    print("auditing...")
    findings = audit_snapshots(snapshots)
    summary = summarize(findings)
    severities = Counter(f.severity for f in findings)
    print(f"  {len(findings)} findings "
          f"({severities.get('problem', 0)} problems, "
          f"{severities.get('warning', 0)} warnings, "
          f"{severities.get('info', 0)} informational)")
    for code, count in summary.items():
        print(f"    {code:32s} {count:5d}")

    print("\nexample findings:")
    shown = set()
    for finding in findings:
        if finding.code in shown:
            continue
        shown.add(finding.code)
        where = f"cell {finding.carrier}/{finding.gci}" if finding.gci >= 0 else "network"
        print(f"  [{finding.severity}] {finding.code} ({where})")
        print(f"      {finding.message}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "A")
